//! One entry point per table / figure of the paper's evaluation.
//!
//! Every function returns an [`ExperimentTable`] (or a small set of them) whose rows
//! mirror the series the paper plots. The `cogsys-bench` binaries print these tables;
//! `EXPERIMENTS.md` records paper-reported vs. measured values. Absolute numbers are not
//! expected to match the authors' testbed — the comparisons of interest are the
//! *relative* ones (who wins, by roughly what factor, where the crossovers fall).

use crate::system::{AblationVariant, CogSysConfig, CogSysSystem};
use cogsys_datasets::{Constellation, DatasetKind, ProblemGenerator, RuleKind};
use cogsys_factorizer::{AccuracyReport, BoundedNoise, FactorizationCost, FactorizerConfig};
use cogsys_sim::devices::tab2_kernel_stats;
use cogsys_sim::{
    dataflow, AcceleratorConfig, ComputeArray, DeviceKind, DeviceModel, EnergyModel, Kernel,
    KernelClass, Roofline,
};
use cogsys_vsa::batch::{BackendKind, HvMatrix};
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use cogsys_vsa::{Codebook, Hypervector, Precision};
use cogsys_workloads::{NeurosymbolicSolver, SolverConfig, TaskSize, WorkloadKind, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A generic result table: one labelled row per series entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ExperimentTable {
    /// Table title (e.g. `"Fig. 15: end-to-end runtime"`).
    pub title: String,
    /// Column headers (not including the row label).
    pub columns: Vec<String>,
    /// Rows: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<f64>) {
        self.rows.push((label.into(), values));
    }

    /// Looks up a value by row label and column name.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|(label, _)| label == row)
            .and_then(|(_, values)| values.get(col).copied())
    }
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        write!(f, "{:<28}", "")?;
        for c in &self.columns {
            write!(f, "{c:>16}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:<28}")?;
            for v in values {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    write!(f, "{v:>16.3e}")?;
                } else {
                    write!(f, "{v:>16.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One measured point of the backend-throughput sweep: a `(backend, kernel, dim,
/// batch)` cell with its wall-clock cost per batched kernel invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Backend name (`reference`, `parallel`, `packed`).
    pub backend: String,
    /// Kernel name: `bind_circular` (row-wise circular-convolution binding),
    /// `cleanup` (codebook cleanup of an `f32` query batch), `cleanup_prepacked`
    /// (codebook cleanup of pre-packed `BitMatrix` queries), `solve_batch` (the
    /// cross-problem batched solver over `batch` problems, reused scratch) or
    /// `solve_sequential` (per-problem solver loop over the same problems).
    pub kernel: String,
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Number of rows in the batch.
    pub batch: usize,
    /// Best-of-N wall-clock nanoseconds for one batched kernel call (one warm-up,
    /// then best of five rounds for the micro-kernels, best of three for the
    /// end-to-end solver kernels — see the producing functions).
    pub ns_per_op: f64,
}

impl BenchRecord {
    fn matches(&self, backend: &str, kernel: &str, dim: usize, batch: usize) -> bool {
        self.backend == backend && self.kernel == kernel && self.dim == dim && self.batch == batch
    }
}

/// Number of codebook rows used by the throughput sweep's cleanup kernel.
pub const BENCH_CODEBOOK_ROWS: usize = 64;

/// Measures the hot batch kernels — circular-convolution binding, codebook cleanup of
/// `f32` queries, codebook cleanup and the full similarity GEMM of **pre-packed**
/// `BitMatrix` queries, the fused sign projection, and the bounded-noise sign
/// perturbation — for every [`BackendKind`] across the requested dimensionalities and
/// batch sizes. Each record is the best (minimum) of five timed rounds after one
/// warm-up.
///
/// The cleanup measurements go through [`Codebook::cleanup_batch`] /
/// [`Codebook::cleanup_batch_bits`], so packed-aware backends get their cached
/// codebook sign planes — exactly the production call paths. The gap between
/// `cleanup` and `cleanup_prepacked` on the packed backend is the per-call query
/// packing cost that end-to-end `BitMatrix` pipelines avoid. `similarity_prepacked`
/// is the popcount GEMM behind the resonator's similarity step; `project_signs` is
/// the fused weighted-superposition → sign-threshold kernel (SoA lane-blocked on the
/// packed backend, dense projection + packing elsewhere); `noise_signs` pits the
/// word-level amplitude early-out (recorded as `packed`) against the element-wise
/// rule (recorded as `reference`) on regime-mixed accumulators where two thirds of
/// the 64-dim words provably exceed the amplitude.
pub fn backend_throughput_records(
    dims: &[usize],
    batches: &[usize],
    seed: u64,
) -> Vec<BenchRecord> {
    use cogsys_vsa::packed::BitMatrix;
    use std::time::Instant;

    let backends: Vec<_> = BackendKind::ALL.iter().map(|k| k.create()).collect();
    let mut records = Vec::new();
    let mut rng = cogsys_vsa::rng(seed);
    for &dim in dims {
        let codebook = Codebook::random("bench", BENCH_CODEBOOK_ROWS, dim, &mut rng);
        for &batch in batches {
            let rows: Vec<Hypervector> = (0..batch)
                .map(|_| Hypervector::random_bipolar(dim, &mut rng))
                .collect();
            let others: Vec<Hypervector> = (0..batch)
                .map(|_| Hypervector::random_bipolar(dim, &mut rng))
                .collect();
            let a = HvMatrix::from_rows(&rows).expect("rows share a dimension");
            let b = HvMatrix::from_rows(&others).expect("rows share a dimension");
            let a_bits = BitMatrix::from_matrix(&a).expect("bipolar queries pack");
            // Projection weights: one row per query, one weight per codebook row,
            // on the similarity scale the resonator feeds this kernel.
            let mut weights = HvMatrix::zeros(batch, BENCH_CODEBOOK_ROWS);
            for (q, row) in rows.iter().enumerate() {
                for (m, slot) in weights.row_mut(q).iter_mut().enumerate() {
                    *slot = row.values()[m % dim] * (1.0 + m as f32 / 64.0);
                }
            }

            let time = |f: &mut dyn FnMut()| {
                // One warm-up round, then the best (minimum) of five timed rounds —
                // the minimum is the least noisy statistic on a shared CI core.
                f();
                (0..5)
                    .map(|_| {
                        let t = Instant::now();
                        f();
                        t.elapsed().as_secs_f64()
                    })
                    .fold(f64::INFINITY, f64::min)
            };

            for backend in &backends {
                let bind = time(&mut || {
                    let _ = backend
                        .bind_batch(&a, &b, BindingOp::CircularConvolution)
                        .expect("shapes match");
                });
                records.push(BenchRecord {
                    backend: backend.name().to_string(),
                    kernel: "bind_circular".to_string(),
                    dim,
                    batch,
                    ns_per_op: bind * 1e9,
                });
                let cleanup = time(&mut || {
                    let _ = codebook
                        .cleanup_batch(backend.as_ref(), &a)
                        .expect("shapes match");
                });
                records.push(BenchRecord {
                    backend: backend.name().to_string(),
                    kernel: "cleanup".to_string(),
                    dim,
                    batch,
                    ns_per_op: cleanup * 1e9,
                });
                let prepacked = time(&mut || {
                    let _ = codebook
                        .cleanup_batch_bits(backend.as_ref(), &a_bits)
                        .expect("shapes match");
                });
                records.push(BenchRecord {
                    backend: backend.name().to_string(),
                    kernel: "cleanup_prepacked".to_string(),
                    dim,
                    batch,
                    ns_per_op: prepacked * 1e9,
                });
                let sims_prepacked = time(&mut || {
                    let _ = codebook
                        .similarities_batch_bits(backend.as_ref(), &a_bits)
                        .expect("shapes match");
                });
                records.push(BenchRecord {
                    backend: backend.name().to_string(),
                    kernel: "similarity_prepacked".to_string(),
                    dim,
                    batch,
                    ns_per_op: sims_prepacked * 1e9,
                });
                // Fused projection → sign threshold: the packed backend runs the SoA
                // lane-blocked kernel on its cached sign planes; the dense backends
                // run their projection GEMM followed by sign packing, which is the
                // pre-packed pipeline's shape for the same step.
                let mut proj_bits = BitMatrix::default();
                let mut proj_acc: Vec<f32> = Vec::new();
                let mut proj_dense = HvMatrix::default();
                let project = time(&mut || {
                    if let (Some(packed), Some(cb_bits)) = (backend.as_packed(), codebook.packed())
                    {
                        packed.project_signs_packed_into(
                            cb_bits,
                            &weights,
                            |_, _| {},
                            &mut proj_acc,
                            &mut proj_bits,
                        );
                    } else {
                        backend
                            .project_batch_into(codebook.matrix(), &weights, &mut proj_dense)
                            .expect("shapes match");
                        proj_bits.ensure_shape(batch, dim);
                        for q in 0..batch {
                            proj_bits.pack_signs_row(q, proj_dense.row(q));
                        }
                    }
                });
                records.push(BenchRecord {
                    backend: backend.name().to_string(),
                    kernel: "project_signs".to_string(),
                    dim,
                    batch,
                    ns_per_op: project * 1e9,
                });
            }

            // Bounded-noise sign perturbation on accumulator-shaped values whose
            // 64-dim words alternate regimes (one third within the amplitude, two
            // thirds provably outside), so the `packed` row exercises the word-level
            // early-out and the `reference` row the element-wise rule it must match.
            let noise = BoundedNoise::for_sigma(0.25).expect("positive sigma");
            let amp = noise.amplitude();
            let base: Vec<f32> = a
                .as_slice()
                .iter()
                .enumerate()
                .map(|(j, &sign)| {
                    let scale = match (j / 64) % 3 {
                        0 => amp * 0.5,
                        1 => amp * 4.0,
                        _ => amp * 2.0,
                    };
                    sign * scale
                })
                .collect();
            let mut values = base.clone();
            for (label, elementwise) in [("packed", false), ("reference", true)] {
                let perturb = time(&mut || {
                    values.copy_from_slice(&base);
                    let mut r = cogsys_vsa::rng(seed ^ 0x4015E);
                    for row in values.chunks_mut(dim) {
                        if elementwise {
                            noise.perturb_signs_elementwise(row, &mut r);
                        } else {
                            noise.perturb_signs(row, &mut r);
                        }
                    }
                });
                records.push(BenchRecord {
                    backend: label.to_string(),
                    kernel: "noise_signs".to_string(),
                    dim,
                    batch,
                    ns_per_op: perturb * 1e9,
                });
            }
        }
    }
    records
}

/// Problem count and vector dimensionality of the solver-throughput sweep.
///
/// 64 problems is the batch size of the headline acceptance measurement (one
/// `batch_tasks`-sized serving chunk of 8·64 = 512 panel rows through the packed
/// kernels); d = 2048 is the solver's production dimensionality.
pub const SOLVER_BENCH_PROBLEMS: [usize; 2] = [8, 64];

/// Measures end-to-end solver throughput for every [`BackendKind`]: the
/// `solve_batch` kernel runs the cross-problem batched engine (one reused
/// [`cogsys_workloads::SolverScratch`], all problems in one call) and the
/// `solve_sequential` kernel runs the per-problem path (a loop over
/// [`NeurosymbolicSolver::solve`], the pre-batching `solve_batch` behaviour). Both
/// solve the same RAVEN problems from the same rng state, so their wall-clock ratio
/// is the pure cross-problem-batching dividend; tracking `solve_batch` against the
/// committed baseline guards the whole serving path (encode, factorize, polish,
/// answer scoring) rather than single kernels.
///
/// `ns_per_op` is the best wall clock for solving the *whole* batch (one warm-up,
/// best of three), mirroring the per-batched-call convention of
/// [`backend_throughput_records`].
///
/// Beyond the two legacy end-to-end kernels the sweep also measures the plan
/// layer introduced by the compile/execute split:
///
/// * `plan_compile` — one [`NeurosymbolicSolver::compile_plan`] call (the cost a
///   cold plan-cache miss adds to the first chunk of a new shape);
/// * `solve_batch_planned` — the planned executor on the cached specialized plan
///   (compile amortized away, the steady-state serving cost);
/// * `solve_batch_planned_generic` (packed only) — the same executor forced onto
///   the runtime-word-count generic kernels, the A/B twin that isolates what the
///   const-generic `W=16/32/64` monomorphization buys;
/// * `plan_stage_{encode,decode,score}` (packed only) — the per-stage wall clock
///   of the best planned round, the cells `cogsys-serve`'s per-stage
///   `ServiceModel` fit and the adSCH stage-cost validation consume.
pub fn solver_throughput_records(problem_counts: &[usize], seed: u64) -> Vec<BenchRecord> {
    use cogsys_workloads::{SolverScratch, StageNanos};
    use std::time::Instant;

    let mut records = Vec::new();
    for &backend in &BackendKind::ALL {
        let mut rng = cogsys_vsa::rng(seed);
        let solver =
            NeurosymbolicSolver::new(SolverConfig::default().with_backend(backend), &mut rng);
        let dim = solver.config().vector_dim;
        for &count in problem_counts {
            let problems =
                ProblemGenerator::new(DatasetKind::Raven).generate_batch(count, &mut rng);
            let mut scratch = SolverScratch::default();

            let time = |f: &mut dyn FnMut()| {
                f();
                (0..3)
                    .map(|_| {
                        let t = Instant::now();
                        f();
                        t.elapsed().as_secs_f64()
                    })
                    .fold(f64::INFINITY, f64::min)
            };

            let batched = time(&mut || {
                let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                let _ = solver
                    .solve_batch_with(&problems, &mut r, &mut scratch)
                    .expect("well-formed problems solve");
            });
            records.push(BenchRecord {
                backend: backend.to_string(),
                kernel: "solve_batch".to_string(),
                dim,
                batch: count,
                ns_per_op: batched * 1e9,
            });

            let sequential = time(&mut || {
                let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                for problem in &problems {
                    let _ = solver.solve(problem, &mut r).expect("well-formed problem");
                }
            });
            records.push(BenchRecord {
                backend: backend.to_string(),
                kernel: "solve_sequential".to_string(),
                dim,
                batch: count,
                ns_per_op: sequential * 1e9,
            });

            // Plan compilation cost: microsecond-scale, so each timed round runs a
            // small inner loop and reports the per-call cost.
            const COMPILES_PER_ROUND: usize = 16;
            let compile = time(&mut || {
                for _ in 0..COMPILES_PER_ROUND {
                    std::hint::black_box(solver.compile_plan(count, true));
                }
            });
            records.push(BenchRecord {
                backend: backend.to_string(),
                kernel: "plan_compile".to_string(),
                dim,
                batch: count,
                ns_per_op: compile * 1e9 / COMPILES_PER_ROUND as f64,
            });

            // Steady-state planned execution: the plan is compiled once outside the
            // timed region (a cache hit in serving terms).
            let plan = solver.plan_for_batch(count);
            let planned = time(&mut || {
                let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                let _ = solver
                    .solve_batch_with_plan(&plan, &problems, &mut r, &mut scratch)
                    .expect("well-formed problems solve");
            });
            records.push(BenchRecord {
                backend: backend.to_string(),
                kernel: "solve_batch_planned".to_string(),
                dim,
                batch: count,
                ns_per_op: planned * 1e9,
            });

            if backend == BackendKind::Packed {
                // Specialized-vs-generic A/B: same plan, word-count specialization
                // forced off, so the delta is pure monomorphization dividend.
                let generic_plan = solver.compile_plan(count, false);
                let generic = time(&mut || {
                    let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                    let _ = solver
                        .solve_batch_with_plan(&generic_plan, &problems, &mut r, &mut scratch)
                        .expect("well-formed problems solve");
                });
                records.push(BenchRecord {
                    backend: backend.to_string(),
                    kernel: "solve_batch_planned_generic".to_string(),
                    dim,
                    batch: count,
                    ns_per_op: generic * 1e9,
                });

                // Fused-vs-split resonator A/B: the same specialized plan with the
                // iteration FusionMode forced each way (decision-identical paths,
                // pure dataflow A/B). `solve_batch_fused`'s same-run normalizer is
                // the split time — recorded as its reference twin — so the geomean
                // guard gates the fused kernel's advantage directly; the split
                // cell is normalized by the reference backend's end-to-end solve.
                use cogsys_vsa::FusionMode;
                let fused_plan = solver.compile_plan_with_fusion(count, true, FusionMode::Fused);
                let split_plan = solver.compile_plan_with_fusion(count, true, FusionMode::Split);
                let fused = time(&mut || {
                    let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                    let _ = solver
                        .solve_batch_with_plan(&fused_plan, &problems, &mut r, &mut scratch)
                        .expect("well-formed problems solve");
                });
                let split = time(&mut || {
                    let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                    let _ = solver
                        .solve_batch_with_plan(&split_plan, &problems, &mut r, &mut scratch)
                        .expect("well-formed problems solve");
                });
                records.push(BenchRecord {
                    backend: backend.to_string(),
                    kernel: "solve_batch_fused".to_string(),
                    dim,
                    batch: count,
                    ns_per_op: fused * 1e9,
                });
                records.push(BenchRecord {
                    backend: "reference".to_string(),
                    kernel: "solve_batch_fused".to_string(),
                    dim,
                    batch: count,
                    ns_per_op: split * 1e9,
                });
                records.push(BenchRecord {
                    backend: backend.to_string(),
                    kernel: "solve_batch_split".to_string(),
                    dim,
                    batch: count,
                    ns_per_op: split * 1e9,
                });
                if let Some(ref_solve) = records
                    .iter()
                    .find(|r| r.matches("reference", "solve_batch", dim, count))
                    .map(|r| r.ns_per_op)
                {
                    records.push(BenchRecord {
                        backend: "reference".to_string(),
                        kernel: "solve_batch_split".to_string(),
                        dim,
                        batch: count,
                        ns_per_op: ref_solve,
                    });
                }

                // Per-stage wall clock of the best timed round (by total), the
                // cells the serving front end's per-stage service fit consumes.
                let mut run_timed = || {
                    let mut timings = StageNanos::default();
                    let mut r = cogsys_vsa::rng(seed ^ 0x5eed);
                    let _ = solver
                        .solve_batch_with_plan_timed(
                            &plan,
                            &problems,
                            &mut r,
                            &mut scratch,
                            &mut timings,
                        )
                        .expect("well-formed problems solve");
                    timings
                };
                run_timed();
                let mut best = run_timed();
                for _ in 0..2 {
                    let round = run_timed();
                    if round.total() < best.total() {
                        best = round;
                    }
                }
                for (stage, ns) in [
                    ("plan_stage_encode", best.encode),
                    ("plan_stage_decode", best.decode),
                    ("plan_stage_score", best.score),
                ] {
                    records.push(BenchRecord {
                        backend: backend.to_string(),
                        kernel: stage.to_string(),
                        dim,
                        batch: count,
                        ns_per_op: ns as f64,
                    });
                }
            }
        }
    }
    records
}

/// Queries per batch of the cleanup-index sweep.
pub const CLEANUP_INDEX_BENCH_QUERIES: usize = 32;

/// Hypervector dimensionality of the cleanup-index sweep (NVSA's per-block d).
pub const CLEANUP_INDEX_BENCH_DIM: usize = 1024;

/// Measures exact top-1 Hamming cleanup over **large** packed codebooks: the pruned
/// [`cogsys_vsa::CleanupIndex`] scan (recorded as `packed` / `cleanup_indexed`)
/// against the flat linear packed scan over the same rows (recorded as `reference` /
/// `cleanup_indexed`). Queries are codebook rows with ~2% of their bits flipped —
/// the near-clean regime production cleanup calls live in, where the sketch bound
/// abandons almost every non-winning row after a handful of words. Both paths run
/// scratch-reusing (`_into`) variants, so the ratio is pure scan cost.
///
/// Build time is excluded: the index is constructed once per codebook (serving
/// builds it at codebook-construction time) while the scan runs per batch.
pub fn cleanup_index_records(rows_list: &[usize], seed: u64) -> Vec<BenchRecord> {
    use cogsys_vsa::packed::{BitMatrix, CleanupIndex, CleanupScratch, PackedBackend};
    use rand::Rng;
    use std::time::Instant;

    let dim = CLEANUP_INDEX_BENCH_DIM;
    let backend = PackedBackend::new();
    let mut records = Vec::new();
    let mut rng = cogsys_vsa::rng(seed);
    for &rows in rows_list {
        let codebook = BitMatrix::random_bipolar(rows, dim, &mut rng);
        let index = CleanupIndex::build(&codebook);

        // Near-clean queries: gathered codebook rows, ~2% of dimensions flipped.
        let gather: Vec<usize> = (0..CLEANUP_INDEX_BENCH_QUERIES)
            .map(|_| rng.gen_range(0..rows))
            .collect();
        let mut queries = BitMatrix::default();
        codebook
            .gather_into(&gather, &mut queries)
            .expect("gather indices in range");
        let flips = (dim / 50).max(1);
        for q in 0..CLEANUP_INDEX_BENCH_QUERIES {
            for _ in 0..flips {
                queries.flip_bit(q, rng.gen_range(0..dim));
            }
        }

        let mut scratch = CleanupScratch::default();
        let mut indexed_out = Vec::new();
        let mut linear_out = Vec::new();

        let time = |f: &mut dyn FnMut()| {
            f();
            (0..5)
                .map(|_| {
                    let t = Instant::now();
                    f();
                    t.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };

        let indexed = time(&mut || {
            backend.cleanup_batch_indexed_into(&index, &queries, &mut scratch, &mut indexed_out);
        });
        records.push(BenchRecord {
            backend: "packed".to_string(),
            kernel: "cleanup_indexed".to_string(),
            dim,
            batch: rows,
            ns_per_op: indexed * 1e9,
        });

        let linear = time(&mut || {
            backend.cleanup_batch_packed_into(&codebook, &queries, &mut scratch, &mut linear_out);
        });
        records.push(BenchRecord {
            backend: "reference".to_string(),
            kernel: "cleanup_indexed".to_string(),
            dim,
            batch: rows,
            ns_per_op: linear * 1e9,
        });

        assert_eq!(
            indexed_out, linear_out,
            "pruned index diverged from the linear scan at {rows} rows"
        );
    }
    records
}

/// Hypervector dimensionality of the resonator-iteration microbench (the W=64
/// specialization — the widest production word count).
pub const RESONATE_ITER_BENCH_DIM: usize = 4096;

/// Query rows of the resonator-iteration microbench.
pub const RESONATE_ITER_BENCH_ROWS: usize = 256;

/// Factors of the resonator-iteration microbench (NVSA's RAVEN attribute arity).
pub const RESONATE_ITER_BENCH_FACTORS: usize = 3;

/// Measures one full packed resonator iteration — unbind, similarity, weighted
/// sign projection across all [`RESONATE_ITER_BENCH_FACTORS`] factors — with the
/// fused mega-kernel ([`cogsys_vsa::PackedBackend::resonate_step_fused_spec_into`],
/// recorded as `packed` / `resonate_iter`) against the split three-pass sequence
/// the pre-fusion resonator ran (full-batch unbind materialization, standalone
/// similarity GEMM, standalone projection sweep; recorded as `reference` /
/// `resonate_iter`). Both paths run the same `W=64` monomorphized kernels over
/// the same planes with no-op hooks, so the ratio is pure dataflow: the fused
/// kernel loads each codebook sign-plane word once per iteration where the split
/// sequence streams the batch planes three times.
pub fn resonate_iter_records(seed: u64) -> Vec<BenchRecord> {
    use cogsys_vsa::packed::{BitMatrix, PackedBackend, WordSpec};
    use std::time::Instant;

    let dim = RESONATE_ITER_BENCH_DIM;
    let rows = RESONATE_ITER_BENCH_ROWS;
    let factors = RESONATE_ITER_BENCH_FACTORS;
    let spec = WordSpec::for_dim(dim);
    let backend = PackedBackend::new();
    let mut rng = cogsys_vsa::rng(seed);

    let codebook = BitMatrix::random_bipolar(BENCH_CODEBOOK_ROWS, dim, &mut rng);
    let query = BitMatrix::random_bipolar(rows, dim, &mut rng);
    let mut estimates: Vec<BitMatrix> = (0..factors)
        .map(|_| BitMatrix::random_bipolar(rows, dim, &mut rng))
        .collect();

    let mut unbound_lanes = BitMatrix::default();
    let mut unbound_full = BitMatrix::zeros(rows, dim);
    let mut sims = HvMatrix::default();
    let mut acc = Vec::new();

    // Decision-identity sanity check before timing: one iteration through each
    // path from the same starting planes must produce bitwise-identical
    // estimates (the proptests pin this exhaustively; this catches drift in the
    // bench harness itself).
    {
        let mut fused_est = estimates.clone();
        let mut split_est = estimates.clone();
        for f in 0..factors {
            backend.resonate_step_fused_spec_into(
                spec,
                &codebook,
                &query,
                &mut fused_est,
                f,
                &mut unbound_lanes,
                &mut sims,
                &mut acc,
                |_, _, _| {},
            );
            let (head, rest) = split_est.split_at_mut(f);
            let (out, tail) = rest.split_first_mut().expect("factor index in range");
            unbound_full.copy_from(&query);
            for est in head.iter().chain(tail.iter()) {
                unbound_full
                    .xor_assign(est)
                    .expect("estimate planes share the query shape");
            }
            backend.similarity_matrix_packed_spec_into(spec, &codebook, &unbound_full, &mut sims);
            backend.project_signs_packed_spec_into(
                spec,
                &codebook,
                &sims,
                |_, _| {},
                &mut acc,
                out,
            );
        }
        assert_eq!(
            fused_est, split_est,
            "fused resonator step diverged from the split sequence"
        );
    }

    let time = |f: &mut dyn FnMut()| {
        f();
        (0..5)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let fused = time(&mut || {
        for f in 0..factors {
            backend.resonate_step_fused_spec_into(
                spec,
                &codebook,
                &query,
                &mut estimates,
                f,
                &mut unbound_lanes,
                &mut sims,
                &mut acc,
                |_, _, _| {},
            );
        }
    });

    let split = time(&mut || {
        for f in 0..factors {
            let (head, rest) = estimates.split_at_mut(f);
            let (out, tail) = rest.split_first_mut().expect("factor index in range");
            unbound_full.copy_from(&query);
            for est in head.iter().chain(tail.iter()) {
                unbound_full
                    .xor_assign(est)
                    .expect("estimate planes share the query shape");
            }
            backend.similarity_matrix_packed_spec_into(spec, &codebook, &unbound_full, &mut sims);
            backend.project_signs_packed_spec_into(
                spec,
                &codebook,
                &sims,
                |_, _| {},
                &mut acc,
                out,
            );
        }
    });

    vec![
        BenchRecord {
            backend: "packed".to_string(),
            kernel: "resonate_iter".to_string(),
            dim,
            batch: rows,
            ns_per_op: fused * 1e9,
        },
        BenchRecord {
            backend: "reference".to_string(),
            kernel: "resonate_iter".to_string(),
            dim,
            batch: rows,
            ns_per_op: split * 1e9,
        },
    ]
}

/// Parses a `BENCH_backends.json` payload produced by
/// [`backend_throughput_json`] back into records (a hand-rolled line scanner — the
/// build is offline, so no JSON crate is available). Unparseable lines are skipped.
pub fn parse_backend_throughput_json(text: &str) -> Vec<BenchRecord> {
    let field = |line: &str, key: &str| -> Option<String> {
        let start = line.find(&format!("\"{key}\":"))? + key.len() + 3;
        let rest = line[start..].trim_start();
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        let end = rest.find(['"', ',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().to_string())
    };
    text.lines()
        .filter(|line| line.contains("\"backend\":"))
        .filter_map(|line| {
            Some(BenchRecord {
                backend: field(line, "backend")?,
                kernel: field(line, "kernel")?,
                dim: field(line, "dim")?.parse().ok()?,
                batch: field(line, "batch")?.parse().ok()?,
                ns_per_op: field(line, "ns_per_op")?.parse().ok()?,
            })
        })
        .collect()
}

/// Compares fresh throughput records against a committed baseline and reports every
/// **packed-backend kernel** that slowed down by more than `factor` (e.g. 1.3 = 30%).
///
/// Two levels of noise-robustness make this safe as a hard CI gate on a shared
/// one-core container:
///
/// * each packed cell is normalised by the **same run's** reference-backend time for
///   the same `(kernel, dim, batch)` cell, so a machine-wide slowdown (busier
///   container, different host generation) cancels out — what is gated is the packed
///   kernel's advantage over the reference, not absolute nanoseconds;
/// * cells are aggregated into one **geometric mean per kernel** before comparing, so
///   single-cell timing jitter (which routinely reaches ±40% per cell) averages out
///   across the dim × batch sweep instead of tripping the gate.
///
/// Cells present in only one of the two record sets are ignored (new kernels, retired
/// ones), as are cells whose baseline reference twin is missing.
///
/// This is the CI bench-smoke regression guard: the `backend_throughput` binary exits
/// non-zero when this list is non-empty.
pub fn packed_bench_regressions(
    baseline: &[BenchRecord],
    fresh: &[BenchRecord],
    factor: f64,
) -> Vec<String> {
    let reference = |records: &[BenchRecord], probe: &BenchRecord| -> Option<f64> {
        records
            .iter()
            .find(|r| r.matches("reference", &probe.kernel, probe.dim, probe.batch))
            .map(|r| r.ns_per_op.max(1.0))
    };
    // kernel -> (sum of ln(old_norm), sum of ln(new_norm), cell count)
    let mut per_kernel: Vec<(String, f64, f64, usize)> = Vec::new();
    for old in baseline {
        if old.backend != "packed" {
            continue;
        }
        let Some(new) = fresh
            .iter()
            .find(|r| r.matches(&old.backend, &old.kernel, old.dim, old.batch))
        else {
            continue;
        };
        let (Some(old_ref), Some(new_ref)) = (reference(baseline, old), reference(fresh, new))
        else {
            continue;
        };
        let old_norm = (old.ns_per_op.max(1.0) / old_ref).ln();
        let new_norm = (new.ns_per_op.max(1.0) / new_ref).ln();
        match per_kernel.iter_mut().find(|(k, ..)| *k == old.kernel) {
            Some((_, o, n, c)) => {
                *o += old_norm;
                *n += new_norm;
                *c += 1;
            }
            None => per_kernel.push((old.kernel.clone(), old_norm, new_norm, 1)),
        }
    }
    per_kernel
        .into_iter()
        .filter_map(|(kernel, old_sum, new_sum, count)| {
            let old_geo = (old_sum / count as f64).exp();
            let new_geo = (new_sum / count as f64).exp();
            (new_geo > old_geo * factor).then(|| {
                format!(
                    "packed {kernel} ({count} cells): geomean {old_geo:.4}x reference -> \
                     {new_geo:.4}x reference ({:.2}x slower than baseline)",
                    new_geo / old_geo
                )
            })
        })
        .collect()
}

/// Renders throughput records as the machine-readable `BENCH_backends.json` payload:
/// one object per `(backend, kernel, dim, batch)` cell with its `ns_per_op`.
///
/// Written by `cargo run --release -p cogsys-bench --bin backend_throughput` and
/// consumed by the CI bench-smoke step so the perf trajectory is tracked across PRs.
pub fn backend_throughput_json(seed: u64, records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"cogsys-backend-throughput/v1\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!(
        "  \"codebook_rows\": {BENCH_CODEBOOK_ROWS},\n  \"records\": [\n"
    ));
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"kernel\": \"{}\", \"dim\": {}, \"batch\": {}, \"ns_per_op\": {:.1}}}{}\n",
            r.backend, r.kernel, r.dim, r.batch, r.ns_per_op, comma
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Builds the human-readable speedup table (each backend's wall-clock advantage over
/// the reference backend) from measured throughput records.
pub fn backend_throughput_table(records: &[BenchRecord]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Backend throughput: wall-clock speedup over the reference backend",
        &[
            "parallel bind x",
            "packed bind x",
            "parallel cleanup x",
            "packed cleanup x",
            "packed prepacked x",
        ],
    );
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for cell in records.iter().map(|r| (r.dim, r.batch)) {
        if !cells.contains(&cell) {
            cells.push(cell);
        }
    }
    let lookup = |backend: &str, kernel: &str, dim: usize, batch: usize| -> f64 {
        records
            .iter()
            .find(|r| r.matches(backend, kernel, dim, batch))
            .map_or(f64::NAN, |r| r.ns_per_op)
    };
    for (dim, batch) in cells {
        let speedup = |backend: &str, kernel: &str| -> f64 {
            // A missing measurement stays NaN rather than masquerading as a speedup.
            let denom = lookup(backend, kernel, dim, batch);
            if denom.is_nan() {
                return f64::NAN;
            }
            lookup("reference", kernel, dim, batch) / denom.max(1e-3)
        };
        table.push(
            format!("d={dim} batch={batch}"),
            vec![
                speedup("parallel", "bind_circular"),
                speedup("packed", "bind_circular"),
                speedup("parallel", "cleanup"),
                speedup("packed", "cleanup"),
                // Pre-packed BitMatrix queries on both sides: packed popcount
                // cleanup vs the reference default (unpack + f32 cleanup) — the
                // end-to-end packed pipeline's advantage, query packing excluded.
                speedup("packed", "cleanup_prepacked"),
            ],
        );
    }
    table
}

/// Backend throughput comparison: wall-clock speedup of the batched backends over the
/// reference backend on the two hot kernels — circular-convolution binding and
/// codebook cleanup — across dimensionalities and batch sizes.
///
/// This is the software analogue of the paper's array-level batching argument: the
/// same operations, re-shaped from one-vector-at-a-time calls into matrix batches,
/// with the speedup coming purely from the execution engine (row parallelism and
/// cached FFT plans for `parallel`, XOR/popcount sign planes for `packed`).
pub fn backend_throughput(dims: &[usize], batches: &[usize], seed: u64) -> ExperimentTable {
    backend_throughput_table(&backend_throughput_records(dims, batches, seed))
}

/// Maximum tolerated gap, in percentage points, between the scheduled and
/// measured decode share in [`plan_schedule_report`]. See that function's
/// share-contract notes for why the band is this wide.
pub const PLAN_DECODE_SHARE_TOLERANCE_PP: f64 = 15.0;

/// Maps a [`cogsys_workloads::PlanStage`] name onto the macro stage group the
/// solver's stage timer and the sweep's `plan_stage_*` cells report.
fn plan_stage_group(name: &str) -> &'static str {
    match name {
        "encode" => "encode",
        "resonate" | "polish" => "decode",
        _ => "score",
    }
}

/// Schedules the compiled solve plan's stage IR with adSCH and compares the
/// scheduled cost estimates against the measured `plan_stage_*` cells of a
/// backend-throughput sweep — the scheduler/simulator pair's first *live*
/// target (the static [`WorkloadSpec`] graphs are synthetic shapes; this graph
/// is lowered from the plan the serving engine actually executes).
///
/// For each [`SOLVER_BENCH_PROBLEMS`] batch size the packed solver's plan is
/// compiled, lowered via `SolvePlan::op_graph` onto the `cogsys-sim` kernel
/// vocabulary, and scheduled on the 16-cell CogSys array. Per-stage scheduled
/// cycles are folded into the encode/decode/score macro groups and tabulated
/// next to the measured stage wall clocks.
///
/// Returned mismatches (empty = valid) cover two contracts. *Structural*: the
/// graph must schedule without violations, every macro stage must receive
/// cycles, and — when the records contain the packed `plan_stage_*` anchor
/// cells for that shape — all three anchors must be present. *Share*: since the
/// resonate stage lowers iteration-aware (its kernel count is multiplied by the
/// configured iteration cap), the scheduled decode share is a real prediction
/// of the measured split, so decode must dominate both views and the two
/// decode shares must agree within [`PLAN_DECODE_SHARE_TOLERANCE_PP`]
/// percentage points. The band is deliberately generous: the encode stage
/// lowers as dense `O(d²)` circular-convolution kernels (overstating the
/// packed encoder), and the lowering charges the worst-case trip count while
/// the measured loop exits at convergence.
pub fn plan_schedule_report(records: &[BenchRecord]) -> (ExperimentTable, Vec<String>) {
    use cogsys_scheduler::{AdSchScheduler, Scheduler};

    let mut table = ExperimentTable::new(
        "Plan stages scheduled by adSCH vs measured stage wall clock",
        &[
            "sched cycles",
            "sched share %",
            "measured ms",
            "meas share %",
        ],
    );
    let mut mismatches = Vec::new();
    let mut rng = cogsys_vsa::rng(0xAD5C);
    let solver = NeurosymbolicSolver::new(
        SolverConfig::default().with_backend(BackendKind::Packed),
        &mut rng,
    );
    let dim = solver.config().vector_dim;
    let array = match ComputeArray::new(AcceleratorConfig::cogsys()) {
        Ok(array) => array,
        Err(e) => {
            mismatches.push(format!("compute array construction failed: {e}"));
            return (table, mismatches);
        }
    };
    for &batch in &SOLVER_BENCH_PROBLEMS {
        let plan = solver.plan_for_batch(batch);
        let graph = plan.op_graph(0);
        let schedule = match AdSchScheduler::new(Default::default()).schedule(&array, &graph) {
            Ok(schedule) => schedule,
            Err(e) => {
                mismatches.push(format!(
                    "batch={batch}: plan stages failed to schedule: {e}"
                ));
                continue;
            }
        };
        if let Some(violation) = schedule.find_violation(&graph) {
            mismatches.push(format!("batch={batch}: invalid schedule: {violation}"));
        }
        // Fold per-op durations into the three macro groups (ops are in stage
        // order: op id == stage index in the plan's linear chain).
        let mut cycles = [("encode", 0u64), ("decode", 0), ("score", 0)];
        for entry in &schedule.entries {
            let Some(stage) = plan.stages.get(entry.op) else {
                continue;
            };
            let group = plan_stage_group(stage.name());
            if let Some(slot) = cycles.iter_mut().find(|(g, _)| *g == group) {
                slot.1 += entry.duration();
            }
        }
        let total_cycles: u64 = cycles.iter().map(|(_, c)| *c).sum();
        let measured: Vec<Option<f64>> = cycles
            .iter()
            .map(|(group, _)| {
                let kernel = format!("plan_stage_{group}");
                records
                    .iter()
                    .find(|r| r.matches("packed", &kernel, dim, batch))
                    .map(|r| r.ns_per_op)
            })
            .collect();
        let measured_total: f64 = measured.iter().flatten().sum();
        for ((group, c), ns) in cycles.iter().zip(&measured) {
            if *c == 0 {
                mismatches.push(format!(
                    "batch={batch}: {group} stage received zero scheduled cycles"
                ));
            }
            table.push(
                format!("batch={batch} {group}"),
                vec![
                    *c as f64,
                    100.0 * *c as f64 / total_cycles.max(1) as f64,
                    ns.map_or(f64::NAN, |ns| ns / 1e6),
                    ns.map_or(f64::NAN, |ns| 100.0 * ns / measured_total.max(1.0)),
                ],
            );
        }
        if measured.iter().any(Option::is_none) && measured.iter().any(Option::is_some) {
            mismatches.push(format!(
                "batch={batch}: incomplete packed plan_stage_* anchor cells at d={dim}"
            ));
        }
        // Share contract (see the function docs): with iteration-aware resonate
        // lowering the scheduled decode share predicts the measured one.
        if total_cycles > 0 && measured.iter().all(Option::is_some) {
            let sched_share = |i: usize| 100.0 * cycles[i].1 as f64 / total_cycles as f64;
            let meas_share =
                |i: usize| 100.0 * measured[i].unwrap_or(f64::NAN) / measured_total.max(1.0);
            let (sched_decode, meas_decode) = (sched_share(1), meas_share(1));
            if sched_decode <= sched_share(0) || sched_decode <= sched_share(2) {
                mismatches.push(format!(
                    "batch={batch}: decode is not the dominant scheduled stage \
                     ({sched_decode:.1}% of scheduled cycles)"
                ));
            }
            if meas_decode <= meas_share(0) || meas_decode <= meas_share(2) {
                mismatches.push(format!(
                    "batch={batch}: decode is not the dominant measured stage \
                     ({meas_decode:.1}% of stage wall clock)"
                ));
            }
            if (sched_decode - meas_decode).abs() > PLAN_DECODE_SHARE_TOLERANCE_PP {
                mismatches.push(format!(
                    "batch={batch}: scheduled decode share {sched_decode:.1}% deviates from \
                     measured {meas_decode:.1}% by more than \
                     {PLAN_DECODE_SHARE_TOLERANCE_PP:.0} points"
                ));
            }
        }
    }
    (table, mismatches)
}

/// Fig. 4: end-to-end runtime breakdown, per-device latency, task-size scaling and
/// memory footprint of the four neurosymbolic workloads.
pub fn fig04_profiling() -> Vec<ExperimentTable> {
    let mut breakdown = ExperimentTable::new(
        "Fig. 4a: neuro vs symbolic runtime share on RTX GPU (%)",
        &["neuro %", "symbolic %"],
    );
    let mut latency = ExperimentTable::new(
        "Fig. 4b: end-to-end latency per task (s)",
        &["TX2", "NX", "RTX 2080Ti", "Coral TPU"],
    );
    let mut scaling = ExperimentTable::new(
        "Fig. 4c: runtime scaling with task size (s, RTX)",
        &["2x2", "3x3", "ratio"],
    );
    let mut memory = ExperimentTable::new(
        "Fig. 4d: memory footprint (MB)",
        &["neural", "symbolic codebook", "total"],
    );

    let rtx = DeviceModel::new(DeviceKind::RtxGpu);
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::new(kind);
        let neuro_s = rtx.sequence_seconds(&spec.neural_kernels(), Precision::Fp32);
        let sym_s = rtx.sequence_seconds(&spec.symbolic_kernels(), Precision::Fp32);
        let total = neuro_s + sym_s;
        breakdown.push(
            kind.to_string(),
            vec![100.0 * neuro_s / total, 100.0 * sym_s / total],
        );

        let kernels = spec.task_kernels();
        latency.push(
            kind.to_string(),
            [
                DeviceKind::JetsonTx2,
                DeviceKind::XavierNx,
                DeviceKind::RtxGpu,
                DeviceKind::CoralTpu,
            ]
            .iter()
            .map(|d| DeviceModel::new(*d).sequence_seconds(&kernels, Precision::Fp32))
            .collect(),
        );

        let small = WorkloadSpec::with_task_size(kind, TaskSize::Grid2x2);
        let small_s = rtx.sequence_seconds(&small.task_kernels(), Precision::Fp32);
        scaling.push(kind.to_string(), vec![small_s, total, total / small_s]);

        let mb = 1024.0 * 1024.0;
        memory.push(
            kind.to_string(),
            vec![
                spec.memory.neural_bytes as f64 / mb,
                spec.memory.symbolic_codebook_bytes as f64 / mb,
                spec.memory.total_original() as f64 / mb,
            ],
        );
    }
    vec![breakdown, latency, scaling, memory]
}

/// Fig. 5: roofline positions of the neural and symbolic stages on the RTX 2080Ti.
pub fn fig05_roofline() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 5: roofline on RTX 2080Ti",
        &["intensity (FLOP/B)", "attainable GFLOP/s", "memory-bound"],
    );
    let roofline = Roofline::rtx_2080ti();
    for kind in WorkloadKind::ALL {
        let spec = WorkloadSpec::new(kind);
        for (class, kernels) in [
            (KernelClass::Neural, spec.neural_kernels()),
            (KernelClass::Symbolic, spec.symbolic_kernels()),
        ] {
            let flops: u64 = kernels.iter().map(Kernel::flops).sum();
            let bytes: u64 = kernels
                .iter()
                .map(|k| {
                    // The GPU lowers circular convolution to GEMV, which inflates its
                    // memory traffic to O(d^2) (Sec. V-C).
                    if let Kernel::CircConv { dim, count } = k {
                        dataflow::gemv_circconv_bytes(*dim, 4) * *count as u64
                    } else {
                        k.min_bytes(Precision::Fp32)
                    }
                })
                .sum();
            let intensity = flops as f64 / bytes.max(1) as f64;
            table.push(
                format!("{kind} ({class})"),
                vec![
                    intensity,
                    roofline.attainable_gflops(intensity),
                    f64::from(u8::from(roofline.is_memory_bound(intensity))),
                ],
            );
        }
    }
    table
}

/// Fig. 6: breakdown of symbolic runtime by operation type, per reasoning attribute.
pub fn fig06_symbolic_ops() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 6: symbolic runtime share by operation (RTX, %)",
        &["circular conv + vec-vec mult %", "other ops %"],
    );
    let rtx = DeviceModel::new(DeviceKind::RtxGpu);
    let spec = WorkloadSpec::new(WorkloadKind::Nvsa);
    // The per-attribute symbolic work is proportional to that attribute's codebook size.
    for attr in ["Type", "Size", "Color", "Number", "Position"] {
        let kernels = spec.symbolic_kernels();
        let circ_s: f64 = kernels
            .iter()
            .filter(|k| matches!(k, Kernel::CircConv { .. } | Kernel::Similarity { .. }))
            .map(|k| rtx.kernel_seconds(k, Precision::Fp32))
            .sum();
        let other_s: f64 = kernels
            .iter()
            .filter(|k| matches!(k, Kernel::ElementWise { .. }))
            .map(|k| rtx.kernel_seconds(k, Precision::Fp32))
            .sum();
        let total = circ_s + other_s;
        table.push(attr, vec![100.0 * circ_s / total, 100.0 * other_s / total]);
    }
    table
}

/// Tab. II: GPU kernel-efficiency statistics (reference data reproduced from the paper).
pub fn tab02_kernel_stats() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Tab. II: kernel compute/memory behaviour on CPU/GPU",
        &[
            "compute %",
            "ALU %",
            "L1 thr %",
            "L2 thr %",
            "L1 hit %",
            "L2 hit %",
            "DRAM BW %",
        ],
    );
    for s in tab2_kernel_stats() {
        table.push(
            format!("{} ({})", s.kernel, s.class),
            vec![
                s.compute_throughput_pct,
                s.alu_utilization_pct,
                s.l1_throughput_pct,
                s.l2_throughput_pct,
                s.l1_hit_rate_pct,
                s.l2_hit_rate_pct,
                s.dram_bw_utilization_pct,
            ],
        );
    }
    table
}

/// Fig. 8 / Tab. III: memory-footprint and compute reduction of the factorization
/// strategy, plus its measured convergence behaviour.
pub fn fig08_factorization(seed: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 8: factorization vs expanded product codebook",
        &[
            "product codebook (KB)",
            "factored codebooks (KB)",
            "memory reduction x",
            "compute reduction x",
            "mean iterations",
        ],
    );
    let mut rng = cogsys_vsa::rng(seed);
    // NVSA-style attribute structure: 9, 9, 5, 6, 10 codevectors of dimension 1024.
    let set = CodebookSet::random(&[9, 9, 5, 6, 10], 1024, BindingOp::Hadamard, &mut rng);
    let report = AccuracyReport::evaluate(
        "nvsa-attributes",
        &set,
        &FactorizerConfig::default(),
        20,
        0.0,
        &mut rng,
    )
    .expect("codebooks and queries are well-formed");
    let cost = FactorizationCost::estimate(&set, Precision::Fp32, report.stats.mean_iterations());
    table.push(
        "NVSA attribute codebooks",
        vec![
            cost.product_codebook_bytes as f64 / 1024.0,
            cost.factored_codebook_bytes as f64 / 1024.0,
            cost.memory_reduction(),
            cost.compute_reduction(),
            report.stats.mean_iterations(),
        ],
    );
    table
}

/// Fig. 11: bubble-streaming dataflow vs TPU-style GEMV lowering — the worked d=3
/// example and the arithmetic-intensity comparison.
pub fn fig11_bs_dataflow() -> Vec<ExperimentTable> {
    let mut cycles = ExperimentTable::new(
        "Fig. 11a/b: three d=3 circular convolutions (cycles)",
        &["CogSys BS dataflow", "TPU-like GEMV"],
    );
    cycles.push(
        "3 CircConv, d=3",
        vec![
            dataflow::bubble_streaming_batch_cycles(3, 3, 3, 32) as f64,
            dataflow::tpu_gemv_circconv_cycles(3, 3, 3, 3) as f64,
        ],
    );

    let mut intensity = ExperimentTable::new(
        "Fig. 11c: arithmetic intensity of circular convolution (FLOP/byte)",
        &["BS dataflow (CogSys)", "GEMV (GPU/TPU)"],
    );
    for d in [128usize, 512, 2048, 20480] {
        intensity.push(
            format!("d={d}"),
            vec![
                dataflow::bs_arithmetic_intensity(d),
                dataflow::gemv_arithmetic_intensity(d),
            ],
        );
    }
    vec![cycles, intensity]
}

/// Fig. 12: spatial vs temporal mapping latency and bandwidth.
pub fn fig12_st_mapping() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 12: spatial vs temporal mapping (N=32 columns, M=512 PEs)",
        &[
            "spatial cycles",
            "temporal cycles",
            "spatial reads/T",
            "temporal reads/T",
            "temporal chosen",
        ],
    );
    for (label, d, k) in [
        ("NVSA d=1024 k=210", 1024usize, 210usize),
        ("LVRF d=1024 k=2575", 1024, 2575),
        ("MIMONet d=64 k=4096", 64, 4096),
        ("single conv d=16384", 16384, 1),
    ] {
        let m = dataflow::choose_mapping(d, k, 512, 32);
        table.push(
            label,
            vec![
                m.spatial_cycles as f64,
                m.temporal_cycles as f64,
                m.spatial_reads as f64,
                m.temporal_reads as f64,
                f64::from(u8::from(m.use_temporal)),
            ],
        );
    }
    table
}

/// Tab. V: reconfigurable nsPE array vs heterogeneous (split neural/symbolic) PEs.
pub fn tab05_pe_choice() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Tab. V: reconfigurable vs heterogeneous PE (same total PE budget)",
        &["relative area", "relative latency", "utilization"],
    );
    let system = CogSysSystem::default();
    let full = system
        .schedule_batch(true)
        .expect("default configuration is valid");

    // Heterogeneous PEs with the same chip budget: half the cells can only run neural
    // kernels, half only symbolic ones, so each kernel sees an 8-cell device and the
    // two halves still execute the dependent stages sequentially.
    let mut het_config = CogSysConfig::default();
    het_config.accelerator.geometry.cells = 8;
    het_config.scheduler.neural_cells = 8;
    het_config.scheduler.symbolic_cells = 8;
    let het = CogSysSystem::new(het_config)
        .schedule_batch(true)
        .expect("heterogeneous configuration is valid");

    table.push(
        "Reconfigurable nsPE (CogSys)",
        vec![1.0, 1.0, full.array_utilization()],
    );
    table.push(
        "Heterogeneous 8+8 cells",
        vec![
            1.96,
            het.makespan_cycles as f64 / full.makespan_cycles as f64,
            het.array_utilization() / 2.0,
        ],
    );
    table
}

/// Fig. 13d: the adSCH schedule of an NVSA segment vs sequential execution.
pub fn fig13_adsch() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 13: adSCH vs sequential scheduling (NVSA batch of 4 tasks)",
        &["makespan (Mcycles)", "array utilization"],
    );
    let system = CogSysSystem::default();
    let adsch = system.schedule_batch(true).expect("valid configuration");
    let seq = system.schedule_batch(false).expect("valid configuration");
    table.push(
        "adSCH (interleaved)",
        vec![
            adsch.makespan_cycles as f64 / 1e6,
            adsch.array_utilization(),
        ],
    );
    table.push(
        "sequential",
        vec![seq.makespan_cycles as f64 / 1e6, seq.array_utilization()],
    );
    table
}

/// Tab. VII: factorization accuracy across the 14 RAVEN scenarios (7 constellations +
/// 7 rule types).
pub fn tab07_factorization_accuracy(trials: usize, seed: u64) -> ExperimentTable {
    tab07_factorization_accuracy_with_backend(trials, seed, BackendKind::default())
}

/// [`tab07_factorization_accuracy`] on an explicit execution backend — used to verify
/// that the bit-packed backend reproduces the f32 backends' factorization accuracy.
pub fn tab07_factorization_accuracy_with_backend(
    trials: usize,
    seed: u64,
    backend: BackendKind,
) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        format!("Tab. VII: factorization accuracy (%) across RAVEN scenarios [{backend}]"),
        &["accuracy %"],
    );
    let mut rng = cogsys_vsa::rng(seed);
    let solver = NeurosymbolicSolver::new(SolverConfig::default().with_backend(backend), &mut rng);

    // Constellation scenarios: generate problems of each constellation and measure the
    // per-panel attribute-extraction accuracy.
    for constellation in Constellation::ALL {
        let generator = ProblemGenerator::new(DatasetKind::Raven);
        let mut exact = 0usize;
        let mut total = 0usize;
        for _ in 0..trials {
            let p = generator.generate_with_constellation(constellation, &mut rng);
            for panel in &p.context {
                let (decoded, _) = solver
                    .perceive_and_factorize(panel, &mut rng)
                    .expect("well-formed panel");
                total += 1;
                if decoded == *panel {
                    exact += 1;
                }
            }
        }
        table.push(
            constellation.to_string(),
            vec![100.0 * exact as f64 / total.max(1) as f64],
        );
    }

    // Rule scenarios: same measurement grouped by the rule type governing the problems.
    for kind in RuleKind::PGM {
        let generator = ProblemGenerator::new(DatasetKind::Pgm);
        let mut exact = 0usize;
        let mut total = 0usize;
        let mut seen = 0usize;
        while seen < trials {
            let p = generator.generate(&mut rng);
            if !p.rules.rules().iter().any(|r| r.kind == kind) {
                continue;
            }
            seen += 1;
            for panel in &p.context {
                let (decoded, _) = solver
                    .perceive_and_factorize(panel, &mut rng)
                    .expect("well-formed panel");
                total += 1;
                if decoded == *panel {
                    exact += 1;
                }
            }
        }
        table.push(
            kind.to_string(),
            vec![100.0 * exact as f64 / total.max(1) as f64],
        );
    }
    table
}

/// Tab. VIII: end-to-end reasoning accuracy of CogSys (factorization + stochasticity,
/// then + quantization) on RAVEN, I-RAVEN and PGM, plus the parameter-memory column.
///
/// Each dataset's problem set is solved as **one cross-problem batch** through the
/// batched engine, with one [`cogsys_workloads::SolverScratch`] reused across all
/// datasets and precisions — the same serving configuration `CogSysSystem::
/// run_reasoning` uses, so the table measures exactly the production path. (The
/// batched engine is decision-identical to the per-problem path, so the numbers are
/// unchanged from per-problem solving.)
pub fn tab08_reasoning_accuracy(problems: usize, seed: u64) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Tab. VIII: reasoning accuracy (%) and symbolic memory (MB)",
        &["FP32 accuracy %", "INT8 accuracy %", "codebook KB"],
    );
    let mut scratch = cogsys_workloads::SolverScratch::default();
    for dataset in [DatasetKind::Raven, DatasetKind::IRaven, DatasetKind::Pgm] {
        let mut rng = cogsys_vsa::rng(seed);
        let fp32 = NeurosymbolicSolver::new(SolverConfig::default(), &mut rng);
        let batch = ProblemGenerator::new(dataset).generate_batch(problems, &mut rng);
        let fp32_report = fp32
            .solve_batch_with(&batch, &mut rng, &mut scratch)
            .expect("valid problems");

        let mut rng2 = cogsys_vsa::rng(seed);
        let int8 = NeurosymbolicSolver::new(
            SolverConfig::default().with_precision(Precision::Int8),
            &mut rng2,
        );
        let int8_report = int8
            .solve_batch_with(&batch, &mut rng2, &mut scratch)
            .expect("valid problems");

        let codebook_kb = fp32.codebooks().footprint_bytes(4) as f64 / 1024.0;
        table.push(
            dataset.to_string(),
            vec![
                100.0 * fp32_report.accuracy(),
                100.0 * int8_report.accuracy(),
                codebook_kb,
            ],
        );
    }
    table
}

/// Tab. IX / Fig. 14: area and power per precision, plus the reconfigurability overhead.
pub fn tab09_precision() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Tab. IX: area / power vs precision (16x32x32 array + 512-PE SIMD, 28nm)",
        &[
            "array area mm2",
            "array power mW",
            "SIMD area mm2",
            "SIMD power mW",
            "total area mm2",
            "total power W",
            "reconfig overhead %",
        ],
    );
    for precision in Precision::all() {
        let model = EnergyModel::new(AcceleratorConfig::cogsys().with_precision(precision));
        let area = model.area();
        let power = model.power();
        table.push(
            precision.to_string(),
            vec![
                area.array_mm2,
                power.array_w * 1000.0,
                area.simd_mm2,
                power.simd_w * 1000.0,
                area.total_mm2(),
                power.total_w(),
                model.reconfigurability_overhead() * 100.0,
            ],
        );
    }
    table
}

/// Fig. 15: end-to-end runtime of NVSA-class reasoning across the five benchmarks,
/// normalised to CogSys.
pub fn fig15_runtime() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 15: normalized end-to-end runtime (CogSys = 1.0)",
        &["TX2", "NX", "Xeon", "RTX", "CogSys"],
    );
    for dataset in DatasetKind::ALL {
        let system = CogSysSystem::default();
        let cogsys = system
            .seconds_per_task()
            .expect("default configuration is valid");
        let row: Vec<f64> = [
            DeviceKind::JetsonTx2,
            DeviceKind::XavierNx,
            DeviceKind::XeonCpu,
            DeviceKind::RtxGpu,
        ]
        .iter()
        .map(|d| system.device_seconds_per_task(*d) / cogsys)
        .chain(std::iter::once(1.0))
        .collect();
        table.push(dataset.to_string(), row);
    }
    table
}

/// Fig. 16: energy per task and performance-per-watt, normalised to CogSys.
pub fn fig16_energy() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 16: energy per task (J) and normalized perf/W (CogSys = 1.0)",
        &["energy (J)", "norm perf/W"],
    );
    let system = CogSysSystem::default();
    let cogsys_seconds = system.seconds_per_task().expect("valid configuration");
    let schedule = system.schedule_batch(true).expect("valid configuration");
    let energy_model = EnergyModel::new(AcceleratorConfig::cogsys());
    let cogsys_energy = energy_model
        .energy_joules(schedule.makespan_cycles, schedule.array_utilization())
        / system.config().batch_tasks as f64;
    let cogsys_perf_per_watt = 1.0 / (cogsys_energy.max(1e-12));

    for device in [
        DeviceKind::JetsonTx2,
        DeviceKind::XavierNx,
        DeviceKind::XeonCpu,
        DeviceKind::RtxGpu,
        DeviceKind::V100,
        DeviceKind::A100,
    ] {
        let energy = system.device_joules_per_task(device);
        let perf_per_watt = 1.0 / energy.max(1e-12);
        table.push(
            device.to_string(),
            vec![energy, perf_per_watt / cogsys_perf_per_watt],
        );
    }
    table.push("CogSys", vec![cogsys_energy, 1.0]);
    let _ = cogsys_seconds;
    table
}

/// Fig. 17: circular-convolution speedup of CogSys over the TPU-like systolic array and
/// the GPU, over a grid of vector dimensions and batch sizes.
pub fn fig17_circconv_speedup() -> Vec<ExperimentTable> {
    let mut vs_tpu = ExperimentTable::new(
        "Fig. 17a: CircConv speedup vs TPU-like systolic array",
        &["k=1", "k=10", "k=100", "k=1000", "k=10000"],
    );
    let mut vs_gpu = ExperimentTable::new(
        "Fig. 17b: CircConv speedup vs RTX GPU",
        &["k=1", "k=10", "k=100", "k=1000", "k=10000"],
    );
    let cogsys = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid config");
    let gpu = DeviceModel::new(DeviceKind::RtxGpu);
    let freq = 0.8e9;
    for d in [128usize, 256, 512, 1024, 2048] {
        let mut tpu_row = Vec::new();
        let mut gpu_row = Vec::new();
        for k in [1usize, 10, 100, 1000, 10000] {
            let kernel = Kernel::CircConv { dim: d, count: k };
            let cogsys_cycles = cogsys.execute(&kernel, 16).expect("valid kernel").cycles;
            let tpu_cycles = dataflow::tpu_gemv_circconv_cycles(d, 128, 128, k);
            tpu_row.push(tpu_cycles as f64 / cogsys_cycles.max(1) as f64);
            let gpu_seconds = gpu.kernel_seconds(&kernel, Precision::Fp32);
            let cogsys_seconds = cogsys_cycles as f64 / freq;
            gpu_row.push(gpu_seconds / cogsys_seconds.max(1e-12));
        }
        vs_tpu.push(format!("d={d}"), tpu_row);
        vs_gpu.push(format!("d={d}"), gpu_row);
    }
    vec![vs_tpu, vs_gpu]
}

/// Fig. 18: neural-only, symbolic-only and end-to-end runtime on TPU-, MTIA- and
/// Gemmini-like accelerators vs CogSys (normalised to CogSys).
pub fn fig18_accelerators() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 18: normalized runtime on ML accelerators (CogSys = 1.0)",
        &[
            "neuro TPU-like",
            "neuro MTIA-like",
            "neuro Gemmini-like",
            "symbolic TPU-like",
            "symbolic MTIA-like",
            "symbolic Gemmini-like",
            "end2end TPU-like",
            "end2end MTIA-like",
            "end2end Gemmini-like",
        ],
    );
    let cogsys = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid config");
    let baselines = [
        ComputeArray::new(AcceleratorConfig::tpu_like()).expect("valid config"),
        ComputeArray::new(AcceleratorConfig::mtia_like()).expect("valid config"),
        ComputeArray::new(AcceleratorConfig::gemmini_like()).expect("valid config"),
    ];
    for kind in [
        WorkloadKind::Nvsa,
        WorkloadKind::Lvrf,
        WorkloadKind::Mimonet,
    ] {
        let spec = WorkloadSpec::new(kind);
        let cost = |array: &ComputeArray, kernels: &[Kernel]| -> f64 {
            kernels
                .iter()
                .map(|k| {
                    array
                        .execute(k, array.config().geometry.cells)
                        .expect("valid kernel")
                        .cycles as f64
                })
                .sum()
        };
        let neural = spec.neural_kernels();
        let symbolic = spec.symbolic_kernels();
        let all = spec.task_kernels();
        let cog = (
            cost(&cogsys, &neural),
            cost(&cogsys, &symbolic),
            cost(&cogsys, &all),
        );
        let mut row = Vec::new();
        for stage in 0..3 {
            for baseline in &baselines {
                let (value, reference) = match stage {
                    0 => (cost(baseline, &neural), cog.0),
                    1 => (cost(baseline, &symbolic), cog.1),
                    _ => (cost(baseline, &all), cog.2),
                };
                row.push(value / reference.max(1.0));
            }
        }
        table.push(kind.to_string(), row);
    }
    table
}

/// Fig. 19: hardware-technique ablation (normalised runtime, CogSys = 1.0).
pub fn fig19_ablation() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Fig. 19: ablation of adSCH / scalable array / reconfigurable nsPE",
        &["full", "w/o adSCH", "w/o adSCH+SO", "w/o adSCH+SO+nsPE"],
    );
    for dataset in [DatasetKind::Raven, DatasetKind::IRaven, DatasetKind::Pgm] {
        let system = CogSysSystem::default();
        let row: Vec<f64> = AblationVariant::ALL
            .iter()
            .map(|v| {
                system
                    .ablation_relative_runtime(*v)
                    .expect("valid configuration")
            })
            .collect();
        table.push(dataset.to_string(), row);
    }
    table
}

/// Tab. X: necessity of co-design — NVSA on Xavier NX, CogSys algorithm on NX, and the
/// full CogSys algorithm + accelerator, as normalised runtime (NVSA @ NX = 100%).
pub fn tab10_codesign() -> ExperimentTable {
    let mut table = ExperimentTable::new(
        "Tab. X: co-design ablation (normalized runtime %, NVSA @ Xavier NX = 100%)",
        &[
            "NVSA @ NX",
            "CogSys algo @ NX",
            "CogSys algo @ CogSys accel",
        ],
    );
    let system = CogSysSystem::default();
    let spec = system.workload_spec();
    let nx = DeviceModel::new(DeviceKind::XavierNx);

    // Baseline: the original workload, whose symbolic stage searches the full product
    // codebook (modelled as a similarity search over the whole combination space).
    let mut baseline_kernels = spec.neural_kernels();
    baseline_kernels.extend(spec.symbolic_kernels());
    baseline_kernels.push(Kernel::Similarity {
        rows: 9 * 9 * 5 * 6 * 10,
        dim: spec.vector_dim,
        count: spec.similarity_count,
    });
    let nvsa_nx = nx.sequence_seconds(&baseline_kernels, Precision::Fp32);

    // CogSys algorithm (factorized codebooks) on the same NX.
    let algo_nx = nx.sequence_seconds(&spec.task_kernels(), Precision::Fp32);

    // Full co-design.
    let cogsys = system.seconds_per_task().expect("valid configuration");

    for dataset in DatasetKind::ALL {
        table.push(
            dataset.to_string(),
            vec![100.0, 100.0 * algo_nx / nvsa_nx, 100.0 * cogsys / nvsa_nx],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Manual microbenchmark for the fused-vs-split resonator iteration (the
    /// records also embed a full bitwise identity check). Ignored by default —
    /// it is a timing probe, not an assertion; run it release with
    /// `cargo test --release -p cogsys resonate_iter -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn resonate_iter_microbench() {
        for record in resonate_iter_records(7) {
            println!(
                "{}/{} d={} rows={}: {:.3} ms/iter",
                record.backend,
                record.kernel,
                record.dim,
                record.batch,
                record.ns_per_op / 1e6
            );
        }
    }

    #[test]
    fn experiment_table_accessors_and_display() {
        let mut t = ExperimentTable::new("demo", &["a", "b"]);
        t.push("row1", vec![1.0, 2.0]);
        t.push("row2", vec![3.0, 40000.0]);
        assert_eq!(t.value("row1", "b"), Some(2.0));
        assert_eq!(t.value("row1", "c"), None);
        assert_eq!(t.value("rowX", "a"), None);
        let s = t.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("row2"));
    }

    #[test]
    fn bench_json_and_speedup_table_are_consistent() {
        let records = vec![
            BenchRecord {
                backend: "reference".into(),
                kernel: "cleanup".into(),
                dim: 1024,
                batch: 256,
                ns_per_op: 8000.0,
            },
            BenchRecord {
                backend: "parallel".into(),
                kernel: "cleanup".into(),
                dim: 1024,
                batch: 256,
                ns_per_op: 2000.0,
            },
            BenchRecord {
                backend: "packed".into(),
                kernel: "cleanup".into(),
                dim: 1024,
                batch: 256,
                ns_per_op: 400.0,
            },
        ];
        let table = backend_throughput_table(&records);
        assert_eq!(
            table.value("d=1024 batch=256", "parallel cleanup x"),
            Some(4.0)
        );
        assert_eq!(
            table.value("d=1024 batch=256", "packed cleanup x"),
            Some(20.0)
        );
        let json = backend_throughput_json(7, &records);
        assert!(json.contains("\"schema\": \"cogsys-backend-throughput/v1\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains(
            "{\"backend\": \"packed\", \"kernel\": \"cleanup\", \"dim\": 1024, \"batch\": 256, \"ns_per_op\": 400.0}"
        ));
        // One record per line, valid trailing-comma structure (last record bare).
        assert_eq!(json.matches("\"backend\":").count(), 3);
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let records = vec![
            BenchRecord {
                backend: "packed".into(),
                kernel: "cleanup_prepacked".into(),
                dim: 1024,
                batch: 256,
                ns_per_op: 123456.0,
            },
            BenchRecord {
                backend: "parallel".into(),
                kernel: "bind_circular".into(),
                dim: 256,
                batch: 1,
                ns_per_op: 900.5,
            },
        ];
        let parsed = parse_backend_throughput_json(&backend_throughput_json(7, &records));
        assert_eq!(parsed, records);
        // Garbage lines are skipped, not fatal.
        assert!(parse_backend_throughput_json("{\"backend\": oops\n").is_empty());
        assert!(parse_backend_throughput_json("not json at all").is_empty());
    }

    #[test]
    fn bench_guard_flags_only_real_packed_regressions() {
        let rec = |backend: &str, kernel: &str, dim: usize, ns: f64| BenchRecord {
            backend: backend.into(),
            kernel: kernel.into(),
            dim,
            batch: 256,
            ns_per_op: ns,
        };
        let baseline = vec![
            rec("packed", "cleanup", 256, 100_000.0),
            rec("reference", "cleanup", 256, 1_000_000.0),
            rec("packed", "cleanup", 1024, 400_000.0),
            rec("reference", "cleanup", 1024, 4_000_000.0),
            rec("packed", "cleanup_prepacked", 256, 50_000.0),
            rec("reference", "cleanup_prepacked", 256, 1_000_000.0),
            rec("parallel", "cleanup", 256, 300_000.0), // dense backend: never gated
        ];

        // A machine-wide 2x slowdown (packed and reference both doubled) cancels out.
        let uniformly_slower: Vec<BenchRecord> = baseline
            .iter()
            .map(|r| rec(&r.backend, &r.kernel, r.dim, r.ns_per_op * 2.0))
            .collect();
        assert!(packed_bench_regressions(&baseline, &uniformly_slower, 1.3).is_empty());

        // Opposite single-cell jitter (one cell 1.4x up, its sibling 1.4x down)
        // cancels in the per-kernel geometric mean instead of tripping the gate.
        let jitter = vec![
            rec("packed", "cleanup", 256, 140_000.0),
            rec("reference", "cleanup", 256, 1_000_000.0),
            rec("packed", "cleanup", 1024, 285_000.0),
            rec("reference", "cleanup", 1024, 4_000_000.0),
            rec("packed", "cleanup_prepacked", 256, 50_000.0),
            rec("reference", "cleanup_prepacked", 256, 1_000_000.0),
        ];
        assert!(packed_bench_regressions(&baseline, &jitter, 1.3).is_empty());

        // A packed-only slowdown of one kernel is flagged, and names the kernel.
        let regressed = vec![
            rec("packed", "cleanup", 256, 100_000.0),
            rec("reference", "cleanup", 256, 1_000_000.0),
            rec("packed", "cleanup", 1024, 400_000.0),
            rec("reference", "cleanup", 1024, 4_000_000.0),
            rec("packed", "cleanup_prepacked", 256, 200_000.0), // 4x slower
            rec("reference", "cleanup_prepacked", 256, 1_000_000.0),
        ];
        let flagged = packed_bench_regressions(&baseline, &regressed, 1.3);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert!(flagged[0].contains("cleanup_prepacked"));
        assert!(flagged[0].contains("x reference"));

        // Missing cells (kernel added or retired) are ignored entirely.
        assert!(packed_bench_regressions(&baseline, &[], 1.3).is_empty());
    }

    #[test]
    fn plan_schedule_report_schedules_real_stages_and_anchors_measured_cells() {
        let dim = SolverConfig::default().vector_dim;
        let cell = |kernel: &str, batch: usize, ns: f64| BenchRecord {
            backend: "packed".into(),
            kernel: kernel.into(),
            dim,
            batch,
            ns_per_op: ns,
        };
        let mut records = Vec::new();
        for &batch in &SOLVER_BENCH_PROBLEMS {
            records.push(cell("plan_stage_encode", batch, 1e6));
            records.push(cell("plan_stage_decode", batch, 8e6));
            records.push(cell("plan_stage_score", batch, 1e6));
        }
        let (table, mismatches) = plan_schedule_report(&records);
        assert!(mismatches.is_empty(), "{mismatches:?}");
        assert_eq!(table.rows.len(), 3 * SOLVER_BENCH_PROBLEMS.len());
        for (label, values) in &table.rows {
            assert!(values[0] > 0.0, "{label}: no scheduled cycles");
            assert!(values[2].is_finite(), "{label}: anchor cell not resolved");
        }
        let decode_share = table.value("batch=8 decode", "meas share %").unwrap();
        assert!(
            (decode_share - 80.0).abs() < 1.0,
            "decode share {decode_share}"
        );

        // A sweep that recorded only some anchor cells is flagged, not papered over.
        let partial: Vec<BenchRecord> = records
            .iter()
            .filter(|r| r.kernel != "plan_stage_score")
            .cloned()
            .collect();
        let (_, flagged) = plan_schedule_report(&partial);
        assert!(
            flagged.iter().any(|m| m.contains("incomplete")),
            "{flagged:?}"
        );
    }

    #[test]
    fn tab07_packed_accuracy_matches_dense_backends() {
        // The acceptance gate for the packed backend: factorization accuracy on the
        // Tab. VII workload must be unchanged relative to the f32 backends.
        let packed = tab07_factorization_accuracy_with_backend(1, 11, BackendKind::Packed);
        let dense = tab07_factorization_accuracy_with_backend(1, 11, BackendKind::Parallel);
        assert_eq!(packed.rows.len(), dense.rows.len());
        for ((label, p), (_, d)) in packed.rows.iter().zip(&dense.rows) {
            assert!(
                (p[0] - d[0]).abs() <= 15.0,
                "{label}: packed {} vs dense {}",
                p[0],
                d[0]
            );
            assert!(p[0] >= 75.0, "{label}: packed accuracy {}", p[0]);
        }
    }

    #[test]
    fn fig04_symbolic_dominates_runtime_for_vsa_workloads() {
        let tables = fig04_profiling();
        assert_eq!(tables.len(), 4);
        let breakdown = &tables[0];
        // NVSA / LVRF / PrAE: symbolic runtime share dominates on the GPU (Fig. 4a).
        for workload in ["NVSA", "LVRF", "PrAE"] {
            let sym = breakdown.value(workload, "symbolic %").unwrap();
            assert!(sym > 50.0, "{workload}: symbolic share {sym}");
        }
        // Fig. 4b: TX2 is slower than the RTX GPU on every workload.
        let latency = &tables[1];
        for (label, values) in &latency.rows {
            assert!(values[0] > values[2], "{label}: TX2 not slower than RTX");
        }
        // Fig. 4c: 3x3 tasks are several times slower than 2x2 tasks.
        let scaling = &tables[2];
        for (_, values) in &scaling.rows {
            assert!(values[2] > 1.5 && values[2] < 20.0);
        }
        // Fig. 4d: totals in the tens of MB.
        let memory = &tables[3];
        for (_, values) in &memory.rows {
            assert!(values[2] > 20.0 && values[2] < 100.0);
        }
    }

    #[test]
    fn fig05_symbolic_is_memory_bound_neural_is_not() {
        let table = fig05_roofline();
        for kind in ["NVSA", "LVRF", "MIMONet", "PrAE"] {
            assert_eq!(
                table.value(&format!("{kind} (symbolic)"), "memory-bound"),
                Some(1.0),
                "{kind} symbolic should be memory-bound"
            );
            assert_eq!(
                table.value(&format!("{kind} (neural)"), "memory-bound"),
                Some(0.0),
                "{kind} neural should be compute-bound"
            );
        }
    }

    #[test]
    fn fig06_circconv_dominates_symbolic_runtime() {
        let table = fig06_symbolic_ops();
        for (_, values) in &table.rows {
            assert!(values[0] > 50.0);
            assert!((values[0] + values[1] - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn tab02_has_four_kernel_rows() {
        let table = tab02_kernel_stats();
        assert_eq!(table.rows.len(), 4);
        assert_eq!(table.value("sgemm_nn (neural)", "compute %"), Some(95.1));
    }

    #[test]
    fn fig08_reductions_match_paper_shape() {
        let table = fig08_factorization(11);
        let (_, values) = &table.rows[0];
        // Memory reduction > 50x (paper: 71.4x). The compute reduction depends on how
        // many iterations the 5-factor resonator needs; it must at least not regress
        // relative to the brute-force search (paper reports 4.1x end-to-end runtime
        // reduction, dominated by the memory savings).
        assert!(values[2] > 50.0, "memory reduction {}", values[2]);
        assert!(values[3] > 1.0, "compute reduction {}", values[3]);
        assert!(values[4] >= 1.0 && values[4] <= 200.0);
    }

    #[test]
    fn fig11_and_fig12_shapes() {
        let tables = fig11_bs_dataflow();
        let cycles = &tables[0];
        let (_, v) = &cycles.rows[0];
        assert!(v[1] > v[0], "TPU should need more cycles than CogSys");
        let intensity = &tables[1];
        for (_, v) in &intensity.rows {
            assert!(v[0] > v[1]);
        }
        let st = fig12_st_mapping();
        assert_eq!(st.value("NVSA d=1024 k=210", "temporal chosen"), Some(1.0));
        assert_eq!(
            st.value("single conv d=16384", "temporal chosen"),
            Some(0.0)
        );
    }

    #[test]
    fn tab05_and_fig13_show_scheduling_benefit() {
        let pe = tab05_pe_choice();
        let het_latency = pe
            .value("Heterogeneous 8+8 cells", "relative latency")
            .unwrap();
        assert!(het_latency > 1.0);
        let adsch = fig13_adsch();
        let interleaved = adsch
            .value("adSCH (interleaved)", "makespan (Mcycles)")
            .unwrap();
        let sequential = adsch.value("sequential", "makespan (Mcycles)").unwrap();
        assert!(interleaved < sequential);
    }

    #[test]
    fn tab09_precision_matches_anchors() {
        let table = tab09_precision();
        assert_eq!(table.value("INT8", "array area mm2"), Some(3.8));
        assert_eq!(table.value("FP32", "array area mm2"), Some(28.9));
        assert_eq!(table.value("FP8", "reconfig overhead %"), Some(4.8));
        let int8_total = table.value("INT8", "total area mm2").unwrap();
        assert!((int8_total - 4.0).abs() < 0.4);
    }

    #[test]
    fn fig15_and_fig16_orderings() {
        let runtime = fig15_runtime();
        for (label, values) in &runtime.rows {
            // TX2 > NX > Xeon > RTX > CogSys (= 1.0).
            assert!(values[0] > values[1], "{label}");
            assert!(values[1] > values[2], "{label}");
            assert!(values[2] > values[3], "{label}");
            assert!(values[3] > 1.0, "{label}");
        }
        let energy = fig16_energy();
        let cogsys_energy = energy.value("CogSys", "energy (J)").unwrap();
        let rtx_energy = energy.value("RTX 2080Ti", "energy (J)").unwrap();
        assert!(rtx_energy / cogsys_energy > 50.0);
        // A100 is more efficient than the RTX but still far from CogSys.
        let a100 = energy.value("A100", "norm perf/W").unwrap();
        assert!(a100 < 1.0);
    }

    #[test]
    fn fig17_speedups_grow_with_batch_and_stay_bounded() {
        let tables = fig17_circconv_speedup();
        let vs_tpu = &tables[0];
        let d1024_k1000 = vs_tpu.value("d=1024", "k=1000").unwrap();
        let d1024_k1 = vs_tpu.value("d=1024", "k=1").unwrap();
        assert!(d1024_k1000 > d1024_k1);
        assert!(d1024_k1000 > 10.0 && d1024_k1000 < 1000.0);
        let vs_gpu = &tables[1];
        let gpu_speedup = vs_gpu.value("d=2048", "k=1000").unwrap();
        assert!(gpu_speedup > 1.0, "gpu speedup {gpu_speedup}");
    }

    #[test]
    fn fig18_symbolic_gap_exceeds_neural_gap() {
        let table = fig18_accelerators();
        for (label, values) in &table.rows {
            let neuro_tpu = values[0];
            let symbolic_tpu = values[3];
            let end2end_tpu = values[6];
            assert!(
                symbolic_tpu > neuro_tpu,
                "{label}: symbolic gap should exceed neural gap"
            );
            assert!(end2end_tpu > 1.0, "{label}");
            // Neural performance is comparable (within ~3x) across accelerators.
            assert!(neuro_tpu < 3.0, "{label}: neuro {neuro_tpu}");
        }
    }

    #[test]
    fn fig19_and_tab10_ablations() {
        let ablation = fig19_ablation();
        for (label, values) in &ablation.rows {
            assert!((values[0] - 1.0).abs() < 1e-9);
            assert!(values[1] >= values[0], "{label}");
            assert!(values[2] >= values[1] * 0.99, "{label}");
            assert!(values[3] > values[2], "{label}");
        }
        let codesign = tab10_codesign();
        for (label, values) in &codesign.rows {
            assert!(values[1] < 100.0, "{label}: algorithm-only should help");
            assert!(
                values[2] < 10.0,
                "{label}: co-design should be <10% of baseline"
            );
        }
    }
}
