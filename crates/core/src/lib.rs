//! # cogsys — the end-to-end CogSys neurosymbolic cognition system
//!
//! This crate ties the reproduction together: the algorithm level
//! (`cogsys-vsa` + `cogsys-factorizer`), the hardware level (`cogsys-sim`), the system
//! level (`cogsys-scheduler`), the workload models (`cogsys-workloads`) and the
//! synthetic benchmarks (`cogsys-datasets`) are combined into a single
//! [`CogSysSystem`] that can
//!
//! * solve reasoning problems functionally and report accuracy (Tab. VII/VIII),
//! * estimate end-to-end latency, utilisation and energy of the CogSys accelerator and
//!   of every baseline device (Fig. 15/16/18, Tab. X),
//! * run the hardware ablations (Fig. 19) and precision sweeps (Tab. IX).
//!
//! The [`experiments`] module contains one entry point per table/figure of the paper's
//! evaluation; the `cogsys-bench` crate's binaries are thin wrappers around them.
//!
//! # Quickstart
//!
//! ```rust
//! use cogsys::{CogSysConfig, CogSysSystem};
//! use cogsys_datasets::DatasetKind;
//!
//! let system = CogSysSystem::new(CogSysConfig::default());
//! // Accuracy: solve a few synthetic RAVEN problems end to end.
//! let outcome = system.run_reasoning(DatasetKind::Raven, 2, 42).unwrap();
//! assert_eq!(outcome.report.problems, 2);
//! // Performance: per-task latency on the simulated accelerator is well under the
//! // 0.3 s real-time bound the paper claims.
//! assert!(outcome.seconds_per_task < 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod system;

pub use system::{AblationVariant, CogSysConfig, CogSysSystem, ReasoningOutcome};
