//! The top-level CogSys system: algorithm + accelerator + scheduler.

use cogsys_datasets::{DatasetKind, ProblemGenerator};
use cogsys_scheduler::{AdSchConfig, AdSchScheduler, Schedule, Scheduler, SequentialScheduler};
use cogsys_sim::{AcceleratorConfig, ComputeArray, DeviceKind, DeviceModel, EnergyModel, SimError};
use cogsys_vsa::{BackendKind, Precision};
use cogsys_workloads::{
    NeurosymbolicSolver, SolverConfig, SolverReport, TaskSize, WorkloadKind, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

/// Hardware-ablation variants used by Fig. 19 and Tab. X.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AblationVariant {
    /// The full CogSys design.
    Full,
    /// Without the adaptive scheduler (sequential whole-array execution).
    WithoutAdSch,
    /// Without the scale-out capability (and without adSCH).
    WithoutScaleOut,
    /// Without the reconfigurable nsPE (symbolic kernels fall back to GEMV lowering),
    /// without scale-out, and without adSCH — essentially a plain systolic array.
    WithoutNsPe,
}

impl AblationVariant {
    /// All variants in Fig. 19 order (progressively removing techniques).
    pub const ALL: [AblationVariant; 4] = [
        AblationVariant::Full,
        AblationVariant::WithoutAdSch,
        AblationVariant::WithoutScaleOut,
        AblationVariant::WithoutNsPe,
    ];
}

/// Configuration of a [`CogSysSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CogSysConfig {
    /// Accelerator (hardware) configuration.
    pub accelerator: AcceleratorConfig,
    /// Scheduler configuration.
    pub scheduler: AdSchConfig,
    /// Functional solver configuration (dimensionality, factorizer, noise, precision).
    pub solver: SolverConfig,
    /// Which workload's kernel structure is used for performance estimation.
    pub workload: WorkloadKind,
    /// RPM task size.
    pub task_size: TaskSize,
    /// How many reasoning tasks are batched together (adSCH interleaves across them).
    pub batch_tasks: usize,
}

impl Default for CogSysConfig {
    fn default() -> Self {
        Self {
            accelerator: AcceleratorConfig::cogsys(),
            scheduler: AdSchConfig::default(),
            solver: SolverConfig::default(),
            workload: WorkloadKind::Nvsa,
            task_size: TaskSize::Grid3x3,
            batch_tasks: 4,
        }
    }
}

impl CogSysConfig {
    /// Applies one of the Fig. 19 hardware ablations.
    pub fn with_ablation(mut self, variant: AblationVariant) -> Self {
        match variant {
            AblationVariant::Full => {}
            AblationVariant::WithoutAdSch => {}
            AblationVariant::WithoutScaleOut => {
                self.accelerator.scale_out_enabled = false;
            }
            AblationVariant::WithoutNsPe => {
                self.accelerator.scale_out_enabled = false;
                self.accelerator.reconfigurable_pe = false;
            }
        }
        self
    }

    /// Sets the datapath and solver precision together (Tab. VIII/IX sweeps).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.accelerator = self.accelerator.with_precision(precision);
        self.solver = self.solver.with_precision(precision);
        self
    }

    /// Selects the batched VSA execution backend for the functional pipeline
    /// (encoding, factorization, answer scoring), end to end.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.solver = self.solver.with_backend(backend);
        self
    }

    /// The configured execution backend.
    pub fn backend(&self) -> BackendKind {
        self.solver.backend
    }
}

/// Result of an end-to-end reasoning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReasoningOutcome {
    /// Functional accuracy report (reasoning + factorization accuracy).
    pub report: SolverReport,
    /// Accelerator latency per reasoning task, in seconds.
    pub seconds_per_task: f64,
    /// Accelerator energy per reasoning task, in joules.
    pub joules_per_task: f64,
    /// Average compute-array utilisation of the schedule.
    pub utilization: f64,
}

/// The end-to-end CogSys system.
#[derive(Debug, Clone)]
pub struct CogSysSystem {
    config: CogSysConfig,
}

impl CogSysSystem {
    /// Creates a system from a configuration.
    pub fn new(config: CogSysConfig) -> Self {
        Self { config }
    }

    /// The system's configuration.
    pub fn config(&self) -> &CogSysConfig {
        &self.config
    }

    /// The workload specification used for performance estimation.
    pub fn workload_spec(&self) -> WorkloadSpec {
        WorkloadSpec::with_task_size(self.config.workload, self.config.task_size)
    }

    /// Builds the simulated compute array.
    ///
    /// # Errors
    /// Returns [`SimError`] if the accelerator configuration is invalid.
    pub fn compute_array(&self) -> Result<ComputeArray, SimError> {
        ComputeArray::new(self.config.accelerator.clone())
    }

    /// Schedules `batch_tasks` reasoning tasks of the configured workload on the
    /// accelerator, with or without the adaptive scheduler.
    ///
    /// # Errors
    /// Returns [`SimError`] for invalid configurations (scheduler errors over valid
    /// generated graphs cannot occur).
    pub fn schedule_batch(&self, use_adsch: bool) -> Result<Schedule, SimError> {
        let array = self.compute_array()?;
        let graph = self
            .workload_spec()
            .operation_graph(self.config.batch_tasks);
        let schedule = if use_adsch {
            AdSchScheduler::new(self.config.scheduler).schedule(&array, &graph)
        } else {
            SequentialScheduler.schedule(&array, &graph)
        };
        Ok(schedule.expect("workload operation graphs are valid by construction"))
    }

    /// Latency of one reasoning task on the CogSys accelerator, in seconds.
    ///
    /// # Errors
    /// Returns [`SimError`] for invalid accelerator configurations.
    pub fn seconds_per_task(&self) -> Result<f64, SimError> {
        let schedule = self.schedule_batch(true)?;
        Ok(
            schedule.makespan_seconds(self.config.accelerator.frequency_ghz)
                / self.config.batch_tasks.max(1) as f64,
        )
    }

    /// Latency of one reasoning task of the configured workload on a baseline device,
    /// in seconds (kernels run sequentially — the behaviour profiled in Sec. III).
    pub fn device_seconds_per_task(&self, device: DeviceKind) -> f64 {
        let spec = self.workload_spec();
        let model = DeviceModel::new(device);
        model.sequence_seconds(&spec.task_kernels(), Precision::Fp32)
    }

    /// Energy per reasoning task on a baseline device, in joules.
    pub fn device_joules_per_task(&self, device: DeviceKind) -> f64 {
        DeviceModel::new(device).energy_joules(self.device_seconds_per_task(device))
    }

    /// Runs the full pipeline: functional accuracy over `problems` synthetic problems of
    /// `dataset`, plus accelerator latency/energy/utilisation for the same workload.
    ///
    /// The functional solver consumes the problem stream in `batch_tasks`-sized
    /// chunks through the cross-problem batched engine with one reused
    /// [`cogsys_workloads::SolverScratch`] — `batch_tasks` now means the same thing
    /// in the functional model as in the performance model (adSCH interleaves the
    /// same number of tasks). The batched engine's per-problem rng draws make the
    /// result independent of the chunk size, so changing `batch_tasks` changes
    /// throughput, never answers.
    ///
    /// # Errors
    /// Returns [`SimError`] for invalid accelerator configurations; solver errors
    /// ([`cogsys_workloads::SolveError`]) cannot occur for well-formed
    /// configurations and generated problems, and are reported as accuracy 0 rather
    /// than panicking.
    pub fn run_reasoning(
        &self,
        dataset: DatasetKind,
        problems: usize,
        seed: u64,
    ) -> Result<ReasoningOutcome, SimError> {
        // Functional accuracy.
        let mut rng = cogsys_vsa::rng(seed);
        let solver = NeurosymbolicSolver::new(self.config.solver.clone(), &mut rng);
        let batch = ProblemGenerator::new(dataset).generate_batch(problems, &mut rng);
        let mut scratch = cogsys_workloads::SolverScratch::default();
        let report = batch
            .chunks(self.config.batch_tasks.max(1))
            .try_fold(SolverReport::default(), |mut total, chunk| {
                total.merge(&solver.solve_batch_with(chunk, &mut rng, &mut scratch)?);
                Ok::<_, cogsys_workloads::SolveError>(total)
            })
            .unwrap_or_default();

        // Performance.
        let schedule = self.schedule_batch(true)?;
        let seconds = schedule.makespan_seconds(self.config.accelerator.frequency_ghz)
            / self.config.batch_tasks.max(1) as f64;
        let energy_model = EnergyModel::new(self.config.accelerator.clone());
        let utilization = schedule.array_utilization();
        let joules = energy_model.energy_joules(schedule.makespan_cycles, utilization)
            / self.config.batch_tasks.max(1) as f64;

        Ok(ReasoningOutcome {
            report,
            seconds_per_task: seconds,
            joules_per_task: joules,
            utilization,
        })
    }

    /// Normalised runtime of a hardware-ablation variant relative to the full design
    /// (Fig. 19): `1.0` means "as fast as full CogSys", larger is slower.
    ///
    /// # Errors
    /// Returns [`SimError`] for invalid accelerator configurations.
    pub fn ablation_relative_runtime(&self, variant: AblationVariant) -> Result<f64, SimError> {
        let full = CogSysSystem::new(self.config.clone().with_ablation(AblationVariant::Full));
        let ablated = CogSysSystem::new(self.config.clone().with_ablation(variant));
        let full_cycles = full.schedule_batch(true)?.makespan_cycles;
        let ablated_cycles = match variant {
            AblationVariant::Full => ablated.schedule_batch(true)?.makespan_cycles,
            // Every ablation level also removes the adaptive scheduler, matching the
            // cumulative structure of Fig. 19.
            _ => ablated.schedule_batch(false)?.makespan_cycles,
        };
        Ok(ablated_cycles as f64 / full_cycles.max(1) as f64)
    }
}

impl Default for CogSysSystem {
    fn default() -> Self {
        Self::new(CogSysConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_system_builds_and_schedules() {
        let system = CogSysSystem::default();
        assert_eq!(system.config().workload, WorkloadKind::Nvsa);
        let schedule = system.schedule_batch(true).unwrap();
        assert!(schedule.makespan_cycles > 0);
        assert!(schedule.array_utilization() > 0.0);
        let spec = system.workload_spec();
        assert_eq!(spec.kind, WorkloadKind::Nvsa);
    }

    #[test]
    fn cogsys_meets_real_time_bound() {
        // The headline claim: real-time abduction reasoning at < 0.3 s per task.
        let system = CogSysSystem::default();
        let seconds = system.seconds_per_task().unwrap();
        assert!(seconds < 0.3, "seconds per task {seconds}");
        assert!(seconds > 0.0);
    }

    #[test]
    fn cogsys_is_faster_than_every_baseline_device() {
        // Fig. 15 ordering: TX2 slowest, then NX, Xeon, RTX, CogSys fastest.
        let system = CogSysSystem::default();
        let cogsys = system.seconds_per_task().unwrap();
        let rtx = system.device_seconds_per_task(DeviceKind::RtxGpu);
        let xeon = system.device_seconds_per_task(DeviceKind::XeonCpu);
        let nx = system.device_seconds_per_task(DeviceKind::XavierNx);
        let tx2 = system.device_seconds_per_task(DeviceKind::JetsonTx2);
        assert!(cogsys < rtx, "cogsys {cogsys} vs rtx {rtx}");
        assert!(rtx < xeon);
        assert!(xeon < nx);
        assert!(nx < tx2);
        // Speedups are in a plausible band (Fig. 15 reports 4.6x over RTX and ~91x over
        // TX2; the analytical device models should land within an order of magnitude).
        let rtx_speedup = rtx / cogsys;
        let tx2_speedup = tx2 / cogsys;
        assert!(rtx_speedup > 1.5 && rtx_speedup < 100.0, "{rtx_speedup}");
        assert!(tx2_speedup > 10.0 && tx2_speedup < 2000.0, "{tx2_speedup}");
    }

    #[test]
    fn cogsys_energy_beats_gpu_by_orders_of_magnitude() {
        // Fig. 16: two orders of magnitude better energy than GPUs/CPUs.
        let system = CogSysSystem::default();
        let outcome = system.run_reasoning(DatasetKind::Raven, 1, 3).unwrap();
        let gpu_energy = system.device_joules_per_task(DeviceKind::RtxGpu);
        assert!(
            gpu_energy / outcome.joules_per_task > 50.0,
            "gpu {} vs cogsys {}",
            gpu_energy,
            outcome.joules_per_task
        );
    }

    #[test]
    fn ablations_are_progressively_slower() {
        // Fig. 19: removing adSCH, then the scalable array, then the reconfigurable PE
        // makes the design progressively slower.
        let system = CogSysSystem::default();
        let full = system
            .ablation_relative_runtime(AblationVariant::Full)
            .unwrap();
        let no_sched = system
            .ablation_relative_runtime(AblationVariant::WithoutAdSch)
            .unwrap();
        let no_so = system
            .ablation_relative_runtime(AblationVariant::WithoutScaleOut)
            .unwrap();
        let no_nspe = system
            .ablation_relative_runtime(AblationVariant::WithoutNsPe)
            .unwrap();
        assert!((full - 1.0).abs() < 1e-9);
        assert!(no_sched > full);
        assert!(no_so >= no_sched * 0.99);
        assert!(no_nspe > no_so, "no_nspe {no_nspe} vs no_so {no_so}");
        assert_eq!(AblationVariant::ALL.len(), 4);
    }

    #[test]
    fn precision_sweep_keeps_configuration_consistent() {
        let config = CogSysConfig::default().with_precision(Precision::Fp8);
        assert_eq!(config.accelerator.precision, Precision::Fp8);
        assert_eq!(config.solver.precision, Precision::Fp8);
        let system = CogSysSystem::new(config);
        assert!(system.seconds_per_task().unwrap() > 0.0);
    }

    #[test]
    fn backend_selection_threads_through_to_the_solver() {
        let config = CogSysConfig::default().with_backend(BackendKind::Reference);
        assert_eq!(config.backend(), BackendKind::Reference);
        assert_eq!(config.solver.backend, BackendKind::Reference);
        assert_eq!(config.solver.factorizer.backend, BackendKind::Reference);
        // An end-to-end run on the reference backend still works.
        let system = CogSysSystem::new(config);
        let outcome = system.run_reasoning(DatasetKind::Raven, 1, 9).unwrap();
        assert_eq!(outcome.report.problems, 1);
    }

    #[test]
    fn batch_tasks_changes_throughput_not_answers() {
        // run_reasoning slices the problem stream into batch_tasks-sized chunks for
        // the cross-problem batched solver; the chunk size must never change the
        // functional outcome (the batched engine draws rng per problem).
        let narrow = CogSysSystem::new(CogSysConfig {
            batch_tasks: 2,
            ..CogSysConfig::default()
        });
        let wide = CogSysSystem::new(CogSysConfig {
            batch_tasks: 64,
            ..CogSysConfig::default()
        });
        let a = narrow.run_reasoning(DatasetKind::Raven, 6, 77).unwrap();
        let b = wide.run_reasoning(DatasetKind::Raven, 6, 77).unwrap();
        assert_eq!(a.report, b.report);
        // The performance model still sees the different batch size.
        assert!(a.seconds_per_task > 0.0 && b.seconds_per_task > 0.0);
    }

    #[test]
    fn packed_backend_runs_end_to_end() {
        // BackendKind::Packed through the whole stack: config → solver → factorizer,
        // with the XOR/popcount kernels doing the symbolic work.
        let config = CogSysConfig::default().with_backend(BackendKind::Packed);
        assert_eq!(config.backend(), BackendKind::Packed);
        assert_eq!(config.solver.factorizer.backend, BackendKind::Packed);
        let system = CogSysSystem::new(config);
        let outcome = system.run_reasoning(DatasetKind::Raven, 2, 9).unwrap();
        assert_eq!(outcome.report.problems, 2);
        assert!(outcome.report.factorization_accuracy() >= 0.8);
    }
}
