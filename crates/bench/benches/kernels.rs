//! Criterion micro-benchmarks of the core computational kernels: circular convolution
//! (functional, FFT, and register-level nsPE column), codebook cleanup, and the
//! analytical dataflow models used by every figure.

use cogsys_sim::dataflow;
use cogsys_sim::pe::PeColumn;
use cogsys_vsa::{ops, Codebook, Hypervector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_circular_convolution(c: &mut Criterion) {
    let mut group = c.benchmark_group("circular_convolution");
    group.sample_size(20);
    for d in [256usize, 1024, 4096] {
        let mut rng = cogsys_vsa::rng(1);
        let a = Hypervector::random_bipolar(d, &mut rng);
        let b = Hypervector::random_bipolar(d, &mut rng);
        group.bench_with_input(BenchmarkId::new("fft", d), &d, |bench, _| {
            bench.iter(|| ops::circular_convolve(black_box(&a), black_box(&b)))
        });
        if d <= 1024 {
            group.bench_with_input(BenchmarkId::new("naive", d), &d, |bench, _| {
                bench.iter(|| {
                    ops::circular_convolve_naive(black_box(a.values()), black_box(b.values()))
                })
            });
        }
        if d <= 256 {
            group.bench_with_input(BenchmarkId::new("nspe_column", d), &d, |bench, _| {
                bench.iter(|| {
                    let mut col = PeColumn::new(d).expect("non-zero height");
                    col.circular_convolve(black_box(a.values()), black_box(b.values()))
                        .expect("matching dimensions")
                })
            });
        }
    }
    group.finish();
}

fn bench_codebook_cleanup(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_cleanup");
    group.sample_size(20);
    let mut rng = cogsys_vsa::rng(2);
    for (rows, dim) in [(64usize, 1024usize), (256, 1024), (1024, 512)] {
        let cb = Codebook::random("bench", rows, dim, &mut rng);
        let query = ops::flip_noise(cb.vector(rows / 2).expect("in range"), 0.1, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("cleanup", format!("{rows}x{dim}")),
            &rows,
            |bench, _| bench.iter(|| cb.cleanup(black_box(&query)).expect("matching dims")),
        );
    }
    group.finish();
}

fn bench_dataflow_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataflow_models");
    group.sample_size(50);
    group.bench_function("choose_mapping_sweep", |bench| {
        bench.iter(|| {
            let mut total = 0u64;
            for d in [64usize, 512, 1024, 4096] {
                for k in [1usize, 32, 210, 2575] {
                    let m = dataflow::choose_mapping(black_box(d), black_box(k), 512, 32);
                    total += m.spatial_cycles.min(m.temporal_cycles);
                }
            }
            total
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_circular_convolution,
    bench_codebook_cleanup,
    bench_dataflow_models
);
criterion_main!(benches);
