//! Criterion benchmarks of the algorithm-level contribution: the iterative factorizer
//! against the brute-force product-codebook search (the latency side of Fig. 8), with
//! and without stochasticity injection.

use cogsys_factorizer::{BruteForceFactorizer, Factorizer, FactorizerConfig};
use cogsys_vsa::codebook::{BindingOp, CodebookSet};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_factorization(c: &mut Criterion) {
    let mut group = c.benchmark_group("factorization");
    group.sample_size(10);

    for &(sizes, dim) in &[
        (&[8usize, 8, 8][..], 1024usize),
        (&[9, 9, 5, 6, 10][..], 1024),
    ] {
        let label = format!("{}f_d{}", sizes.len(), dim);
        let mut rng = cogsys_vsa::rng(3);
        let set = CodebookSet::random(sizes, dim, BindingOp::Hadamard, &mut rng);
        let indices: Vec<usize> = sizes.iter().map(|&m| m / 2).collect();
        let query = set.bind_indices(&indices).expect("indices are in range");

        group.bench_with_input(BenchmarkId::new("resonator", &label), &dim, |bench, _| {
            let factorizer = Factorizer::new(FactorizerConfig::default());
            let mut rng = cogsys_vsa::rng(4);
            bench.iter(|| {
                factorizer
                    .factorize(black_box(&set), black_box(&query), &mut rng)
                    .expect("well-formed query")
            })
        });

        group.bench_with_input(
            BenchmarkId::new("resonator_no_stochasticity", &label),
            &dim,
            |bench, _| {
                let factorizer = Factorizer::new(FactorizerConfig::without_stochasticity());
                let mut rng = cogsys_vsa::rng(4);
                bench.iter(|| {
                    factorizer
                        .factorize(black_box(&set), black_box(&query), &mut rng)
                        .expect("well-formed query")
                })
            },
        );

        if sizes.len() == 3 {
            // The brute-force baseline only stays tractable for the small product space.
            let brute = BruteForceFactorizer::new(&set).expect("small product space");
            group.bench_with_input(BenchmarkId::new("brute_force", &label), &dim, |bench, _| {
                bench.iter(|| brute.decode(black_box(&query)).expect("well-formed query"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_factorization);
criterion_main!(benches);
