//! Criterion benchmarks of the system level: adSCH vs sequential scheduling of NVSA
//! batches, and the accelerator-model kernel-cost evaluation they are built on.

use cogsys_scheduler::{AdSchScheduler, Scheduler, SequentialScheduler};
use cogsys_sim::{AcceleratorConfig, ComputeArray, Kernel};
use cogsys_workloads::{WorkloadKind, WorkloadSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    let array = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid config");
    for tasks in [2usize, 4, 8] {
        let graph = WorkloadSpec::new(WorkloadKind::Nvsa).operation_graph(tasks);
        group.bench_with_input(BenchmarkId::new("adsch", tasks), &tasks, |bench, _| {
            bench.iter(|| {
                AdSchScheduler::default()
                    .schedule(black_box(&array), black_box(&graph))
                    .expect("valid graph")
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", tasks), &tasks, |bench, _| {
            bench.iter(|| {
                SequentialScheduler
                    .schedule(black_box(&array), black_box(&graph))
                    .expect("valid graph")
            })
        });
    }
    group.finish();
}

fn bench_kernel_cost_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_cost_model");
    group.sample_size(30);
    let array = ComputeArray::new(AcceleratorConfig::cogsys()).expect("valid config");
    let kernels = [
        Kernel::Conv2d {
            output_pixels: 6272,
            out_channels: 128,
            reduction: 1152,
        },
        Kernel::CircConv {
            dim: 1024,
            count: 210,
        },
    ];
    group.bench_function("execute_nvsa_kernels", |bench| {
        bench.iter(|| {
            let mut total = 0u64;
            for kernel in &kernels {
                total += array
                    .execute(black_box(kernel), 16)
                    .expect("valid kernel")
                    .cycles;
            }
            total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling, bench_kernel_cost_model);
criterion_main!(benches);
