//! Backend comparison (reference vs parallel vs bit-packed) on the two hot batch
//! kernels: circular-convolution binding and codebook cleanup, across dimensionality
//! d ∈ {256, 1024, 4096} and batch size ∈ {1, 32, 256}.
//!
//! Run with `cargo bench --bench backends`. The headline acceptance number is the
//! `packed` cleanup speedup at d = 1024, batch = 256 (the packed backend reads the
//! codebook's cached sign planes and only packs the queries per call); on circular
//! convolution the packed backend falls back to the dense parallel kernels, so its
//! bind rows double as a fallback-overhead check.

use cogsys_vsa::batch::{BackendKind, HvMatrix, VsaBackend};
use cogsys_vsa::codebook::BindingOp;
use cogsys_vsa::{Codebook, Hypervector};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

const DIMS: [usize; 3] = [256, 1024, 4096];
const BATCHES: [usize; 3] = [1, 32, 256];
const CODEBOOK_ROWS: usize = 64;

fn backends() -> Vec<Arc<dyn VsaBackend>> {
    BackendKind::ALL.iter().map(|k| k.create()).collect()
}

fn random_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
    let mut rng = cogsys_vsa::rng(seed);
    let hvs: Vec<Hypervector> = (0..rows)
        .map(|_| Hypervector::random_bipolar(dim, &mut rng))
        .collect();
    HvMatrix::from_rows(&hvs).expect("rows share a dimension")
}

fn bench_bind(c: &mut Criterion) {
    let mut group = c.benchmark_group("bind_circular");
    group.sample_size(10);
    for dim in DIMS {
        for batch in BATCHES {
            let a = random_matrix(batch, dim, 1);
            let b = random_matrix(batch, dim, 2);
            for backend in backends() {
                let mut out = HvMatrix::zeros(batch, dim);
                group.bench_with_input(
                    BenchmarkId::new(backend.name(), format!("d{dim}_b{batch}")),
                    &dim,
                    |bench, _| {
                        bench.iter(|| {
                            backend
                                .bind_batch_into(
                                    black_box(&a),
                                    black_box(&b),
                                    BindingOp::CircularConvolution,
                                    &mut out,
                                )
                                .expect("shapes match")
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_cleanup(c: &mut Criterion) {
    let mut group = c.benchmark_group("codebook_cleanup");
    group.sample_size(10);
    for dim in DIMS {
        let mut rng = cogsys_vsa::rng(3);
        let codebook = Codebook::random("bench", CODEBOOK_ROWS, dim, &mut rng);
        for batch in BATCHES {
            let queries = random_matrix(batch, dim, 4 + batch as u64);
            for backend in backends() {
                group.bench_with_input(
                    BenchmarkId::new(backend.name(), format!("d{dim}_b{batch}")),
                    &dim,
                    |bench, _| {
                        bench.iter(|| {
                            codebook
                                .cleanup_batch(backend.as_ref(), black_box(&queries))
                                .expect("shapes match")
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bind, bench_cleanup);
criterion_main!(benches);
