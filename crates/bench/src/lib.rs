//! # cogsys-bench — benchmark harness for the CogSys reproduction
//!
//! * `src/bin/` — one binary per paper table/figure; each prints the corresponding
//!   [`cogsys::experiments`] table (run e.g. `cargo run --release --bin fig15_runtime`).
//! * `benches/` — Criterion micro-benchmarks of the underlying kernels (circular
//!   convolution, factorization, scheduling).
