//! Regenerates Tab. V (reconfigurable vs heterogeneous PE) of the CogSys paper. Run with `cargo run --release --bin tab05_pe_choice`.
fn main() {
    println!("{}", cogsys::experiments::tab05_pe_choice());
}
