//! Regenerates Fig. 19 (hardware technique ablation) of the CogSys paper. Run with `cargo run --release --bin fig19_ablation`.
fn main() {
    println!("{}", cogsys::experiments::fig19_ablation());
}
