//! Regenerates Fig. 6 (symbolic operation breakdown) of the CogSys paper. Run with `cargo run --release --bin fig06_symbolic_ops`.
fn main() {
    println!("{}", cogsys::experiments::fig06_symbolic_ops());
}
