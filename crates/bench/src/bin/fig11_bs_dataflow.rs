//! Regenerates Fig. 11 (bubble-streaming dataflow) of the CogSys paper. Run with `cargo run --release --bin fig11_bs_dataflow`.
fn main() {
    for table in cogsys::experiments::fig11_bs_dataflow() {
        println!("{table}");
    }
}
