//! Regenerates Fig. 13 (adaptive scheduling) of the CogSys paper. Run with `cargo run --release --bin fig13_adsch`.
fn main() {
    println!("{}", cogsys::experiments::fig13_adsch());
}
