//! Regenerates Fig. 14 (accelerator specification) of the CogSys paper. Run with `cargo run --release --bin fig14_specs`.
fn main() {
    println!("{}", cogsys::experiments::tab09_precision());
    let system = cogsys::CogSysSystem::default();
    println!(
        "CogSys spec: 16x32x32 PEs, 512 SIMD PEs, 4.5 MiB SRAM, 0.8 GHz, {:.3} s/task",
        system.seconds_per_task().expect("default config is valid")
    );
}
