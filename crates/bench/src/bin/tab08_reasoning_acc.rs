//! Regenerates Tab. VIII (reasoning accuracy) of the CogSys paper. Run with `cargo run --release --bin tab08_reasoning_acc`.
fn main() {
    println!("{}", cogsys::experiments::tab08_reasoning_accuracy(10, 7));
}
