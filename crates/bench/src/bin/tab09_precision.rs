//! Regenerates Tab. IX (precision area/power) of the CogSys paper. Run with `cargo run --release --bin tab09_precision`.
fn main() {
    println!("{}", cogsys::experiments::tab09_precision());
}
