//! Regenerates Fig. 5 (roofline analysis) of the CogSys paper. Run with `cargo run --release --bin fig05_roofline`.
fn main() {
    println!("{}", cogsys::experiments::fig05_roofline());
}
