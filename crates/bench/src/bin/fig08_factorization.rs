//! Regenerates Fig. 8 (factorization memory/runtime reduction) of the CogSys paper. Run with `cargo run --release --bin fig08_factorization`.
fn main() {
    println!("{}", cogsys::experiments::fig08_factorization(2024));
}
