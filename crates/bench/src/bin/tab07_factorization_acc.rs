//! Regenerates Tab. VII (factorization accuracy) of the CogSys paper. Run with `cargo run --release --bin tab07_factorization_acc`.
fn main() {
    println!(
        "{}",
        cogsys::experiments::tab07_factorization_accuracy(4, 7)
    );
}
