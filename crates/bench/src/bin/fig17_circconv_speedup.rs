//! Regenerates Fig. 17 (circular convolution speedup) of the CogSys paper. Run with `cargo run --release --bin fig17_circconv_speedup`.
fn main() {
    for table in cogsys::experiments::fig17_circconv_speedup() {
        println!("{table}");
    }
}
