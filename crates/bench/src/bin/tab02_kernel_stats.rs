//! Regenerates Tab. II (kernel efficiency statistics) of the CogSys paper. Run with `cargo run --release --bin tab02_kernel_stats`.
fn main() {
    println!("{}", cogsys::experiments::tab02_kernel_stats());
}
