//! Regenerates Fig. 4 (workload profiling) of the CogSys paper. Run with `cargo run --release --bin fig04_profiling`.
fn main() {
    for table in cogsys::experiments::fig04_profiling() {
        println!("{table}");
    }
}
