//! Regenerates Fig. 15 (end-to-end runtime comparison) of the CogSys paper. Run with `cargo run --release --bin fig15_runtime`.
fn main() {
    println!("{}", cogsys::experiments::fig15_runtime());
}
