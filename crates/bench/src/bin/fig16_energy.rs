//! Regenerates Fig. 16 (energy efficiency comparison) of the CogSys paper. Run with `cargo run --release --bin fig16_energy`.
fn main() {
    println!("{}", cogsys::experiments::fig16_energy());
}
