//! Regenerates Tab. X (co-design necessity ablation) of the CogSys paper. Run with `cargo run --release --bin tab10_codesign`.
fn main() {
    println!("{}", cogsys::experiments::tab10_codesign());
}
