//! Backend throughput sweep with machine-readable output.
//!
//! Measures the circular-convolution binding and codebook-cleanup kernels for every
//! [`cogsys_vsa::BackendKind`] across `d ∈ {256, 1024, 4096}` × `batch ∈ {1, 32, 256}`,
//! prints the speedup table, and writes the raw `(backend, kernel, dim, batch) →
//! ns/op` records to `BENCH_backends.json` in the current directory — the file the CI
//! bench-smoke step publishes so the perf trajectory is tracked across PRs.
//!
//! Run with: `cargo run --release -p cogsys-bench --bin backend_throughput`

fn main() {
    const DIMS: [usize; 3] = [256, 1024, 4096];
    const BATCHES: [usize; 3] = [1, 32, 256];
    const SEED: u64 = 7;

    let records = cogsys::experiments::backend_throughput_records(&DIMS, &BATCHES, SEED);
    println!(
        "{}",
        cogsys::experiments::backend_throughput_table(&records)
    );

    let json = cogsys::experiments::backend_throughput_json(SEED, &records);
    let path = "BENCH_backends.json";
    std::fs::write(path, &json).expect("BENCH_backends.json is writable");
    println!("wrote {} records to {path}", records.len());

    // Surface the headline acceptance number: packed cleanup at d=1024, batch=256.
    let cell = |backend: &str| {
        records
            .iter()
            .find(|r| {
                r.backend == backend && r.kernel == "cleanup" && r.dim == 1024 && r.batch == 256
            })
            .map(|r| r.ns_per_op)
    };
    if let (Some(parallel), Some(packed)) = (cell("parallel"), cell("packed")) {
        println!(
            "cleanup d=1024 batch=256: parallel {:.3} ms, packed {:.3} ms ({:.1}x)",
            parallel / 1e6,
            packed / 1e6,
            parallel / packed.max(1.0)
        );
    }
}
