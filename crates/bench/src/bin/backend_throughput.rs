//! Backend throughput sweep with machine-readable output and a regression guard.
//!
//! Measures the circular-convolution binding and codebook-cleanup kernels (both `f32`
//! and pre-packed `BitMatrix` queries) for every [`cogsys_vsa::BackendKind`] across
//! `d ∈ {256, 1024, 4096}` × `batch ∈ {1, 32, 256}`, plus the **end-to-end solver
//! kernels** — `solve_batch` (the cross-problem batched serving engine with reused
//! scratch) vs `solve_sequential` (per-problem loop) at 8- and 64-problem batches,
//! plus the **large-codebook cleanup** cells — `cleanup_indexed` at 10^4 and 10^5
//! rows (10^6 with `BENCH_LARGE=1`), pitting the pruned exact `CleanupIndex` scan
//! (`packed`) against the flat linear packed scan (`reference`) — plus the
//! **resonator-fusion** cells: `resonate_iter` (one full fused resonator iteration
//! vs the split three-pass sequence at d=4096) and `solve_batch_fused` /
//! `solve_batch_split` (the planned solver with the iteration `FusionMode` forced
//! each way) — prints the speedup table, and writes the raw
//! `(backend, kernel, dim, batch) → ns/op` records to `BENCH_backends.json` in the
//! current directory — the file the CI bench-smoke step publishes so the perf
//! trajectory is tracked across PRs.
//!
//! **Regression guard:** before overwriting, the committed `BENCH_backends.json` is
//! read as the baseline; if any packed-backend kernel slowed down by more than 1.3×,
//! the binary prints the offending cells and exits non-zero, failing the CI
//! bench-smoke step. Set `BENCH_GUARD=off` to record a new baseline without gating
//! (e.g. after an intentional trade-off or a hardware change).
//!
//! The detected Hamming-kernel SIMD tier (generic / popcnt / avx2 / avx512) is
//! printed first so CI logs record which dispatch path produced the numbers; with
//! `BENCH_REQUIRE_SIMD=1` the run fails outright when dispatch fell back to the
//! generic tier (the CI runners are known-SIMD hosts, so a generic fallback there
//! means detection broke, not that the hardware shrank). Analogously,
//! `BENCH_REQUIRE_PLAN_SPEC=1` fails the run unless the packed solver's compiled
//! plan at d=1024 resolves the `W=16` const-generic word-count specialization —
//! the smoke gate for the plan compiler's specialization table — and
//! `BENCH_REQUIRE_FUSION=1` fails it unless that same plan resolves the fused
//! resonator kernel (`fusion=fused`), the smoke gate for the plan compiler's
//! fusion decision.
//!
//! `--explain` prints the compiled solve plans (stage IR, chosen specialization,
//! route, chunk width) for the solver shapes the sweep measures, plus the
//! plan-cache hit/miss counters, before the timing runs.
//!
//! Run with: `cargo run --release -p cogsys-bench --bin backend_throughput`

use std::process::ExitCode;

/// Maximum tolerated slowdown of a packed kernel relative to the committed baseline.
const GUARD_FACTOR: f64 = 1.3;

fn main() -> ExitCode {
    const DIMS: [usize; 3] = [256, 1024, 4096];
    const BATCHES: [usize; 3] = [1, 32, 256];
    const SEED: u64 = 7;

    let mut explain = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--explain" => explain = true,
            other => {
                eprintln!("unknown argument `{other}`\nusage: backend_throughput [--explain]");
                return ExitCode::from(2);
            }
        }
    }

    let tier = cogsys_vsa::dispatch_tier();
    println!("dispatch tier: {tier}");
    if std::env::var("BENCH_REQUIRE_SIMD").as_deref() == Ok("1")
        && tier == cogsys_vsa::DispatchTier::Generic
    {
        eprintln!(
            "BENCH_REQUIRE_SIMD=1: dispatch fell back to the generic tier on a host \
             expected to support at least scalar popcnt"
        );
        return ExitCode::FAILURE;
    }

    // Plan-specialization smoke gate and the `--explain` dump share one packed
    // solver per dimensionality of interest.
    {
        use cogsys_workloads::{NeurosymbolicSolver, SolverConfig};
        let packed_solver = |dim: usize| {
            let mut rng = cogsys_vsa::rng(SEED);
            NeurosymbolicSolver::new(
                SolverConfig {
                    vector_dim: dim,
                    ..SolverConfig::default()
                }
                .with_backend(cogsys_vsa::batch::BackendKind::Packed),
                &mut rng,
            )
        };
        let solver_1024 = packed_solver(1024);
        let plan_1024 = solver_1024.plan_for_batch(cogsys::experiments::SOLVER_BENCH_PROBLEMS[0]);
        let spec_1024 = plan_1024.spec;
        let fusion_1024 = plan_1024.resonate_fusion(0);
        println!("plan spec at d=1024: {}", spec_1024.as_str());
        println!(
            "plan fusion at d=1024: {}",
            fusion_1024.map_or("<no resonate stage>", |f| f.as_str())
        );
        if std::env::var("BENCH_REQUIRE_PLAN_SPEC").as_deref() == Ok("1")
            && spec_1024.as_str() != "W=16"
        {
            eprintln!(
                "BENCH_REQUIRE_PLAN_SPEC=1: packed plan at d=1024 resolved `{}` \
                 instead of the W=16 specialization",
                spec_1024.as_str()
            );
            return ExitCode::FAILURE;
        }
        if std::env::var("BENCH_REQUIRE_FUSION").as_deref() == Ok("1")
            && fusion_1024 != Some(cogsys_vsa::FusionMode::Fused)
        {
            eprintln!(
                "BENCH_REQUIRE_FUSION=1: packed plan at d=1024 resolved `{}` \
                 instead of the fused resonator kernel",
                fusion_1024.map_or("<no resonate stage>", |f| f.as_str())
            );
            return ExitCode::FAILURE;
        }
        if explain {
            let production = packed_solver(SolverConfig::default().vector_dim);
            for solver in [&solver_1024, &production] {
                for &batch in &cogsys::experiments::SOLVER_BENCH_PROBLEMS {
                    print!("{}", solver.plan_for_batch(batch).describe());
                }
                let stats = solver.plan_cache_stats();
                println!("plan_cache: hits={} misses={}", stats.hits, stats.misses);
            }
        }
    }

    let path = "BENCH_backends.json";
    let baseline = std::fs::read_to_string(path)
        .ok()
        .map(|text| cogsys::experiments::parse_backend_throughput_json(&text))
        .unwrap_or_default();

    let mut records = cogsys::experiments::backend_throughput_records(&DIMS, &BATCHES, SEED);
    println!(
        "{}",
        cogsys::experiments::backend_throughput_table(&records)
    );
    records.extend(cogsys::experiments::solver_throughput_records(
        &cogsys::experiments::SOLVER_BENCH_PROBLEMS,
        SEED,
    ));

    // Large-codebook exact cleanup: the pruned CleanupIndex scan vs the flat linear
    // packed scan at 10^4 and 10^5 rows (10^6 only behind BENCH_LARGE=1 — the build
    // plus scan takes a while on a shared core).
    let mut cleanup_rows = vec![10_000usize, 100_000];
    if std::env::var("BENCH_LARGE").as_deref() == Ok("1") {
        cleanup_rows.push(1_000_000);
    }
    records.extend(cogsys::experiments::cleanup_index_records(
        &cleanup_rows,
        SEED,
    ));

    // Resonator-iteration microbench: the fused mega-kernel vs the split
    // three-pass sequence, one full iteration over all factors at d=4096.
    records.extend(cogsys::experiments::resonate_iter_records(SEED));

    let json = cogsys::experiments::backend_throughput_json(SEED, &records);
    std::fs::write(path, &json).expect("BENCH_backends.json is writable");
    println!("wrote {} records to {path}", records.len());

    // Surface the headline acceptance numbers: packed cleanup at d=1024, batch=256,
    // with and without the per-call query packing.
    let cell = |backend: &str, kernel: &str| {
        records
            .iter()
            .find(|r| r.backend == backend && r.kernel == kernel && r.dim == 1024 && r.batch == 256)
            .map(|r| r.ns_per_op)
    };
    if let (Some(parallel), Some(packed)) = (cell("parallel", "cleanup"), cell("packed", "cleanup"))
    {
        println!(
            "cleanup d=1024 batch=256: parallel {:.3} ms, packed {:.3} ms ({:.1}x)",
            parallel / 1e6,
            packed / 1e6,
            parallel / packed.max(1.0)
        );
    }
    if let (Some(per_call), Some(prepacked)) = (
        cell("packed", "cleanup"),
        cell("packed", "cleanup_prepacked"),
    ) {
        println!(
            "packed cleanup d=1024 batch=256: pack-per-call {:.3} ms, prepacked BitMatrix \
             queries {:.3} ms ({:.2}x)",
            per_call / 1e6,
            prepacked / 1e6,
            per_call / prepacked.max(1.0)
        );
    }

    // Pruned exact cleanup index vs the linear packed scan on large codebooks.
    for &rows in &cleanup_rows {
        let idx_cell = |backend: &str| {
            records
                .iter()
                .find(|r| r.backend == backend && r.kernel == "cleanup_indexed" && r.batch == rows)
                .map(|r| r.ns_per_op)
        };
        if let (Some(indexed), Some(linear)) = (idx_cell("packed"), idx_cell("reference")) {
            let queries = cogsys::experiments::CLEANUP_INDEX_BENCH_QUERIES as f64;
            println!(
                "cleanup_indexed d=1024 rows={rows}: linear {:.3} ms/query, \
                 indexed {:.3} ms/query ({:.1}x)",
                linear / queries / 1e6,
                indexed / queries / 1e6,
                linear / indexed.max(1.0)
            );
        }
    }

    // End-to-end solver throughput: the cross-problem batched engine vs the
    // per-problem loop at a 64-problem serving batch (8·64 = 512 panel rows per
    // factorize call) on the packed backend.
    let solver_cell = |backend: &str, kernel: &str| {
        records
            .iter()
            .find(|r| r.backend == backend && r.kernel == kernel && r.batch == 64)
            .map(|r| r.ns_per_op)
    };
    if let (Some(batched), Some(sequential)) = (
        solver_cell("packed", "solve_batch"),
        solver_cell("packed", "solve_sequential"),
    ) {
        println!(
            "solver 64-problem batch (packed): batched {:.1} ms ({:.0} problems/s), \
             per-problem {:.1} ms ({:.0} problems/s), {:.2}x from cross-problem batching",
            batched / 1e6,
            64.0 / (batched / 1e9),
            sequential / 1e6,
            64.0 / (sequential / 1e9),
            sequential / batched.max(1.0),
        );
    }

    // The compile/execute split's acceptance numbers: planned executor vs the
    // unplanned entry point (must be measurably no slower), the specialized vs
    // forced-generic executor A/B, and the amortized plan-compilation cost.
    if let (Some(unplanned), Some(planned)) = (
        solver_cell("packed", "solve_batch"),
        solver_cell("packed", "solve_batch_planned"),
    ) {
        println!(
            "planned executor 64-problem batch (packed): unplanned {:.1} ms, \
             planned {:.1} ms ({:.2}x)",
            unplanned / 1e6,
            planned / 1e6,
            unplanned / planned.max(1.0),
        );
    }
    if let (Some(generic), Some(specialized)) = (
        solver_cell("packed", "solve_batch_planned_generic"),
        solver_cell("packed", "solve_batch_planned"),
    ) {
        println!(
            "word-count specialization 64-problem batch (packed): generic {:.1} ms, \
             specialized {:.1} ms ({:.2}x)",
            generic / 1e6,
            specialized / 1e6,
            generic / specialized.max(1.0),
        );
    }
    if let Some(compile) = solver_cell("packed", "plan_compile") {
        println!(
            "plan_compile (packed, 64-problem key): {:.1} us per cold cache miss",
            compile / 1e3
        );
    }

    // The fusion A/B acceptance numbers: the planned solver with the resonator
    // FusionMode forced each way, and the isolated per-iteration kernel.
    if let (Some(fused), Some(split)) = (
        solver_cell("packed", "solve_batch_fused"),
        solver_cell("packed", "solve_batch_split"),
    ) {
        println!(
            "resonator fusion 64-problem batch (packed): split {:.1} ms, \
             fused {:.1} ms ({:.2}x)",
            split / 1e6,
            fused / 1e6,
            split / fused.max(1.0),
        );
    }
    let iter_cell = |backend: &str| {
        records
            .iter()
            .find(|r| r.backend == backend && r.kernel == "resonate_iter")
            .map(|r| r.ns_per_op)
    };
    if let (Some(fused), Some(split)) = (iter_cell("packed"), iter_cell("reference")) {
        println!(
            "resonate_iter d={} rows={}: split {:.3} ms/iter, fused {:.3} ms/iter ({:.2}x)",
            cogsys::experiments::RESONATE_ITER_BENCH_DIM,
            cogsys::experiments::RESONATE_ITER_BENCH_ROWS,
            split / 1e6,
            fused / 1e6,
            split / fused.max(1.0),
        );
    }

    // Scheduler/simulator consumption of the real plan stages: the adSCH
    // schedule over the lowered stage IR must be structurally valid, every
    // measured stage anchor present, and — with the iteration-aware resonate
    // lowering — the scheduled decode share must track the measured one (see
    // `plan_schedule_report`'s share contract).
    let (plan_table, plan_mismatches) = cogsys::experiments::plan_schedule_report(&records);
    println!("{plan_table}");
    if !plan_mismatches.is_empty() {
        eprintln!("plan schedule validation FAILED:");
        for m in &plan_mismatches {
            eprintln!("  {m}");
        }
        return ExitCode::FAILURE;
    }

    if std::env::var("BENCH_GUARD").as_deref() == Ok("off") {
        println!("BENCH_GUARD=off: baseline comparison skipped");
        return ExitCode::SUCCESS;
    }
    let regressions =
        cogsys::experiments::packed_bench_regressions(&baseline, &records, GUARD_FACTOR);
    if regressions.is_empty() {
        println!(
            "bench guard: no packed kernel slower than {GUARD_FACTOR}x baseline \
             ({} baseline cells)",
            baseline.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench guard FAILED: packed kernels regressed past {GUARD_FACTOR}x baseline:");
        for r in &regressions {
            eprintln!("  {r}");
        }
        ExitCode::FAILURE
    }
}
