//! Regenerates every table and figure of the CogSys paper. Run with `cargo run --release --bin all_experiments`.
fn main() {
    for table in cogsys::experiments::fig04_profiling() {
        println!("{table}");
    }
    println!("{}", cogsys::experiments::fig05_roofline());
    println!("{}", cogsys::experiments::fig06_symbolic_ops());
    println!("{}", cogsys::experiments::tab02_kernel_stats());
    println!("{}", cogsys::experiments::fig08_factorization(2024));
    for table in cogsys::experiments::fig11_bs_dataflow() {
        println!("{table}");
    }
    println!("{}", cogsys::experiments::fig12_st_mapping());
    println!("{}", cogsys::experiments::tab05_pe_choice());
    println!("{}", cogsys::experiments::fig13_adsch());
    println!(
        "{}",
        cogsys::experiments::tab07_factorization_accuracy(3, 7)
    );
    println!("{}", cogsys::experiments::tab08_reasoning_accuracy(6, 7));
    println!("{}", cogsys::experiments::tab09_precision());
    println!("{}", cogsys::experiments::fig15_runtime());
    println!("{}", cogsys::experiments::fig16_energy());
    for table in cogsys::experiments::fig17_circconv_speedup() {
        println!("{table}");
    }
    println!("{}", cogsys::experiments::fig18_accelerators());
    println!("{}", cogsys::experiments::fig19_ablation());
    println!("{}", cogsys::experiments::tab10_codesign());
    println!(
        "{}",
        cogsys::experiments::backend_throughput(&[256, 1024], &[1, 32, 256], 7)
    );
}
