//! Regenerates Fig. 12 (spatial-temporal mapping) of the CogSys paper. Run with `cargo run --release --bin fig12_st_mapping`.
fn main() {
    println!("{}", cogsys::experiments::fig12_st_mapping());
}
