//! Regenerates Fig. 18 (ML accelerator comparison) of the CogSys paper. Run with `cargo run --release --bin fig18_accelerators`.
fn main() {
    println!("{}", cogsys::experiments::fig18_accelerators());
}
