//! Analytical dataflow models: cycle counts and memory traffic for the bubble-streaming
//! (BS) dataflow, the systolic GEMM dataflow, and the TPU-style GEMV lowering of
//! circular convolution (Sec. V-C, V-D; Fig. 11, Fig. 12).
//!
//! The register-level simulation in [`crate::pe`] validates the *numerics* of the BS
//! dataflow; the functions here provide the closed-form latency/bandwidth expressions
//! the paper derives, which the scheduler and the figure-regeneration benches use.

use serde::{Deserialize, Serialize};

/// Cycles for one circular convolution of two `d`-dimensional vectors on a 1-D nsPE
/// column of `m` PEs using the bubble-streaming dataflow.
///
/// The paper's cycle analysis (Sec. V-C): when `d == m` the end-to-end latency is
/// `4d − 1` cycles; in general it is `3m + d − 1` (load `m`, stream `2m` to reach the
/// final PE, then the remaining `d − 1` outputs drain one per cycle). When `d > m` the
/// convolution is folded into `⌈d/m⌉` passes.
pub fn bubble_streaming_cycles(d: usize, m: usize) -> u64 {
    if d == 0 || m == 0 {
        return 0;
    }
    let folds = d.div_ceil(m);
    let per_fold = (3 * m + d.min(m) - 1) as u64;
    // Multi-fold execution re-loads the stationary segment each pass; partial outputs
    // accumulate in place, so the per-fold latency is unchanged.
    folds as u64 * per_fold
}

/// Cycles for `k` circular convolutions of dimension `d` on a CogSys cell with
/// `cols` columns of `m` PEs, exploiting column-wise parallelism (CWP): each column
/// executes one convolution independently.
pub fn bubble_streaming_batch_cycles(d: usize, k: usize, m: usize, cols: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let waves = k.div_ceil(cols.max(1));
    waves as u64 * bubble_streaming_cycles(d, m)
}

/// SRAM reads per `T` cycles for the **spatial** mapping of the ST strategy (Fig. 12):
/// one convolution is split across `n_arrays` columns, so only the two operand vectors
/// are streamed — `2d` reads.
pub fn spatial_mapping_reads(d: usize) -> u64 {
    2 * d as u64
}

/// SRAM reads per `T` cycles for the **temporal** mapping (Fig. 12): each of the
/// `n_arrays` columns works on a different convolution, so every column loads its own
/// stationary segment (`m`) and streams its own operand (`d`) — `(d + m) × n` reads.
pub fn temporal_mapping_reads(d: usize, m: usize, n_arrays: usize) -> u64 {
    ((d + m) * n_arrays) as u64
}

/// Latency of `k` circular convolutions of dimension `d` under **spatial** mapping on
/// `n_arrays` columns of `m` PEs each (Fig. 12): `k × ⌈d/(N·M)⌉ × T`.
pub fn spatial_mapping_cycles(d: usize, k: usize, m: usize, n_arrays: usize) -> u64 {
    let t = fold_latency(d, m, n_arrays);
    (k as u64) * (d.div_ceil(m * n_arrays.max(1)) as u64) * t
}

/// Latency of `k` circular convolutions of dimension `d` under **temporal** mapping on
/// `n_arrays` columns of `m` PEs each (Fig. 12): `⌈k/N⌉ × ⌈d/M⌉ × T`.
pub fn temporal_mapping_cycles(d: usize, k: usize, m: usize, n_arrays: usize) -> u64 {
    let t = fold_latency(d, m, n_arrays);
    (k.div_ceil(n_arrays.max(1)) as u64) * (d.div_ceil(m) as u64) * t
}

/// The per-fold pipeline latency `T` used by the ST-mapping expressions: the time for a
/// column of `m` PEs to process one fold of (at most) `m` elements, `3m + min(d, m) − 1`.
fn fold_latency(d: usize, m: usize, _n_arrays: usize) -> u64 {
    (3 * m + d.min(m) - 1) as u64
}

/// Which ST mapping a given workload/hardware combination should use, with the latency
/// and bandwidth of both options (the adaptive search of Sec. V-D).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingDecision {
    /// Latency (cycles) under spatial mapping.
    pub spatial_cycles: u64,
    /// Latency (cycles) under temporal mapping.
    pub temporal_cycles: u64,
    /// SRAM reads per T cycles under spatial mapping.
    pub spatial_reads: u64,
    /// SRAM reads per T cycles under temporal mapping.
    pub temporal_reads: u64,
    /// `true` if temporal mapping was selected.
    pub use_temporal: bool,
}

/// Adaptive spatial/temporal mapping selection (Sec. V-D): pick the lower-latency
/// option, breaking ties in favour of the lower-bandwidth one.
pub fn choose_mapping(d: usize, k: usize, m: usize, n_arrays: usize) -> MappingDecision {
    let spatial_cycles = spatial_mapping_cycles(d, k, m, n_arrays);
    let temporal_cycles = temporal_mapping_cycles(d, k, m, n_arrays);
    let spatial_reads = spatial_mapping_reads(d);
    let temporal_reads = temporal_mapping_reads(d, m, n_arrays);
    let use_temporal = match temporal_cycles.cmp(&spatial_cycles) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => temporal_reads <= spatial_reads,
    };
    MappingDecision {
        spatial_cycles,
        temporal_cycles,
        spatial_reads,
        temporal_reads,
        use_temporal,
    }
}

/// Cycles for a dense GEMM `m×n×k` (output `m×n`, reduction `k`) on a weight-stationary
/// systolic cell of `rows × cols` PEs.
///
/// Standard systolic accounting: the weight tile (`rows` deep) is loaded in `rows`
/// cycles, then the `m` input rows stream through with `rows + cols − 1` cycles of
/// pipeline fill/drain, repeated for every `⌈k/rows⌉ × ⌈n/cols⌉` weight tile.
pub fn systolic_gemm_cycles(m: usize, n: usize, k: usize, rows: usize, cols: usize) -> u64 {
    if m == 0 || n == 0 || k == 0 || rows == 0 || cols == 0 {
        return 0;
    }
    let tiles = (k.div_ceil(rows) * n.div_ceil(cols)) as u64;
    let per_tile = (rows + m + rows + cols - 1) as u64;
    tiles * per_tile
}

/// Cycles for `count` circular convolutions of dimension `d` lowered to GEMV on a
/// TPU-like systolic cell of `rows × cols` PEs (the baseline of Fig. 11a/17).
///
/// The circulant matrix (`d × d`) is materialised and the convolution becomes a GEMV
/// (`1 × d × d`). A monolithic systolic cell cannot parallelise independent GEMVs, so
/// the `count` convolutions execute sequentially.
pub fn tpu_gemv_circconv_cycles(d: usize, rows: usize, cols: usize, count: usize) -> u64 {
    (count as u64) * systolic_gemm_cycles(1, d, d, rows, cols)
}

/// Bytes of operand traffic for one circular convolution under the BS dataflow:
/// the two `d`-element vectors plus the `d`-element output — `O(d)`.
pub fn bubble_streaming_bytes(d: usize, bytes_per_element: usize) -> u64 {
    (3 * d * bytes_per_element) as u64
}

/// Bytes of operand traffic for one circular convolution lowered to GEMV: the circulant
/// matrix dominates — `O(d²)` (Tab. IV).
pub fn gemv_circconv_bytes(d: usize, bytes_per_element: usize) -> u64 {
    ((d * d + 2 * d) * bytes_per_element) as u64
}

/// Arithmetic intensity (FLOPs/byte) of circular convolution under the BS dataflow,
/// as derived in Sec. V-C: `d(d + d − 1) / (3d)`.
pub fn bs_arithmetic_intensity(d: usize) -> f64 {
    if d == 0 {
        return 0.0;
    }
    let d = d as f64;
    d * (2.0 * d - 1.0) / (3.0 * d)
}

/// Arithmetic intensity (FLOPs/byte) of circular convolution implemented as GEMV on a
/// GPU/TPU: `d(d + d − 1) / (d² + 2d)` (Sec. V-C) — bounded by 2 regardless of `d`.
pub fn gemv_arithmetic_intensity(d: usize) -> f64 {
    if d == 0 {
        return 0.0;
    }
    let d = d as f64;
    d * (2.0 * d - 1.0) / (d * d + 2.0 * d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bs_cycles_match_paper_formulas() {
        // d == M: 4d - 1.
        assert_eq!(bubble_streaming_cycles(1024, 1024), 4 * 1024 - 1);
        assert_eq!(bubble_streaming_cycles(3, 3), 11);
        // d < M: 3M + d - 1.
        assert_eq!(bubble_streaming_cycles(64, 512), 3 * 512 + 64 - 1);
        // d > M: folded.
        assert_eq!(bubble_streaming_cycles(2048, 512), 4 * (3 * 512 + 512 - 1));
        assert_eq!(bubble_streaming_cycles(0, 32), 0);
    }

    #[test]
    fn fig11a_example_cogsys_beats_tpu_by_3x() {
        // Fig. 11a: three d=3 circular convolutions. CogSys runs them in parallel on
        // three columns (one wave); the TPU-like cell runs three sequential GEMVs.
        let cogsys = bubble_streaming_batch_cycles(3, 3, 3, 32);
        let tpu = tpu_gemv_circconv_cycles(3, 3, 3, 3);
        assert_eq!(cogsys, bubble_streaming_cycles(3, 3));
        assert_eq!(tpu, 3 * systolic_gemm_cycles(1, 3, 3, 3, 3));
        assert!(tpu >= 2 * cogsys, "tpu {tpu} vs cogsys {cogsys}");
    }

    #[test]
    fn batch_cycles_scale_with_waves() {
        let one_wave = bubble_streaming_batch_cycles(512, 32, 512, 32);
        let two_waves = bubble_streaming_batch_cycles(512, 33, 512, 32);
        assert_eq!(two_waves, 2 * one_wave);
        assert_eq!(bubble_streaming_batch_cycles(512, 0, 512, 32), 0);
    }

    #[test]
    fn st_mapping_formulas() {
        // Fig. 12: spatial = k * ceil(d/(N*M)) * T, temporal = ceil(k/N) * ceil(d/M) * T.
        let (d, k, m, n) = (1024, 210, 512, 32);
        let t = 3 * m as u64 + m as u64 - 1;
        assert_eq!(spatial_mapping_cycles(d, k, m, n), (k as u64) * t);
        assert_eq!(
            temporal_mapping_cycles(d, k, m, n),
            (k as u64).div_ceil(n as u64) * 2 * t
        );
        assert_eq!(spatial_mapping_reads(d), 2048);
        assert_eq!(temporal_mapping_reads(d, m, n), (1024 + 512) * 32);
    }

    #[test]
    fn nvsa_and_lvrf_choose_temporal_mapping() {
        // Sec. V-D: "For N=32 and d=1024 in NVSA (k=210) and LVRF (k=2575) workloads,
        // CogSys opts for temporal mapping with 32 parallel circular convolutions."
        for k in [210usize, 2575] {
            let decision = choose_mapping(1024, k, 512, 32);
            assert!(decision.use_temporal, "k={k}: {decision:?}");
            assert!(decision.temporal_cycles < decision.spatial_cycles);
        }
    }

    #[test]
    fn single_conv_prefers_spatial_mapping() {
        // With k=1 there is nothing to parallelise temporally; spatial splitting wins.
        let decision = choose_mapping(16384, 1, 512, 32);
        assert!(!decision.use_temporal, "{decision:?}");
        // And spatial mapping needs fewer reads per T once many columns are involved
        // (the paper's (N/2)x bandwidth-reduction claim).
        assert!(decision.spatial_reads < decision.temporal_reads);
    }

    #[test]
    fn bandwidth_reduction_factor_matches_paper_claim() {
        // Paper: "the bandwidth requirement is reduced by (N/2)x via spatial mapping"
        // for d >> M. With d = 2dM/(d+M) ~ ...; check the asymptotic claim for d >> m.
        let d = 65536;
        let m = 512;
        let n = 32;
        let ratio = temporal_mapping_reads(d, m, n) as f64 / spatial_mapping_reads(d) as f64;
        assert!(
            (ratio - n as f64 / 2.0).abs() / (n as f64 / 2.0) < 0.05,
            "ratio {ratio}"
        );
    }

    #[test]
    fn systolic_gemm_cycles_sane() {
        // A single tile GEMM on a 128x128 array.
        let c = systolic_gemm_cycles(128, 128, 128, 128, 128);
        assert_eq!(c, (128 + 128 + 128 + 128 - 1) as u64);
        // Tiling multiplies the tile count.
        let tiled = systolic_gemm_cycles(128, 256, 256, 128, 128);
        assert_eq!(tiled, 4 * c);
        assert_eq!(systolic_gemm_cycles(0, 1, 1, 8, 8), 0);
    }

    #[test]
    fn gemv_lowering_is_quadratically_worse_in_memory() {
        let d = 2048;
        assert_eq!(bubble_streaming_bytes(d, 1), 3 * 2048);
        assert_eq!(gemv_circconv_bytes(d, 1), (2048 * 2048 + 2 * 2048) as u64);
        assert!(gemv_circconv_bytes(d, 1) > 500 * bubble_streaming_bytes(d, 1));
    }

    #[test]
    fn arithmetic_intensities_match_paper_expressions() {
        // GEMV intensity saturates below 2 FLOPs/byte; BS intensity grows with d.
        for d in [128usize, 512, 2048, 20480] {
            let gemv = gemv_arithmetic_intensity(d);
            let bs = bs_arithmetic_intensity(d);
            assert!(gemv < 2.0);
            assert!(bs > gemv);
        }
        // d = 2048: BS intensity ~ 2d/3 ~ 1365 FLOPs/byte — comfortably compute-bound
        // on the Fig. 11c roofline.
        assert!((bs_arithmetic_intensity(2048) - 1365.0).abs() < 5.0);
        assert_eq!(bs_arithmetic_intensity(0), 0.0);
        assert_eq!(gemv_arithmetic_intensity(0), 0.0);
    }

    #[test]
    fn speedup_over_tpu_grows_with_batch_size() {
        // Fig. 17a trend: more simultaneous circular convolutions -> larger CogSys
        // advantage, saturating in the tens.
        let d = 1024;
        let speedup = |k: usize| {
            let tpu = tpu_gemv_circconv_cycles(d, 128, 128, k) as f64;
            let cog = bubble_streaming_batch_cycles(d, k, 512, 32) as f64;
            tpu / cog
        };
        assert!(speedup(10) > speedup(1));
        assert!(speedup(100) >= speedup(10));
        assert!(speedup(1000) > 20.0, "speedup(1000) = {}", speedup(1000));
    }

    proptest! {
        #[test]
        fn prop_bs_cycles_linear_and_positive(d in 1usize..4096, m in 1usize..1024) {
            let c = bubble_streaming_cycles(d, m);
            prop_assert!(c > 0);
            // Never worse than one fold per m-chunk with full pipeline overhead.
            prop_assert!(c <= ((d.div_ceil(m)) * (4 * m)) as u64 + 4 * d as u64);
        }

        #[test]
        fn prop_temporal_never_slower_when_k_large(d in 64usize..2048, m in 32usize..512) {
            // For k >= n_arrays * ceil(d/m), temporal mapping's utilisation advantage
            // means it is never slower than spatial mapping.
            let n = 16;
            let k = n * d.div_ceil(m) * 2;
            prop_assert!(temporal_mapping_cycles(d, k, m, n) <= spatial_mapping_cycles(d, k, m, n));
        }

        #[test]
        fn prop_mapping_decision_picks_min(d in 1usize..2048, k in 1usize..512, m in 1usize..256) {
            let n = 8;
            let dec = choose_mapping(d, k, m, n);
            let best = dec.spatial_cycles.min(dec.temporal_cycles);
            let chosen = if dec.use_temporal { dec.temporal_cycles } else { dec.spatial_cycles };
            prop_assert_eq!(chosen, best);
        }
    }
}
