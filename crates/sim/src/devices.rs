//! Analytical models of the baseline devices (Tab. VI) and the GPU kernel-efficiency
//! data of Tab. II.
//!
//! The paper profiles four neurosymbolic workloads on physical devices (Coral TPU,
//! Jetson TX2, Xavier NX, RTX 2080Ti, Xeon CPU) and later compares CogSys against those
//! devices plus V100/A100 GPUs. We do not have the hardware, so each baseline is a
//! roofline-style analytical model with *kernel-class-dependent efficiency factors*
//! calibrated from the paper's own profiling (Tab. II): neural kernels achieve ~95% of
//! peak compute, symbolic kernels achieve only a few percent of peak compute while
//! saturating DRAM bandwidth, and every symbolic kernel pays a launch/dispatch overhead
//! (the paper attributes about half of the symbolic latency to data movement and launch
//! overheads, >80% of it host→device).

use crate::kernel::{Kernel, KernelClass};
use crate::roofline::Roofline;
use cogsys_vsa::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The baseline hardware platforms modelled in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// NVIDIA Jetson TX2 edge SoC (15 W).
    JetsonTx2,
    /// NVIDIA Xavier NX edge SoC (20 W).
    XavierNx,
    /// Intel Xeon server CPU (145 W).
    XeonCpu,
    /// NVIDIA RTX 2080 Ti desktop GPU (250 W).
    RtxGpu,
    /// NVIDIA V100 datacenter GPU (300 W).
    V100,
    /// NVIDIA A100 datacenter GPU (400 W).
    A100,
    /// Google Coral edge TPU (4 W).
    CoralTpu,
}

impl DeviceKind {
    /// All modelled devices.
    pub fn all() -> [DeviceKind; 7] {
        [
            DeviceKind::JetsonTx2,
            DeviceKind::XavierNx,
            DeviceKind::XeonCpu,
            DeviceKind::RtxGpu,
            DeviceKind::V100,
            DeviceKind::A100,
            DeviceKind::CoralTpu,
        ]
    }

    /// The four devices used in the end-to-end comparison of Fig. 15 / Fig. 16.
    pub fn fig15_baselines() -> [DeviceKind; 4] {
        [
            DeviceKind::JetsonTx2,
            DeviceKind::XavierNx,
            DeviceKind::XeonCpu,
            DeviceKind::RtxGpu,
        ]
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeviceKind::JetsonTx2 => "Jetson TX2",
            DeviceKind::XavierNx => "Xavier NX",
            DeviceKind::XeonCpu => "Xeon CPU",
            DeviceKind::RtxGpu => "RTX 2080Ti",
            DeviceKind::V100 => "V100",
            DeviceKind::A100 => "A100",
            DeviceKind::CoralTpu => "Coral TPU",
        };
        write!(f, "{name}")
    }
}

/// Per-kernel-class efficiency factors of a device (fractions of peak).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelEfficiency {
    /// Fraction of peak compute achieved.
    pub compute: f64,
    /// Fraction of peak memory bandwidth achieved.
    pub bandwidth: f64,
    /// Fixed dispatch/launch overhead per kernel in seconds (includes the host↔device
    /// transfer latency the paper measures for symbolic kernels).
    pub dispatch_overhead_s: f64,
}

/// An analytical device model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Which platform this models.
    pub kind: DeviceKind,
    /// Peak FP32 compute in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub peak_bandwidth_gbps: f64,
    /// Board/TDP power in watts (used for the energy comparison of Fig. 16).
    pub power_watts: f64,
    /// Efficiency on neural (GEMM/conv) kernels.
    pub neural: KernelEfficiency,
    /// Efficiency on symbolic (vector/element-wise) kernels.
    pub symbolic: KernelEfficiency,
}

impl DeviceModel {
    /// Builds the model for a device, with parameters from vendor datasheets and the
    /// efficiency factors calibrated from Tab. II and the Fig. 4 profiling.
    pub fn new(kind: DeviceKind) -> Self {
        // (peak GFLOPs, bandwidth GB/s, power W)
        let (peak, bw, power) = match kind {
            DeviceKind::JetsonTx2 => (665.0, 58.3, 15.0),
            DeviceKind::XavierNx => (1_300.0, 59.7, 20.0),
            DeviceKind::XeonCpu => (1_800.0, 120.0, 145.0),
            DeviceKind::RtxGpu => (13_450.0, 616.0, 250.0),
            DeviceKind::V100 => (15_700.0, 900.0, 300.0),
            DeviceKind::A100 => (19_500.0, 1_555.0, 400.0),
            DeviceKind::CoralTpu => (2_000.0, 25.6, 4.0),
        };
        // Neural kernels: ~95% compute throughput, modest bandwidth demand (Tab. II
        // sgemm row). CPUs reach a smaller fraction of their nominal peak on DNN layers.
        let neural = match kind {
            DeviceKind::XeonCpu => KernelEfficiency {
                compute: 0.55,
                bandwidth: 0.60,
                dispatch_overhead_s: 2e-6,
            },
            DeviceKind::CoralTpu => KernelEfficiency {
                compute: 0.80,
                bandwidth: 0.50,
                dispatch_overhead_s: 1e-4,
            },
            DeviceKind::JetsonTx2 | DeviceKind::XavierNx => KernelEfficiency {
                compute: 0.80,
                bandwidth: 0.55,
                dispatch_overhead_s: 8e-5,
            },
            _ => KernelEfficiency {
                compute: 0.95,
                bandwidth: 0.60,
                dispatch_overhead_s: 2e-5,
            },
        };
        // Symbolic kernels: a few percent of peak compute (Tab. II: 3.0% / 2.3%),
        // bandwidth-saturating (78-91% DRAM utilisation), and each of the many small
        // kernels pays launch plus host↔device transfer overheads.
        let symbolic = match kind {
            DeviceKind::XeonCpu => KernelEfficiency {
                compute: 0.06,
                bandwidth: 0.70,
                dispatch_overhead_s: 3e-6,
            },
            DeviceKind::CoralTpu => KernelEfficiency {
                compute: 0.01,
                bandwidth: 0.60,
                dispatch_overhead_s: 5e-4,
            },
            DeviceKind::JetsonTx2 => KernelEfficiency {
                compute: 0.02,
                bandwidth: 0.75,
                dispatch_overhead_s: 4e-4,
            },
            DeviceKind::XavierNx => KernelEfficiency {
                compute: 0.025,
                bandwidth: 0.78,
                dispatch_overhead_s: 2.5e-4,
            },
            _ => KernelEfficiency {
                compute: 0.03,
                bandwidth: 0.85,
                dispatch_overhead_s: 5e-5,
            },
        };
        Self {
            kind,
            peak_gflops: peak,
            peak_bandwidth_gbps: bw,
            power_watts: power,
            neural,
            symbolic,
        }
    }

    /// The efficiency factors used for a kernel class.
    pub fn efficiency(&self, class: KernelClass) -> KernelEfficiency {
        match class {
            KernelClass::Neural => self.neural,
            KernelClass::Symbolic => self.symbolic,
        }
    }

    /// The device's roofline (Fig. 5 uses the RTX one).
    pub fn roofline(&self) -> Roofline {
        Roofline::new(self.peak_gflops, self.peak_bandwidth_gbps)
    }

    /// Execution time of one kernel in seconds.
    ///
    /// `time = max(flops / (peak·eff_c), bytes / (bw·eff_b)) + dispatch_overhead`.
    pub fn kernel_seconds(&self, kernel: &Kernel, precision: Precision) -> f64 {
        let eff = self.efficiency(kernel.class());
        let flops = kernel.flops() as f64;
        let bytes = kernel.min_bytes(precision) as f64;
        let compute_s = flops / (self.peak_gflops * 1e9 * eff.compute);
        let memory_s = bytes / (self.peak_bandwidth_gbps * 1e9 * eff.bandwidth);
        compute_s.max(memory_s) + eff.dispatch_overhead_s
    }

    /// Execution time of a kernel sequence in seconds (kernels run back to back — the
    /// sequential neural→symbolic dependence the paper highlights).
    pub fn sequence_seconds(&self, kernels: &[Kernel], precision: Precision) -> f64 {
        kernels
            .iter()
            .map(|k| self.kernel_seconds(k, precision))
            .sum()
    }

    /// Energy in joules for a given runtime (board power × time).
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.power_watts * seconds
    }
}

/// One row of the Tab. II kernel-inefficiency analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuKernelStats {
    /// Kernel name as reported by the profiler.
    pub kernel: &'static str,
    /// Neural or symbolic.
    pub class: KernelClass,
    /// Compute throughput (% of peak).
    pub compute_throughput_pct: f64,
    /// ALU utilisation (%).
    pub alu_utilization_pct: f64,
    /// L1 cache throughput (%).
    pub l1_throughput_pct: f64,
    /// L2 cache throughput (%).
    pub l2_throughput_pct: f64,
    /// L1 hit rate (%).
    pub l1_hit_rate_pct: f64,
    /// L2 hit rate (%).
    pub l2_hit_rate_pct: f64,
    /// DRAM bandwidth utilisation (%).
    pub dram_bw_utilization_pct: f64,
}

/// The measured kernel statistics of Tab. II (reproduced verbatim as reference data for
/// the `tab02_kernel_stats` experiment and used to calibrate [`DeviceModel`]).
pub fn tab2_kernel_stats() -> Vec<GpuKernelStats> {
    vec![
        GpuKernelStats {
            kernel: "sgemm_nn",
            class: KernelClass::Neural,
            compute_throughput_pct: 95.1,
            alu_utilization_pct: 90.1,
            l1_throughput_pct: 79.7,
            l2_throughput_pct: 19.2,
            l1_hit_rate_pct: 1.6,
            l2_hit_rate_pct: 86.8,
            dram_bw_utilization_pct: 14.9,
        },
        GpuKernelStats {
            kernel: "relu_nn",
            class: KernelClass::Neural,
            compute_throughput_pct: 92.9,
            alu_utilization_pct: 48.3,
            l1_throughput_pct: 82.6,
            l2_throughput_pct: 17.5,
            l1_hit_rate_pct: 51.6,
            l2_hit_rate_pct: 65.5,
            dram_bw_utilization_pct: 24.2,
        },
        GpuKernelStats {
            kernel: "vectorized_elem",
            class: KernelClass::Symbolic,
            compute_throughput_pct: 3.0,
            alu_utilization_pct: 5.9,
            l1_throughput_pct: 28.4,
            l2_throughput_pct: 29.8,
            l1_hit_rate_pct: 29.5,
            l2_hit_rate_pct: 48.6,
            dram_bw_utilization_pct: 90.9,
        },
        GpuKernelStats {
            kernel: "elementwise",
            class: KernelClass::Symbolic,
            compute_throughput_pct: 2.3,
            alu_utilization_pct: 4.5,
            l1_throughput_pct: 10.8,
            l2_throughput_pct: 22.8,
            l1_hit_rate_pct: 33.3,
            l2_hit_rate_pct: 34.3,
            dram_bw_utilization_pct: 78.4,
        },
    ]
}

/// Convenience wrapper bundling a [`DeviceModel`] with a display name, used by the
/// figure-regeneration binaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// The underlying analytical model.
    pub model: DeviceModel,
}

impl Device {
    /// Creates the device of the given kind.
    pub fn of(kind: DeviceKind) -> Self {
        Self {
            model: DeviceModel::new(kind),
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        self.model.kind.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_have_positive_parameters() {
        for kind in DeviceKind::all() {
            let m = DeviceModel::new(kind);
            assert!(m.peak_gflops > 0.0);
            assert!(m.peak_bandwidth_gbps > 0.0);
            assert!(m.power_watts > 0.0);
            assert!(m.neural.compute > m.symbolic.compute, "{kind}");
            assert!(m.symbolic.bandwidth > 0.0);
        }
        assert_eq!(DeviceKind::fig15_baselines().len(), 4);
    }

    #[test]
    fn device_power_matches_tab6() {
        assert_eq!(DeviceModel::new(DeviceKind::XeonCpu).power_watts, 145.0);
        assert_eq!(DeviceModel::new(DeviceKind::RtxGpu).power_watts, 250.0);
        assert_eq!(DeviceModel::new(DeviceKind::JetsonTx2).power_watts, 15.0);
        assert_eq!(DeviceModel::new(DeviceKind::XavierNx).power_watts, 20.0);
        assert_eq!(DeviceModel::new(DeviceKind::CoralTpu).power_watts, 4.0);
    }

    #[test]
    fn neural_kernels_run_near_peak_symbolic_kernels_do_not() {
        let gpu = DeviceModel::new(DeviceKind::RtxGpu);
        let gemm = Kernel::Gemm {
            m: 2048,
            n: 2048,
            k: 2048,
        };
        let circ = Kernel::CircConv {
            dim: 1024,
            count: 1,
        };
        let gemm_s = gpu.kernel_seconds(&gemm, Precision::Fp32);
        // Achieved GFLOP/s on the large GEMM should be close to peak * efficiency.
        let achieved = gemm.flops() as f64 / gemm_s / 1e9;
        assert!(achieved > 0.7 * gpu.peak_gflops, "achieved {achieved}");
        // The circular convolution is dominated by overhead + bandwidth, reaching only a
        // tiny fraction of peak.
        let circ_s = gpu.kernel_seconds(&circ, Precision::Fp32);
        let circ_achieved = circ.flops() as f64 / circ_s / 1e9;
        assert!(
            circ_achieved < 0.05 * gpu.peak_gflops,
            "achieved {circ_achieved}"
        );
    }

    #[test]
    fn edge_devices_are_slower_than_desktop_gpu() {
        // Fig. 4b / Fig. 15 ordering: TX2 > NX > Xeon > RTX in runtime.
        let gemm = Kernel::Gemm {
            m: 512,
            n: 512,
            k: 512,
        };
        let circ = Kernel::CircConv {
            dim: 1024,
            count: 200,
        };
        let kernels = [gemm, circ];
        let time =
            |kind: DeviceKind| DeviceModel::new(kind).sequence_seconds(&kernels, Precision::Fp32);
        let tx2 = time(DeviceKind::JetsonTx2);
        let nx = time(DeviceKind::XavierNx);
        let xeon = time(DeviceKind::XeonCpu);
        let rtx = time(DeviceKind::RtxGpu);
        assert!(tx2 > nx, "tx2 {tx2} vs nx {nx}");
        assert!(nx > xeon, "nx {nx} vs xeon {xeon}");
        assert!(xeon > rtx, "xeon {xeon} vs rtx {rtx}");
    }

    #[test]
    fn datacenter_gpus_beat_rtx() {
        let circ = Kernel::CircConv {
            dim: 1024,
            count: 500,
        };
        let rtx = DeviceModel::new(DeviceKind::RtxGpu).kernel_seconds(&circ, Precision::Fp32);
        let v100 = DeviceModel::new(DeviceKind::V100).kernel_seconds(&circ, Precision::Fp32);
        let a100 = DeviceModel::new(DeviceKind::A100).kernel_seconds(&circ, Precision::Fp32);
        assert!(v100 < rtx);
        assert!(a100 < v100);
    }

    #[test]
    fn tab2_data_matches_paper() {
        let stats = tab2_kernel_stats();
        assert_eq!(stats.len(), 4);
        assert_eq!(stats[0].kernel, "sgemm_nn");
        assert_eq!(stats[0].compute_throughput_pct, 95.1);
        assert_eq!(stats[2].dram_bw_utilization_pct, 90.9);
        // Symbolic kernels: low compute throughput, high DRAM utilisation.
        for s in stats.iter().filter(|s| s.class == KernelClass::Symbolic) {
            assert!(s.compute_throughput_pct < 5.0);
            assert!(s.dram_bw_utilization_pct > 70.0);
        }
        for s in stats.iter().filter(|s| s.class == KernelClass::Neural) {
            assert!(s.compute_throughput_pct > 90.0);
            assert!(s.dram_bw_utilization_pct < 30.0);
        }
    }

    #[test]
    fn energy_scales_with_power_and_time() {
        let gpu = DeviceModel::new(DeviceKind::RtxGpu);
        let tx2 = DeviceModel::new(DeviceKind::JetsonTx2);
        assert!((gpu.energy_joules(2.0) - 500.0).abs() < 1e-9);
        assert!((tx2.energy_joules(2.0) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn device_wrapper_names() {
        assert_eq!(Device::of(DeviceKind::RtxGpu).name(), "RTX 2080Ti");
        assert_eq!(DeviceKind::CoralTpu.to_string(), "Coral TPU");
    }

    #[test]
    fn symbolic_dispatch_overhead_dominates_small_kernels() {
        // A tiny element-wise op's latency is essentially the dispatch overhead — this
        // is why thousands of small sequential symbolic ops crush GPU performance
        // (Sec. III-D).
        let gpu = DeviceModel::new(DeviceKind::RtxGpu);
        let tiny = Kernel::ElementWise {
            elements: 64,
            op: "mult".into(),
        };
        let t = gpu.kernel_seconds(&tiny, Precision::Fp32);
        assert!(t >= gpu.symbolic.dispatch_overhead_s);
        assert!(t < 2.0 * gpu.symbolic.dispatch_overhead_s);
    }
}
