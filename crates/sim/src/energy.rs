//! Area, power and energy models (Tab. IX, Fig. 14).
//!
//! The paper implements CogSys in RTL and reports post-synthesis area and power under
//! TSMC 28 nm at 0.8 GHz. We cannot run the ASIC flow, so this module is an analytical
//! model *anchored to the paper's published component numbers* and extrapolated linearly
//! in PE count and SRAM capacity. The anchored values (16×32×32 reconfigurable array,
//! 512-PE SIMD unit, 4.5 MiB SRAM) are:
//!
//! | Component | FP32 | FP8 | INT8 |
//! |---|---|---|---|
//! | Array area (mm²) | 28.9 | 9.9 | 3.8 |
//! | Array power (mW) | 4468.5 | 1237.8 | 1104.6 |
//! | SIMD area (mm²) | 2.01 | 0.28 | 0.21 |
//! | SIMD power (mW) | 297.0 | 64.8 | 80.4 |
//!
//! and the whole accelerator occupies 4.0 mm² / 1.48 W at INT8 (Fig. 14), with a
//! reconfigurability overhead of 4.8 % over a plain systolic array at FP8 and 12.1 % at
//! INT8 (Tab. IX).

use crate::config::AcceleratorConfig;
use cogsys_vsa::Precision;
use serde::{Deserialize, Serialize};

/// Reference PE count of the anchored array numbers (16 cells × 32 × 32).
const REF_ARRAY_PES: f64 = 16.0 * 32.0 * 32.0;
/// Reference SIMD PE count.
const REF_SIMD_PES: f64 = 512.0;
/// Incremental SRAM area per MiB. The paper's 4.0 mm² total (Fig. 14) is accounted for
/// by the INT8 array (3.8 mm²) and SIMD unit (0.21 mm²) alone, so the 4.5 MiB SRAM
/// macros are evidently folded into the anchored array number; we therefore attribute
/// no *additional* area to SRAM and scale only with PE count.
const SRAM_MM2_PER_MIB: f64 = 0.0;
/// SRAM leakage+access power per MiB (mW), chosen so that array + SIMD + SRAM match the
/// 1.48 W average power of Fig. 14 at INT8.
const SRAM_MW_PER_MIB: f64 = 65.0;

/// Per-precision anchored component numbers from Tab. IX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct PrecisionAnchor {
    array_area_mm2: f64,
    array_power_mw: f64,
    simd_area_mm2: f64,
    simd_power_mw: f64,
    /// Area overhead of the reconfigurable array over a plain systolic array.
    reconfig_overhead: f64,
}

fn anchor(precision: Precision) -> PrecisionAnchor {
    match precision {
        Precision::Fp32 => PrecisionAnchor {
            array_area_mm2: 28.9,
            array_power_mw: 4468.5,
            simd_area_mm2: 2.01,
            simd_power_mw: 297.0,
            reconfig_overhead: 0.01,
        },
        Precision::Fp8 => PrecisionAnchor {
            array_area_mm2: 9.9,
            array_power_mw: 1237.8,
            simd_area_mm2: 0.28,
            simd_power_mw: 64.8,
            reconfig_overhead: 0.048,
        },
        Precision::Int8 => PrecisionAnchor {
            array_area_mm2: 3.8,
            array_power_mw: 1104.6,
            simd_area_mm2: 0.21,
            simd_power_mw: 80.4,
            reconfig_overhead: 0.121,
        },
    }
}

/// Area breakdown of an accelerator instance in mm² (28 nm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Reconfigurable compute array.
    pub array_mm2: f64,
    /// Custom SIMD unit.
    pub simd_mm2: f64,
    /// On-chip SRAM.
    pub sram_mm2: f64,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total_mm2(&self) -> f64 {
        self.array_mm2 + self.simd_mm2 + self.sram_mm2
    }
}

/// Power breakdown of an accelerator instance in watts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Compute array power.
    pub array_w: f64,
    /// SIMD unit power.
    pub simd_w: f64,
    /// SRAM power.
    pub sram_w: f64,
}

impl PowerBreakdown {
    /// Total power.
    pub fn total_w(&self) -> f64 {
        self.array_w + self.simd_w + self.sram_w
    }
}

/// The area / power / energy model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    config: AcceleratorConfig,
}

impl EnergyModel {
    /// Creates a model for an accelerator configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        Self { config }
    }

    /// The configuration this model describes.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Area breakdown, scaled linearly from the anchored component numbers.
    pub fn area(&self) -> AreaBreakdown {
        let a = anchor(self.config.precision);
        let pe_scale = self.config.geometry.total_pes() as f64 / REF_ARRAY_PES;
        let simd_scale = self.config.simd_pes as f64 / REF_SIMD_PES;
        let sram_mib = self.config.total_sram_bytes() as f64 / (1024.0 * 1024.0);
        let reconfig = if self.config.reconfigurable_pe {
            1.0
        } else {
            // A plain systolic array saves the reconfiguration muxes/registers.
            1.0 / (1.0 + a.reconfig_overhead)
        };
        AreaBreakdown {
            array_mm2: a.array_area_mm2 * pe_scale * reconfig,
            simd_mm2: a.simd_area_mm2 * simd_scale,
            sram_mm2: sram_mib * SRAM_MM2_PER_MIB,
        }
    }

    /// Average power breakdown at full activity.
    pub fn power(&self) -> PowerBreakdown {
        let a = anchor(self.config.precision);
        let pe_scale = self.config.geometry.total_pes() as f64 / REF_ARRAY_PES;
        let simd_scale = self.config.simd_pes as f64 / REF_SIMD_PES;
        let freq_scale = self.config.frequency_ghz / 0.8;
        let sram_mib = self.config.total_sram_bytes() as f64 / (1024.0 * 1024.0);
        PowerBreakdown {
            array_w: a.array_power_mw * pe_scale * freq_scale / 1000.0,
            simd_w: a.simd_power_mw * simd_scale * freq_scale / 1000.0,
            sram_w: sram_mib * SRAM_MW_PER_MIB / 1000.0,
        }
    }

    /// Area overhead of the reconfigurable array relative to a plain systolic array of
    /// the same size and precision (Tab. IX bottom row: <1 % FP32, 4.8 % FP8, 12.1 %
    /// INT8).
    pub fn reconfigurability_overhead(&self) -> f64 {
        anchor(self.config.precision).reconfig_overhead
    }

    /// Energy in joules for running the accelerator for `cycles` cycles with an average
    /// compute-array utilisation of `utilization` (0–1). Idle components draw 10 % of
    /// their active power (clock tree + leakage).
    pub fn energy_joules(&self, cycles: u64, utilization: f64) -> f64 {
        let seconds = self.config.cycles_to_seconds(cycles);
        let p = self.power();
        let u = utilization.clamp(0.0, 1.0);
        let active = p.array_w * (0.1 + 0.9 * u) + p.simd_w * (0.1 + 0.9 * u) + p.sram_w;
        active * seconds
    }

    /// Energy per multiply–accumulate in picojoules at full utilisation — a convenient
    /// scalar for cross-checking against the per-op energy numbers common for 28 nm.
    pub fn energy_per_mac_pj(&self) -> f64 {
        let p = self.power();
        let macs_per_second =
            self.config.geometry.total_pes() as f64 * self.config.frequency_ghz * 1e9;
        (p.array_w / macs_per_second) * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cogsys_int8_matches_fig14_area_and_power() {
        let model = EnergyModel::new(AcceleratorConfig::cogsys());
        let area = model.area();
        let power = model.power();
        // Fig. 14: 4.0 mm^2 and 1.48 W. Allow 10% slack for the SRAM estimate.
        assert!(
            (area.total_mm2() - 4.0).abs() < 0.4,
            "area {}",
            area.total_mm2()
        );
        assert!(
            (power.total_w() - 1.48).abs() < 0.15,
            "power {}",
            power.total_w()
        );
        // Component anchors are reproduced exactly.
        assert!((area.array_mm2 - 3.8).abs() < 1e-9);
        assert!((area.simd_mm2 - 0.21).abs() < 1e-9);
        assert!((power.array_w - 1.1046).abs() < 1e-9);
    }

    #[test]
    fn precision_scaling_matches_tab9() {
        let fp32 = EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp32));
        let fp8 = EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp8));
        let int8 = EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Int8));
        // Tab. IX: FP32 -> INT8 gives 7.71x array area and 4.02x array power savings.
        let area_saving = fp32.area().array_mm2 / int8.area().array_mm2;
        let power_saving = fp32.power().array_w / int8.power().array_w;
        assert!((area_saving - 7.6).abs() < 0.2, "area saving {area_saving}");
        assert!(
            (power_saving - 4.05).abs() < 0.1,
            "power saving {power_saving}"
        );
        // FP8 sits between the two.
        assert!(fp8.area().array_mm2 < fp32.area().array_mm2);
        assert!(fp8.area().array_mm2 > int8.area().array_mm2);
    }

    #[test]
    fn reconfig_overhead_matches_tab9() {
        assert!(
            (EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp8))
                .reconfigurability_overhead()
                - 0.048)
                .abs()
                < 1e-9
        );
        assert!(
            EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp32))
                .reconfigurability_overhead()
                < 0.01 + 1e-9
        );
    }

    #[test]
    fn plain_systolic_array_is_slightly_smaller() {
        let cogsys = EnergyModel::new(AcceleratorConfig::cogsys());
        let mut sa_config = AcceleratorConfig::cogsys();
        sa_config.reconfigurable_pe = false;
        let sa = EnergyModel::new(sa_config);
        let overhead = cogsys.area().array_mm2 / sa.area().array_mm2 - 1.0;
        assert!((overhead - 0.121).abs() < 1e-6, "overhead {overhead}");
    }

    #[test]
    fn energy_scales_with_cycles_and_utilization() {
        let model = EnergyModel::new(AcceleratorConfig::cogsys());
        let e1 = model.energy_joules(800_000_000, 1.0); // one second, fully busy
        let e2 = model.energy_joules(1_600_000_000, 1.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        let idle = model.energy_joules(800_000_000, 0.0);
        assert!(idle < e1);
        assert!(idle > 0.0);
        // One busy second is roughly the Fig. 14 average power in joules.
        assert!((e1 - 1.48).abs() < 0.2, "energy {e1}");
    }

    #[test]
    fn per_mac_energy_is_plausible_for_28nm() {
        // INT8 MACs in 28 nm cost on the order of 0.05-0.5 pJ; FP32 several times more.
        let int8 = EnergyModel::new(AcceleratorConfig::cogsys());
        let fp32 = EnergyModel::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp32));
        let int8_pj = int8.energy_per_mac_pj();
        let fp32_pj = fp32.energy_per_mac_pj();
        assert!(int8_pj > 0.01 && int8_pj < 1.0, "int8 {int8_pj} pJ");
        assert!(fp32_pj > int8_pj);
    }

    #[test]
    fn area_scales_linearly_with_pe_count() {
        let full = EnergyModel::new(AcceleratorConfig::cogsys());
        let mut half_config = AcceleratorConfig::cogsys();
        half_config.geometry.cells = 8;
        let half = EnergyModel::new(half_config);
        assert!((full.area().array_mm2 / half.area().array_mm2 - 2.0).abs() < 1e-9);
        assert!((full.power().array_w / half.power().array_w - 2.0).abs() < 1e-9);
    }
}
