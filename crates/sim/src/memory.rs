//! On-chip SRAM and off-chip DRAM models.
//!
//! The CogSys accelerator (Fig. 9) is backed by three double-buffered SRAMs — SRAM A
//! (shared weight buffer, 256 KiB), SRAM B (distributed activation buffer, 4 MiB) and
//! SRAM C (output buffer) — plus a 700 GB/s DRAM interface. Double buffering hides the
//! load/store latency of the next tile behind the computation of the current one; the
//! model here tracks capacity, per-transfer cycles, and the stalls that remain when a
//! transfer is longer than the computation it is hidden behind.

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// One double-buffered SRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct DoubleBufferedSram {
    name: &'static str,
    capacity_bytes: usize,
    /// Bytes that can be written into the shadow buffer per cycle (fill bandwidth).
    fill_bytes_per_cycle: f64,
    resident_bytes: usize,
}

impl DoubleBufferedSram {
    /// Creates an SRAM with the given capacity and fill bandwidth.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if the capacity or bandwidth is zero.
    pub fn new(
        name: &'static str,
        capacity_bytes: usize,
        fill_bytes_per_cycle: f64,
    ) -> Result<Self, SimError> {
        if capacity_bytes == 0 {
            return Err(SimError::InvalidConfig {
                field: "sram capacity",
                message: format!("{name} capacity must be positive"),
            });
        }
        if fill_bytes_per_cycle <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "sram fill bandwidth",
                message: format!("{name} fill bandwidth must be positive"),
            });
        }
        Ok(Self {
            name,
            capacity_bytes,
            fill_bytes_per_cycle,
            resident_bytes: 0,
        })
    }

    /// SRAM name (for diagnostics).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity of one buffer in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently resident in the active buffer.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Marks a working set as resident.
    ///
    /// # Errors
    /// Returns [`SimError::CapacityExceeded`] if the working set does not fit.
    pub fn allocate(&mut self, bytes: usize) -> Result<(), SimError> {
        if self.resident_bytes + bytes > self.capacity_bytes {
            return Err(SimError::CapacityExceeded {
                memory: self.name,
                requested: bytes,
                available: self.capacity_bytes - self.resident_bytes,
            });
        }
        self.resident_bytes += bytes;
        Ok(())
    }

    /// Releases the active working set (tile switch).
    pub fn reset(&mut self) {
        self.resident_bytes = 0;
    }

    /// Cycles needed to fill the shadow buffer with `bytes`.
    pub fn fill_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.fill_bytes_per_cycle).ceil() as u64
    }

    /// Stall cycles remaining when a `bytes`-sized prefetch must hide behind
    /// `compute_cycles` of computation: zero when double buffering fully hides it.
    pub fn stall_cycles(&self, bytes: usize, compute_cycles: u64) -> u64 {
        self.fill_cycles(bytes).saturating_sub(compute_cycles)
    }
}

/// Off-chip DRAM bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramModel {
    /// Sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Accelerator clock in GHz (to convert transfer time to cycles).
    pub frequency_ghz: f64,
}

impl DramModel {
    /// Creates a DRAM model.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for non-positive bandwidth or frequency.
    pub fn new(bandwidth_gbps: f64, frequency_ghz: f64) -> Result<Self, SimError> {
        if bandwidth_gbps <= 0.0 || frequency_ghz <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "dram model",
                message: "bandwidth and frequency must be positive".into(),
            });
        }
        Ok(Self {
            bandwidth_gbps,
            frequency_ghz,
        })
    }

    /// Bytes transferred per accelerator cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        // GB/s divided by cycles/s: (bandwidth * 1e9) / (frequency * 1e9).
        self.bandwidth_gbps / self.frequency_ghz
    }

    /// Cycles to transfer `bytes` at full bandwidth.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle()).ceil() as u64
    }

    /// Transfer time in seconds.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.bandwidth_gbps * 1e9)
    }
}

/// The accelerator's full memory subsystem (three SRAMs + DRAM).
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    /// SRAM A — shared weight buffer.
    pub sram_a: DoubleBufferedSram,
    /// SRAM B — distributed activation buffer.
    pub sram_b: DoubleBufferedSram,
    /// SRAM C — output buffer.
    pub sram_c: DoubleBufferedSram,
    /// DRAM interface.
    pub dram: DramModel,
}

impl MemorySystem {
    /// Builds the memory system from an accelerator configuration.
    ///
    /// # Errors
    /// Propagates [`SimError::InvalidConfig`] from any component.
    pub fn from_config(config: &crate::config::AcceleratorConfig) -> Result<Self, SimError> {
        let dram = DramModel::new(config.dram_bandwidth_gbps, config.frequency_ghz)?;
        // The fill bandwidth of each SRAM is bounded by the DRAM interface; assume the
        // bus is shared equally when all three stream simultaneously.
        let fill = dram.bytes_per_cycle().max(1.0);
        Ok(Self {
            sram_a: DoubleBufferedSram::new("SRAM A", config.sram_a_bytes, fill)?,
            sram_b: DoubleBufferedSram::new("SRAM B", config.sram_b_bytes, fill)?,
            sram_c: DoubleBufferedSram::new("SRAM C", config.sram_c_bytes, fill)?,
            dram,
        })
    }

    /// Total SRAM capacity.
    pub fn total_sram_bytes(&self) -> usize {
        self.sram_a.capacity_bytes() + self.sram_b.capacity_bytes() + self.sram_c.capacity_bytes()
    }

    /// Whether a working set (weights + activations + outputs) fits entirely on-chip.
    pub fn fits_on_chip(&self, weights: usize, activations: usize, outputs: usize) -> bool {
        weights <= self.sram_a.capacity_bytes()
            && activations <= self.sram_b.capacity_bytes()
            && outputs <= self.sram_c.capacity_bytes()
    }

    /// DRAM stall cycles for a kernel that moves `dram_bytes` while computing for
    /// `compute_cycles` (double buffering overlaps the two).
    pub fn dram_stall_cycles(&self, dram_bytes: u64, compute_cycles: u64) -> u64 {
        self.dram
            .transfer_cycles(dram_bytes)
            .saturating_sub(compute_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;

    #[test]
    fn sram_capacity_tracking() {
        let mut s = DoubleBufferedSram::new("SRAM A", 1024, 8.0).unwrap();
        assert_eq!(s.capacity_bytes(), 1024);
        s.allocate(512).unwrap();
        s.allocate(512).unwrap();
        assert_eq!(s.resident_bytes(), 1024);
        let err = s.allocate(1).unwrap_err();
        assert!(matches!(
            err,
            SimError::CapacityExceeded { available: 0, .. }
        ));
        s.reset();
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.name(), "SRAM A");
    }

    #[test]
    fn sram_rejects_degenerate_configs() {
        assert!(DoubleBufferedSram::new("x", 0, 8.0).is_err());
        assert!(DoubleBufferedSram::new("x", 128, 0.0).is_err());
    }

    #[test]
    fn double_buffering_hides_short_transfers() {
        let s = DoubleBufferedSram::new("SRAM B", 4096, 16.0).unwrap();
        assert_eq!(s.fill_cycles(1600), 100);
        // A 100-cycle fill behind a 500-cycle compute causes no stall.
        assert_eq!(s.stall_cycles(1600, 500), 0);
        // Behind a 40-cycle compute it stalls for the remainder.
        assert_eq!(s.stall_cycles(1600, 40), 60);
    }

    #[test]
    fn dram_transfer_arithmetic() {
        let d = DramModel::new(700.0, 0.8).unwrap();
        assert!((d.bytes_per_cycle() - 875.0).abs() < 1e-9);
        assert_eq!(d.transfer_cycles(875_000), 1000);
        assert!((d.transfer_seconds(700_000_000_000) - 1.0).abs() < 1e-9);
        assert!(DramModel::new(0.0, 1.0).is_err());
        assert!(DramModel::new(100.0, 0.0).is_err());
    }

    #[test]
    fn memory_system_matches_cogsys_config() {
        let m = MemorySystem::from_config(&AcceleratorConfig::cogsys()).unwrap();
        assert_eq!(m.total_sram_bytes(), 4 * 1024 * 1024 + 512 * 1024);
        // The factored NVSA codebooks (~190 KB, Fig. 8) fit in SRAM B; the original
        // 13.56 MB codebook does not fit on chip at all.
        assert!(m.fits_on_chip(100 * 1024, 190 * 1024, 64 * 1024));
        assert!(!m.fits_on_chip(100 * 1024, 13_560 * 1024, 64 * 1024));
    }

    #[test]
    fn dram_stalls_only_when_compute_is_short() {
        let m = MemorySystem::from_config(&AcceleratorConfig::cogsys()).unwrap();
        let bytes = 875_000; // 1000 cycles of DRAM traffic.
        assert_eq!(m.dram_stall_cycles(bytes, 2000), 0);
        assert_eq!(m.dram_stall_cycles(bytes, 400), 600);
    }
}
