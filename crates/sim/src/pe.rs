//! Reconfigurable neuro/symbolic processing element (nsPE) and 1-D column model.
//!
//! Each nsPE (Fig. 10) has four registers — **stationary**, **passing**, **streaming**
//! and **partial-sum** — and supports three modes:
//!
//! * **Load** — the stationary vector (GEMM weights or the circular-convolution
//!   stationary operand A) is shifted in through the `top_in_A` links.
//! * **GEMM** — the PE behaves like a TPU MAC cell: inputs stream in from the left,
//!   partial sums reduce downward.
//! * **Circular convolution** — operand B streams downward *through the passing
//!   register*, spending one extra cycle per PE (the "bubble"), which realises the
//!   circular shift without materialising the `O(d²)` shifted matrix.
//!
//! [`PeColumn`] is a register-transfer-level simulation of one column executing the
//! bubble-streaming dataflow; its numerical output is tested against the functional
//! circular convolution of `cogsys-vsa`, and its cycle count against the analytical
//! model in [`crate::dataflow`].

use crate::error::SimError;
use serde::{Deserialize, Serialize};

/// Operating mode of an nsPE (Fig. 10a–c).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PeMode {
    /// Loading the stationary register through the `top_in_A` chain.
    Load,
    /// TPU-style GEMM / convolution mode.
    #[default]
    Gemm,
    /// Bubble-streaming circular convolution (or correlation) mode.
    CircConv,
}

/// One reconfigurable neuro/symbolic processing element.
///
/// The struct mirrors the four architectural registers. The combinational MAC is
/// modelled by [`NsPe::mac`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NsPe {
    /// Stationary register (weight / stationary operand element).
    pub stationary: f32,
    /// Passing register — the "bubble" that delays the streaming operand by one cycle.
    pub passing: Option<f32>,
    /// Streaming register — the operand element currently feeding the MAC.
    pub streaming: Option<f32>,
    /// Partial-sum register (accumulator output of the MAC).
    pub psum: f32,
    /// Current operating mode.
    pub mode: PeMode,
}

impl NsPe {
    /// Creates an idle PE in the given mode.
    pub fn new(mode: PeMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// The multiply–accumulate the PE performs in one cycle: `psum_in + stationary · x`.
    ///
    /// In GEMM mode `x` is the left-streaming input; in circular-convolution mode it is
    /// the value in the streaming register.
    pub fn mac(&self, psum_in: f32, x: f32) -> f32 {
        psum_in + self.stationary * x
    }
}

/// A partial sum travelling down the column, tagged with the output index it belongs to.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TaggedPsum {
    output_index: usize,
    value: f32,
}

/// Result of simulating a kernel on a [`PeColumn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRun {
    /// The produced output vector.
    pub output: Vec<f32>,
    /// Number of simulated cycles, including the stationary-load phase.
    pub cycles: u64,
}

/// A 1-D column of `M` nsPEs executing the bubble-streaming dataflow.
#[derive(Debug, Clone)]
pub struct PeColumn {
    pes: Vec<NsPe>,
}

impl PeColumn {
    /// Creates a column of `height` PEs.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if `height` is zero.
    pub fn new(height: usize) -> Result<Self, SimError> {
        if height == 0 {
            return Err(SimError::InvalidConfig {
                field: "column height",
                message: "must be positive".into(),
            });
        }
        Ok(Self {
            pes: vec![NsPe::default(); height],
        })
    }

    /// Number of PEs in the column.
    pub fn height(&self) -> usize {
        self.pes.len()
    }

    /// Returns the PEs (for inspection in tests and visualisations).
    pub fn pes(&self) -> &[NsPe] {
        &self.pes
    }

    /// Loads the stationary operand, one element per PE, through the `top_in_A` chain.
    ///
    /// Returns the number of cycles the load takes (one per PE, as in the paper's
    /// cycle analysis).
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] if `values.len()` differs from the column
    /// height.
    pub fn load_stationary(&mut self, values: &[f32]) -> Result<u64, SimError> {
        if values.len() != self.pes.len() {
            return Err(SimError::DimensionMismatch {
                left: values.len(),
                right: self.pes.len(),
            });
        }
        for (pe, &v) in self.pes.iter_mut().zip(values) {
            pe.mode = PeMode::Load;
            pe.stationary = v;
            pe.passing = None;
            pe.streaming = None;
            pe.psum = 0.0;
        }
        Ok(self.pes.len() as u64)
    }

    /// Executes one circular convolution `C = A ⊛ B` with `A` stationary (already loaded
    /// via [`PeColumn::load_stationary`]) and `B` streamed through the bubbles.
    ///
    /// Requires `B.len() == height` (a single fold; multi-fold execution is composed by
    /// the dataflow layer). The simulation is register-accurate: every cycle the passing
    /// and streaming registers shift exactly as described in Sec. V-C, and the tagged
    /// partial sums move one PE per cycle.
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] if `b.len()` differs from the column
    /// height.
    pub fn circular_convolve_streaming(&mut self, b: &[f32]) -> Result<ColumnRun, SimError> {
        let m = self.pes.len();
        if b.len() != m {
            return Err(SimError::DimensionMismatch {
                left: b.len(),
                right: m,
            });
        }
        for pe in &mut self.pes {
            pe.mode = PeMode::CircConv;
            pe.passing = None;
            pe.streaming = None;
            pe.psum = 0.0;
        }

        let d = m;
        let mut outputs = vec![None::<f32>; d];
        let mut created = vec![false; d];
        let mut produced = 0usize;

        // Pipeline state: psum[i] is the tagged partial sum sitting in PE i's partial-sum
        // register at the end of the current cycle.
        let mut psums: Vec<Option<TaggedPsum>> = vec![None; m];

        let mut cycle: u64 = 0;
        // Upper bound on cycles; the loop exits as soon as all outputs are produced.
        let max_cycles = (4 * d + 4 * m + 8) as u64;

        while produced < d && cycle < max_cycles {
            // 1. The bottom PE's partial sum from the previous cycle leaves the array.
            if let Some(p) = psums[m - 1].take() {
                if outputs[p.output_index].is_none() {
                    outputs[p.output_index] = Some(p.value);
                    produced += 1;
                }
            }

            // 2. Streaming/passing registers advance (bottom-up so we read old values).
            //    passing[i] -> streaming[i]; streaming[i] -> passing[i+1]; the stream
            //    input feeds passing[0].
            for i in (0..m).rev() {
                let incoming = if i == 0 {
                    // Stream B cyclically: stream element t is B[t mod d].
                    let t = cycle as usize;
                    if t < d + 2 * (m - 1) + 2 {
                        Some(b[t % d])
                    } else {
                        None
                    }
                } else {
                    self.pes[i - 1].streaming
                };
                let new_streaming = self.pes[i].passing;
                self.pes[i].passing = incoming;
                self.pes[i].streaming = new_streaming;
            }

            // 3. Partial sums advance one PE per cycle and accumulate the MAC of the PE
            //    they arrive at (top-down order, moving from the bottom to avoid
            //    overwriting).
            for i in (1..m).rev() {
                psums[i] = psums[i - 1].take().map(|p| {
                    let x = self.pes[i].streaming.unwrap_or(0.0);
                    TaggedPsum {
                        output_index: p.output_index,
                        value: self.pes[i].mac(p.value, x),
                    }
                });
            }
            // A new partial sum is born in PE 0 once the stream has run long enough that
            // every downstream PE will find its (circularly shifted) operand in a
            // bubble: that happens from cycle M onwards, which is why the paper counts
            // "2M cycles for the streaming vector to reach the final nsPE" before the
            // remaining outputs drain at one per cycle. The output index is the stream
            // position currently sitting in PE 0's streaming register.
            psums[0] = None;
            if cycle >= m as u64 {
                let n = ((cycle - 1) as usize) % d;
                if !created[n] {
                    if let Some(x) = self.pes[0].streaming {
                        psums[0] = Some(TaggedPsum {
                            output_index: n,
                            value: self.pes[0].mac(0.0, x),
                        });
                        created[n] = true;
                    }
                }
            }

            cycle += 1;
        }

        // Account for the stationary-load phase the caller performed separately plus the
        // streaming cycles just simulated.
        let output: Vec<f32> = outputs.into_iter().map(|o| o.unwrap_or(0.0)).collect();
        Ok(ColumnRun {
            output,
            cycles: cycle,
        })
    }

    /// Convenience wrapper: load `a` as the stationary operand then stream `b`,
    /// returning the circular convolution and the total cycles (load + stream).
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] if either operand length differs from the
    /// column height.
    pub fn circular_convolve(&mut self, a: &[f32], b: &[f32]) -> Result<ColumnRun, SimError> {
        let load_cycles = self.load_stationary(a)?;
        let run = self.circular_convolve_streaming(b)?;
        Ok(ColumnRun {
            output: run.output,
            cycles: run.cycles + load_cycles,
        })
    }

    /// Circular correlation, realised exactly as the paper describes: "the reconfigurable
    /// nsPE can also support efficient circular correlation by reversing stationary
    /// vector A".
    ///
    /// # Errors
    /// Returns [`SimError::DimensionMismatch`] if either operand length differs from the
    /// column height.
    pub fn circular_correlate(&mut self, a: &[f32], b: &[f32]) -> Result<ColumnRun, SimError> {
        if a.len() != self.pes.len() {
            return Err(SimError::DimensionMismatch {
                left: a.len(),
                right: self.pes.len(),
            });
        }
        // Correlation corr(b, a)[n] = Σ_k b[k] a[(n+k) mod d] equals the convolution of
        // b with the involution of a.
        let mut reversed = Vec::with_capacity(a.len());
        reversed.push(a[0]);
        reversed.extend(a[1..].iter().rev().copied());
        self.circular_convolve(&reversed, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_vsa::ops;
    use cogsys_vsa::Hypervector;
    use proptest::prelude::*;
    use rand::Rng;

    fn reference_circconv(a: &[f32], b: &[f32]) -> Vec<f32> {
        ops::circular_convolve_naive(a, b)
    }

    #[test]
    fn pe_mac_behaviour() {
        let pe = NsPe {
            stationary: 3.0,
            ..NsPe::new(PeMode::Gemm)
        };
        assert_eq!(pe.mac(10.0, 2.0), 16.0);
        assert_eq!(NsPe::default().mode, PeMode::Gemm);
    }

    #[test]
    fn column_rejects_zero_height_and_mismatches() {
        assert!(PeColumn::new(0).is_err());
        let mut col = PeColumn::new(4).unwrap();
        assert!(col.load_stationary(&[1.0, 2.0]).is_err());
        col.load_stationary(&[1.0; 4]).unwrap();
        assert!(col.circular_convolve_streaming(&[1.0; 3]).is_err());
        assert!(col.circular_convolve(&[1.0; 3], &[1.0; 4]).is_err());
        assert!(col.circular_correlate(&[1.0; 3], &[1.0; 4]).is_err());
    }

    #[test]
    fn bubble_streaming_matches_reference_small() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![10.0, 20.0, 30.0];
        let mut col = PeColumn::new(3).unwrap();
        let run = col.circular_convolve(&a, &b).unwrap();
        assert_eq!(run.output, reference_circconv(&a, &b));
        // Cycle count is linear in d, not quadratic, and within the paper's 4d-1 bound
        // plus pipeline slack.
        assert!(run.cycles <= (4 * 3 + 8) as u64, "cycles = {}", run.cycles);
    }

    #[test]
    fn bubble_streaming_matches_reference_dim_64() {
        let mut rng = cogsys_vsa::rng(60);
        let a: Vec<f32> = (0..64).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f32> = (0..64).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut col = PeColumn::new(64).unwrap();
        let run = col.circular_convolve(&a, &b).unwrap();
        let reference = reference_circconv(&a, &b);
        for (x, y) in run.output.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn cycle_count_is_linear_in_dimension() {
        for d in [8usize, 16, 32, 64, 128] {
            let a = vec![1.0f32; d];
            let b = vec![1.0f32; d];
            let mut col = PeColumn::new(d).unwrap();
            let run = col.circular_convolve(&a, &b).unwrap();
            // Between 2d and 4d+constant: linear, unlike the O(d^2) GEMV lowering.
            assert!(run.cycles >= (2 * d) as u64);
            assert!(
                run.cycles <= (4 * d + 8) as u64,
                "d={d}, cycles={}",
                run.cycles
            );
        }
    }

    #[test]
    fn correlation_matches_functional_correlation() {
        let mut rng = cogsys_vsa::rng(61);
        let d = 32;
        let a: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut col = PeColumn::new(d).unwrap();
        let run = col.circular_correlate(&a, &b).unwrap();
        let expected = ops::circular_correlate(
            &Hypervector::from_values(b.clone()),
            &Hypervector::from_values(a.clone()),
        );
        for (x, y) in run.output.iter().zip(expected.values()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn correlation_unbinds_convolution_on_hardware() {
        // End-to-end hardware check of the bind→unbind story: convolve two random
        // bipolar vectors on the column, then correlate with the first factor and check
        // the result resembles the second factor.
        let mut rng = cogsys_vsa::rng(62);
        let d = 128;
        let x = Hypervector::random_bipolar(d, &mut rng);
        let y = Hypervector::random_bipolar(d, &mut rng);
        let mut col = PeColumn::new(d).unwrap();
        let bound = col.circular_convolve(x.values(), y.values()).unwrap();
        let recovered = col.circular_correlate(x.values(), &bound.output).unwrap();
        let recovered_hv = Hypervector::from_values(recovered.output);
        let sim = ops::cosine_similarity(&recovered_hv, &y);
        assert!(sim > 0.4, "similarity {sim}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_column_matches_functional_reference(seed in 0u64..1000, d_pow in 2u32..7) {
            let d = 1usize << d_pow;
            let mut rng = cogsys_vsa::rng(seed);
            let a: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let b: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let mut col = PeColumn::new(d).unwrap();
            let run = col.circular_convolve(&a, &b).unwrap();
            let reference = reference_circconv(&a, &b);
            for (x, y) in run.output.iter().zip(&reference) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }
    }
}
