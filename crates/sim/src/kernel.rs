//! Kernel descriptors shared by the simulator, scheduler and workload models.
//!
//! A [`Kernel`] describes one unit of work (a GEMM, a convolution layer, a batch of
//! circular convolutions, an element-wise stage, ...) together with enough shape
//! information to derive FLOP counts, byte traffic, and — via the dataflow models —
//! cycle counts on each hardware target.

use cogsys_vsa::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a kernel belongs to the neural or the symbolic part of a workload.
///
/// The paper's profiling (Fig. 4–6) and the adSCH scheduler both treat this distinction
/// as first-class: neural kernels are GEMM/conv shaped and compute-bound, symbolic
/// kernels are vector-operation shaped and memory-bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelClass {
    /// Neural kernels: convolutions, fully-connected layers, attention GEMMs.
    Neural,
    /// Symbolic kernels: VSA binding/unbinding, similarity search, rule abduction.
    Symbolic,
}

impl fmt::Display for KernelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelClass::Neural => write!(f, "neural"),
            KernelClass::Symbolic => write!(f, "symbolic"),
        }
    }
}

/// A schedulable unit of computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Kernel {
    /// Dense matrix multiplication `C[m×n] = A[m×k] · B[k×n]`.
    Gemm {
        /// Output rows.
        m: usize,
        /// Output columns.
        n: usize,
        /// Inner (reduction) dimension.
        k: usize,
    },
    /// 2-D convolution, described by its GEMM lowering (im2col):
    /// output pixels × output channels × (kernel volume · input channels).
    Conv2d {
        /// Output height × width (number of output pixels).
        output_pixels: usize,
        /// Number of output channels.
        out_channels: usize,
        /// Kernel height × width × input channels (reduction length).
        reduction: usize,
    },
    /// A batch of `count` circular convolutions between `dim`-dimensional vectors.
    CircConv {
        /// Vector dimensionality `d`.
        dim: usize,
        /// Number of independent circular convolutions `k`.
        count: usize,
    },
    /// A batch of matrix–vector similarity searches (`rows × dim` codebook against
    /// `count` query vectors) — the factorizer's Step 2 and codebook cleanup.
    Similarity {
        /// Codebook rows.
        rows: usize,
        /// Vector dimensionality.
        dim: usize,
        /// Number of query vectors.
        count: usize,
    },
    /// Element-wise / reduction work executed on the SIMD unit (additions,
    /// multiplications, norms, softmax, activation functions).
    ElementWise {
        /// Total number of scalar elements processed.
        elements: usize,
        /// Human-readable operation name (e.g. `"softmax"`, `"relu"`).
        op: String,
    },
}

impl Kernel {
    /// Floating-point (or integer MAC-equivalent) operation count.
    pub fn flops(&self) -> u64 {
        match self {
            Kernel::Gemm { m, n, k } => 2 * (*m as u64) * (*n as u64) * (*k as u64),
            Kernel::Conv2d {
                output_pixels,
                out_channels,
                reduction,
            } => 2 * (*output_pixels as u64) * (*out_channels as u64) * (*reduction as u64),
            Kernel::CircConv { dim, count } => {
                // d multiply-accumulates per output element, d outputs, per convolution.
                2 * (*dim as u64) * (*dim as u64) * (*count as u64)
            }
            Kernel::Similarity { rows, dim, count } => {
                2 * (*rows as u64) * (*dim as u64) * (*count as u64)
            }
            Kernel::ElementWise { elements, .. } => *elements as u64,
        }
    }

    /// Bytes moved to/from memory assuming each operand is read once and each result
    /// written once at the given precision (no reuse). The dataflow models refine this.
    pub fn min_bytes(&self, precision: Precision) -> u64 {
        let b = precision.bytes_per_element() as u64;
        match self {
            Kernel::Gemm { m, n, k } => {
                b * ((*m as u64) * (*k as u64)
                    + (*k as u64) * (*n as u64)
                    + (*m as u64) * (*n as u64))
            }
            Kernel::Conv2d {
                output_pixels,
                out_channels,
                reduction,
            } => {
                b * ((*output_pixels as u64) * (*reduction as u64)
                    + (*reduction as u64) * (*out_channels as u64)
                    + (*output_pixels as u64) * (*out_channels as u64))
            }
            Kernel::CircConv { dim, count } => b * 3 * (*dim as u64) * (*count as u64),
            Kernel::Similarity { rows, dim, count } => {
                b * ((*rows as u64) * (*dim as u64)
                    + (*count as u64) * (*dim as u64)
                    + (*rows as u64) * (*count as u64))
            }
            Kernel::ElementWise { elements, .. } => b * 2 * (*elements as u64),
        }
    }

    /// Arithmetic intensity in FLOPs per byte.
    pub fn arithmetic_intensity(&self, precision: Precision) -> f64 {
        let bytes = self.min_bytes(precision);
        if bytes == 0 {
            return 0.0;
        }
        self.flops() as f64 / bytes as f64
    }

    /// Neural/symbolic classification used for profiling and scheduling.
    pub fn class(&self) -> KernelClass {
        match self {
            Kernel::Gemm { .. } | Kernel::Conv2d { .. } => KernelClass::Neural,
            Kernel::CircConv { .. } | Kernel::Similarity { .. } | Kernel::ElementWise { .. } => {
                KernelClass::Symbolic
            }
        }
    }

    /// Returns `true` if the kernel maps onto the compute array (as opposed to the SIMD
    /// unit).
    pub fn uses_compute_array(&self) -> bool {
        !matches!(self, Kernel::ElementWise { .. })
    }

    /// Short human-readable label used in schedules and reports.
    pub fn label(&self) -> String {
        match self {
            Kernel::Gemm { m, n, k } => format!("gemm {m}x{n}x{k}"),
            Kernel::Conv2d {
                output_pixels,
                out_channels,
                reduction,
            } => format!("conv {output_pixels}px x{out_channels}c r{reduction}"),
            Kernel::CircConv { dim, count } => format!("circconv d={dim} k={count}"),
            Kernel::Similarity { rows, dim, count } => {
                format!("similarity {rows}x{dim} q={count}")
            }
            Kernel::ElementWise { elements, op } => format!("{op} n={elements}"),
        }
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Cost of executing a kernel on some unit: cycles plus the off-chip traffic incurred.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct KernelCost {
    /// Latency in cycles of the executing unit.
    pub cycles: u64,
    /// Bytes transferred between DRAM and on-chip memory.
    pub dram_bytes: u64,
    /// Number of PEs (or lanes) that were busy, for utilization accounting.
    pub active_pes: usize,
}

impl KernelCost {
    /// Sums two costs assuming sequential execution.
    pub fn then(self, next: KernelCost) -> KernelCost {
        KernelCost {
            cycles: self.cycles + next.cycles,
            dram_bytes: self.dram_bytes + next.dram_bytes,
            active_pes: self.active_pes.max(next.active_pes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_and_bytes() {
        let k = Kernel::Gemm { m: 4, n: 8, k: 16 };
        assert_eq!(k.flops(), 2 * 4 * 8 * 16);
        assert_eq!(k.min_bytes(Precision::Fp32), 4 * (4 * 16 + 16 * 8 + 4 * 8));
        assert_eq!(k.class(), KernelClass::Neural);
        assert!(k.uses_compute_array());
    }

    #[test]
    fn circconv_flops_quadratic_in_dim() {
        let k = Kernel::CircConv {
            dim: 1024,
            count: 3,
        };
        assert_eq!(k.flops(), 2 * 1024 * 1024 * 3);
        assert_eq!(k.min_bytes(Precision::Int8), 3 * 1024 * 3);
        assert_eq!(k.class(), KernelClass::Symbolic);
    }

    #[test]
    fn circconv_intensity_higher_than_elementwise() {
        // The roofline positions in Fig. 5: symbolic element-wise ops sit far left,
        // circular convolution has higher intensity, GEMMs higher still.
        let ew = Kernel::ElementWise {
            elements: 1 << 20,
            op: "mult".into(),
        };
        let cc = Kernel::CircConv {
            dim: 1024,
            count: 1,
        };
        let gemm = Kernel::Gemm {
            m: 512,
            n: 512,
            k: 512,
        };
        let p = Precision::Fp32;
        assert!(ew.arithmetic_intensity(p) < cc.arithmetic_intensity(p));
        assert!(ew.arithmetic_intensity(p) < gemm.arithmetic_intensity(p));
        // Note: these are *algorithmic* intensities (BS-style O(d) traffic for the
        // circular convolution); the GPU's GEMV lowering is what drags symbolic kernels
        // to the memory-bound region in Fig. 5 (see `dataflow::gemv_arithmetic_intensity`).
    }

    #[test]
    fn conv_lowering_counts() {
        let k = Kernel::Conv2d {
            output_pixels: 56 * 56,
            out_channels: 64,
            reduction: 3 * 3 * 64,
        };
        assert_eq!(k.flops(), 2 * (56 * 56) as u64 * 64 * (3 * 3 * 64) as u64);
        assert_eq!(k.class(), KernelClass::Neural);
    }

    #[test]
    fn similarity_and_elementwise_are_symbolic() {
        let s = Kernel::Similarity {
            rows: 100,
            dim: 1024,
            count: 5,
        };
        assert_eq!(s.class(), KernelClass::Symbolic);
        assert_eq!(s.flops(), 2 * 100 * 1024 * 5);
        let e = Kernel::ElementWise {
            elements: 2048,
            op: "softmax".into(),
        };
        assert_eq!(e.class(), KernelClass::Symbolic);
        assert!(!e.uses_compute_array());
        assert_eq!(e.flops(), 2048);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            Kernel::CircConv { dim: 512, count: 7 }.to_string(),
            "circconv d=512 k=7"
        );
        assert!(Kernel::Gemm { m: 1, n: 2, k: 3 }.label().contains("1x2x3"));
        assert_eq!(KernelClass::Neural.to_string(), "neural");
        assert_eq!(KernelClass::Symbolic.to_string(), "symbolic");
    }

    #[test]
    fn cost_chaining_accumulates() {
        let a = KernelCost {
            cycles: 10,
            dram_bytes: 100,
            active_pes: 256,
        };
        let b = KernelCost {
            cycles: 5,
            dram_bytes: 50,
            active_pes: 1024,
        };
        let c = a.then(b);
        assert_eq!(c.cycles, 15);
        assert_eq!(c.dram_bytes, 150);
        assert_eq!(c.active_pes, 1024);
    }

    #[test]
    fn empty_elementwise_has_zero_intensity() {
        let e = Kernel::ElementWise {
            elements: 0,
            op: "noop".into(),
        };
        assert_eq!(e.arithmetic_intensity(Precision::Fp32), 0.0);
    }
}
