//! Roofline model (Fig. 5 and Fig. 11c).
//!
//! A roofline bounds attainable performance by `min(peak_compute, intensity × peak_bw)`.
//! The paper uses it twice: to show that symbolic kernels are memory-bound on GPUs
//! (Fig. 5), and to show that the BS dataflow turns circular convolution into a
//! compute-bound kernel on CogSys while the GEMV lowering stays memory-bound (Fig. 11c).

use serde::{Deserialize, Serialize};

/// A roofline: peak compute throughput and peak memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bandwidth_gbps: f64,
}

impl Roofline {
    /// Creates a roofline from peak compute (GFLOP/s) and bandwidth (GB/s).
    pub fn new(peak_gflops: f64, peak_bandwidth_gbps: f64) -> Self {
        Self {
            peak_gflops,
            peak_bandwidth_gbps,
        }
    }

    /// The RTX 2080Ti roofline used in Fig. 5 (FP32: ~13.4 TFLOP/s, 616 GB/s).
    pub fn rtx_2080ti() -> Self {
        Self::new(13_450.0, 616.0)
    }

    /// Roofline of a PE array: `pes × 2 FLOP/cycle × frequency`, with the given on-chip
    /// bandwidth (the paper quotes 2 TB/s for the TPU-style cell and 15 TB/s for CogSys
    /// in Fig. 11c).
    pub fn from_array(pes: usize, frequency_ghz: f64, onchip_bandwidth_gbps: f64) -> Self {
        Self::new(pes as f64 * 2.0 * frequency_ghz, onchip_bandwidth_gbps)
    }

    /// The arithmetic intensity (FLOP/byte) at which the kernel transitions from
    /// memory-bound to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        if self.peak_bandwidth_gbps == 0.0 {
            return f64::INFINITY;
        }
        self.peak_gflops / self.peak_bandwidth_gbps
    }

    /// Attainable performance (GFLOP/s) at a given arithmetic intensity.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (intensity * self.peak_bandwidth_gbps).min(self.peak_gflops)
    }

    /// Whether a kernel of the given intensity is memory-bound on this roofline.
    pub fn is_memory_bound(&self, intensity: f64) -> bool {
        intensity < self.ridge_point()
    }

    /// Execution time in seconds for a kernel with the given FLOPs and bytes.
    pub fn execution_seconds(&self, flops: u64, bytes: u64) -> f64 {
        let compute = flops as f64 / (self.peak_gflops * 1e9);
        let memory = bytes as f64 / (self.peak_bandwidth_gbps * 1e9);
        compute.max(memory)
    }
}

/// One labelled point on a roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label, e.g. `"NVSA (symbolic)"`.
    pub label: String,
    /// Arithmetic intensity (FLOP/byte).
    pub intensity: f64,
    /// Attainable performance on the associated roofline (GFLOP/s).
    pub attainable_gflops: f64,
    /// Whether the point sits on the bandwidth slope (memory-bound).
    pub memory_bound: bool,
}

impl RooflinePoint {
    /// Evaluates a kernel (given as FLOPs and bytes) against a roofline.
    pub fn evaluate(label: impl Into<String>, roofline: &Roofline, flops: u64, bytes: u64) -> Self {
        let intensity = if bytes == 0 {
            0.0
        } else {
            flops as f64 / bytes as f64
        };
        Self {
            label: label.into(),
            intensity,
            attainable_gflops: roofline.attainable_gflops(intensity),
            memory_bound: roofline.is_memory_bound(intensity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow;
    use proptest::prelude::*;

    #[test]
    fn ridge_point_and_attainable_performance() {
        let r = Roofline::new(1000.0, 100.0);
        assert!((r.ridge_point() - 10.0).abs() < 1e-12);
        assert!((r.attainable_gflops(5.0) - 500.0).abs() < 1e-9);
        assert!((r.attainable_gflops(50.0) - 1000.0).abs() < 1e-9);
        assert!(r.is_memory_bound(5.0));
        assert!(!r.is_memory_bound(50.0));
    }

    #[test]
    fn execution_time_takes_the_max_of_compute_and_memory() {
        let r = Roofline::new(1000.0, 100.0); // ridge at 10 FLOP/byte
                                              // Memory-bound kernel: 1 GFLOP over 1 GB -> limited by bandwidth (10 ms).
        let t = r.execution_seconds(1_000_000_000, 1_000_000_000);
        assert!((t - 0.01).abs() < 1e-9);
        // Compute-bound kernel: 1000 GFLOP over 1 GB -> limited by compute (1 s).
        let t = r.execution_seconds(1_000_000_000_000, 1_000_000_000);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_circconv_is_memory_bound_cogsys_is_compute_bound() {
        // Fig. 11c: circular convolution as GEMV on the GPU sits on the bandwidth slope;
        // under the BS dataflow on CogSys it is compute-bound.
        let gpu = Roofline::rtx_2080ti();
        let cogsys = Roofline::from_array(16 * 1024, 0.8, 15_000.0);
        let d = 2048usize;
        assert!(gpu.is_memory_bound(dataflow::gemv_arithmetic_intensity(d)));
        assert!(!cogsys.is_memory_bound(dataflow::bs_arithmetic_intensity(d)));
    }

    #[test]
    fn cogsys_peak_matches_fig11c_annotation() {
        // Fig. 11c annotates the CogSys roofline at ~26 TFLOP/s for 2^14 PEs at 0.8 GHz
        // (2 ops/cycle/PE); the TPU-style cell with the same PE count has the same peak
        // but a much lower on-chip bandwidth, which is what separates the two curves.
        let cogsys = Roofline::from_array(1 << 14, 0.8, 15_000.0);
        assert!((cogsys.peak_gflops - 26_214.4).abs() < 1.0);
        let tpu = Roofline::from_array(1 << 14, 0.8, 2_000.0);
        assert!(tpu.ridge_point() > cogsys.ridge_point());
    }

    #[test]
    fn roofline_point_evaluation() {
        let r = Roofline::new(100.0, 10.0);
        let p = RooflinePoint::evaluate("symbolic", &r, 1000, 1000);
        assert_eq!(p.label, "symbolic");
        assert!((p.intensity - 1.0).abs() < 1e-12);
        assert!(p.memory_bound);
        let p = RooflinePoint::evaluate("neural", &r, 100_000, 1000);
        assert!(!p.memory_bound);
        let p = RooflinePoint::evaluate("empty", &r, 10, 0);
        assert_eq!(p.intensity, 0.0);
    }

    proptest! {
        #[test]
        fn prop_attainable_never_exceeds_peak(intensity in 0.0f64..1e6) {
            let r = Roofline::rtx_2080ti();
            prop_assert!(r.attainable_gflops(intensity) <= r.peak_gflops + 1e-9);
        }

        #[test]
        fn prop_attainable_monotone(a in 0.0f64..1e4, b in 0.0f64..1e4) {
            let r = Roofline::new(500.0, 50.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(r.attainable_gflops(lo) <= r.attainable_gflops(hi) + 1e-9);
        }
    }
}
