//! Custom SIMD unit model (Sec. V-F).
//!
//! CogSys offloads vector reductions and element-wise operations (sum, mult/div,
//! exp/log/tanh, norm, softmax, batch-norm, activations) to a 512-PE SIMD unit so the
//! compute array never stalls on them. Each operation class has a per-element cycle
//! cost; the unit processes `lanes` elements per cycle.

use crate::error::SimError;
use crate::kernel::KernelCost;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Classes of operations the SIMD unit supports, with increasing per-element cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdOp {
    /// Element-wise add / subtract / compare.
    Add,
    /// Element-wise multiply or divide.
    Mul,
    /// Reduction to a scalar (sum, max, L2 norm accumulation).
    Reduce,
    /// Transcendentals: exp, log, tanh, sigmoid.
    Transcendental,
    /// Softmax (max + exp + sum + divide, fused).
    Softmax,
    /// Normalisation (mean/variance + scale/shift), batch-norm style.
    Normalize,
}

impl SimdOp {
    /// Cycles each lane spends per element for this operation class.
    pub fn cycles_per_element(self) -> u64 {
        match self {
            SimdOp::Add => 1,
            SimdOp::Mul => 1,
            SimdOp::Reduce => 1,
            SimdOp::Transcendental => 4,
            SimdOp::Softmax => 6,
            SimdOp::Normalize => 4,
        }
    }

    /// Parses the operation names used by workload descriptions ("relu", "softmax", ...).
    pub fn from_name(name: &str) -> SimdOp {
        match name.to_ascii_lowercase().as_str() {
            "add" | "sub" | "relu" | "bias" | "residual" | "compare" => SimdOp::Add,
            "mul" | "mult" | "div" | "scale" | "hadamard" | "unbind" | "bind" => SimdOp::Mul,
            "sum" | "reduce" | "max" | "argmax" | "dot" => SimdOp::Reduce,
            "exp" | "log" | "tanh" | "sigmoid" | "gelu" => SimdOp::Transcendental,
            "softmax" => SimdOp::Softmax,
            "norm" | "layernorm" | "batchnorm" | "bn" | "normalize" => SimdOp::Normalize,
            _ => SimdOp::Mul,
        }
    }
}

impl fmt::Display for SimdOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SimdOp::Add => "add",
            SimdOp::Mul => "mul",
            SimdOp::Reduce => "reduce",
            SimdOp::Transcendental => "transcendental",
            SimdOp::Softmax => "softmax",
            SimdOp::Normalize => "normalize",
        };
        write!(f, "{name}")
    }
}

/// The custom SIMD unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimdUnit {
    lanes: usize,
}

impl SimdUnit {
    /// Creates a SIMD unit with `lanes` parallel PEs (512 in the paper).
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if `lanes` is zero.
    pub fn new(lanes: usize) -> Result<Self, SimError> {
        if lanes == 0 {
            return Err(SimError::InvalidConfig {
                field: "simd lanes",
                message: "must be positive".into(),
            });
        }
        Ok(Self { lanes })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cycles to process `elements` elements of operation `op`.
    pub fn cycles(&self, op: SimdOp, elements: usize) -> u64 {
        if elements == 0 {
            return 0;
        }
        let waves = elements.div_ceil(self.lanes) as u64;
        waves * op.cycles_per_element()
    }

    /// Full cost of an element-wise kernel, including the bytes it streams (each element
    /// read and written once at `bytes_per_element`).
    pub fn execute(&self, op: SimdOp, elements: usize, bytes_per_element: usize) -> KernelCost {
        KernelCost {
            cycles: self.cycles(op, elements),
            dram_bytes: (2 * elements * bytes_per_element) as u64,
            active_pes: self.lanes.min(elements.max(1)),
        }
    }
}

impl Default for SimdUnit {
    /// The paper's 512-lane unit.
    fn default() -> Self {
        Self { lanes: 512 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lane_parallelism_divides_cycles() {
        let unit = SimdUnit::new(512).unwrap();
        assert_eq!(unit.cycles(SimdOp::Add, 512), 1);
        assert_eq!(unit.cycles(SimdOp::Add, 513), 2);
        assert_eq!(unit.cycles(SimdOp::Add, 1024), 2);
        assert_eq!(unit.cycles(SimdOp::Add, 0), 0);
        assert_eq!(unit.lanes(), 512);
    }

    #[test]
    fn op_costs_are_ordered() {
        assert!(SimdOp::Softmax.cycles_per_element() > SimdOp::Transcendental.cycles_per_element());
        assert!(SimdOp::Transcendental.cycles_per_element() > SimdOp::Add.cycles_per_element());
    }

    #[test]
    fn op_name_parsing() {
        assert_eq!(SimdOp::from_name("ReLU"), SimdOp::Add);
        assert_eq!(SimdOp::from_name("softmax"), SimdOp::Softmax);
        assert_eq!(SimdOp::from_name("LayerNorm"), SimdOp::Normalize);
        assert_eq!(SimdOp::from_name("exp"), SimdOp::Transcendental);
        assert_eq!(SimdOp::from_name("unbind"), SimdOp::Mul);
        assert_eq!(SimdOp::from_name("unknown-op"), SimdOp::Mul);
        assert_eq!(SimdOp::Softmax.to_string(), "softmax");
    }

    #[test]
    fn execute_reports_traffic_and_occupancy() {
        let unit = SimdUnit::default();
        let cost = unit.execute(SimdOp::Softmax, 2048, 1);
        assert_eq!(cost.cycles, 4 * 6);
        assert_eq!(cost.dram_bytes, 2 * 2048);
        assert_eq!(cost.active_pes, 512);
        let small = unit.execute(SimdOp::Add, 10, 4);
        assert_eq!(small.active_pes, 10);
    }

    #[test]
    fn zero_lane_unit_is_rejected() {
        assert!(SimdUnit::new(0).is_err());
    }

    proptest! {
        #[test]
        fn prop_cycles_monotone_in_elements(a in 0usize..100_000, b in 0usize..100_000) {
            let unit = SimdUnit::default();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(unit.cycles(SimdOp::Mul, lo) <= unit.cycles(SimdOp::Mul, hi));
        }
    }
}
