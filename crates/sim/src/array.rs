//! The scalable reconfigurable compute array (Sec. V-E).
//!
//! [`ComputeArray`] maps [`Kernel`]s onto the accelerator's cells using the dataflow
//! models of [`crate::dataflow`], choosing between scale-up and scale-out composition
//! and between spatial and temporal mapping, and falls back to the TPU-style GEMV
//! lowering when the reconfigurable nsPE support is disabled (the "w/o nsPE" ablation).

use crate::config::AcceleratorConfig;
use crate::dataflow;
use crate::error::SimError;
use crate::kernel::{Kernel, KernelCost};
use crate::memory::MemorySystem;
use crate::simd::{SimdOp, SimdUnit};
use serde::{Deserialize, Serialize};

/// How a group of cells is composed for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrayPartition {
    /// All allocated cells fused into one large logical array.
    ScaleUp,
    /// Each allocated cell operates independently (systolic-cell-wise parallelism).
    ScaleOut,
}

impl ArrayPartition {
    /// Logical (rows, cols) of `cells` cells of `rows × cols` PEs under this composition.
    ///
    /// Scale-up prefers a square composition when the cell count is a perfect square
    /// (e.g. 16 32×32 cells → 128×128), otherwise it stacks cells vertically, which
    /// favours the deep columns the BS dataflow wants.
    pub fn logical_dims(self, cells: usize, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            ArrayPartition::ScaleOut => (rows, cols),
            ArrayPartition::ScaleUp => {
                let side = (cells as f64).sqrt() as usize;
                if side * side == cells {
                    (rows * side, cols * side)
                } else {
                    (rows * cells, cols)
                }
            }
        }
    }
}

/// Result of executing one kernel on the array (or SIMD unit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Human-readable kernel label.
    pub kernel: String,
    /// Latency in accelerator cycles (including unavoidable DRAM stalls).
    pub cycles: u64,
    /// Off-chip traffic in bytes.
    pub dram_bytes: u64,
    /// PEs kept busy.
    pub active_pes: usize,
    /// Fraction of the *allocated* PEs that were busy.
    pub utilization: f64,
    /// The composition that was chosen.
    pub partition: ArrayPartition,
}

impl ExecutionRecord {
    /// Latency in seconds at the given clock.
    pub fn seconds(&self, frequency_ghz: f64) -> f64 {
        self.cycles as f64 / (frequency_ghz * 1e9)
    }
}

/// The CogSys compute array plus its SIMD unit and memory system.
#[derive(Debug, Clone)]
pub struct ComputeArray {
    config: AcceleratorConfig,
    memory: MemorySystem,
    simd: SimdUnit,
}

impl ComputeArray {
    /// Builds an array from a validated configuration.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if the configuration is invalid.
    pub fn new(config: AcceleratorConfig) -> Result<Self, SimError> {
        config.validate()?;
        let memory = MemorySystem::from_config(&config)?;
        let simd = SimdUnit::new(config.simd_pes)?;
        Ok(Self {
            config,
            memory,
            simd,
        })
    }

    /// The configuration this array was built from.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The memory subsystem.
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Total number of PEs across all cells.
    pub fn total_pes(&self) -> usize {
        self.config.geometry.total_pes()
    }

    /// Executes a kernel on `cells` cells (1 ≤ cells ≤ total), returning its cost.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if `cells` is zero or exceeds the geometry.
    pub fn execute(&self, kernel: &Kernel, cells: usize) -> Result<ExecutionRecord, SimError> {
        let geometry = self.config.geometry;
        if cells == 0 || cells > geometry.cells {
            return Err(SimError::InvalidConfig {
                field: "cells",
                message: format!(
                    "must allocate between 1 and {} cells, got {cells}",
                    geometry.cells
                ),
            });
        }
        let precision = self.config.precision;
        let bytes_elem = precision.bytes_per_element();
        let allocated_pes = cells * geometry.pes_per_cell();

        let (compute_cycles, dram_bytes, active_pes, partition) = match kernel {
            Kernel::Gemm { m, n, k } => self.gemm_cost(*m, *n, *k, cells),
            Kernel::Conv2d {
                output_pixels,
                out_channels,
                reduction,
            } => self.gemm_cost(*output_pixels, *out_channels, *reduction, cells),
            Kernel::Similarity { rows, dim, count } => self.gemm_cost(*count, *rows, *dim, cells),
            Kernel::CircConv { dim, count } => self.circconv_cost(*dim, *count, cells, bytes_elem),
            Kernel::ElementWise { elements, op } => {
                let cost = self
                    .simd
                    .execute(SimdOp::from_name(op), *elements, bytes_elem);
                (
                    cost.cycles,
                    cost.dram_bytes,
                    cost.active_pes,
                    ArrayPartition::ScaleOut,
                )
            }
        };

        // DRAM stalls that double buffering could not hide.
        let stall = self.memory.dram_stall_cycles(dram_bytes, compute_cycles);
        let cycles = compute_cycles + stall;
        let denom = if matches!(kernel, Kernel::ElementWise { .. }) {
            self.config.simd_pes
        } else {
            allocated_pes
        };
        let utilization = (active_pes as f64 / denom.max(1) as f64).min(1.0);

        Ok(ExecutionRecord {
            kernel: kernel.label(),
            cycles,
            dram_bytes,
            active_pes,
            utilization,
            partition,
        })
    }

    /// Cost of a GEMM-shaped kernel on `cells` cells.
    fn gemm_cost(
        &self,
        m: usize,
        n: usize,
        k: usize,
        cells: usize,
    ) -> (u64, u64, usize, ArrayPartition) {
        let geometry = self.config.geometry;
        let kernel = Kernel::Gemm { m, n, k };
        let dram = kernel.min_bytes(self.config.precision);

        // Scale-up: one large array.
        let (up_r, up_c) =
            ArrayPartition::ScaleUp.logical_dims(cells, geometry.rows, geometry.cols);
        let up_cycles = dataflow::systolic_gemm_cycles(m, n, k, up_r, up_c);
        let up_active = up_r.min(k) * up_c.min(n);

        // Scale-out: cells split the output columns (systolic-cell-wise parallelism).
        let out_cycles =
            dataflow::systolic_gemm_cycles(m, n.div_ceil(cells), k, geometry.rows, geometry.cols);
        let out_active = cells * geometry.rows.min(k) * geometry.cols.min(n.div_ceil(cells));

        let scale_out_allowed = self.config.scale_out_enabled && cells > 1;
        if scale_out_allowed && out_cycles < up_cycles {
            (out_cycles, dram, out_active, ArrayPartition::ScaleOut)
        } else {
            (up_cycles, dram, up_active, ArrayPartition::ScaleUp)
        }
    }

    /// Cost of a batch of circular convolutions on `cells` cells.
    fn circconv_cost(
        &self,
        dim: usize,
        count: usize,
        cells: usize,
        bytes_elem: usize,
    ) -> (u64, u64, usize, ArrayPartition) {
        let geometry = self.config.geometry;

        if !self.config.reconfigurable_pe {
            // Baseline behaviour: lower to GEMV on the scale-up array.
            let (r, c) = ArrayPartition::ScaleUp.logical_dims(cells, geometry.rows, geometry.cols);
            let cycles = dataflow::tpu_gemv_circconv_cycles(dim, r, c, count);
            let dram = dataflow::gemv_circconv_bytes(dim, bytes_elem) * count as u64;
            // A GEMV keeps only one row of the array busy per cycle on average.
            let active = r.min(dim) * c.min(dim) / r.max(1);
            return (cycles, dram, active.max(1), ArrayPartition::ScaleUp);
        }

        let dram = dataflow::bubble_streaming_bytes(dim, bytes_elem) * count as u64;

        // Scale-up vs scale-out follows the paper's design-space-exploration outcome
        // (Sec. V-E): high-dimensional vectors (NVSA/LVRF, d=1024) run on the scale-up
        // composition with deep columns, low-dimensional vectors (MIMONet, d=64) run
        // scale-out so many short columns provide cell- and column-wise parallelism.
        // Scale-out composition needs dim to fit within (a small multiple of) a single
        // cell's column height to avoid excessive per-cell folding and stationary
        // bandwidth.
        let scale_out_allowed = self.config.scale_out_enabled && cells > 1;
        let use_scale_out = scale_out_allowed && dim <= 2 * geometry.rows;

        let (m, n, partition) = if use_scale_out {
            (
                geometry.rows,
                geometry.cols * cells,
                ArrayPartition::ScaleOut,
            )
        } else {
            (
                geometry.rows * cells,
                geometry.cols,
                ArrayPartition::ScaleUp,
            )
        };
        let mapping = dataflow::choose_mapping(dim, count, m, n);
        let cycles = mapping.spatial_cycles.min(mapping.temporal_cycles);
        let active = (n * m.min(dim)).min(count * m.min(dim));
        (cycles, dram, active.max(1), partition)
    }
}

/// Executes a sequence of kernels back to back on the full array, summing their costs.
///
/// This is the "no scheduling" baseline the adSCH scheduler is compared against
/// (Fig. 13a / Fig. 19).
///
/// # Errors
/// Propagates errors from [`ComputeArray::execute`].
pub fn execute_sequentially(
    array: &ComputeArray,
    kernels: &[Kernel],
) -> Result<(KernelCost, Vec<ExecutionRecord>), SimError> {
    let cells = array.config().geometry.cells;
    let mut total = KernelCost::default();
    let mut records = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let record = array.execute(kernel, cells)?;
        total.cycles += record.cycles;
        total.dram_bytes += record.dram_bytes;
        total.active_pes = total.active_pes.max(record.active_pes);
        records.push(record);
    }
    Ok((total, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_vsa::Precision;

    fn cogsys_array() -> ComputeArray {
        ComputeArray::new(AcceleratorConfig::cogsys()).unwrap()
    }

    #[test]
    fn partition_dims() {
        assert_eq!(ArrayPartition::ScaleUp.logical_dims(16, 32, 32), (128, 128));
        assert_eq!(ArrayPartition::ScaleUp.logical_dims(3, 32, 32), (96, 32));
        assert_eq!(ArrayPartition::ScaleOut.logical_dims(16, 32, 32), (32, 32));
    }

    #[test]
    fn invalid_cell_allocations_are_rejected() {
        let array = cogsys_array();
        let k = Kernel::Gemm { m: 8, n: 8, k: 8 };
        assert!(array.execute(&k, 0).is_err());
        assert!(array.execute(&k, 17).is_err());
        assert!(array.execute(&k, 16).is_ok());
    }

    #[test]
    fn large_gemm_uses_scale_out_for_utilization() {
        // Sec. V-E: "the 16 32x32 scaled-out cells achieve 91.26% utilization, with
        // 10.71x and 7.83x speedup over one 128x128 scaled-up and four 64x64 scaled-out
        // cells" for NVSA/LVRF neural modules (small-ish layer shapes). We check the
        // qualitative part: a GEMM with modest n benefits from scale-out.
        let array = cogsys_array();
        let record = array
            .execute(
                &Kernel::Gemm {
                    m: 256,
                    n: 512,
                    k: 512,
                },
                16,
            )
            .unwrap();
        assert_eq!(record.partition, ArrayPartition::ScaleOut);
        assert!(
            record.utilization > 0.5,
            "utilization {}",
            record.utilization
        );
    }

    #[test]
    fn circconv_on_cogsys_beats_gemv_fallback() {
        // The essence of Fig. 17: the same array without reconfigurable nsPEs (GEMV
        // lowering) is one to two orders of magnitude slower on circular convolutions.
        let cogsys = cogsys_array();
        let baseline = ComputeArray::new(AcceleratorConfig::mtia_like()).unwrap();
        let kernel = Kernel::CircConv {
            dim: 1024,
            count: 1000,
        };
        let fast = cogsys.execute(&kernel, 16).unwrap();
        let slow = baseline.execute(&kernel, 16).unwrap();
        let speedup = slow.cycles as f64 / fast.cycles as f64;
        assert!(speedup > 10.0, "speedup {speedup}");
        assert!(speedup < 10_000.0, "speedup {speedup} suspiciously large");
    }

    #[test]
    fn low_dim_circconv_prefers_scale_out() {
        // Sec. V-E: scale-up for NVSA/LVRF (d=1024), scale-out for MIMONet (d=64).
        let array = cogsys_array();
        let low = array
            .execute(
                &Kernel::CircConv {
                    dim: 64,
                    count: 512,
                },
                16,
            )
            .unwrap();
        assert_eq!(low.partition, ArrayPartition::ScaleOut);
        let high = array
            .execute(
                &Kernel::CircConv {
                    dim: 8192,
                    count: 4,
                },
                16,
            )
            .unwrap();
        assert_eq!(high.partition, ArrayPartition::ScaleUp);
    }

    #[test]
    fn elementwise_goes_to_simd() {
        let array = cogsys_array();
        let record = array
            .execute(
                &Kernel::ElementWise {
                    elements: 4096,
                    op: "softmax".into(),
                },
                1,
            )
            .unwrap();
        assert!(record.cycles > 0);
        assert_eq!(record.active_pes, 512);
        assert!(record.utilization > 0.99);
    }

    #[test]
    fn sequential_execution_sums_costs() {
        let array = cogsys_array();
        let kernels = vec![
            Kernel::Gemm {
                m: 64,
                n: 64,
                k: 64,
            },
            Kernel::CircConv {
                dim: 1024,
                count: 8,
            },
            Kernel::ElementWise {
                elements: 1024,
                op: "relu".into(),
            },
        ];
        let (total, records) = execute_sequentially(&array, &kernels).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(total.cycles, records.iter().map(|r| r.cycles).sum::<u64>());
        assert_eq!(
            total.dram_bytes,
            records.iter().map(|r| r.dram_bytes).sum::<u64>()
        );
    }

    #[test]
    fn record_seconds_conversion() {
        let r = ExecutionRecord {
            kernel: "test".into(),
            cycles: 800_000,
            dram_bytes: 0,
            active_pes: 1,
            utilization: 1.0,
            partition: ArrayPartition::ScaleUp,
        };
        assert!((r.seconds(0.8) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn int8_precision_reduces_dram_traffic() {
        let fp32 =
            ComputeArray::new(AcceleratorConfig::cogsys().with_precision(Precision::Fp32)).unwrap();
        let int8 = cogsys_array();
        let kernel = Kernel::CircConv {
            dim: 2048,
            count: 16,
        };
        let a = fp32.execute(&kernel, 16).unwrap();
        let b = int8.execute(&kernel, 16).unwrap();
        assert_eq!(a.dram_bytes, 4 * b.dram_bytes);
    }

    #[test]
    fn disabling_scale_out_forces_scale_up() {
        let mut config = AcceleratorConfig::cogsys();
        config.scale_out_enabled = false;
        let array = ComputeArray::new(config).unwrap();
        let record = array
            .execute(
                &Kernel::CircConv {
                    dim: 64,
                    count: 512,
                },
                16,
            )
            .unwrap();
        assert_eq!(record.partition, ArrayPartition::ScaleUp);
    }
}
