//! # cogsys-sim — cycle-level model of the CogSys accelerator and its baselines
//!
//! The paper evaluates CogSys with "a cycle-accurate simulator" for performance plus RTL
//! synthesis for area/power (Sec. VII-A). This crate rebuilds that simulator:
//!
//! * [`pe`] — the reconfigurable neuro/symbolic processing element (nsPE) with its four
//!   registers and three operation modes (load / GEMM / circular convolution), stepped
//!   cycle by cycle and producing bit-identical results to the functional VSA kernels.
//! * [`dataflow`] — the bubble-streaming (BS) dataflow for circular convolution, the
//!   output of Sec. V-C's cycle analysis (`4d − 1`, `3M + d − 1`), the systolic GEMM
//!   dataflow, and the TPU-style GEMV lowering of circular convolution used as baseline.
//! * [`array`] — the scalable compute array (16 cells × 32×32 PEs by default) with
//!   scale-up / scale-out composition, cell-wise (ScWP) and column-wise (CWP)
//!   parallelism.
//! * [`simd`] — the custom SIMD unit for element-wise / reduction operations.
//! * [`memory`] — double-buffered SRAMs and the DRAM bandwidth model.
//! * [`kernel`] — kernel descriptors (GEMM, Conv2d, circular-convolution batches,
//!   element-wise ops) with FLOP and byte accounting shared with the scheduler.
//! * [`roofline`] — arithmetic-intensity / attainable-performance analysis (Fig. 5 and
//!   Fig. 11c).
//! * [`devices`] — analytical models of the CPU/GPU/edge-SoC and ML-accelerator
//!   baselines (Tab. VI), calibrated with the kernel-efficiency measurements of Tab. II.
//! * [`energy`] — area, power and energy models per precision (Tab. IX, Fig. 14).
//!
//! # Example: circular convolution on the nsPE array vs. a TPU-like systolic cell
//!
//! ```rust
//! use cogsys_sim::dataflow::{bubble_streaming_cycles, tpu_gemv_circconv_cycles};
//!
//! // One 1024-dimensional circular convolution on a 1024-PE column:
//! let cogsys = bubble_streaming_cycles(1024, 1024);
//! let tpu = tpu_gemv_circconv_cycles(1024, 128, 128, 1);
//! assert!(tpu > cogsys); // the BS dataflow wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod config;
pub mod dataflow;
pub mod devices;
pub mod energy;
pub mod error;
pub mod kernel;
pub mod memory;
pub mod pe;
pub mod roofline;
pub mod simd;

pub use array::{ArrayPartition, ComputeArray, ExecutionRecord};
pub use config::{AcceleratorConfig, ArrayGeometry};
pub use devices::{Device, DeviceKind, DeviceModel};
pub use energy::{AreaBreakdown, EnergyModel, PowerBreakdown};
pub use error::SimError;
pub use kernel::{Kernel, KernelClass, KernelCost};
pub use roofline::{Roofline, RooflinePoint};
