//! Accelerator configuration (Fig. 9, Fig. 14).

use crate::error::SimError;
use cogsys_vsa::Precision;
use serde::{Deserialize, Serialize};

/// Geometry of the reconfigurable compute array.
///
/// The paper's design is 16 systolic cells of 32×32 nsPEs (16 384 PEs total), which can
/// be composed into scale-up (one large logical array) or scale-out (independent cells)
/// configurations (Sec. V-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Number of systolic cells.
    pub cells: usize,
    /// Rows of nsPEs per cell.
    pub rows: usize,
    /// Columns of nsPEs per cell.
    pub cols: usize,
}

impl ArrayGeometry {
    /// The paper's CogSys configuration: 16 cells of 32×32.
    pub fn cogsys() -> Self {
        Self {
            cells: 16,
            rows: 32,
            cols: 32,
        }
    }

    /// TPU-like monolithic systolic array: one 128×128 cell.
    pub fn tpu_like() -> Self {
        Self {
            cells: 1,
            rows: 128,
            cols: 128,
        }
    }

    /// MTIA-like array: 16 cells of 32×32 (same PE count as CogSys, no reconfiguration).
    pub fn mtia_like() -> Self {
        Self::cogsys()
    }

    /// Gemmini-like array: 64 cells of 16×16.
    pub fn gemmini_like() -> Self {
        Self {
            cells: 64,
            rows: 16,
            cols: 16,
        }
    }

    /// Total number of PEs.
    pub fn total_pes(&self) -> usize {
        self.cells * self.rows * self.cols
    }

    /// PEs per cell.
    pub fn pes_per_cell(&self) -> usize {
        self.rows * self.cols
    }

    /// Validates the geometry.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] if any dimension is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.cells == 0 || self.rows == 0 || self.cols == 0 {
            return Err(SimError::InvalidConfig {
                field: "array geometry",
                message: format!(
                    "cells ({}), rows ({}) and cols ({}) must all be positive",
                    self.cells, self.rows, self.cols
                ),
            });
        }
        Ok(())
    }
}

impl Default for ArrayGeometry {
    fn default() -> Self {
        Self::cogsys()
    }
}

/// Full accelerator configuration (Fig. 14's specification box).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Compute-array geometry.
    pub geometry: ArrayGeometry,
    /// Number of SIMD PEs in the custom SIMD unit (512 in the paper).
    pub simd_pes: usize,
    /// Clock frequency in GHz (0.8 in the paper).
    pub frequency_ghz: f64,
    /// SRAM A capacity in bytes — shared weight buffer (256 KiB in the paper).
    pub sram_a_bytes: usize,
    /// SRAM B capacity in bytes — distributed activation buffer (4 MiB in the paper).
    pub sram_b_bytes: usize,
    /// SRAM C capacity in bytes — output buffer (the remainder of the 4.5 MiB budget).
    pub sram_c_bytes: usize,
    /// DRAM bandwidth in GB/s (700 in the paper).
    pub dram_bandwidth_gbps: f64,
    /// Arithmetic precision of the datapath.
    pub precision: Precision,
    /// Whether the nsPEs are reconfigurable (can run both GEMM and circular
    /// convolution). Setting this to `false` models the "w/o nsPE" ablation of Fig. 19,
    /// where symbolic kernels fall back to the GEMV lowering.
    pub reconfigurable_pe: bool,
    /// Whether scale-out composition is available ("w/o SO" ablation disables it and
    /// forces a single scale-up array).
    pub scale_out_enabled: bool,
}

impl AcceleratorConfig {
    /// The paper's CogSys accelerator configuration (Fig. 14): 16×32×32 PEs, 512 SIMD
    /// PEs, 0.8 GHz, 4.5 MiB SRAM, 700 GB/s DRAM, INT8 datapath.
    pub fn cogsys() -> Self {
        Self {
            geometry: ArrayGeometry::cogsys(),
            simd_pes: 512,
            frequency_ghz: 0.8,
            sram_a_bytes: 256 * 1024,
            sram_b_bytes: 4 * 1024 * 1024,
            sram_c_bytes: 256 * 1024,
            dram_bandwidth_gbps: 700.0,
            precision: Precision::Int8,
            reconfigurable_pe: true,
            scale_out_enabled: true,
        }
    }

    /// A TPU-like baseline with the same SRAM budget but a monolithic 128×128 array and
    /// no reconfigurable symbolic support.
    pub fn tpu_like() -> Self {
        Self {
            geometry: ArrayGeometry::tpu_like(),
            reconfigurable_pe: false,
            scale_out_enabled: false,
            ..Self::cogsys()
        }
    }

    /// Gemmini-like baseline (64 cells of 16×16, no symbolic support).
    pub fn gemmini_like() -> Self {
        Self {
            geometry: ArrayGeometry::gemmini_like(),
            reconfigurable_pe: false,
            ..Self::cogsys()
        }
    }

    /// MTIA-like baseline (16 cells of 32×32, no symbolic support).
    pub fn mtia_like() -> Self {
        Self {
            geometry: ArrayGeometry::mtia_like(),
            reconfigurable_pe: false,
            ..Self::cogsys()
        }
    }

    /// Returns a copy with a different precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Total SRAM capacity.
    pub fn total_sram_bytes(&self) -> usize {
        self.sram_a_bytes + self.sram_b_bytes + self.sram_c_bytes
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_time_ns(&self) -> f64 {
        1.0 / self.frequency_ghz
    }

    /// Converts a cycle count to seconds at the configured frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_ns() * 1e-9
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`SimError::InvalidConfig`] for non-positive frequency, bandwidth, SIMD
    /// width, or an invalid geometry.
    pub fn validate(&self) -> Result<(), SimError> {
        self.geometry.validate()?;
        if self.frequency_ghz <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "frequency_ghz",
                message: "must be positive".into(),
            });
        }
        if self.dram_bandwidth_gbps <= 0.0 {
            return Err(SimError::InvalidConfig {
                field: "dram_bandwidth_gbps",
                message: "must be positive".into(),
            });
        }
        if self.simd_pes == 0 {
            return Err(SimError::InvalidConfig {
                field: "simd_pes",
                message: "must be positive".into(),
            });
        }
        Ok(())
    }
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        Self::cogsys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cogsys_geometry_matches_paper() {
        let g = ArrayGeometry::cogsys();
        assert_eq!(g.total_pes(), 16 * 32 * 32);
        assert_eq!(g.pes_per_cell(), 1024);
        // TPU-like baseline has the same PE count (fair comparison in Fig. 17/18).
        assert_eq!(ArrayGeometry::tpu_like().total_pes(), g.total_pes());
        assert_eq!(ArrayGeometry::gemmini_like().total_pes(), g.total_pes());
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let g = ArrayGeometry {
            cells: 0,
            rows: 32,
            cols: 32,
        };
        assert!(g.validate().is_err());
        assert!(ArrayGeometry::cogsys().validate().is_ok());
    }

    #[test]
    fn cogsys_config_matches_paper_specs() {
        let c = AcceleratorConfig::cogsys();
        assert_eq!(c.total_sram_bytes(), 4 * 1024 * 1024 + 512 * 1024);
        assert_eq!(c.simd_pes, 512);
        assert!((c.frequency_ghz - 0.8).abs() < 1e-12);
        assert!((c.dram_bandwidth_gbps - 700.0).abs() < 1e-12);
        assert!(c.validate().is_ok());
        assert!((c.cycle_time_ns() - 1.25).abs() < 1e-12);
        // 800 M cycles is one second.
        assert!((c.cycles_to_seconds(800_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_configs_disable_symbolic_support() {
        assert!(!AcceleratorConfig::tpu_like().reconfigurable_pe);
        assert!(!AcceleratorConfig::gemmini_like().reconfigurable_pe);
        assert!(!AcceleratorConfig::mtia_like().reconfigurable_pe);
        assert!(AcceleratorConfig::cogsys().reconfigurable_pe);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = AcceleratorConfig::cogsys();
        c.frequency_ghz = 0.0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::cogsys();
        c.dram_bandwidth_gbps = -1.0;
        assert!(c.validate().is_err());
        let mut c = AcceleratorConfig::cogsys();
        c.simd_pes = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn with_precision_builder() {
        let c = AcceleratorConfig::cogsys().with_precision(Precision::Fp32);
        assert_eq!(c.precision, Precision::Fp32);
    }
}
