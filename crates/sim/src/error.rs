//! Error type for the simulator.

use std::fmt;

/// Errors produced by the accelerator simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A kernel was issued with a shape the target unit cannot execute.
    UnsupportedShape {
        /// Which unit rejected the kernel.
        unit: &'static str,
        /// Why it was rejected.
        message: String,
    },
    /// A configuration value was invalid (zero-sized array, zero frequency, ...).
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Description of the constraint that was violated.
        message: String,
    },
    /// The simulated memory could not hold a required buffer.
    CapacityExceeded {
        /// Which memory overflowed.
        memory: &'static str,
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// Functional inputs disagreed in dimension.
    DimensionMismatch {
        /// Left-hand size.
        left: usize,
        /// Right-hand size.
        right: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnsupportedShape { unit, message } => {
                write!(f, "unsupported shape for {unit}: {message}")
            }
            SimError::InvalidConfig { field, message } => {
                write!(f, "invalid configuration `{field}`: {message}")
            }
            SimError::CapacityExceeded {
                memory,
                requested,
                available,
            } => write!(
                f,
                "{memory} capacity exceeded: requested {requested} bytes, available {available} bytes"
            ),
            SimError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::CapacityExceeded {
            memory: "SRAM A",
            requested: 100,
            available: 50,
        };
        assert!(e.to_string().contains("SRAM A"));
        assert!(e.to_string().contains("100"));
        let e = SimError::InvalidConfig {
            field: "frequency_ghz",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("frequency_ghz"));
        let e = SimError::UnsupportedShape {
            unit: "nsPE column",
            message: "zero-length vector".into(),
        };
        assert!(e.to_string().contains("nsPE column"));
        let e = SimError::DimensionMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
