//! The adaptive workload-aware scheduler (adSCH, Sec. VI-B).
//!
//! The scheduler is an offline greedy list scheduler, mirroring the paper's description:
//!
//! 1. Build the operation graph (type, size, dependencies, iterations) — done by the
//!    caller via [`crate::OpGraph`].
//! 2. Repeatedly assign *ready* operations (all dependencies finished) to newly
//!    available cells, estimating runtime analytically via the [`ComputeArray`] model.
//! 3. Maximise utilisation by giving neural kernels large cell blocks and symbolic
//!    kernels small ones, and by interleaving symbolic kernels of one task with the
//!    neural layers of another (the cell-wise neural/symbolic partition of Fig. 13c).
//!
//! Element-wise operations are offloaded to the SIMD unit, which is modelled as a single
//! sequential resource running concurrently with the array.

use crate::error::ScheduleError;
use crate::graph::{OpGraph, OpId};
use crate::schedule::{ExecUnit, Schedule, ScheduleEntry, Scheduler};
use cogsys_sim::{ComputeArray, Kernel, KernelClass};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the adSCH scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdSchConfig {
    /// Cell-block size given to neural kernels when symbolic kernels also exist in the
    /// graph (the remaining cells form the symbolic partition). When the graph has no
    /// symbolic array work, neural kernels receive the whole array.
    pub neural_cells: usize,
    /// Cell-block size given to symbolic (circular-convolution / similarity) kernels.
    pub symbolic_cells: usize,
    /// Whether operations from different tasks may interleave. Disabling this forces
    /// task-by-task execution (used to quantify the benefit of interleaving).
    pub interleave_tasks: bool,
}

impl Default for AdSchConfig {
    fn default() -> Self {
        Self {
            neural_cells: 12,
            symbolic_cells: 4,
            interleave_tasks: true,
        }
    }
}

impl AdSchConfig {
    /// Basic sanity check against a hardware configuration.
    fn clamp_to(&self, total_cells: usize) -> (usize, usize) {
        let neural = self.neural_cells.clamp(1, total_cells);
        let symbolic = self.symbolic_cells.clamp(1, total_cells);
        (neural, symbolic)
    }
}

/// The adaptive workload-aware scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdSchScheduler {
    config: AdSchConfig,
}

impl AdSchScheduler {
    /// Creates a scheduler with the given configuration.
    pub fn new(config: AdSchConfig) -> Self {
        Self { config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &AdSchConfig {
        &self.config
    }

    /// Candidate cell-block sizes for a kernel, in preference order. The scheduler
    /// evaluates each candidate against the current cell availability and picks the one
    /// that finishes earliest — this is the "assign ready operations to newly available
    /// cells, with runtime estimated analytically" step of the paper's greedy search.
    /// An empty list means the kernel runs on the SIMD unit.
    fn cell_candidates(
        &self,
        kernel: &Kernel,
        total_cells: usize,
        graph_has_symbolic: bool,
    ) -> Vec<usize> {
        let (neural, symbolic) = self.config.clamp_to(total_cells);
        match kernel {
            Kernel::ElementWise { .. } => Vec::new(),
            Kernel::CircConv { .. } | Kernel::Similarity { .. } => {
                let mut c = vec![symbolic, symbolic.div_ceil(2), total_cells];
                c.sort_unstable();
                c.dedup();
                c
            }
            Kernel::Gemm { .. } | Kernel::Conv2d { .. } => {
                if graph_has_symbolic {
                    let mut c = vec![total_cells, neural, (total_cells * 3) / 4];
                    c.retain(|&x| x >= 1);
                    c.sort_unstable();
                    c.dedup();
                    c
                } else {
                    vec![total_cells]
                }
            }
        }
    }
}

impl Scheduler for AdSchScheduler {
    fn schedule(&self, array: &ComputeArray, graph: &OpGraph) -> Result<Schedule, ScheduleError> {
        graph.validate()?;
        let total_cells = array.config().geometry.cells;
        let has_symbolic_array_work = graph
            .iter()
            .any(|n| n.class() == KernelClass::Symbolic && n.kernel.uses_compute_array());

        let mut cell_free = vec![0u64; total_cells];
        let mut simd_free = 0u64;
        let mut finish: Vec<Option<u64>> = vec![None; graph.len()];
        let mut task_finish: std::collections::HashMap<usize, u64> =
            std::collections::HashMap::new();
        let mut scheduled = vec![false; graph.len()];
        let mut entries: Vec<ScheduleEntry> = Vec::with_capacity(graph.len());
        let mut dram_bytes = 0u64;
        let mut remaining = graph.len();

        while remaining > 0 {
            // Collect ready operations (all dependencies already scheduled).
            let mut best: Option<(u64, u64, OpId, usize, u64)> = None; // (start, tie, id, cells, cycles)
            for node in graph.iter() {
                if scheduled[node.id] {
                    continue;
                }
                if node.deps.iter().any(|&d| finish[d].is_none()) {
                    continue;
                }
                let mut deps_ready = node
                    .deps
                    .iter()
                    .map(|&d| finish[d].expect("checked above"))
                    .max()
                    .unwrap_or(0);
                if !self.config.interleave_tasks {
                    // Without interleaving, an operation waits for every earlier task.
                    let earlier: u64 = task_finish
                        .iter()
                        .filter(|(&t, _)| t < node.task)
                        .map(|(_, &f)| f)
                        .max()
                        .unwrap_or(0);
                    deps_ready = deps_ready.max(earlier);
                }

                let candidates =
                    self.cell_candidates(&node.kernel, total_cells, has_symbolic_array_work);
                let (start, cycles, wanted) = if candidates.is_empty() {
                    // SIMD operation.
                    let record = array.execute(&node.kernel, 1)?;
                    (deps_ready.max(simd_free), record.cycles, 0usize)
                } else {
                    // Evaluate each candidate block size against current cell
                    // availability. Among candidates whose finish time is within 1% of
                    // the best, prefer the narrowest block: it is essentially as fast
                    // for this kernel but leaves cells free for other ready work
                    // (the cell-wise neural/symbolic partitioning of Fig. 13c).
                    let mut free_times = cell_free.clone();
                    free_times.sort_unstable();
                    let mut evaluated: Vec<(u64, u64, usize)> = Vec::new(); // (end, cycles, width)
                    for &width in &candidates {
                        let width = width.clamp(1, total_cells);
                        let cells_ready = free_times[width - 1];
                        let record = array.execute(&node.kernel, width)?;
                        let start = deps_ready.max(cells_ready);
                        evaluated.push((start + record.cycles, record.cycles, width));
                    }
                    let best_end = evaluated
                        .iter()
                        .map(|(end, _, _)| *end)
                        .min()
                        .expect("candidates is non-empty");
                    let slack = best_end + best_end / 100;
                    let (end, cycles, width) = evaluated
                        .into_iter()
                        .filter(|(end, _, _)| *end <= slack)
                        .min_by_key(|&(end, _, width)| (width, end))
                        .expect("at least the best candidate survives the slack filter");
                    (end - cycles, cycles, width)
                };

                // Pick the operation that can start earliest; break ties in favour of
                // neural kernels (they occupy the big blocks the symbolic work will
                // later fill around), then longer kernels first.
                let tie = match node.class() {
                    KernelClass::Neural => 0,
                    KernelClass::Symbolic => 1,
                };
                let candidate = (start, tie, node.id, wanted, cycles);
                let better = match &best {
                    None => true,
                    Some((bs, bt, _, _, bc)) => {
                        (start, tie, std::cmp::Reverse(cycles)) < (*bs, *bt, std::cmp::Reverse(*bc))
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }

            let (start, _tie, id, wanted, cycles) =
                best.expect("a DAG always has at least one ready operation");
            let node = graph.node(id).expect("valid id");
            let end = start + cycles;

            let (cells, unit) = if wanted == 0 {
                simd_free = end;
                (Vec::new(), ExecUnit::Simd)
            } else {
                // Choose the `wanted` cells with the earliest free times.
                let mut indices: Vec<usize> = (0..total_cells).collect();
                indices.sort_by_key(|&i| cell_free[i]);
                let chosen: Vec<usize> = indices.into_iter().take(wanted).collect();
                for &c in &chosen {
                    cell_free[c] = end;
                }
                (chosen, ExecUnit::Array)
            };

            let record = array.execute(&node.kernel, wanted.max(1))?;
            dram_bytes += record.dram_bytes;

            finish[id] = Some(end);
            scheduled[id] = true;
            remaining -= 1;
            task_finish
                .entry(node.task)
                .and_modify(|f| *f = (*f).max(end))
                .or_insert(end);

            entries.push(ScheduleEntry {
                op: id,
                task: node.task,
                class: node.class(),
                start,
                end,
                cells,
                unit,
            });
        }

        entries.sort_by_key(|e| (e.start, e.op));
        let makespan_cycles = entries.iter().map(|e| e.end).max().unwrap_or(0);
        Ok(Schedule {
            entries,
            makespan_cycles,
            dram_bytes,
            total_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SequentialScheduler;
    use cogsys_sim::AcceleratorConfig;
    use proptest::prelude::*;

    fn array() -> ComputeArray {
        ComputeArray::new(AcceleratorConfig::cogsys()).unwrap()
    }

    /// An NVSA-segment-like graph (Fig. 13d): per task, a chain of neural layers feeding
    /// a block of symbolic circular convolutions and SIMD post-processing.
    fn nvsa_like_graph(tasks: usize) -> OpGraph {
        let mut g = OpGraph::new();
        for t in 0..tasks {
            let conv1 = g.add_op(
                t,
                Kernel::Conv2d {
                    output_pixels: 784,
                    out_channels: 64,
                    reduction: 576,
                },
                &[],
            );
            let conv2 = g.add_op(
                t,
                Kernel::Conv2d {
                    output_pixels: 196,
                    out_channels: 128,
                    reduction: 576,
                },
                &[conv1],
            );
            let fc = g.add_op(
                t,
                Kernel::Gemm {
                    m: 16,
                    n: 1024,
                    k: 4096,
                },
                &[conv2],
            );
            let unbind = g.add_op(
                t,
                Kernel::CircConv {
                    dim: 1024,
                    count: 210,
                },
                &[fc],
            );
            let sim = g.add_op(
                t,
                Kernel::Similarity {
                    rows: 100,
                    dim: 1024,
                    count: 32,
                },
                &[unbind],
            );
            g.add_op(
                t,
                Kernel::ElementWise {
                    elements: 3200,
                    op: "softmax".into(),
                },
                &[sim],
            );
        }
        g
    }

    #[test]
    fn adsch_schedule_is_structurally_valid() {
        let g = nvsa_like_graph(3);
        let s = AdSchScheduler::default().schedule(&array(), &g).unwrap();
        assert_eq!(s.entries.len(), g.len());
        assert_eq!(s.find_violation(&g), None);
    }

    #[test]
    fn makespan_is_at_least_the_critical_path() {
        let g = nvsa_like_graph(2);
        let a = array();
        let s = AdSchScheduler::default().schedule(&a, &g).unwrap();
        // Critical path with full-array (fastest possible) durations lower-bounds any
        // schedule.
        let cp = g
            .critical_path(|n| a.execute(&n.kernel, 16).unwrap().cycles)
            .unwrap();
        assert!(s.makespan_cycles >= cp);
    }

    #[test]
    fn adsch_beats_sequential_on_multi_task_workloads() {
        // The headline system-level claim (Fig. 13, Fig. 19): interleaving symbolic
        // kernels of one task with neural layers of another plus cell-wise partitioning
        // trims end-to-end runtime versus sequential whole-array execution.
        let g = nvsa_like_graph(4);
        let a = array();
        let adsch = AdSchScheduler::default().schedule(&a, &g).unwrap();
        let seq = SequentialScheduler.schedule(&a, &g).unwrap();
        assert!(
            adsch.makespan_cycles < seq.makespan_cycles,
            "adSCH {} vs sequential {}",
            adsch.makespan_cycles,
            seq.makespan_cycles
        );
        // Utilisation stays a well-formed fraction. (Note: `array_utilization` counts
        // *allocated* cell-cycles, so the sequential whole-array schedule trivially
        // reports ~1.0 even though most of its PEs idle inside each kernel; the honest
        // utilisation comparison is done at PE granularity in the Fig. 19 ablation
        // bench, which weights by each kernel's own PE occupancy.)
        assert!(adsch.array_utilization() > 0.0 && adsch.array_utilization() <= 1.0);
    }

    #[test]
    fn interleaving_provides_measurable_benefit() {
        let g = nvsa_like_graph(4);
        let a = array();
        let with = AdSchScheduler::default().schedule(&a, &g).unwrap();
        let without = AdSchScheduler::new(AdSchConfig {
            interleave_tasks: false,
            ..AdSchConfig::default()
        })
        .schedule(&a, &g)
        .unwrap();
        assert_eq!(without.find_violation(&g), None);
        assert!(with.makespan_cycles <= without.makespan_cycles);
    }

    #[test]
    fn neural_only_graph_uses_whole_array() {
        let mut g = OpGraph::new();
        g.add_op(
            0,
            Kernel::Gemm {
                m: 512,
                n: 512,
                k: 512,
            },
            &[],
        );
        let s = AdSchScheduler::default().schedule(&array(), &g).unwrap();
        assert_eq!(s.entries[0].cells.len(), 16);
    }

    #[test]
    fn cell_blocks_come_from_the_configured_candidate_sets() {
        let g = nvsa_like_graph(2);
        let s = AdSchScheduler::default().schedule(&array(), &g).unwrap();
        for entry in &s.entries {
            match entry.class {
                KernelClass::Symbolic if entry.unit == ExecUnit::Array => {
                    assert!(
                        [2, 4, 16].contains(&entry.cells.len()),
                        "symbolic op {} used {} cells",
                        entry.op,
                        entry.cells.len()
                    );
                }
                KernelClass::Neural => {
                    assert!(
                        [12, 16].contains(&entry.cells.len()),
                        "neural op {} used {} cells",
                        entry.op,
                        entry.cells.len()
                    );
                }
                _ => {}
            }
        }
    }

    #[test]
    fn simd_ops_do_not_occupy_cells() {
        let g = nvsa_like_graph(2);
        let s = AdSchScheduler::default().schedule(&array(), &g).unwrap();
        for entry in s.entries.iter().filter(|e| e.unit == ExecUnit::Simd) {
            assert!(entry.cells.is_empty());
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let s = AdSchScheduler::default()
            .schedule(&array(), &OpGraph::new())
            .unwrap();
        assert_eq!(s.makespan_cycles, 0);
        assert!(s.entries.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn prop_adsch_invariants_hold_for_random_graphs(seed in 0u64..500, n_ops in 1usize..20) {
            use rand::Rng;
            let mut rng = cogsys_vsa_compat_rng(seed);
            let mut g = OpGraph::new();
            for i in 0..n_ops {
                let kernel = match rng.gen_range(0..4) {
                    0 => Kernel::Gemm { m: rng.gen_range(1..256), n: rng.gen_range(1..256), k: rng.gen_range(1..256) },
                    1 => Kernel::CircConv { dim: rng.gen_range(1..2048), count: rng.gen_range(1..64) },
                    2 => Kernel::Similarity { rows: rng.gen_range(1..128), dim: rng.gen_range(1..1024), count: rng.gen_range(1..8) },
                    _ => Kernel::ElementWise { elements: rng.gen_range(1..4096), op: "relu".into() },
                };
                // Random backward dependencies.
                let mut deps = Vec::new();
                if i > 0 {
                    for _ in 0..rng.gen_range(0..3usize.min(i + 1)) {
                        deps.push(rng.gen_range(0..i));
                    }
                    deps.sort_unstable();
                    deps.dedup();
                }
                g.add_op(rng.gen_range(0..3), kernel, &deps);
            }
            let a = array();
            let s = AdSchScheduler::default().schedule(&a, &g).unwrap();
            prop_assert_eq!(s.find_violation(&g), None);
            prop_assert!(s.makespan_cycles >= s.entries.iter().map(|e| e.duration()).max().unwrap_or(0));
        }
    }

    /// proptest helper: deterministic RNG without importing cogsys-vsa as a dependency
    /// of this crate.
    fn cogsys_vsa_compat_rng(seed: u64) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }
}
