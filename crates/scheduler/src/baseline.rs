//! Sequential baseline scheduler.
//!
//! Models how a conventional ML accelerator executes a neurosymbolic workload
//! (Fig. 13a): every kernel gets the whole array, kernels run strictly one after
//! another in dependency order, and there is no overlap between the neural layers of
//! one task and the symbolic operations of another. This is also the "CogSys w/o
//! adSCH" configuration of the Fig. 19 ablation.

use crate::error::ScheduleError;
use crate::graph::OpGraph;
use crate::schedule::{ExecUnit, Schedule, ScheduleEntry, Scheduler};
use cogsys_sim::{ComputeArray, Kernel};

/// The sequential (no-interleaving, whole-array) scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialScheduler;

impl Scheduler for SequentialScheduler {
    fn schedule(&self, array: &ComputeArray, graph: &OpGraph) -> Result<Schedule, ScheduleError> {
        let order = graph.topological_order()?;
        let total_cells = array.config().geometry.cells;
        let all_cells: Vec<usize> = (0..total_cells).collect();
        let mut entries = Vec::with_capacity(order.len());
        let mut time = 0u64;
        let mut dram_bytes = 0u64;

        for id in order {
            let node = graph.node(id).expect("topological order yields valid ids");
            let record = array.execute(&node.kernel, total_cells)?;
            let unit = if matches!(node.kernel, Kernel::ElementWise { .. }) {
                ExecUnit::Simd
            } else {
                ExecUnit::Array
            };
            let start = time;
            let end = start + record.cycles;
            dram_bytes += record.dram_bytes;
            entries.push(ScheduleEntry {
                op: id,
                task: node.task,
                class: node.class(),
                start,
                end,
                cells: if unit == ExecUnit::Array {
                    all_cells.clone()
                } else {
                    Vec::new()
                },
                unit,
            });
            time = end;
        }

        Ok(Schedule {
            entries,
            makespan_cycles: time,
            dram_bytes,
            total_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_sim::AcceleratorConfig;

    fn array() -> ComputeArray {
        ComputeArray::new(AcceleratorConfig::cogsys()).unwrap()
    }

    fn mixed_graph(tasks: usize) -> OpGraph {
        let mut g = OpGraph::new();
        for t in 0..tasks {
            let conv = g.add_op(
                t,
                Kernel::Conv2d {
                    output_pixels: 1024,
                    out_channels: 64,
                    reduction: 576,
                },
                &[],
            );
            let sym = g.add_op(
                t,
                Kernel::CircConv {
                    dim: 1024,
                    count: 64,
                },
                &[conv],
            );
            g.add_op(
                t,
                Kernel::ElementWise {
                    elements: 1024,
                    op: "softmax".into(),
                },
                &[sym],
            );
        }
        g
    }

    #[test]
    fn sequential_schedule_is_valid_and_strictly_ordered() {
        let g = mixed_graph(2);
        let s = SequentialScheduler.schedule(&array(), &g).unwrap();
        assert_eq!(s.entries.len(), 6);
        assert_eq!(s.find_violation(&g), None);
        // Strictly sequential: every entry starts when the previous one ends.
        for pair in s.entries.windows(2) {
            assert_eq!(pair[1].start, pair[0].end);
        }
        assert_eq!(s.makespan_cycles, s.entries.last().unwrap().end);
    }

    #[test]
    fn makespan_equals_sum_of_kernel_latencies() {
        let g = mixed_graph(1);
        let a = array();
        let s = SequentialScheduler.schedule(&a, &g).unwrap();
        let expected: u64 = g
            .iter()
            .map(|n| a.execute(&n.kernel, 16).unwrap().cycles)
            .sum();
        assert_eq!(s.makespan_cycles, expected);
    }

    #[test]
    fn empty_graph_produces_empty_schedule() {
        let s = SequentialScheduler
            .schedule(&array(), &OpGraph::new())
            .unwrap();
        assert!(s.entries.is_empty());
        assert_eq!(s.makespan_cycles, 0);
    }

    #[test]
    fn invalid_graph_is_rejected() {
        let mut g = OpGraph::new();
        g.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[7]);
        assert!(SequentialScheduler.schedule(&array(), &g).is_err());
    }
}
