//! Scheduler error type.

use cogsys_sim::SimError;
use std::fmt;

/// Errors produced while building or scheduling operation graphs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// An operation referenced a dependency that does not exist (or itself).
    InvalidDependency {
        /// The operation with the bad edge.
        op: usize,
        /// The referenced dependency.
        dep: usize,
    },
    /// The graph contains a dependency cycle.
    CyclicGraph,
    /// The underlying hardware model rejected a kernel.
    Hardware(SimError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InvalidDependency { op, dep } => {
                write!(f, "operation {op} depends on invalid operation {dep}")
            }
            ScheduleError::CyclicGraph => write!(f, "operation graph contains a cycle"),
            ScheduleError::Hardware(e) => write!(f, "hardware model error: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Hardware(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ScheduleError {
    fn from(e: SimError) -> Self {
        ScheduleError::Hardware(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ScheduleError::InvalidDependency { op: 3, dep: 9 };
        assert!(e.to_string().contains('3'));
        assert!(e.to_string().contains('9'));
        assert!(ScheduleError::CyclicGraph.to_string().contains("cycle"));
        let hw: ScheduleError = SimError::DimensionMismatch { left: 1, right: 2 }.into();
        assert!(hw.to_string().contains("1 vs 2"));
        use std::error::Error;
        assert!(hw.source().is_some());
        assert!(ScheduleError::CyclicGraph.source().is_none());
    }
}
