//! Operation-graph IR for neurosymbolic workloads.

use crate::error::ScheduleError;
use cogsys_sim::{Kernel, KernelClass};
use serde::{Deserialize, Serialize};

/// Identifier of an operation inside an [`OpGraph`].
pub type OpId = usize;

/// One node of the operation graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpNode {
    /// Node id (index into the graph).
    pub id: OpId,
    /// The task (reasoning problem / batch) this operation belongs to. The adSCH
    /// scheduler interleaves symbolic operations of one task with neural layers of the
    /// next, so the task id is what makes that legal to express.
    pub task: usize,
    /// The kernel to execute.
    pub kernel: Kernel,
    /// Operations that must complete before this one starts.
    pub deps: Vec<OpId>,
}

impl OpNode {
    /// Neural or symbolic, inherited from the kernel.
    pub fn class(&self) -> KernelClass {
        self.kernel.class()
    }
}

/// A directed acyclic graph of operations.
///
/// # Example
/// ```
/// use cogsys_scheduler::OpGraph;
/// use cogsys_sim::Kernel;
/// let mut g = OpGraph::new();
/// let a = g.add_op(0, Kernel::Gemm { m: 8, n: 8, k: 8 }, &[]);
/// let b = g.add_op(0, Kernel::CircConv { dim: 64, count: 4 }, &[a]);
/// assert_eq!(g.len(), 2);
/// assert_eq!(g.node(b).unwrap().deps, vec![a]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OpGraph {
    nodes: Vec<OpNode>,
}

impl OpGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operation belonging to `task` with the given dependencies, returning its id.
    ///
    /// Dependencies on not-yet-existing nodes are allowed at insertion time and caught
    /// by [`OpGraph::validate`].
    pub fn add_op(&mut self, task: usize, kernel: Kernel, deps: &[OpId]) -> OpId {
        let id = self.nodes.len();
        self.nodes.push(OpNode {
            id,
            task,
            kernel,
            deps: deps.to_vec(),
        });
        id
    }

    /// Appends every node of `other`, offsetting its ids, and returns the id offset.
    ///
    /// Used to concatenate per-task graphs into a multi-task graph the scheduler can
    /// interleave.
    pub fn append(&mut self, other: &OpGraph) -> usize {
        let offset = self.nodes.len();
        for node in &other.nodes {
            self.nodes.push(OpNode {
                id: node.id + offset,
                task: node.task,
                kernel: node.kernel.clone(),
                deps: node.deps.iter().map(|d| d + offset).collect(),
            });
        }
        offset
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the graph has no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: OpId) -> Option<&OpNode> {
        self.nodes.get(id)
    }

    /// Iterates over all nodes.
    pub fn iter(&self) -> std::slice::Iter<'_, OpNode> {
        self.nodes.iter()
    }

    /// Number of distinct tasks referenced by the graph.
    pub fn num_tasks(&self) -> usize {
        let mut tasks: Vec<usize> = self.nodes.iter().map(|n| n.task).collect();
        tasks.sort_unstable();
        tasks.dedup();
        tasks.len()
    }

    /// Total FLOPs in the graph, split into (neural, symbolic).
    pub fn flops_by_class(&self) -> (u64, u64) {
        let mut neural = 0u64;
        let mut symbolic = 0u64;
        for n in &self.nodes {
            match n.class() {
                KernelClass::Neural => neural += n.kernel.flops(),
                KernelClass::Symbolic => symbolic += n.kernel.flops(),
            }
        }
        (neural, symbolic)
    }

    /// Validates that every dependency exists, no node depends on itself or a later
    /// node, and (therefore) the graph is acyclic.
    ///
    /// # Errors
    /// Returns [`ScheduleError::InvalidDependency`] for a bad edge. Because `add_op`
    /// assigns increasing ids and edges must point to earlier ids, a valid graph is
    /// automatically acyclic.
    pub fn validate(&self) -> Result<(), ScheduleError> {
        for node in &self.nodes {
            for &dep in &node.deps {
                if dep >= node.id {
                    return Err(ScheduleError::InvalidDependency { op: node.id, dep });
                }
            }
        }
        Ok(())
    }

    /// Topological order of the graph (insertion order, since edges point backwards).
    ///
    /// # Errors
    /// Propagates [`OpGraph::validate`] errors.
    pub fn topological_order(&self) -> Result<Vec<OpId>, ScheduleError> {
        self.validate()?;
        Ok((0..self.nodes.len()).collect())
    }

    /// Length of the critical path through the graph, where each node's weight is given
    /// by `cost`. This lower-bounds any schedule's makespan.
    ///
    /// # Errors
    /// Propagates [`OpGraph::validate`] errors.
    pub fn critical_path<F>(&self, mut cost: F) -> Result<u64, ScheduleError>
    where
        F: FnMut(&OpNode) -> u64,
    {
        self.validate()?;
        let mut finish = vec![0u64; self.nodes.len()];
        let mut best = 0u64;
        for node in &self.nodes {
            let ready = node.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
            finish[node.id] = ready + cost(node);
            best = best.max(finish[node.id]);
        }
        Ok(best)
    }
}

impl<'a> IntoIterator for &'a OpGraph {
    type Item = &'a OpNode;
    type IntoIter = std::slice::Iter<'a, OpNode>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn chain_graph(n: usize) -> OpGraph {
        let mut g = OpGraph::new();
        let mut prev: Option<OpId> = None;
        for _ in 0..n {
            let deps: Vec<OpId> = prev.into_iter().collect();
            prev = Some(g.add_op(0, Kernel::Gemm { m: 4, n: 4, k: 4 }, &deps));
        }
        g
    }

    #[test]
    fn build_and_inspect() {
        let mut g = OpGraph::new();
        assert!(g.is_empty());
        let a = g.add_op(0, Kernel::Gemm { m: 2, n: 2, k: 2 }, &[]);
        let b = g.add_op(1, Kernel::CircConv { dim: 16, count: 2 }, &[a]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.num_tasks(), 2);
        assert_eq!(g.node(b).unwrap().class(), KernelClass::Symbolic);
        assert!(g.node(99).is_none());
        assert_eq!(g.iter().count(), 2);
        assert_eq!((&g).into_iter().count(), 2);
        let (neural, symbolic) = g.flops_by_class();
        assert_eq!(neural, 2 * 2 * 2 * 2);
        assert_eq!(symbolic, 2 * 16 * 16 * 2);
    }

    #[test]
    fn validation_rejects_forward_and_self_edges() {
        let mut g = OpGraph::new();
        let a = g.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[5]);
        assert!(matches!(
            g.validate(),
            Err(ScheduleError::InvalidDependency { op, dep: 5 }) if op == a
        ));
        let mut g = OpGraph::new();
        g.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[0]);
        assert!(g.validate().is_err());
        assert!(g.topological_order().is_err());
    }

    #[test]
    fn append_offsets_ids_and_deps() {
        let mut a = chain_graph(3);
        let b = chain_graph(2);
        let offset = a.append(&b);
        assert_eq!(offset, 3);
        assert_eq!(a.len(), 5);
        assert_eq!(a.node(4).unwrap().deps, vec![3]);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn critical_path_of_chain_and_parallel_graphs() {
        let chain = chain_graph(5);
        assert_eq!(chain.critical_path(|_| 10).unwrap(), 50);

        let mut parallel = OpGraph::new();
        for _ in 0..5 {
            parallel.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[]);
        }
        assert_eq!(parallel.critical_path(|_| 10).unwrap(), 10);

        // Diamond: a -> {b, c} -> d.
        let mut diamond = OpGraph::new();
        let a = diamond.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[]);
        let b = diamond.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[a]);
        let c = diamond.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[a]);
        diamond.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[b, c]);
        assert_eq!(diamond.critical_path(|_| 7).unwrap(), 21);
    }

    #[test]
    fn empty_graph_critical_path_is_zero() {
        let g = OpGraph::new();
        assert_eq!(g.critical_path(|_| 1).unwrap(), 0);
        assert_eq!(g.num_tasks(), 0);
    }

    proptest! {
        #[test]
        fn prop_critical_path_bounded_by_total(n in 1usize..30, w in 1u64..100) {
            let g = chain_graph(n);
            let cp = g.critical_path(|_| w).unwrap();
            prop_assert_eq!(cp, n as u64 * w);
        }

        #[test]
        fn prop_topological_order_respects_deps(n in 1usize..40) {
            let g = chain_graph(n);
            let order = g.topological_order().unwrap();
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &id)| (id, i)).collect();
            for node in &g {
                for &d in &node.deps {
                    prop_assert!(pos[&d] < pos[&node.id]);
                }
            }
        }
    }
}
