//! Schedule representation, metrics, and the `Scheduler` trait.

use crate::error::ScheduleError;
use crate::graph::{OpGraph, OpId};
use cogsys_sim::{ComputeArray, KernelClass};
use serde::{Deserialize, Serialize};

/// The execution unit an operation was assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecUnit {
    /// The reconfigurable compute array (a subset of its cells).
    Array,
    /// The custom SIMD unit.
    Simd,
}

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// The operation this entry schedules.
    pub op: OpId,
    /// Task the operation belongs to.
    pub task: usize,
    /// Kernel class (neural/symbolic) for reporting.
    pub class: KernelClass,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// Indices of the array cells used (empty for SIMD work).
    pub cells: Vec<usize>,
    /// Which unit executed the operation.
    pub unit: ExecUnit,
}

impl ScheduleEntry {
    /// Duration in cycles.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// A complete schedule of an operation graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Schedule {
    /// Scheduled entries in start-time order.
    pub entries: Vec<ScheduleEntry>,
    /// Total latency in cycles.
    pub makespan_cycles: u64,
    /// Total off-chip traffic in bytes.
    pub dram_bytes: u64,
    /// Number of array cells in the hardware configuration the schedule targets.
    pub total_cells: usize,
}

impl Schedule {
    /// Average compute-array utilisation: busy cell-cycles divided by
    /// `makespan × total_cells`.
    pub fn array_utilization(&self) -> f64 {
        if self.makespan_cycles == 0 || self.total_cells == 0 {
            return 0.0;
        }
        let busy: u64 = self
            .entries
            .iter()
            .filter(|e| e.unit == ExecUnit::Array)
            .map(|e| e.duration() * e.cells.len() as u64)
            .sum();
        busy as f64 / (self.makespan_cycles * self.total_cells as u64) as f64
    }

    /// Cycles during which at least one entry of the given class was running.
    pub fn busy_cycles_by_class(&self, class: KernelClass) -> u64 {
        let mut intervals: Vec<(u64, u64)> = self
            .entries
            .iter()
            .filter(|e| e.class == class)
            .map(|e| (e.start, e.end))
            .collect();
        intervals.sort_unstable();
        let mut total = 0u64;
        let mut current: Option<(u64, u64)> = None;
        for (s, e) in intervals {
            match current {
                Some((cs, ce)) if s <= ce => current = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    total += ce - cs;
                    current = Some((s, e));
                }
                None => current = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = current {
            total += ce - cs;
        }
        total
    }

    /// Makespan in seconds at the given clock frequency.
    pub fn makespan_seconds(&self, frequency_ghz: f64) -> f64 {
        self.makespan_cycles as f64 / (frequency_ghz * 1e9)
    }

    /// Checks the structural invariants every valid schedule must satisfy:
    /// each operation appears exactly once, dependencies finish before dependents start,
    /// and no array cell is used by two overlapping entries.
    ///
    /// Returns a human-readable description of the first violation, or `None`.
    pub fn find_violation(&self, graph: &OpGraph) -> Option<String> {
        // Every op scheduled exactly once.
        let mut seen = vec![false; graph.len()];
        for entry in &self.entries {
            if entry.op >= graph.len() {
                return Some(format!("entry references unknown op {}", entry.op));
            }
            if seen[entry.op] {
                return Some(format!("op {} scheduled twice", entry.op));
            }
            seen[entry.op] = true;
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Some(format!("op {missing} never scheduled"));
        }
        // Dependencies.
        let mut finish = vec![0u64; graph.len()];
        for entry in &self.entries {
            finish[entry.op] = entry.end;
        }
        for entry in &self.entries {
            let node = graph.node(entry.op).expect("checked above");
            for &dep in &node.deps {
                if finish[dep] > entry.start {
                    return Some(format!(
                        "op {} starts at {} before dependency {} finishes at {}",
                        entry.op, entry.start, dep, finish[dep]
                    ));
                }
            }
        }
        // Cell conflicts.
        for (i, a) in self.entries.iter().enumerate() {
            for b in self.entries.iter().skip(i + 1) {
                if a.unit != ExecUnit::Array || b.unit != ExecUnit::Array {
                    continue;
                }
                let overlap_time = a.start < b.end && b.start < a.end;
                if !overlap_time {
                    continue;
                }
                if a.cells.iter().any(|c| b.cells.contains(c)) {
                    return Some(format!(
                        "ops {} and {} overlap in time and share a cell",
                        a.op, b.op
                    ));
                }
            }
        }
        // SIMD conflicts (the SIMD unit is a single resource).
        let mut simd: Vec<(u64, u64, OpId)> = self
            .entries
            .iter()
            .filter(|e| e.unit == ExecUnit::Simd)
            .map(|e| (e.start, e.end, e.op))
            .collect();
        simd.sort_unstable();
        for pair in simd.windows(2) {
            if pair[1].0 < pair[0].1 {
                return Some(format!("SIMD ops {} and {} overlap", pair[0].2, pair[1].2));
            }
        }
        None
    }
}

/// A scheduling policy: maps an operation graph onto a [`ComputeArray`].
pub trait Scheduler {
    /// Produces a schedule for `graph` on `array`.
    ///
    /// # Errors
    /// Returns [`ScheduleError`] if the graph is invalid or a kernel cannot be executed.
    fn schedule(&self, array: &ComputeArray, graph: &OpGraph) -> Result<Schedule, ScheduleError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_sim::Kernel;

    fn two_op_graph() -> OpGraph {
        let mut g = OpGraph::new();
        let a = g.add_op(0, Kernel::Gemm { m: 4, n: 4, k: 4 }, &[]);
        g.add_op(0, Kernel::CircConv { dim: 32, count: 1 }, &[a]);
        g
    }

    fn entry(
        op: OpId,
        start: u64,
        end: u64,
        cells: Vec<usize>,
        class: KernelClass,
    ) -> ScheduleEntry {
        ScheduleEntry {
            op,
            task: 0,
            class,
            start,
            end,
            cells,
            unit: ExecUnit::Array,
        }
    }

    #[test]
    fn utilization_and_duration() {
        let s = Schedule {
            entries: vec![
                entry(0, 0, 10, vec![0, 1], KernelClass::Neural),
                entry(1, 10, 20, vec![0], KernelClass::Symbolic),
            ],
            makespan_cycles: 20,
            dram_bytes: 0,
            total_cells: 2,
        };
        assert_eq!(s.entries[0].duration(), 10);
        // Busy cell-cycles: 10*2 + 10*1 = 30 over 20*2 = 40.
        assert!((s.array_utilization() - 0.75).abs() < 1e-12);
        assert_eq!(s.busy_cycles_by_class(KernelClass::Neural), 10);
        assert_eq!(s.busy_cycles_by_class(KernelClass::Symbolic), 10);
        assert!((s.makespan_seconds(0.8) - 25e-9).abs() < 1e-15);
    }

    #[test]
    fn empty_schedule_has_zero_utilization() {
        let s = Schedule::default();
        assert_eq!(s.array_utilization(), 0.0);
        assert_eq!(s.busy_cycles_by_class(KernelClass::Neural), 0);
    }

    #[test]
    fn violation_detection_missing_and_duplicate_ops() {
        let g = two_op_graph();
        let s = Schedule {
            entries: vec![entry(0, 0, 5, vec![0], KernelClass::Neural)],
            makespan_cycles: 5,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert!(s.find_violation(&g).unwrap().contains("never scheduled"));

        let s = Schedule {
            entries: vec![
                entry(0, 0, 5, vec![0], KernelClass::Neural),
                entry(0, 5, 6, vec![0], KernelClass::Neural),
            ],
            makespan_cycles: 6,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert!(s.find_violation(&g).unwrap().contains("twice"));
    }

    #[test]
    fn violation_detection_dependency_and_conflicts() {
        let g = two_op_graph();
        // Dependency violated: op 1 starts before op 0 ends.
        let s = Schedule {
            entries: vec![
                entry(0, 0, 10, vec![0], KernelClass::Neural),
                entry(1, 5, 15, vec![1], KernelClass::Symbolic),
            ],
            makespan_cycles: 15,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert!(s.find_violation(&g).unwrap().contains("dependency"));

        // Cell conflict: same cell, overlapping times, independent ops.
        let mut g2 = OpGraph::new();
        g2.add_op(0, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[]);
        g2.add_op(1, Kernel::Gemm { m: 1, n: 1, k: 1 }, &[]);
        let s = Schedule {
            entries: vec![
                entry(0, 0, 10, vec![3], KernelClass::Neural),
                entry(1, 5, 12, vec![3], KernelClass::Neural),
            ],
            makespan_cycles: 12,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert!(s.find_violation(&g2).unwrap().contains("share a cell"));

        // A correct schedule passes.
        let s = Schedule {
            entries: vec![
                entry(0, 0, 10, vec![0], KernelClass::Neural),
                entry(1, 10, 20, vec![0], KernelClass::Symbolic),
            ],
            makespan_cycles: 20,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert_eq!(s.find_violation(&g), None);
    }

    #[test]
    fn simd_overlap_is_a_violation() {
        let mut g = OpGraph::new();
        g.add_op(
            0,
            Kernel::ElementWise {
                elements: 8,
                op: "relu".into(),
            },
            &[],
        );
        g.add_op(
            1,
            Kernel::ElementWise {
                elements: 8,
                op: "relu".into(),
            },
            &[],
        );
        let mk = |op: OpId, start: u64, end: u64| ScheduleEntry {
            op,
            task: op,
            class: KernelClass::Symbolic,
            start,
            end,
            cells: vec![],
            unit: ExecUnit::Simd,
        };
        let s = Schedule {
            entries: vec![mk(0, 0, 10), mk(1, 5, 15)],
            makespan_cycles: 15,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert!(s.find_violation(&g).unwrap().contains("SIMD"));
    }

    #[test]
    fn busy_cycles_merges_overlapping_intervals() {
        let s = Schedule {
            entries: vec![
                entry(0, 0, 10, vec![0], KernelClass::Symbolic),
                entry(1, 5, 15, vec![1], KernelClass::Symbolic),
                entry(2, 20, 25, vec![2], KernelClass::Symbolic),
            ],
            makespan_cycles: 25,
            dram_bytes: 0,
            total_cells: 16,
        };
        assert_eq!(s.busy_cycles_by_class(KernelClass::Symbolic), 20);
    }
}
