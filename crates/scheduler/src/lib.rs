//! # cogsys-scheduler — operation graphs and the adaptive workload-aware scheduler
//!
//! Implements the system-level contribution of CogSys (paper Sec. VI):
//!
//! * [`graph`] — an operation-graph IR for neurosymbolic workloads: every node is a
//!   [`cogsys_sim::Kernel`] with dependencies, a task (batch) id and an iteration count,
//!   mirroring the "operation graph based on operation type, size, dependencies, and
//!   number of iterations" the paper's offline scheduler consumes.
//! * [`adsch`] — the adaptive workload-aware scheduler (adSCH): greedy list scheduling
//!   of ready operations onto the 16 array cells with cell-wise neural/symbolic
//!   partitioning, column-wise symbolic parallelism, cross-task interleaving (symbolic
//!   kernels of the previous task fill the cells idled by the current task's neural
//!   layers), and SIMD offload of element-wise operations.
//! * [`baseline`] — the sequential baseline scheduler (every kernel gets the whole
//!   array, strictly in dependency order) used by the ablation studies (Fig. 13a,
//!   Fig. 19).
//!
//! # Example
//!
//! ```rust
//! use cogsys_scheduler::{AdSchScheduler, OpGraph, SequentialScheduler, Scheduler};
//! use cogsys_sim::{AcceleratorConfig, ComputeArray, Kernel};
//!
//! let mut graph = OpGraph::new();
//! let conv = graph.add_op(0, Kernel::Conv2d { output_pixels: 1024, out_channels: 64, reduction: 576 }, &[]);
//! let _sym = graph.add_op(0, Kernel::CircConv { dim: 1024, count: 64 }, &[conv]);
//! // A second, independent task whose symbolic work can interleave with the first.
//! let conv2 = graph.add_op(1, Kernel::Conv2d { output_pixels: 1024, out_channels: 64, reduction: 576 }, &[]);
//! let _sym2 = graph.add_op(1, Kernel::CircConv { dim: 1024, count: 64 }, &[conv2]);
//!
//! let array = ComputeArray::new(AcceleratorConfig::cogsys()).unwrap();
//! let adsch = AdSchScheduler::new(Default::default()).schedule(&array, &graph).unwrap();
//! let seq = SequentialScheduler.schedule(&array, &graph).unwrap();
//! assert!(adsch.makespan_cycles <= seq.makespan_cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adsch;
pub mod baseline;
pub mod error;
pub mod graph;
pub mod schedule;

pub use adsch::{AdSchConfig, AdSchScheduler};
pub use baseline::SequentialScheduler;
pub use error::ScheduleError;
pub use graph::{OpGraph, OpId, OpNode};
pub use schedule::{ExecUnit, Schedule, ScheduleEntry, Scheduler};
