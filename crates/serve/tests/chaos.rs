//! Chaos integration test: the acceptance scenario of the serving layer.
//!
//! A seeded adversarial trace (≥10% poisoned specs, 4× overload bursts) runs
//! through the full stack — trace generator → admission → batch former →
//! chaos-wrapped solver engine — and must complete with zero panics, poison
//! isolated behind typed errors, visible backpressure and degradation, and
//! level-0 responses decision-identical to driving the solver directly.

use cogsys_serve::{
    ChaosConfig, ChaosEngine, DegradationLevel, Rejection, ServeConfig, ServeLoop, SolverEngine,
    TraceConfig,
};
use cogsys_workloads::{NeurosymbolicSolver, SolveError, SolverConfig, SolverScratch};
use rand::{rngs::StdRng, SeedableRng};

fn serve_config() -> ServeConfig {
    ServeConfig {
        // Small dimensionality keeps the 160-problem run fast; the serving
        // logic under test is independent of it.
        solver: SolverConfig {
            vector_dim: 512,
            ..SolverConfig::default()
        },
        // Tight enough that the trace's 4x bursts genuinely overload the front
        // end: the measured backlog peak of this scenario (~20) exceeds the
        // bound.
        max_queue_depth: 16,
        max_batch: 8,
        degrade_depth: 12,
        recover_depth: 4,
        retry_budget: 6,
        ..ServeConfig::default()
    }
}

fn chaos_config() -> ChaosConfig {
    ChaosConfig {
        seed: 0x0BAD_5EED,
        forced_error_rate: 0.08,
        extra_latency_rate: 0.10,
        extra_latency_micros: 5_000,
    }
}

#[test]
fn adversarial_chaos_run_isolates_faults_and_keeps_level0_identity() {
    let trace = TraceConfig::adversarial(160).generate();
    let poisoned = trace
        .iter()
        .filter(|r| NeurosymbolicSolver::validate_problem(&r.problem).is_err())
        .count();
    assert!(
        poisoned * 10 >= trace.len(),
        "trace must carry >= 10% poison, got {poisoned}/160"
    );

    let config = serve_config();
    let engine = SolverEngine::new(config.solver.clone(), config.codebook_seed)
        .expect("solver construction");
    let engine = ChaosEngine::new(engine, chaos_config());
    let mut serve = ServeLoop::with_engine(config.clone(), engine).expect("valid config");
    let responses = serve.run_trace(&trace);

    // Zero lost requests: one terminal response per submission.
    assert_eq!(responses.len(), trace.len());
    let counters = *serve.counters();
    assert_eq!(counters.submitted, trace.len());
    assert_eq!(counters.accounted(), counters.submitted);

    // Poison isolation: malformed requests fail alone with typed errors;
    // answered requests are exactly the well-formed ones that got through.
    for response in &responses {
        let problem = &trace[response.id as usize].problem;
        match &response.outcome {
            Ok(answer) => {
                assert!(
                    NeurosymbolicSolver::validate_problem(problem).is_ok(),
                    "request {} answered despite being malformed",
                    response.id
                );
                assert!(answer.choice < problem.candidates.len());
            }
            Err(Rejection::Invalid(error)) => {
                assert!(matches!(error, SolveError::Malformed { .. }));
                assert!(
                    NeurosymbolicSolver::validate_problem(problem).is_err(),
                    "request {} rejected as invalid but validates clean",
                    response.id
                );
            }
            Err(Rejection::Failed(_)) => {
                // Batch-mates that ran out of retry budget; the carried error
                // is whatever failed the last attempt (fault or a batch-mate's
                // Malformed), and this request itself may well be clean.
            }
            Err(Rejection::Overloaded { .. } | Rejection::DeadlineExpired { .. }) => {}
        }
    }
    assert!(counters.invalid > 0, "no poison reached the engine");

    // Overload visibly sheds, degrades the ladder, and the chaos faults force
    // retries — all while the run completes without a panic.
    assert!(counters.shed > 0, "4x burst must overflow the queue bound");
    assert!(counters.max_level > 0 && counters.degraded_batches > 0);
    assert!(
        counters.retries > 0,
        "chaos faults and excisions must retry"
    );
    assert!(serve.engine().stats().forced_errors > 0);
    assert!(
        responses
            .iter()
            .any(|r| r.is_answered() && r.degradation.as_u8() > 0),
        "some answers must be served degraded"
    );

    // Pinned profile of this seeded scenario: catches silent behaviour drift
    // (different shedding, ladder, or retry decisions) on refactors.
    assert_eq!(
        (
            counters.completed,
            counters.shed,
            counters.expired,
            counters.invalid,
            counters.failed,
            counters.retries,
            counters.degraded_batches,
            counters.max_level,
        ),
        PINNED_PROFILE,
        "serving profile drifted; re-pin only if the change is intended"
    );

    // Level-0 identity: every full-service chunk must match a direct
    // `solve_batch_with` call on the same problems with the chunk's seed.
    let mut full_chunks = 0;
    let mut scratch = SolverScratch::default();
    for chunk in serve.executed() {
        if chunk.level != DegradationLevel::Full {
            continue;
        }
        full_chunks += 1;
        let problems: Vec<_> = chunk
            .ids
            .iter()
            .map(|&id| trace[id as usize].problem.clone())
            .collect();
        let mut rng = StdRng::seed_from_u64(chunk.seed);
        serve
            .engine()
            .inner()
            .solver()
            .solve_batch_with(&problems, &mut rng, &mut scratch)
            .expect("replaying an executed chunk cannot fail");
        assert_eq!(
            scratch.choices(),
            &chunk.choices[..],
            "level-0 chunk diverged from direct solve_batch_with"
        );
    }
    assert!(full_chunks > 0, "scenario must execute full-service chunks");
}

/// `(completed, shed, expired, invalid, failed, retries, degraded_batches,
/// max_level)` of the fixed seeded scenario above.
const PINNED_PROFILE: (usize, usize, usize, usize, usize, usize, usize, u8) =
    (119, 7, 0, 34, 0, 27, 24, 3);

#[test]
fn clean_steady_run_matches_unserved_solving_end_to_end() {
    // Without chaos, poison or overload, serving must be a pure batching layer:
    // every response answered at level 0, and every chunk decision-identical.
    let config = serve_config();
    let trace = TraceConfig::steady(24).generate();
    let mut serve = ServeLoop::with_solver(config.clone()).expect("valid config");
    let responses = serve.run_trace(&trace);
    assert!(responses.iter().all(|r| r.is_answered()));
    assert!(responses
        .iter()
        .all(|r| r.degradation == DegradationLevel::Full));
    assert_eq!(serve.counters().completed, 24);
    assert_eq!(serve.counters().retries, 0);

    let reference = SolverEngine::new(config.solver.clone(), config.codebook_seed)
        .expect("solver construction");
    let mut scratch = SolverScratch::default();
    for chunk in serve.executed() {
        let problems: Vec<_> = chunk
            .ids
            .iter()
            .map(|&id| trace[id as usize].problem.clone())
            .collect();
        let mut rng = StdRng::seed_from_u64(chunk.seed);
        reference
            .solver()
            .solve_batch_with(&problems, &mut rng, &mut scratch)
            .expect("well-formed problems solve");
        assert_eq!(scratch.choices(), &chunk.choices[..]);
    }
}
