//! Batch execution engines and the graceful-degradation ladder.
//!
//! The serving loop talks to its solver through the [`ChunkEngine`] trait so the
//! chaos harness ([`crate::chaos::ChaosEngine`]) can decorate the real engine
//! with injected faults, and tests can substitute scripted engines.
//!
//! Determinism contract: an engine invocation is a pure function of
//! `(problems, seed, level)` — [`SolverEngine`] seeds a fresh rng from `seed`
//! per call. The loop fixes a chunk's seed at formation time and reuses it on
//! retries, so retrying a batch after excising a malformed member produces
//! exactly what the reduced batch would have produced outright (the engine
//! validates before drawing randomness), and an executed-chunk log replays
//! bit-identically.

use cogsys_datasets::Problem;
use cogsys_workloads::{
    NeurosymbolicSolver, PlanCacheStats, SolveError, SolverConfig, SolverReport, SolverScratch,
};
use rand::{rngs::StdRng, SeedableRng};

/// Rung of the graceful-degradation ladder.
///
/// Under queue pressure the serving loop steps *down* the ladder (larger index,
/// cheaper service) one rung per formed batch, and steps back up as the queue
/// drains. Each response records the level it was served at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// Full batches, full factorizer iteration budget.
    Full = 0,
    /// Half-size batches: shorter per-batch service keeps queueing delay bounded.
    HalvedBatch = 1,
    /// Half-size batches and the factorizer iteration cap cut to 1/8 of the
    /// configured budget.
    ReducedIterations = 2,
    /// Quarter-size batches and a coarse single-pass cleanup (iteration cap 1):
    /// the cheapest answer the pipeline can produce.
    CoarseCleanup = 3,
}

impl DegradationLevel {
    /// All rungs, best to worst.
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::HalvedBatch,
        DegradationLevel::ReducedIterations,
        DegradationLevel::CoarseCleanup,
    ];

    /// Numeric level (0 = full service).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Divisor applied to the configured maximum batch size.
    pub fn batch_divisor(self) -> usize {
        match self {
            DegradationLevel::Full => 1,
            DegradationLevel::HalvedBatch | DegradationLevel::ReducedIterations => 2,
            DegradationLevel::CoarseCleanup => 4,
        }
    }

    /// Factorizer iteration cap at this rung, given the configured budget.
    pub fn iteration_cap(self, configured: usize) -> usize {
        match self {
            DegradationLevel::Full | DegradationLevel::HalvedBatch => configured.max(1),
            DegradationLevel::ReducedIterations => (configured / 8).max(2),
            DegradationLevel::CoarseCleanup => 1,
        }
    }

    /// Divisor applied to the per-problem service time (reduced iteration
    /// budgets finish proportionally faster).
    pub fn service_divisor(self) -> u64 {
        match self {
            DegradationLevel::Full | DegradationLevel::HalvedBatch => 1,
            DegradationLevel::ReducedIterations => 2,
            DegradationLevel::CoarseCleanup => 4,
        }
    }

    /// One rung worse (saturating).
    pub fn degrade(self) -> Self {
        match self {
            DegradationLevel::Full => DegradationLevel::HalvedBatch,
            DegradationLevel::HalvedBatch => DegradationLevel::ReducedIterations,
            DegradationLevel::ReducedIterations | DegradationLevel::CoarseCleanup => {
                DegradationLevel::CoarseCleanup
            }
        }
    }

    /// One rung better (saturating).
    pub fn recover(self) -> Self {
        match self {
            DegradationLevel::Full | DegradationLevel::HalvedBatch => DegradationLevel::Full,
            DegradationLevel::ReducedIterations => DegradationLevel::HalvedBatch,
            DegradationLevel::CoarseCleanup => DegradationLevel::ReducedIterations,
        }
    }
}

/// Result of one engine invocation over a formed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkResult {
    /// Chosen candidate index per problem, in batch order.
    pub choices: Vec<usize>,
    /// Aggregate solver report for the chunk.
    pub report: SolverReport,
    /// Extra service latency injected by decorators (zero for real engines).
    pub extra_micros: u64,
}

/// A batch executor the serving loop can drive.
pub trait ChunkEngine {
    /// Solves `problems` as one batch at the given degradation `level`, drawing
    /// all randomness from a generator seeded with `seed`.
    fn solve_chunk(
        &mut self,
        problems: &[Problem],
        seed: u64,
        level: DegradationLevel,
    ) -> Result<ChunkResult, SolveError>;
}

/// The real engine: [`NeurosymbolicSolver::solve_batch_with`] plus one
/// iteration-capped clone per degraded rung, all sharing codebooks, backend and
/// one scratch arena.
pub struct SolverEngine {
    /// `[full, reduced-iterations, coarse]`; levels 0 and 1 share index 0 (they
    /// differ only in the batch size the *loop* forms, not in solver settings).
    solvers: [NeurosymbolicSolver; 3],
    scratch: SolverScratch,
}

impl SolverEngine {
    /// Builds the full-service solver from `config` (codebooks drawn from
    /// `codebook_seed`) and derives the degraded rungs from it.
    pub fn new(config: SolverConfig, codebook_seed: u64) -> Result<Self, SolveError> {
        let mut rng = StdRng::seed_from_u64(codebook_seed);
        let full = NeurosymbolicSolver::try_new(config, &mut rng)?;
        let budget = full.config().factorizer.max_iterations;
        let reduced =
            full.with_iteration_cap(DegradationLevel::ReducedIterations.iteration_cap(budget));
        let coarse = full.with_iteration_cap(DegradationLevel::CoarseCleanup.iteration_cap(budget));
        Ok(Self {
            solvers: [full, reduced, coarse],
            scratch: SolverScratch::default(),
        })
    }

    /// The full-service (level 0) solver — the reference for decision-identity
    /// checks against direct `solve_batch_with` calls.
    pub fn solver(&self) -> &NeurosymbolicSolver {
        &self.solvers[0]
    }

    /// Plan-cache hit/miss counters summed over all three rungs' solvers.
    ///
    /// The batch former compiles a [`cogsys_workloads::SolvePlan`] per
    /// `(backend, dim, blocks, batch, codebook_rows)` key at chunk formation;
    /// steady traffic re-forms the same batch shapes, so after warm-up hits
    /// should dominate misses.
    pub fn plan_stats(&self) -> PlanCacheStats {
        let mut total = PlanCacheStats::default();
        for solver in &self.solvers {
            let stats = solver.plan_cache_stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
        }
        total
    }

    /// Human-readable description of the full-service plan compiled for a
    /// `batch`-problem chunk (for `--explain` style diagnostics).
    pub fn describe_plan(&self, batch: usize) -> String {
        self.solvers[0].plan_for_batch(batch).describe()
    }
}

impl ChunkEngine for SolverEngine {
    fn solve_chunk(
        &mut self,
        problems: &[Problem],
        seed: u64,
        level: DegradationLevel,
    ) -> Result<ChunkResult, SolveError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let solver = match level {
            DegradationLevel::Full | DegradationLevel::HalvedBatch => &self.solvers[0],
            DegradationLevel::ReducedIterations => &self.solvers[1],
            DegradationLevel::CoarseCleanup => &self.solvers[2],
        };
        // Plans are compiled at chunk formation and reused across chunks of the
        // same shape: steady traffic pays plan compilation once per batch size
        // per rung, then executes cache hits.
        let plan = solver.plan_for_batch(problems.len());
        let report = solver.solve_batch_with_plan(&plan, problems, &mut rng, &mut self.scratch)?;
        Ok(ChunkResult {
            choices: self.scratch.choices().to_vec(),
            report,
            extra_micros: 0,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cogsys_datasets::{DatasetKind, ProblemGenerator};

    fn small_config() -> SolverConfig {
        SolverConfig {
            vector_dim: 512,
            ..SolverConfig::default()
        }
    }

    #[test]
    fn ladder_is_monotone_and_saturating() {
        assert_eq!(
            DegradationLevel::Full.degrade(),
            DegradationLevel::HalvedBatch
        );
        assert_eq!(
            DegradationLevel::CoarseCleanup.degrade(),
            DegradationLevel::CoarseCleanup
        );
        assert_eq!(DegradationLevel::Full.recover(), DegradationLevel::Full);
        for pair in DegradationLevel::ALL.windows(2) {
            assert!(pair[0] < pair[1]);
            assert_eq!(pair[1].recover(), pair[0]);
            assert_eq!(pair[0].degrade(), pair[1]);
            assert!(pair[0].service_divisor() <= pair[1].service_divisor());
            assert!(pair[0].iteration_cap(240) >= pair[1].iteration_cap(240));
        }
        assert_eq!(DegradationLevel::CoarseCleanup.iteration_cap(240), 1);
        assert_eq!(DegradationLevel::ReducedIterations.iteration_cap(240), 30);
    }

    #[test]
    fn same_seed_same_level_is_deterministic() {
        let mut engine = SolverEngine::new(small_config(), 11).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut rng);
        let a = engine
            .solve_chunk(&problems, 99, DegradationLevel::Full)
            .unwrap();
        let b = engine
            .solve_chunk(&problems, 99, DegradationLevel::Full)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn full_level_matches_direct_solve_batch_with() {
        let mut engine = SolverEngine::new(small_config(), 11).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let problems = ProblemGenerator::new(DatasetKind::IRaven).generate_batch(3, &mut rng);
        let served = engine
            .solve_chunk(&problems, 42, DegradationLevel::Full)
            .unwrap();

        let mut direct_rng = StdRng::seed_from_u64(42);
        let mut scratch = SolverScratch::default();
        let report = engine
            .solver()
            .solve_batch_with(&problems, &mut direct_rng, &mut scratch)
            .unwrap();
        assert_eq!(served.choices, scratch.choices());
        assert_eq!(served.report, report);
    }

    #[test]
    fn chunks_of_one_shape_compile_one_plan_then_hit_the_cache() {
        let mut engine = SolverEngine::new(small_config(), 11).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut rng);
        assert_eq!(engine.plan_stats(), PlanCacheStats::default());
        for seed in 0..4 {
            engine
                .solve_chunk(&problems, seed, DegradationLevel::Full)
                .unwrap();
        }
        let stats = engine.plan_stats();
        assert_eq!(stats.misses, 1, "one compile for the repeated shape");
        assert_eq!(stats.hits, 3, "subsequent chunks reuse the cached plan");

        // A degraded rung runs its own solver, hence its own compile.
        engine
            .solve_chunk(&problems, 9, DegradationLevel::ReducedIterations)
            .unwrap();
        assert_eq!(engine.plan_stats().misses, 2);

        let description = engine.describe_plan(problems.len());
        for stage in ["encode", "resonate", "polish", "predict", "score"] {
            assert!(
                description.contains(stage),
                "describe_plan missing `{stage}`: {description}"
            );
        }
    }

    #[test]
    fn degraded_levels_still_answer_in_range() {
        let mut engine = SolverEngine::new(small_config(), 3).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(2, &mut rng);
        for level in DegradationLevel::ALL {
            let out = engine.solve_chunk(&problems, 1, level).unwrap();
            assert_eq!(out.choices.len(), problems.len());
            for (problem, &choice) in problems.iter().zip(&out.choices) {
                assert!(choice < problem.candidates.len());
            }
        }
    }
}
