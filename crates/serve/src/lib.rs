//! # cogsys-serve — fault-tolerant serving front end
//!
//! Wraps the batched reasoning engine
//! ([`cogsys_workloads::NeurosymbolicSolver::solve_batch_with`]) in a serving
//! loop with the robustness properties a deployed accelerator front end needs:
//!
//! * **intake queue + dynamic batch former** — requests arrive on a virtual
//!   clock, wait in a bounded queue, and are coalesced into cache-resident
//!   chunks sized by the current degradation level;
//! * **admission control & backpressure** — arrivals beyond the queue bound are
//!   shed immediately with [`Rejection::Overloaded`] instead of growing the
//!   tail;
//! * **deadlines** — requests whose deadline passes in the queue are dropped at
//!   batch formation; answers landing past the deadline are flagged;
//! * **graceful degradation** — a four-rung ladder
//!   ([`DegradationLevel`]: full → halved batches → reduced factorizer
//!   iterations → coarse single-pass cleanup) engaged by queue-depth
//!   watermarks, recorded on every response;
//! * **fault isolation & bounded retry** — a malformed request fails alone with
//!   a typed error while its batch-mates are retried without it; transient
//!   faults re-run the batch under a bounded retry budget.
//!
//! The loop is single-core and fully deterministic: time is virtual (a
//! discrete-event clock driven by a service-time model), every chunk's solver
//! randomness comes from a seed fixed at formation time, and the engine
//! validates inputs before drawing randomness — so level-0 responses are
//! decision-identical to calling the solver directly on the same problems, and
//! the [`ExecutedChunk`] log replays bit-for-bit.
//!
//! # Example
//!
//! ```rust
//! use cogsys_serve::{ServeConfig, ServeLoop, TraceConfig};
//!
//! let mut config = ServeConfig::default();
//! config.solver.vector_dim = 256; // keep the doctest quick
//! let mut serve = ServeLoop::with_solver(config).expect("valid config");
//! let trace = TraceConfig::steady(8).generate();
//! let responses = serve.run_trace(&trace);
//! assert_eq!(responses.len(), 8);
//! assert_eq!(serve.counters().accounted(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod chaos;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod request;
pub mod trace;

pub use chaos::{ChaosConfig, ChaosEngine, ChaosStats};
pub use engine::{ChunkEngine, ChunkResult, DegradationLevel, SolverEngine};
pub use error::{Rejection, ServeError};
pub use metrics::{Counters, WindowStats};
pub use request::{Answer, Request, Response};
pub use trace::{parse_recorded_arrivals, TraceConfig, TrafficShape};

use cogsys::CogSysConfig;
use cogsys_workloads::SolverConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One fitted plan stage: fixed per-invocation overhead plus marginal cost per
/// problem, in virtual microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageFit {
    /// Fixed per-invocation overhead of this stage, virtual micros.
    pub micros_per_batch: u64,
    /// Marginal cost per problem of this stage, virtual micros.
    pub micros_per_problem: u64,
}

/// Virtual service-time model of one engine invocation.
///
/// The CI machine has one core, so serving is simulated on a discrete-event
/// clock rather than measured. Without per-stage fits, a batch of `n` problems
/// at level `L` costs `micros_per_batch + n * micros_per_problem /
/// L.service_divisor()` virtual microseconds (plus any chaos-injected
/// latency). When the bench sweep provides `plan_stage_{encode,decode,score}`
/// cells, [`ServiceModel::stages`] holds one [`StageFit`] per compiled plan
/// stage and the degradation divisor applies only to the decode stage — the
/// reduced-iteration rungs of the ladder shrink factorizer work, not encoding
/// or scoring. A failed attempt costs `micros_per_batch` of overhead either
/// way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed per-invocation overhead, virtual micros.
    pub micros_per_batch: u64,
    /// Marginal cost per problem at full service, virtual micros.
    pub micros_per_problem: u64,
    /// Per-stage fits (encode, decode, score) when the bench sweep exposed
    /// plan-stage cells; `None` falls back to the whole-chunk model above.
    #[serde(default)]
    pub stages: Option<[StageFit; 3]>,
}

impl Default for ServiceModel {
    fn default() -> Self {
        Self {
            micros_per_batch: 500,
            micros_per_problem: 2_000,
            stages: None,
        }
    }
}

impl ServiceModel {
    /// Fits the model from measured packed `solve_batch` cells of a
    /// `BENCH_backends.json` sweep, so virtual latencies track real kernel costs
    /// instead of the constant placeholder in [`ServiceModel::default`].
    ///
    /// The sweep times the whole batch at two (or more) problem counts; a two-point
    /// fit through the smallest and largest count splits that into marginal
    /// per-problem cost and fixed per-invocation overhead — exactly the two
    /// parameters of this model. Both are clamped to ≥ 1 µs (a noisy sweep can
    /// produce a negative intercept). Returns `None` when the records contain no
    /// usable packed `solve_batch` cell.
    /// Preferring the per-stage cells (`plan_stage_encode` / `plan_stage_decode`
    /// / `plan_stage_score`) when the sweep recorded all three: the model then
    /// carries one [`StageFit`] per compiled plan stage and the whole-chunk
    /// totals become the stage sums, so legacy consumers keep working.
    pub fn from_bench_records(records: &[cogsys::experiments::BenchRecord]) -> Option<Self> {
        let stage_fits = [
            two_point_fit(records, "plan_stage_encode"),
            two_point_fit(records, "plan_stage_decode"),
            two_point_fit(records, "plan_stage_score"),
        ];
        if let [Some(encode), Some(decode), Some(score)] = stage_fits {
            let stages = [encode, decode, score];
            return Some(Self {
                micros_per_batch: stages.iter().map(|s| s.micros_per_batch).sum(),
                micros_per_problem: stages.iter().map(|s| s.micros_per_problem).sum(),
                stages: Some(stages),
            });
        }
        let whole = two_point_fit(records, "solve_batch")?;
        Some(Self {
            micros_per_batch: whole.micros_per_batch,
            micros_per_problem: whole.micros_per_problem,
            stages: None,
        })
    }

    /// [`ServiceModel::from_bench_records`] over a raw `BENCH_backends.json`
    /// payload.
    pub fn from_bench_json(text: &str) -> Option<Self> {
        Self::from_bench_records(&cogsys::experiments::parse_backend_throughput_json(text))
    }

    /// Virtual cost of one successful engine invocation over `problems`
    /// problems at a degradation rung with the given service divisor.
    ///
    /// With per-stage fits, the divisor — which models the reduced-iteration
    /// rungs of the ladder — applies only to the decode (resonate + polish)
    /// stage; encode and score work is unchanged by degradation. Without
    /// stage fits the legacy whole-chunk formula applies the divisor to the
    /// entire marginal term.
    pub fn invocation_micros(&self, problems: u64, service_divisor: u64) -> u64 {
        let divisor = service_divisor.max(1);
        match &self.stages {
            Some([encode, decode, score]) => {
                encode.micros_per_batch
                    + decode.micros_per_batch
                    + score.micros_per_batch
                    + problems * encode.micros_per_problem
                    + problems * decode.micros_per_problem / divisor
                    + problems * score.micros_per_problem
            }
            None => self.micros_per_batch + problems * self.micros_per_problem / divisor,
        }
    }

    /// Virtual overhead burned by a failed attempt (no per-problem work
    /// completes, but the invocation cost is paid).
    pub fn overhead_micros(&self) -> u64 {
        self.micros_per_batch
    }
}

/// Two-point fit of `micros_per_batch + n * micros_per_problem` through the
/// packed cells of `kernel` at the smallest and largest problem counts. Both
/// parameters clamp to ≥ 1 µs (a noisy sweep can produce a negative
/// intercept). `None` when no usable cell exists.
fn two_point_fit(records: &[cogsys::experiments::BenchRecord], kernel: &str) -> Option<StageFit> {
    let mut cells: Vec<(u64, f64)> = records
        .iter()
        .filter(|r| {
            r.backend == "packed"
                && r.kernel == kernel
                && r.batch > 0
                && r.ns_per_op.is_finite()
                && r.ns_per_op > 0.0
        })
        .map(|r| (r.batch as u64, r.ns_per_op))
        .collect();
    cells.sort_by_key(|cell| cell.0);
    let (b_lo, t_lo) = *cells.first()?;
    let (b_hi, t_hi) = *cells.last()?;
    if b_hi == b_lo {
        // One problem count: attribute the whole cost to the marginal term.
        return Some(StageFit {
            micros_per_batch: 1,
            micros_per_problem: to_micros(t_lo / b_lo as f64),
        });
    }
    let per_problem_ns = (t_hi - t_lo) / (b_hi - b_lo) as f64;
    let per_batch_ns = t_lo - per_problem_ns * b_lo as f64;
    Some(StageFit {
        micros_per_batch: to_micros(per_batch_ns),
        micros_per_problem: to_micros(per_problem_ns),
    })
}

/// Nanoseconds → whole virtual microseconds, clamped to ≥ 1 so the discrete-event
/// clock always advances.
fn to_micros(ns: f64) -> u64 {
    (ns / 1e3).round().max(1.0) as u64
}

/// Configuration of the serving loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Solver settings (dimensionality, factorizer, noise, backend).
    pub solver: SolverConfig,
    /// Seed the solver's codebooks are drawn from.
    pub codebook_seed: u64,
    /// Base seed of the per-chunk solver randomness (mixed with a chunk
    /// counter, so every formed batch gets an independent, reproducible seed).
    pub chunk_seed: u64,
    /// Admission bound: arrivals finding this many requests queued are shed.
    pub max_queue_depth: usize,
    /// Largest batch the former coalesces at full service.
    pub max_batch: usize,
    /// Retries a formed batch may consume (excisions of malformed members and
    /// transient-fault re-runs both count) before its remainder fails.
    pub retry_budget: usize,
    /// Virtual service-time model.
    pub service: ServiceModel,
    /// Queue depth at or above which the ladder degrades one rung per batch.
    pub degrade_depth: usize,
    /// Queue depth at or below which the ladder recovers one rung per batch.
    pub recover_depth: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            solver: SolverConfig::default(),
            codebook_seed: 0xC09_5E21,
            chunk_seed: 0x5EED,
            max_queue_depth: 64,
            max_batch: 16,
            retry_budget: 4,
            service: ServiceModel::default(),
            degrade_depth: 48,
            recover_depth: 16,
        }
    }
}

impl ServeConfig {
    /// Derives a serving config from a full system config: the system's solver
    /// settings, with the batch former sized to keep `batch_tasks` interleaved
    /// tasks' worth of problems in flight per chunk.
    pub fn for_system(system: &CogSysConfig) -> Self {
        Self {
            solver: system.solver.clone(),
            max_batch: (system.batch_tasks * 4).clamp(4, 64),
            ..Self::default()
        }
    }

    /// Checks structural constraints.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config {
                message: "max_batch must be > 0".into(),
            });
        }
        if self.max_queue_depth == 0 {
            return Err(ServeError::Config {
                message: "max_queue_depth must be > 0".into(),
            });
        }
        if self.recover_depth >= self.degrade_depth {
            return Err(ServeError::Config {
                message: format!(
                    "recover_depth ({}) must be below degrade_depth ({})",
                    self.recover_depth, self.degrade_depth
                ),
            });
        }
        if self.degrade_depth > self.max_queue_depth {
            return Err(ServeError::Config {
                message: format!(
                    "degrade_depth ({}) must not exceed max_queue_depth ({})",
                    self.degrade_depth, self.max_queue_depth
                ),
            });
        }
        Ok(())
    }
}

/// One batch the loop actually executed — enough to replay it bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutedChunk {
    /// Request ids in batch order.
    pub ids: Vec<u64>,
    /// The solver seed the chunk ran with (fixed at formation time).
    pub seed: u64,
    /// Degradation level it was served at.
    pub level: DegradationLevel,
    /// Chosen candidate per request, in batch order.
    pub choices: Vec<usize>,
}

/// SplitMix64 finalizer: decorrelates sequential chunk counters into
/// independent solver seeds.
fn mix_seed(base: u64, counter: u64) -> u64 {
    let mut z = base ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fault-tolerant serving loop (see the crate docs).
pub struct ServeLoop<E> {
    config: ServeConfig,
    engine: E,
    queue: VecDeque<Request>,
    clock_micros: u64,
    level: DegradationLevel,
    counters: Counters,
    executed: Vec<ExecutedChunk>,
    chunk_counter: u64,
}

impl ServeLoop<SolverEngine> {
    /// Builds a loop around the real solver engine.
    pub fn with_solver(config: ServeConfig) -> Result<Self, ServeError> {
        let engine = SolverEngine::new(config.solver.clone(), config.codebook_seed)?;
        Self::with_engine(config, engine)
    }
}

impl<E: ChunkEngine> ServeLoop<E> {
    /// Builds a loop around any [`ChunkEngine`] (chaos decorators, test stubs).
    pub fn with_engine(config: ServeConfig, engine: E) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(Self {
            config,
            engine,
            queue: VecDeque::new(),
            clock_micros: 0,
            level: DegradationLevel::Full,
            counters: Counters::default(),
            executed: Vec::new(),
            chunk_counter: 0,
        })
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Log of every successfully executed batch, in execution order.
    pub fn executed(&self) -> &[ExecutedChunk] {
        &self.executed
    }

    /// Current rung of the degradation ladder.
    pub fn degradation_level(&self) -> DegradationLevel {
        self.level
    }

    /// Current virtual time.
    pub fn clock_micros(&self) -> u64 {
        self.clock_micros
    }

    /// The engine (e.g. to read chaos stats or the underlying solver).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Serves a trace to completion. `trace` must be sorted by arrival time
    /// (as [`TraceConfig::generate`] produces). Returns one terminal
    /// [`Response`] per request, in resolution order.
    pub fn run_trace(&mut self, trace: &[Request]) -> Vec<Response> {
        let mut responses = Vec::with_capacity(trace.len());
        let mut next = 0usize;
        loop {
            while next < trace.len() && trace[next].arrival_micros <= self.clock_micros {
                self.admit(trace[next].clone(), &mut responses);
                next += 1;
            }
            if self.queue.is_empty() {
                // An empty queue means the backlog is gone: going idle clears
                // the pressure the ladder was protecting against.
                self.level = DegradationLevel::Full;
                match trace.get(next) {
                    Some(request) => {
                        // Idle: jump the clock to the next arrival.
                        self.clock_micros = request.arrival_micros;
                        continue;
                    }
                    None => break,
                }
            }
            self.form_and_execute(&mut responses);
        }
        responses
    }

    /// Admission control: bounded queue, immediate shed beyond the bound.
    fn admit(&mut self, request: Request, responses: &mut Vec<Response>) {
        self.counters.submitted += 1;
        let depth = self.queue.len();
        if depth >= self.config.max_queue_depth {
            self.counters.shed += 1;
            responses.push(Response {
                id: request.id,
                outcome: Err(Rejection::Overloaded {
                    queue_depth: depth,
                    limit: self.config.max_queue_depth,
                }),
                degradation: self.level,
                arrival_micros: request.arrival_micros,
                completed_micros: self.clock_micros,
                retried: false,
                missed_deadline: false,
            });
            return;
        }
        self.queue.push_back(request);
        self.counters.peak_queue_depth = self.counters.peak_queue_depth.max(self.queue.len());
    }

    /// Moves the ladder one rung per formed batch, driven by queue depth.
    fn update_ladder(&mut self) {
        let depth = self.queue.len();
        if depth >= self.config.degrade_depth {
            self.level = self.level.degrade();
        } else if depth <= self.config.recover_depth {
            self.level = self.level.recover();
        }
        self.counters.max_level = self.counters.max_level.max(self.level.as_u8());
    }

    /// Coalesces the next batch, dropping expired requests, and executes it
    /// with excision-and-retry under the bounded retry budget.
    fn form_and_execute(&mut self, responses: &mut Vec<Response>) {
        self.update_ladder();
        let limit = (self.config.max_batch / self.level.batch_divisor()).max(1);
        let mut batch: Vec<Request> = Vec::with_capacity(limit);
        while batch.len() < limit {
            let Some(request) = self.queue.pop_front() else {
                break;
            };
            if request.deadline_micros < self.clock_micros {
                self.counters.expired += 1;
                responses.push(Response {
                    id: request.id,
                    outcome: Err(Rejection::DeadlineExpired {
                        deadline_micros: request.deadline_micros,
                        now_micros: self.clock_micros,
                    }),
                    degradation: self.level,
                    arrival_micros: request.arrival_micros,
                    completed_micros: self.clock_micros,
                    retried: false,
                    missed_deadline: true,
                });
                continue;
            }
            batch.push(request);
        }
        if batch.is_empty() {
            return;
        }

        // The chunk's solver seed is fixed now and reused across retries: the
        // engine validates before drawing randomness, so a retry after excising
        // a malformed member equals solving the reduced batch outright.
        let seed = mix_seed(self.config.chunk_seed, self.chunk_counter);
        self.chunk_counter += 1;
        let mut retries_left = self.config.retry_budget;
        let mut retried = false;
        let mut extra_micros = 0u64;
        loop {
            let problems: Vec<_> = batch.iter().map(|r| r.problem.clone()).collect();
            match self.engine.solve_chunk(&problems, seed, self.level) {
                Ok(result) => {
                    extra_micros += result.extra_micros;
                    let service = self
                        .config
                        .service
                        .invocation_micros(batch.len() as u64, self.level.service_divisor())
                        + extra_micros;
                    self.clock_micros += service;
                    self.counters.batches += 1;
                    if self.level.as_u8() > 0 {
                        self.counters.degraded_batches += 1;
                    }
                    self.executed.push(ExecutedChunk {
                        ids: batch.iter().map(|r| r.id).collect(),
                        seed,
                        level: self.level,
                        choices: result.choices.clone(),
                    });
                    for (request, &choice) in batch.iter().zip(&result.choices) {
                        let missed = self.clock_micros > request.deadline_micros;
                        self.counters.completed += 1;
                        if missed {
                            self.counters.late += 1;
                        }
                        responses.push(Response {
                            id: request.id,
                            outcome: Ok(Answer {
                                choice,
                                correct: request.problem.is_correct(choice),
                            }),
                            degradation: self.level,
                            arrival_micros: request.arrival_micros,
                            completed_micros: self.clock_micros,
                            retried,
                            missed_deadline: missed,
                        });
                    }
                    return;
                }
                Err(error) => {
                    // Failed attempts still burn the per-invocation overhead.
                    extra_micros += self.config.service.overhead_micros();
                    if let Some(index) = error.problem_index() {
                        // Poison isolation: the malformed request fails alone…
                        let victim = batch.remove(index.min(batch.len().saturating_sub(1)));
                        self.counters.invalid += 1;
                        responses.push(Response {
                            id: victim.id,
                            outcome: Err(Rejection::Invalid(error.clone())),
                            degradation: self.level,
                            arrival_micros: victim.arrival_micros,
                            completed_micros: self.clock_micros,
                            retried: false,
                            missed_deadline: false,
                        });
                        if batch.is_empty() {
                            self.clock_micros += extra_micros;
                            return;
                        }
                    }
                    // …and the remainder is retried under the bounded budget.
                    if retries_left == 0 {
                        self.clock_micros += extra_micros;
                        self.counters.failed += batch.len();
                        for request in batch.drain(..) {
                            responses.push(Response {
                                id: request.id,
                                outcome: Err(Rejection::Failed(error.clone())),
                                degradation: self.level,
                                arrival_micros: request.arrival_micros,
                                completed_micros: self.clock_micros,
                                retried,
                                missed_deadline: false,
                            });
                        }
                        return;
                    }
                    retries_left -= 1;
                    retried = true;
                    self.counters.retries += 1;
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cogsys_datasets::Problem;
    use cogsys_workloads::{NeurosymbolicSolver, SolveError, SolverReport};

    /// Loop-logic stub: validates like the real engine, answers candidate 0,
    /// optionally fails its first `transient_faults` calls.
    struct StubEngine {
        transient_faults: usize,
        calls: usize,
    }

    impl StubEngine {
        fn clean() -> Self {
            Self {
                transient_faults: 0,
                calls: 0,
            }
        }
    }

    impl ChunkEngine for StubEngine {
        fn solve_chunk(
            &mut self,
            problems: &[Problem],
            _seed: u64,
            _level: DegradationLevel,
        ) -> Result<ChunkResult, SolveError> {
            self.calls += 1;
            if self.calls <= self.transient_faults {
                return Err(SolveError::Fault {
                    message: "stub fault".into(),
                });
            }
            for (index, problem) in problems.iter().enumerate() {
                if let Err(fault) = NeurosymbolicSolver::validate_problem(problem) {
                    return Err(SolveError::Malformed {
                        problem: index,
                        fault,
                    });
                }
            }
            Ok(ChunkResult {
                choices: vec![0; problems.len()],
                report: SolverReport::default(),
                extra_micros: 0,
            })
        }
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            max_queue_depth: 8,
            max_batch: 4,
            degrade_depth: 6,
            recover_depth: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn config_validation_rejects_inverted_watermarks() {
        let config = ServeConfig {
            degrade_depth: 4,
            recover_depth: 8,
            ..ServeConfig::default()
        };
        assert!(matches!(config.validate(), Err(ServeError::Config { .. })));
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ServeConfig::for_system(&CogSysConfig::default())
            .validate()
            .is_ok());
    }

    #[test]
    fn overload_sheds_and_every_request_is_accounted() {
        // All 32 requests arrive at t=1 against a queue bound of 8.
        let trace_template = TraceConfig::steady(32).generate();
        let trace: Vec<Request> = trace_template
            .into_iter()
            .map(|mut r| {
                r.arrival_micros = 1;
                r.deadline_micros = 1_000_000;
                r
            })
            .collect();
        let mut serve = ServeLoop::with_engine(quick_config(), StubEngine::clean()).unwrap();
        let responses = serve.run_trace(&trace);
        assert_eq!(responses.len(), trace.len());
        let counters = serve.counters();
        assert_eq!(counters.accounted(), counters.submitted);
        assert_eq!(counters.shed, 24, "8 admitted, the rest shed");
        assert!(responses
            .iter()
            .filter(|r| !r.is_answered())
            .all(|r| matches!(r.outcome, Err(Rejection::Overloaded { .. }))));
    }

    #[test]
    fn queue_pressure_degrades_then_recovers() {
        let config = ServeConfig {
            max_queue_depth: 64,
            max_batch: 4,
            degrade_depth: 8,
            recover_depth: 2,
            ..ServeConfig::default()
        };
        // Dense arrivals: gap well below the per-batch service time.
        let trace: Vec<Request> = TraceConfig {
            requests: 48,
            interarrival_micros: 200,
            deadline_micros: 10_000_000,
            ..TraceConfig::default()
        }
        .generate();
        let mut serve = ServeLoop::with_engine(config, StubEngine::clean()).unwrap();
        let responses = serve.run_trace(&trace);
        assert!(serve.counters().max_level >= 2, "ladder engaged");
        assert!(serve.counters().degraded_batches > 0);
        assert!(responses
            .iter()
            .any(|r| r.degradation.as_u8() > 0 && r.is_answered()));
        // The queue fully drains, so the loop must have stepped back up.
        assert_eq!(serve.degradation_level(), DegradationLevel::Full);
    }

    #[test]
    fn expired_requests_are_dropped_at_formation() {
        let mut trace: Vec<Request> = TraceConfig {
            requests: 12,
            interarrival_micros: 100,
            ..TraceConfig::default()
        }
        .generate();
        for request in &mut trace {
            request.deadline_micros = request.arrival_micros + 1_500;
        }
        let mut serve = ServeLoop::with_engine(quick_config(), StubEngine::clean()).unwrap();
        let responses = serve.run_trace(&trace);
        let counters = serve.counters();
        assert!(counters.expired > 0, "tight deadlines must expire in queue");
        assert_eq!(counters.accounted(), counters.submitted);
        assert!(responses
            .iter()
            .filter(|r| matches!(r.outcome, Err(Rejection::DeadlineExpired { .. })))
            .all(|r| r.missed_deadline));
    }

    #[test]
    fn transient_faults_retry_then_fail_within_budget() {
        let config = ServeConfig {
            retry_budget: 2,
            ..quick_config()
        };
        // Engine fails its first 2 calls, succeeds afterwards: the first formed
        // batch completes after two retries, later batches run clean.
        let trace = TraceConfig::steady(3).generate();
        let mut serve = ServeLoop::with_engine(
            config.clone(),
            StubEngine {
                transient_faults: 2,
                calls: 0,
            },
        )
        .unwrap();
        let responses = serve.run_trace(&trace);
        assert_eq!(serve.counters().retries, 2);
        assert!(responses.iter().all(|r| r.is_answered()));
        assert!(responses.iter().any(|r| r.retried));

        // Engine fails forever: budget exhausts, requests fail typed.
        let mut serve = ServeLoop::with_engine(
            config,
            StubEngine {
                transient_faults: usize::MAX,
                calls: 0,
            },
        )
        .unwrap();
        let responses = serve.run_trace(&trace);
        assert!(responses
            .iter()
            .all(|r| matches!(r.outcome, Err(Rejection::Failed(SolveError::Fault { .. })))));
        assert_eq!(serve.counters().failed, 3);
    }

    #[test]
    fn poisoned_request_fails_alone_and_batchmates_complete() {
        let mut trace = TraceConfig::steady(4).generate();
        // Make all four arrive together so they form one batch, and poison one.
        for request in &mut trace {
            request.arrival_micros = 1;
            request.deadline_micros = 1_000_000;
        }
        trace[2].problem.candidates.clear();
        let mut serve = ServeLoop::with_engine(quick_config(), StubEngine::clean()).unwrap();
        let responses = serve.run_trace(&trace);
        let invalid: Vec<_> = responses.iter().filter(|r| !r.is_answered()).collect();
        assert_eq!(invalid.len(), 1);
        assert_eq!(invalid[0].id, 2);
        assert!(matches!(
            invalid[0].outcome,
            Err(Rejection::Invalid(SolveError::Malformed { .. }))
        ));
        let answered: Vec<_> = responses.iter().filter(|r| r.is_answered()).collect();
        assert_eq!(answered.len(), 3);
        assert!(
            answered.iter().all(|r| r.retried),
            "batch-mates were retried"
        );
        assert_eq!(serve.counters().invalid, 1);
        assert_eq!(serve.counters().retries, 1);
    }

    #[test]
    fn chunk_seeds_are_decorrelated_but_deterministic() {
        let a = mix_seed(1, 0);
        let b = mix_seed(1, 1);
        assert_ne!(a, b);
        assert_eq!(mix_seed(1, 0), a);
        assert_ne!(mix_seed(2, 0), a);
    }

    #[test]
    fn service_model_fits_measured_solve_batch_cells() {
        use cogsys::experiments::BenchRecord;
        let cell = |backend: &str, kernel: &str, batch: usize, ns: f64| BenchRecord {
            backend: backend.into(),
            kernel: kernel.into(),
            dim: 2048,
            batch,
            ns_per_op: ns,
        };
        // Exact linear data: 1 ms overhead + 2 ms per problem.
        let records = vec![
            cell("packed", "solve_batch", 8, 1e6 + 8.0 * 2e6),
            cell("packed", "solve_batch", 64, 1e6 + 64.0 * 2e6),
            // Distractors the fit must ignore.
            cell("reference", "solve_batch", 8, 9e9),
            cell("packed", "solve_sequential", 8, 9e9),
        ];
        let model = ServiceModel::from_bench_records(&records).unwrap();
        assert_eq!(model.micros_per_batch, 1_000);
        assert_eq!(model.micros_per_problem, 2_000);

        // One usable cell: everything becomes marginal cost, overhead floors at 1.
        let single =
            ServiceModel::from_bench_records(&[cell("packed", "solve_batch", 8, 16e6)]).unwrap();
        assert_eq!(single.micros_per_batch, 1);
        assert_eq!(single.micros_per_problem, 2_000);

        // No usable cells at all.
        assert!(ServiceModel::from_bench_records(&[]).is_none());
        assert!(
            ServiceModel::from_bench_records(&[cell("packed", "solve_batch", 8, f64::NAN)])
                .is_none()
        );

        // A noisy negative intercept clamps to the 1 µs floor instead of panicking
        // or stalling the virtual clock.
        let noisy = ServiceModel::from_bench_records(&[
            cell("packed", "solve_batch", 8, 15e6),
            cell("packed", "solve_batch", 64, 127e6),
        ])
        .unwrap();
        assert_eq!(noisy.micros_per_problem, 2_000);
        assert_eq!(noisy.micros_per_batch, 1);
        // Legacy fit carries no stage composition.
        assert!(noisy.stages.is_none());
    }

    #[test]
    fn service_model_prefers_plan_stage_cells_when_all_three_fit() {
        use cogsys::experiments::BenchRecord;
        let cell = |kernel: &str, batch: usize, ns: f64| BenchRecord {
            backend: "packed".into(),
            kernel: kernel.into(),
            dim: 2048,
            batch,
            ns_per_op: ns,
        };
        // Exact linear stage data: encode 100 µs + 300 µs/problem, decode
        // 200 µs + 1200 µs/problem, score 50 µs + 500 µs/problem.
        let records = vec![
            cell("plan_stage_encode", 8, 1e5 + 8.0 * 3e5),
            cell("plan_stage_encode", 64, 1e5 + 64.0 * 3e5),
            cell("plan_stage_decode", 8, 2e5 + 8.0 * 12e5),
            cell("plan_stage_decode", 64, 2e5 + 64.0 * 12e5),
            cell("plan_stage_score", 8, 5e4 + 8.0 * 5e5),
            cell("plan_stage_score", 64, 5e4 + 64.0 * 5e5),
            // Whole-chunk cells the stage fit must win over.
            cell("solve_batch", 8, 9e9),
            cell("solve_batch", 64, 9e9),
        ];
        let model = ServiceModel::from_bench_records(&records).unwrap();
        let stages = model.stages.expect("all three stage kernels fitted");
        assert_eq!(stages[0].micros_per_batch, 100);
        assert_eq!(stages[0].micros_per_problem, 300);
        assert_eq!(stages[1].micros_per_batch, 200);
        assert_eq!(stages[1].micros_per_problem, 1_200);
        assert_eq!(stages[2].micros_per_batch, 50);
        assert_eq!(stages[2].micros_per_problem, 500);
        // Whole-chunk totals are the stage sums, not the distractor fit.
        assert_eq!(model.micros_per_batch, 350);
        assert_eq!(model.micros_per_problem, 2_000);

        // At full service the stage model matches the legacy formula on the
        // same totals; under degradation only the decode stage shrinks.
        assert_eq!(model.invocation_micros(8, 1), 350 + 8 * 2_000);
        assert_eq!(
            model.invocation_micros(8, 4),
            350 + 8 * 300 + 8 * 1_200 / 4 + 8 * 500
        );
        let legacy = ServiceModel {
            stages: None,
            ..model
        };
        assert_eq!(legacy.invocation_micros(8, 4), 350 + 8 * 2_000 / 4);
        assert!(
            model.invocation_micros(8, 4) > legacy.invocation_micros(8, 4),
            "whole-chunk divisor over-credits degradation vs stage composition"
        );
        // Failure overhead is the fixed cost either way.
        assert_eq!(model.overhead_micros(), 350);
        // A zero divisor is treated as full service instead of dividing by zero.
        assert_eq!(model.invocation_micros(8, 0), model.invocation_micros(8, 1));

        // Missing any one stage kernel falls back to the whole-chunk fit.
        let partial: Vec<BenchRecord> = records
            .iter()
            .filter(|r| r.kernel != "plan_stage_score")
            .cloned()
            .collect();
        let fallback = ServiceModel::from_bench_records(&partial).unwrap();
        assert!(fallback.stages.is_none());
    }
}
