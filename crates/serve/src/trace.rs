//! Deterministic load-generator traces.
//!
//! A trace is a list of [`Request`]s with precomputed virtual arrival times and
//! deadlines, generated from a seed: the same [`TraceConfig`] always produces
//! the same requests, arrivals, poison placement and corruption — which is what
//! lets the chaos integration tests pin exact shed/degrade/retry counters.

use crate::chaos::flip_value_bits;
use crate::request::Request;
use cogsys_datasets::{DatasetKind, ProblemGenerator};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Arrival-time shape of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficShape {
    /// Uniform inter-arrival gaps.
    Steady,
    /// Alternating calm/burst phases of [`TraceConfig::phase_len`] requests;
    /// burst phases arrive [`TraceConfig::burst_multiplier`]× faster.
    Bursty,
    /// Bursty arrivals plus a poison mix: the preset enables malformed specs
    /// and in-band bit flips (see [`TraceConfig::adversarial`]).
    AdversarialMix,
}

/// Parameters of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Arrival-time shape.
    pub shape: TrafficShape,
    /// Number of requests.
    pub requests: usize,
    /// Base inter-arrival gap, virtual micros.
    pub interarrival_micros: u64,
    /// Burst arrival-rate multiplier (burst gap = base gap / multiplier).
    pub burst_multiplier: u64,
    /// Requests per calm or burst phase of the bursty shapes.
    pub phase_len: usize,
    /// Fraction of requests replaced by malformed problem specs.
    pub poison_fraction: f64,
    /// Fraction of requests whose panel values get in-band bit flips.
    pub scramble_fraction: f64,
    /// Deadline budget granted to every request after its arrival.
    pub deadline_micros: u64,
    /// Benchmark the problems are drawn from.
    pub dataset: DatasetKind,
    /// Seed of the trace generator.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            shape: TrafficShape::Steady,
            requests: 256,
            interarrival_micros: 3_000,
            burst_multiplier: 4,
            phase_len: 32,
            poison_fraction: 0.0,
            scramble_fraction: 0.0,
            deadline_micros: 100_000,
            dataset: DatasetKind::Raven,
            seed: 7,
        }
    }
}

impl TraceConfig {
    /// Uniform arrivals, clean requests.
    pub fn steady(requests: usize) -> Self {
        Self {
            requests,
            ..Self::default()
        }
    }

    /// 4× overload bursts, clean requests.
    pub fn bursty(requests: usize) -> Self {
        Self {
            shape: TrafficShape::Bursty,
            requests,
            ..Self::default()
        }
    }

    /// 4× overload bursts with ≥10% poisoned specs and some in-band bit flips.
    pub fn adversarial(requests: usize) -> Self {
        Self {
            shape: TrafficShape::AdversarialMix,
            requests,
            poison_fraction: 0.15,
            scramble_fraction: 0.05,
            ..Self::default()
        }
    }

    /// Generates the trace. Deterministic in the config (including the seed).
    pub fn generate(&self) -> Vec<Request> {
        let base_gap = self.interarrival_micros.max(1);
        let burst_gap = (base_gap / self.burst_multiplier.max(1)).max(1);
        let mut arrival = 0u64;
        let mut arrivals = Vec::with_capacity(self.requests);
        for id in 0..self.requests {
            let gap = match self.shape {
                TrafficShape::Steady => base_gap,
                TrafficShape::Bursty | TrafficShape::AdversarialMix => {
                    let phase = (id / self.phase_len.max(1)) % 2;
                    if phase == 0 {
                        base_gap
                    } else {
                        burst_gap
                    }
                }
            };
            arrival += gap;
            arrivals.push(arrival);
        }
        self.generate_with_arrivals(&arrivals)
    }

    /// Generates a trace whose arrival times come from a recorded list of
    /// virtual-time offsets (micros) instead of this config's synthetic shape —
    /// the replay path behind the load generator's `recorded:<path>` shape. The
    /// request *content* (dataset, poison mix, scrambling, deadlines) still
    /// follows the config with the same rng draw order as [`Self::generate`],
    /// so a recorded replay over `n` offsets is deterministic in
    /// `(config, arrivals)` and [`Self::generate`] is exactly
    /// `generate_with_arrivals` over its own synthetic offsets.
    pub fn generate_with_arrivals(&self, arrivals: &[u64]) -> Vec<Request> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let generator = ProblemGenerator::new(self.dataset);
        let mut requests = Vec::with_capacity(arrivals.len());
        for (id, &arrival) in arrivals.iter().enumerate() {
            let problem = if self.poison_fraction > 0.0
                && rng.gen_bool(self.poison_fraction.clamp(0.0, 1.0))
            {
                generator.generate_malformed(&mut rng)
            } else {
                let mut problem = generator.generate(&mut rng);
                if self.scramble_fraction > 0.0
                    && rng.gen_bool(self.scramble_fraction.clamp(0.0, 1.0))
                {
                    flip_value_bits(&mut problem, 2, &mut rng);
                }
                problem
            };
            requests.push(Request::new(
                id as u64,
                problem,
                arrival,
                self.deadline_micros,
            ));
        }
        requests
    }
}

/// Parses a recorded arrival trace: newline-delimited virtual-time offsets in
/// micros, with blank lines and `#` comments skipped. Offsets must be strictly
/// increasing (the serving loop's virtual clock never runs backwards and
/// request ids are issued in arrival order), and the trace must contain at
/// least one offset.
pub fn parse_recorded_arrivals(text: &str) -> Result<Vec<u64>, String> {
    let mut arrivals = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let offset: u64 = line
            .parse()
            .map_err(|_| format!("line {}: invalid arrival offset `{line}`", lineno + 1))?;
        if arrivals.last().is_some_and(|&prev| offset <= prev) {
            return Err(format!(
                "line {}: arrival offsets must be strictly increasing ({} after {})",
                lineno + 1,
                offset,
                arrivals.last().copied().unwrap_or(0),
            ));
        }
        arrivals.push(offset);
    }
    if arrivals.is_empty() {
        return Err("recorded trace contains no arrival offsets".into());
    }
    Ok(arrivals)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cogsys_workloads::NeurosymbolicSolver;

    #[test]
    fn traces_are_deterministic_and_time_ordered() {
        let config = TraceConfig::adversarial(64);
        let a = config.generate();
        let b = config.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        for pair in a.windows(2) {
            assert!(pair[0].arrival_micros < pair[1].arrival_micros);
            assert_eq!(pair[0].id + 1, pair[1].id);
        }
    }

    #[test]
    fn bursty_phases_arrive_faster() {
        let config = TraceConfig {
            shape: TrafficShape::Bursty,
            requests: 64,
            phase_len: 16,
            ..TraceConfig::default()
        };
        let trace = config.generate();
        let calm_span = trace[15].arrival_micros - trace[0].arrival_micros;
        let burst_span = trace[31].arrival_micros - trace[16].arrival_micros;
        assert!(burst_span * 3 < calm_span, "{burst_span} vs {calm_span}");
    }

    #[test]
    fn recorded_arrivals_parse_and_replay_deterministically() {
        let text = "# comment\n\n100\n250\n  900 \n";
        let arrivals = parse_recorded_arrivals(text).unwrap();
        assert_eq!(arrivals, vec![100, 250, 900]);

        // Malformed inputs are errors, not silent truncation.
        assert!(parse_recorded_arrivals("").is_err());
        assert!(parse_recorded_arrivals("# only comments\n").is_err());
        assert!(parse_recorded_arrivals("100\nnope\n").is_err());
        assert!(
            parse_recorded_arrivals("100\n100\n").is_err(),
            "non-increasing"
        );
        assert!(parse_recorded_arrivals("200\n100\n").is_err(), "decreasing");

        // Replay carries the recorded times verbatim, the config's content
        // generation otherwise: a synthetic trace regenerated through its own
        // offsets is identical.
        let config = TraceConfig::adversarial(16);
        let synthetic = config.generate();
        let offsets: Vec<u64> = synthetic.iter().map(|r| r.arrival_micros).collect();
        assert_eq!(config.generate_with_arrivals(&offsets), synthetic);
        let replay = config.generate_with_arrivals(&arrivals);
        assert_eq!(replay.len(), 3);
        assert_eq!(
            replay.iter().map(|r| r.arrival_micros).collect::<Vec<_>>(),
            arrivals
        );
    }

    #[test]
    fn committed_diurnal_trace_is_valid_and_daytime_heavy() {
        let text = include_str!("../traces/diurnal.txt");
        let arrivals = parse_recorded_arrivals(text).unwrap();
        assert!(arrivals.len() >= 128, "trace too small: {}", arrivals.len());
        // The diurnal shape must actually modulate load: the densest hour of
        // the day packs several times more arrivals than the quietest.
        let span = *arrivals.last().unwrap();
        let hour = (span / 24).max(1);
        let counts: Vec<usize> = (0..24)
            .map(|h| arrivals.iter().filter(|&&a| a / hour == h).count())
            .collect();
        let peak = counts.iter().copied().max().unwrap();
        let trough = counts.iter().copied().min().unwrap();
        assert!(
            peak >= trough.max(1) * 3,
            "peak {peak} vs trough {trough}: not diurnal"
        );
    }

    #[test]
    fn adversarial_traces_carry_enough_poison() {
        let trace = TraceConfig::adversarial(256).generate();
        let poisoned = trace
            .iter()
            .filter(|r| NeurosymbolicSolver::validate_problem(&r.problem).is_err())
            .count();
        // 15% nominal; demand at least the ISSUE's 10% floor on this fixed seed.
        assert!(poisoned * 10 >= trace.len(), "only {poisoned} poisoned");
    }
}
