//! Error taxonomy of the serving layer.
//!
//! Two distinct failure surfaces exist:
//!
//! * [`Rejection`] — a *per-request* outcome: the request was not answered, and
//!   the variant records exactly why (shed at admission, deadline passed, the
//!   request itself was malformed, or its batch exhausted the retry budget).
//!   Rejections are normal operation under overload and chaos; they appear in
//!   [`crate::Response::outcome`].
//! * [`ServeError`] — a *serving-loop* construction failure: an invalid
//!   [`crate::ServeConfig`] or a solver that could not be built. These are
//!   surfaced once, before any traffic is accepted.

use cogsys_workloads::SolveError;
use std::fmt;

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// Shed at admission: the intake queue was already at its configured bound.
    /// Load shedding protects the tail latency of admitted requests.
    Overloaded {
        /// Queue depth observed at arrival.
        queue_depth: usize,
        /// The configured admission bound ([`crate::ServeConfig::max_queue_depth`]).
        limit: usize,
    },
    /// The request's deadline passed while it waited in the queue, so it was
    /// dropped at batch-formation time instead of wasting solver budget.
    DeadlineExpired {
        /// The request's absolute deadline (virtual micros).
        deadline_micros: u64,
        /// Virtual time at which the expiry was detected.
        now_micros: u64,
    },
    /// The request itself was malformed: engine-boundary validation rejected it
    /// with a typed fault. The poisoned request fails alone; its batch-mates are
    /// retried without it.
    Invalid(SolveError),
    /// The request's batch kept failing (transient faults, substrate errors)
    /// until the bounded retry budget was exhausted.
    Failed(SolveError),
}

impl Rejection {
    /// True when the rejection is the request's own fault (malformed spec)
    /// rather than a serving-side condition.
    pub fn is_client_fault(&self) -> bool {
        matches!(self, Rejection::Invalid(_))
    }
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejection::Overloaded { queue_depth, limit } => {
                write!(f, "overloaded: queue depth {queue_depth} at limit {limit}")
            }
            Rejection::DeadlineExpired {
                deadline_micros,
                now_micros,
            } => write!(
                f,
                "deadline {deadline_micros}us expired (now {now_micros}us)"
            ),
            Rejection::Invalid(e) => write!(f, "invalid request: {e}"),
            Rejection::Failed(e) => write!(f, "retry budget exhausted: {e}"),
        }
    }
}

/// Errors constructing or configuring the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The [`crate::ServeConfig`] violated a structural constraint.
    Config {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// The underlying solver could not be constructed.
    Solver(SolveError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Config { message } => write!(f, "invalid serve config: {message}"),
            ServeError::Solver(e) => write!(f, "solver construction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Solver(e) => Some(e),
            ServeError::Config { .. } => None,
        }
    }
}

impl From<SolveError> for ServeError {
    fn from(e: SolveError) -> Self {
        ServeError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_workloads::ProblemFault;

    #[test]
    fn rejection_display_and_classification() {
        let shed = Rejection::Overloaded {
            queue_depth: 64,
            limit: 64,
        };
        assert!(shed.to_string().contains("overloaded"));
        assert!(!shed.is_client_fault());

        let invalid = Rejection::Invalid(SolveError::Malformed {
            problem: 0,
            fault: ProblemFault::NoCandidates,
        });
        assert!(invalid.is_client_fault());
        assert!(invalid.to_string().contains("invalid request"));

        let expired = Rejection::DeadlineExpired {
            deadline_micros: 10,
            now_micros: 20,
        };
        assert!(expired.to_string().contains("expired"));
    }

    #[test]
    fn serve_error_wraps_solver_errors() {
        let e = ServeError::from(SolveError::Config {
            message: "vector_dim must be > 0".into(),
        });
        assert!(e.to_string().contains("solver construction failed"));
        assert!(std::error::Error::source(&e).is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
        assert_send_sync::<Rejection>();
    }
}
