//! Load generator / smoke driver for the serving loop.
//!
//! Replays a deterministic traffic trace (steady, bursty, an adversarial
//! poison mix, or a recorded arrival log) through [`cogsys_serve::ServeLoop`]
//! and prints per-window p50/p99 latency, throughput and shed/degraded/retried
//! counts, then the lifetime counters.
//!
//! ```text
//! serve_loadgen [--shape steady|bursty|adversarial|recorded:<path>]
//!               [--requests N] [--dim D] [--seed S] [--chaos]
//!               [--window-micros W] [--check] [--explain]
//! ```
//!
//! `recorded:<path>` replays arrival times from a file of newline-delimited
//! virtual-time offsets in micros (blank lines and `#` comments skipped,
//! strictly increasing); the request count comes from the file, so
//! `--requests` is rejected with it. One committed diurnal trace lives at
//! `crates/serve/traces/diurnal.txt`.
//!
//! `--chaos` additionally wraps the engine in the fault-injection harness
//! (forced transient faults + injected latency). `--check` turns the run into
//! a smoke gate for CI: it exits nonzero unless the run completed with every
//! request accounted for, zero panics (trivially, by finishing), and — for the
//! adversarial shape — nonzero shed and poison counts. `--explain` prints the
//! compiled solve plan for a full-size batch before the run and the plan-cache
//! hit/miss counters after it.

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

use cogsys_serve::{
    metrics, ChaosConfig, ChaosEngine, ServeConfig, ServeLoop, SolverEngine, TraceConfig,
};
use std::process::ExitCode;

struct Options {
    shape: String,
    requests: usize,
    dim: usize,
    seed: u64,
    window_micros: u64,
    chaos: bool,
    check: bool,
    explain: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            shape: "steady".into(),
            requests: 192,
            dim: 1024,
            seed: 7,
            window_micros: 50_000,
            chaos: false,
            check: false,
            explain: false,
        }
    }
}

fn usage() -> String {
    "usage: serve_loadgen [--shape steady|bursty|adversarial|recorded:<path>] \
     [--requests N] [--dim D] [--seed S] [--window-micros W] [--chaos] [--check] \
     [--explain]\n  recorded:<path> replays newline-delimited virtual-time arrival \
     offsets (micros); the request count comes from the file, so --requests is \
     rejected with it"
        .into()
}

/// Strict argument parsing: unknown flags and malformed values are errors, not
/// silent fallbacks to defaults.
fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut explicit_requests = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{}", usage()))
        };
        match arg.as_str() {
            "--shape" => {
                let v = value_of("--shape")?;
                match v.as_str() {
                    "steady" | "bursty" | "adversarial" => options.shape = v.clone(),
                    recorded
                        if recorded
                            .strip_prefix("recorded:")
                            .is_some_and(|p| !p.is_empty()) =>
                    {
                        options.shape = v.clone();
                    }
                    other => return Err(format!("unknown shape `{other}`\n{}", usage())),
                }
            }
            "--requests" => {
                let v = value_of("--requests")?;
                explicit_requests = true;
                options.requests = v
                    .parse()
                    .map_err(|_| format!("invalid --requests `{v}`\n{}", usage()))?;
            }
            "--dim" => {
                let v = value_of("--dim")?;
                options.dim = v
                    .parse()
                    .map_err(|_| format!("invalid --dim `{v}`\n{}", usage()))?;
            }
            "--seed" => {
                let v = value_of("--seed")?;
                options.seed = v
                    .parse()
                    .map_err(|_| format!("invalid --seed `{v}`\n{}", usage()))?;
            }
            "--window-micros" => {
                let v = value_of("--window-micros")?;
                options.window_micros = v
                    .parse()
                    .map_err(|_| format!("invalid --window-micros `{v}`\n{}", usage()))?;
            }
            "--chaos" => options.chaos = true,
            "--check" => options.check = true,
            "--explain" => options.explain = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if options.requests == 0 {
        return Err(format!("--requests must be > 0\n{}", usage()));
    }
    if explicit_requests && options.shape.starts_with("recorded:") {
        return Err(format!(
            "--requests conflicts with a recorded shape (the trace file sets the count)\n{}",
            usage()
        ));
    }
    Ok(options)
}

fn run(options: &Options) -> Result<bool, String> {
    let (trace, request_count) = if let Some(path) = options.shape.strip_prefix("recorded:") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("recorded trace `{path}` unreadable: {e}"))?;
        let arrivals = cogsys_serve::parse_recorded_arrivals(&text)
            .map_err(|e| format!("recorded trace `{path}`: {e}"))?;
        // Recorded arrivals carry the timing; the request content (clean
        // problems, deadlines) follows the steady preset and the seed.
        let mut trace_config = TraceConfig::steady(arrivals.len());
        trace_config.seed = options.seed;
        (
            trace_config.generate_with_arrivals(&arrivals),
            arrivals.len(),
        )
    } else {
        let mut trace_config = match options.shape.as_str() {
            "steady" => TraceConfig::steady(options.requests),
            "bursty" => TraceConfig::bursty(options.requests),
            _ => TraceConfig::adversarial(options.requests),
        };
        trace_config.seed = options.seed;
        (trace_config.generate(), options.requests)
    };

    // Virtual service times come from the committed kernel sweep when present, so
    // latency distributions track measured solver costs; otherwise the constant
    // placeholder model.
    let measured_service = std::fs::read_to_string("BENCH_backends.json")
        .ok()
        .and_then(|text| cogsys_serve::ServiceModel::from_bench_json(&text));
    let service = match measured_service {
        Some(model) => {
            println!(
                "# service model: measured (BENCH_backends.json): \
                 {} us/batch + {} us/problem",
                model.micros_per_batch, model.micros_per_problem
            );
            if let Some(stages) = &model.stages {
                for (name, fit) in ["encode", "decode", "score"].iter().zip(stages) {
                    println!(
                        "#   stage {name}: {} us/batch + {} us/problem",
                        fit.micros_per_batch, fit.micros_per_problem
                    );
                }
            }
            model
        }
        None => {
            let model = cogsys_serve::ServiceModel::default();
            println!(
                "# service model: default placeholder (no readable BENCH_backends.json): \
                 {} us/batch + {} us/problem",
                model.micros_per_batch, model.micros_per_problem
            );
            model
        }
    };

    // Bounds sized so the built-in traces actually exercise the front end: the
    // bursty shapes' backlog peaks (~20 requests) exceed the queue bound, and
    // the degrade watermark sits below it.
    let serve_config = ServeConfig {
        solver: cogsys_workloads::SolverConfig {
            vector_dim: options.dim,
            ..Default::default()
        },
        max_queue_depth: 16,
        max_batch: 8,
        degrade_depth: 12,
        recover_depth: 4,
        retry_budget: 6,
        service,
        ..ServeConfig::default()
    };
    let engine = SolverEngine::new(serve_config.solver.clone(), serve_config.codebook_seed)
        .map_err(|e| format!("solver construction failed: {e}"))?;
    if options.explain {
        print!("{}", engine.describe_plan(serve_config.max_batch));
    }
    let chaos_config = ChaosConfig {
        seed: options.seed ^ 0xC4A0_5715,
        forced_error_rate: if options.chaos { 0.05 } else { 0.0 },
        extra_latency_rate: if options.chaos { 0.10 } else { 0.0 },
        extra_latency_micros: 5_000,
    };
    let engine = ChaosEngine::new(engine, chaos_config);
    let mut serve = ServeLoop::with_engine(serve_config, engine)
        .map_err(|e| format!("serve construction failed: {e}"))?;

    let started = std::time::Instant::now();
    let responses = serve.run_trace(&trace);
    let wall = started.elapsed();

    println!(
        "# shape={} requests={} dim={} seed={} chaos={}",
        options.shape, request_count, options.dim, options.seed, options.chaos
    );
    println!("window_ms   done  rej  degr  retr    p50_ms    p99_ms   prob/s");
    for w in metrics::windowed(&responses, options.window_micros) {
        println!(
            "{:>9.1} {:>6} {:>4} {:>5} {:>5} {:>9.2} {:>9.2} {:>8.1}",
            w.start_micros as f64 / 1e3,
            w.completed,
            w.rejected,
            w.degraded,
            w.retried,
            w.p50_micros as f64 / 1e3,
            w.p99_micros as f64 / 1e3,
            w.problems_per_sec,
        );
    }
    let counters = serve.counters();
    let correct = responses
        .iter()
        .filter(|r| matches!(r.outcome, Ok(a) if a.correct))
        .count();
    println!(
        "totals: submitted={} completed={} (correct={}) shed={} expired={} invalid={} \
         failed={} retries={} late={} batches={} degraded_batches={} peak_queue={} max_level={}",
        counters.submitted,
        counters.completed,
        correct,
        counters.shed,
        counters.expired,
        counters.invalid,
        counters.failed,
        counters.retries,
        counters.late,
        counters.batches,
        counters.degraded_batches,
        counters.peak_queue_depth,
        counters.max_level,
    );
    if options.explain {
        let plan_stats = serve.engine().inner().plan_stats();
        println!(
            "plan_cache: hits={} misses={}",
            plan_stats.hits, plan_stats.misses
        );
    }
    let chaos_stats = serve.engine().stats();
    if options.chaos {
        println!(
            "chaos: calls={} forced_errors={} injected_latency_ms={:.1}",
            chaos_stats.calls,
            chaos_stats.forced_errors,
            chaos_stats.injected_latency_micros as f64 / 1e3,
        );
    }
    println!(
        "virtual_time_ms={:.1} wall_ms={:.0}",
        serve.clock_micros() as f64 / 1e3,
        wall.as_secs_f64() * 1e3,
    );

    let mut ok = responses.len() == trace.len() && counters.accounted() == counters.submitted;
    if options.shape == "adversarial" {
        // The adversarial smoke must actually exercise backpressure and
        // poison isolation; a run that sheds or rejects nothing is a bug.
        ok &= counters.shed > 0 && counters.invalid > 0 && counters.max_level > 0;
    }
    Ok(ok)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&options) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            if options.check {
                eprintln!("--check failed: smoke invariants not met (see totals above)");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
