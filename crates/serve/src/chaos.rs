//! Seeded fault-injection harness.
//!
//! Three fault families, all drawn from one seeded generator so a chaos run is
//! exactly reproducible:
//!
//! * **request corruption** — malformed problem specs
//!   ([`cogsys_datasets::ProblemGenerator::generate_malformed`], wired in by the
//!   trace generator) and in-band bit flips that push attribute values beyond
//!   the interface spec ([`flip_value_bits`]);
//! * **forced engine faults** — [`ChaosEngine`] fails a solve call with a
//!   transient [`SolveError::Fault`] *before* invoking the inner engine, so no
//!   solver randomness is consumed and the loop's retry is decision-identical
//!   to an undisturbed run;
//! * **injected latency** — extra virtual service time added to successful
//!   calls, stressing deadline and backpressure handling without touching
//!   results.

use crate::engine::{ChunkEngine, ChunkResult, DegradationLevel};
use cogsys_datasets::{Panel, Problem};
use cogsys_workloads::SolveError;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Flips a low-order bit in `flips` randomly chosen attribute values of the
/// problem's context panels. The result may leave the attribute's valid range
/// (caught at the engine boundary as a typed fault) or stay inside it (garbage
/// the solver must absorb without panicking) — both are interesting.
pub fn flip_value_bits<R: Rng + ?Sized>(problem: &mut Problem, flips: usize, rng: &mut R) {
    if problem.context.is_empty() {
        return;
    }
    for _ in 0..flips {
        let panel = rng.gen_range(0..problem.context.len());
        let attribute = rng.gen_range(0..5usize);
        let bit = 1usize << rng.gen_range(0..4usize);
        let mut values = problem.context[panel].values();
        values[attribute] ^= bit;
        problem.context[panel] = Panel::new_unchecked(values);
    }
}

/// Fault-injection knobs. All probabilities are per engine invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Seed of the chaos generator (independent of solver and trace seeds).
    pub seed: u64,
    /// Probability that a solve call fails with a transient fault before the
    /// inner engine runs.
    pub forced_error_rate: f64,
    /// Probability that a successful solve call gets extra latency.
    pub extra_latency_rate: f64,
    /// The extra virtual latency injected when the above fires.
    pub extra_latency_micros: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0A5,
            forced_error_rate: 0.0,
            extra_latency_rate: 0.0,
            extra_latency_micros: 0,
        }
    }
}

/// Tally of what the harness actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Engine invocations observed (including the failed ones).
    pub calls: usize,
    /// Calls failed with a forced transient fault.
    pub forced_errors: usize,
    /// Total extra latency injected, virtual micros.
    pub injected_latency_micros: u64,
}

/// Decorator that injects faults around any [`ChunkEngine`].
pub struct ChaosEngine<E> {
    inner: E,
    rng: StdRng,
    config: ChaosConfig,
    stats: ChaosStats,
}

impl<E> ChaosEngine<E> {
    /// Wraps `inner` with the given fault-injection profile.
    pub fn new(inner: E, config: ChaosConfig) -> Self {
        Self {
            inner,
            rng: StdRng::seed_from_u64(config.seed),
            config,
            stats: ChaosStats::default(),
        }
    }

    /// What was injected so far.
    pub fn stats(&self) -> ChaosStats {
        self.stats
    }

    /// The wrapped engine.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: ChunkEngine> ChunkEngine for ChaosEngine<E> {
    fn solve_chunk(
        &mut self,
        problems: &[Problem],
        seed: u64,
        level: DegradationLevel,
    ) -> Result<ChunkResult, SolveError> {
        self.stats.calls += 1;
        if self.config.forced_error_rate > 0.0
            && self
                .rng
                .gen_bool(self.config.forced_error_rate.clamp(0.0, 1.0))
        {
            self.stats.forced_errors += 1;
            return Err(SolveError::Fault {
                message: format!("chaos: forced engine fault on call {}", self.stats.calls),
            });
        }
        let mut result = self.inner.solve_chunk(problems, seed, level)?;
        if self.config.extra_latency_rate > 0.0
            && self
                .rng
                .gen_bool(self.config.extra_latency_rate.clamp(0.0, 1.0))
        {
            result.extra_micros += self.config.extra_latency_micros;
            self.stats.injected_latency_micros += self.config.extra_latency_micros;
        }
        Ok(result)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use cogsys_datasets::{DatasetKind, ProblemGenerator};
    use cogsys_workloads::SolverReport;

    /// Engine stub that always succeeds with fixed choices.
    struct FixedEngine;

    impl ChunkEngine for FixedEngine {
        fn solve_chunk(
            &mut self,
            problems: &[Problem],
            _seed: u64,
            _level: DegradationLevel,
        ) -> Result<ChunkResult, SolveError> {
            Ok(ChunkResult {
                choices: vec![0; problems.len()],
                report: SolverReport::default(),
                extra_micros: 0,
            })
        }
    }

    #[test]
    fn forced_errors_are_transient_faults_and_counted() {
        let mut engine = ChaosEngine::new(
            FixedEngine,
            ChaosConfig {
                forced_error_rate: 1.0,
                ..ChaosConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(2);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(2, &mut rng);
        let err = engine
            .solve_chunk(&problems, 0, DegradationLevel::Full)
            .unwrap_err();
        assert!(matches!(err, SolveError::Fault { .. }));
        assert!(err.problem_index().is_none());
        assert_eq!(engine.stats().forced_errors, 1);
    }

    #[test]
    fn latency_injection_only_touches_timing() {
        let mut engine = ChaosEngine::new(
            FixedEngine,
            ChaosConfig {
                extra_latency_rate: 1.0,
                extra_latency_micros: 1_500,
                ..ChaosConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(3);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(3, &mut rng);
        let out = engine
            .solve_chunk(&problems, 0, DegradationLevel::Full)
            .unwrap();
        assert_eq!(out.extra_micros, 1_500);
        assert_eq!(out.choices, vec![0; 3]);
        assert_eq!(engine.stats().injected_latency_micros, 1_500);
    }

    #[test]
    fn bit_flips_are_seed_deterministic() {
        let gen = ProblemGenerator::new(DatasetKind::Pgm);
        let mut rng = StdRng::seed_from_u64(9);
        let base = gen.generate(&mut rng);
        let mut a = base.clone();
        let mut b = base.clone();
        flip_value_bits(&mut a, 3, &mut StdRng::seed_from_u64(77));
        flip_value_bits(&mut b, 3, &mut StdRng::seed_from_u64(77));
        assert_eq!(a, b);
        assert_ne!(a, base);
    }
}
