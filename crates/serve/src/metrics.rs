//! Serving counters and windowed latency/throughput statistics.

use crate::request::Response;

/// Monotone counters maintained by the serving loop over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    /// Requests submitted (admitted or not).
    pub submitted: usize,
    /// Requests shed at admission (queue at bound).
    pub shed: usize,
    /// Requests dropped at batch formation because their deadline had passed.
    pub expired: usize,
    /// Requests answered.
    pub completed: usize,
    /// Answered requests that completed after their deadline.
    pub late: usize,
    /// Requests rejected as malformed (typed engine-boundary fault).
    pub invalid: usize,
    /// Requests failed after the retry budget ran out.
    pub failed: usize,
    /// Batch retries performed (excisions and transient-fault re-runs).
    pub retries: usize,
    /// Batches successfully executed.
    pub batches: usize,
    /// Executed batches served at a degraded level (> 0).
    pub degraded_batches: usize,
    /// Highest queue depth observed at admission.
    pub peak_queue_depth: usize,
    /// Worst degradation level reached (0 = never degraded).
    pub max_level: u8,
}

impl Counters {
    /// Every submitted request must be accounted for exactly once.
    pub fn accounted(&self) -> usize {
        self.shed + self.expired + self.completed + self.invalid + self.failed
    }
}

/// Latency/throughput digest of one fixed-size window of virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Window index (window `w` covers `[w*len, (w+1)*len)` virtual micros).
    pub window: usize,
    /// Window start, virtual micros.
    pub start_micros: u64,
    /// Requests answered in the window.
    pub completed: usize,
    /// Requests rejected in the window (shed, expired, invalid or failed).
    pub rejected: usize,
    /// Answered requests that were served at a degraded level.
    pub degraded: usize,
    /// Answered requests whose batch needed a retry.
    pub retried: usize,
    /// Median latency of answered requests, virtual micros (0 when none).
    pub p50_micros: u64,
    /// 99th-percentile latency of answered requests, virtual micros.
    pub p99_micros: u64,
    /// Answered problems per virtual second.
    pub problems_per_sec: f64,
}

/// Nearest-rank percentile of an ascending-sorted latency slice.
///
/// `p` in `[0, 1]`; returns 0 for an empty slice.
pub fn percentile_micros(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Buckets responses into fixed windows of `window_micros` by completion time
/// and digests each. Windows with no traffic are omitted.
pub fn windowed(responses: &[Response], window_micros: u64) -> Vec<WindowStats> {
    let window_micros = window_micros.max(1);
    let Some(last) = responses.iter().map(|r| r.completed_micros).max() else {
        return Vec::new();
    };
    let windows = (last / window_micros + 1) as usize;
    let mut latencies: Vec<Vec<u64>> = vec![Vec::new(); windows];
    let mut stats: Vec<WindowStats> = (0..windows)
        .map(|w| WindowStats {
            window: w,
            start_micros: w as u64 * window_micros,
            completed: 0,
            rejected: 0,
            degraded: 0,
            retried: 0,
            p50_micros: 0,
            p99_micros: 0,
            problems_per_sec: 0.0,
        })
        .collect();
    for response in responses {
        let w = (response.completed_micros / window_micros) as usize;
        if response.is_answered() {
            stats[w].completed += 1;
            if response.degradation.as_u8() > 0 {
                stats[w].degraded += 1;
            }
            if response.retried {
                stats[w].retried += 1;
            }
            latencies[w].push(response.latency_micros());
        } else {
            stats[w].rejected += 1;
        }
    }
    for (stat, mut lats) in stats.iter_mut().zip(latencies) {
        lats.sort_unstable();
        stat.p50_micros = percentile_micros(&lats, 0.50);
        stat.p99_micros = percentile_micros(&lats, 0.99);
        stat.problems_per_sec = stat.completed as f64 * 1e6 / window_micros as f64;
    }
    stats.retain(|s| s.completed + s.rejected > 0);
    stats
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::engine::DegradationLevel;
    use crate::error::Rejection;
    use crate::request::Answer;

    fn answered(id: u64, completed: u64, latency: u64, level: DegradationLevel) -> Response {
        Response {
            id,
            outcome: Ok(Answer {
                choice: 0,
                correct: true,
            }),
            degradation: level,
            arrival_micros: completed - latency,
            completed_micros: completed,
            retried: false,
            missed_deadline: false,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let lats = [10, 20, 30, 40];
        assert_eq!(percentile_micros(&lats, 0.50), 20);
        assert_eq!(percentile_micros(&lats, 0.99), 40);
        assert_eq!(percentile_micros(&lats, 0.0), 10);
        assert_eq!(percentile_micros(&[], 0.5), 0);
    }

    #[test]
    fn windows_bucket_by_completion_time() {
        let responses = vec![
            answered(0, 500, 100, DegradationLevel::Full),
            answered(1, 900, 300, DegradationLevel::HalvedBatch),
            Response {
                id: 2,
                outcome: Err(Rejection::Overloaded {
                    queue_depth: 4,
                    limit: 4,
                }),
                degradation: DegradationLevel::Full,
                arrival_micros: 1_200,
                completed_micros: 1_200,
                retried: false,
                missed_deadline: false,
            },
        ];
        let windows = windowed(&responses, 1_000);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].completed, 2);
        assert_eq!(windows[0].degraded, 1);
        assert_eq!(windows[0].p50_micros, 100);
        assert_eq!(windows[0].p99_micros, 300);
        assert_eq!(windows[1].rejected, 1);
        assert!((windows[0].problems_per_sec - 2_000.0).abs() < 1e-9);
    }

    #[test]
    fn counters_account_for_every_terminal_state() {
        let counters = Counters {
            submitted: 10,
            shed: 2,
            expired: 1,
            completed: 5,
            invalid: 1,
            failed: 1,
            ..Counters::default()
        };
        assert_eq!(counters.accounted(), counters.submitted);
    }
}
