//! Request and response records of the serving loop.
//!
//! All times are *virtual* microseconds on the loop's discrete-event clock (see
//! [`crate::ServeLoop`]); determinism of the whole serving simulation follows
//! from every timestamp being derived from the trace and the service-time model
//! rather than a wall clock.

use crate::engine::DegradationLevel;
use crate::error::Rejection;
use cogsys_datasets::Problem;

/// One reasoning request submitted to the serving loop.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-assigned identifier, echoed on the [`Response`].
    pub id: u64,
    /// The RPM problem to solve.
    pub problem: Problem,
    /// Arrival time on the virtual clock.
    pub arrival_micros: u64,
    /// Absolute deadline: if the request has not been *served* by this time it
    /// is dropped at batch formation; if it completes after it, the response is
    /// marked [`Response::missed_deadline`].
    pub deadline_micros: u64,
}

impl Request {
    /// Builds a request with an absolute deadline `budget_micros` after arrival.
    pub fn new(id: u64, problem: Problem, arrival_micros: u64, budget_micros: u64) -> Self {
        Self {
            id,
            problem,
            arrival_micros,
            deadline_micros: arrival_micros.saturating_add(budget_micros),
        }
    }
}

/// The solved outcome of an admitted, non-rejected request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// Index of the chosen candidate panel.
    pub choice: usize,
    /// Whether the choice matches the problem's labelled answer.
    pub correct: bool,
}

/// Terminal record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's identifier.
    pub id: u64,
    /// Answer, or the typed reason the request was not answered.
    pub outcome: Result<Answer, Rejection>,
    /// Degradation level the serving loop was at when this request was resolved.
    /// Level 0 responses are decision-identical to solving the same batch
    /// directly; higher levels traded answer quality for throughput.
    pub degradation: DegradationLevel,
    /// Arrival time, copied from the request.
    pub arrival_micros: u64,
    /// Virtual time at which the outcome was determined.
    pub completed_micros: u64,
    /// True when the request's batch needed at least one retry (a batch-mate was
    /// excised as malformed, or a transient fault forced a re-run).
    pub retried: bool,
    /// True when the request completed, but only after its deadline had passed.
    pub missed_deadline: bool,
}

impl Response {
    /// Queueing + service latency on the virtual clock.
    pub fn latency_micros(&self) -> u64 {
        self.completed_micros.saturating_sub(self.arrival_micros)
    }

    /// True when the request was answered (possibly degraded, possibly late).
    pub fn is_answered(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_datasets::{DatasetKind, ProblemGenerator};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn request_deadline_is_arrival_plus_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let problem = ProblemGenerator::new(DatasetKind::Raven).generate(&mut rng);
        let req = Request::new(7, problem, 1_000, 50_000);
        assert_eq!(req.deadline_micros, 51_000);
    }

    #[test]
    fn response_latency_saturates() {
        let resp = Response {
            id: 0,
            outcome: Err(Rejection::Overloaded {
                queue_depth: 1,
                limit: 1,
            }),
            degradation: DegradationLevel::Full,
            arrival_micros: 10,
            completed_micros: 10,
            retried: false,
            missed_deadline: false,
        };
        assert_eq!(resp.latency_micros(), 0);
        assert!(!resp.is_answered());
    }
}
