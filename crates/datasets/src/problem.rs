//! Full reasoning problems (3×3 matrix + candidate answers) and their generators.

use crate::panel::{Attribute, AttributeVocab, Panel};
use crate::rules::{RuleKind, RuleSet};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// RAVEN constellations (spatial layouts). Together with the seven rule types they form
/// the 14 test scenarios of Tab. VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constellation {
    /// A single centred object.
    Center,
    /// Objects on a 2×2 grid.
    Grid2x2,
    /// Objects on a 3×3 grid.
    Grid3x3,
    /// Two objects, left and right.
    LeftRight,
    /// Two objects, up and down.
    UpDown,
    /// An object inside an outline object ("O-IC").
    OutInCenter,
    /// Four objects inside an outline ("O-IG" / distribute-four).
    DistributeFour,
}

impl Constellation {
    /// All constellations, in Tab. VII order.
    pub const ALL: [Constellation; 7] = [
        Constellation::Grid2x2,
        Constellation::Grid3x3,
        Constellation::LeftRight,
        Constellation::UpDown,
        Constellation::Center,
        Constellation::OutInCenter,
        Constellation::DistributeFour,
    ];

    /// Typical number of objects per panel — used by the workload models to scale the
    /// number of symbolic queries per panel.
    pub fn objects_per_panel(self) -> usize {
        match self {
            Constellation::Center => 1,
            Constellation::LeftRight | Constellation::UpDown | Constellation::OutInCenter => 2,
            Constellation::Grid2x2 | Constellation::DistributeFour => 4,
            Constellation::Grid3x3 => 9,
        }
    }
}

impl fmt::Display for Constellation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Constellation::Center => "Center",
            Constellation::Grid2x2 => "2x2Grid",
            Constellation::Grid3x3 => "3x3Grid",
            Constellation::LeftRight => "Left-Right",
            Constellation::UpDown => "Up-Down",
            Constellation::OutInCenter => "O-IC",
            Constellation::DistributeFour => "DistFour",
        };
        write!(f, "{name}")
    }
}

/// The five reasoning benchmarks of the paper's evaluation (Sec. VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// RAVEN: RPM problems with RAVEN rules and RAVEN-style (perturbation) distractors.
    Raven,
    /// I-RAVEN: same rules, attribute-bisection distractors (removes answer-set bias).
    IRaven,
    /// PGM: adds the logical XOR/AND/OR rules.
    Pgm,
    /// CVR-style compositional visual reasoning, abstracted to a reduced rule pool and a
    /// four-candidate answer set.
    Cvr,
    /// SVRT-style synthetic visual reasoning, abstracted like CVR.
    Svrt,
}

impl DatasetKind {
    /// All five benchmarks in the order used by Fig. 15 / Fig. 16 / Tab. X.
    pub const ALL: [DatasetKind; 5] = [
        DatasetKind::Raven,
        DatasetKind::IRaven,
        DatasetKind::Pgm,
        DatasetKind::Cvr,
        DatasetKind::Svrt,
    ];

    /// The rule-kind pool used when generating problems of this benchmark.
    pub fn rule_pool(self) -> &'static [RuleKind] {
        match self {
            DatasetKind::Raven | DatasetKind::IRaven => &RuleKind::RAVEN,
            DatasetKind::Pgm => &RuleKind::PGM,
            DatasetKind::Cvr | DatasetKind::Svrt => &RuleKind::RAVEN[..2],
        }
    }

    /// Number of candidate answers a problem of this benchmark presents.
    pub fn num_candidates(self) -> usize {
        match self {
            DatasetKind::Cvr | DatasetKind::Svrt => 4,
            _ => 8,
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DatasetKind::Raven => "RAVEN",
            DatasetKind::IRaven => "I-RAVEN",
            DatasetKind::Pgm => "PGM",
            DatasetKind::Cvr => "CVR",
            DatasetKind::Svrt => "SVRT",
        };
        write!(f, "{name}")
    }
}

/// One reasoning problem: eight context panels (the 3×3 matrix minus the bottom-right
/// cell), the candidate answers, the index of the correct candidate, and the hidden
/// rule set (ground truth, used for evaluation only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Which benchmark this problem was drawn from.
    pub dataset: DatasetKind,
    /// Spatial constellation.
    pub constellation: Constellation,
    /// The eight visible panels, row-major.
    pub context: Vec<Panel>,
    /// Candidate answers for the missing ninth panel.
    pub candidates: Vec<Panel>,
    /// Index of the correct candidate.
    pub answer_index: usize,
    /// The hidden per-attribute rules.
    pub rules: RuleSet,
}

impl Problem {
    /// The correct answer panel.
    pub fn answer(&self) -> Panel {
        self.candidates[self.answer_index]
    }

    /// The two visible panels of the incomplete bottom row.
    pub fn last_row_context(&self) -> (Panel, Panel) {
        (self.context[6], self.context[7])
    }

    /// Checks the generator's own consistency: every complete row satisfies every rule,
    /// and the labelled answer completes the bottom row.
    pub fn verify_answer(&self) -> bool {
        self.verify_answer_with(AttributeVocab::raven())
    }

    /// [`Problem::verify_answer`] under a configurable attribute vocabulary. Problems
    /// produced by [`ProblemGenerator::with_vocab`] must be checked with the same
    /// vocabulary they were generated with (rule arithmetic is modulo the vocab's
    /// cardinalities).
    pub fn verify_answer_with(&self, vocab: AttributeVocab) -> bool {
        let row0 = [self.context[0], self.context[1], self.context[2]];
        let row1 = [self.context[3], self.context[4], self.context[5]];
        let row2 = [self.context[6], self.context[7], self.answer()];
        self.rules.row_satisfied_with(vocab, &row0)
            && self.rules.row_satisfied_with(vocab, &row1)
            && self.rules.row_satisfied_with(vocab, &row2)
    }

    /// Returns `true` if `candidate` (an index) is the unique rule-consistent completion.
    pub fn is_correct(&self, candidate: usize) -> bool {
        candidate == self.answer_index
    }
}

/// Problem generator for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProblemGenerator {
    dataset: DatasetKind,
    #[serde(default)]
    vocab: AttributeVocab,
}

impl ProblemGenerator {
    /// Creates a generator for the given benchmark with the standard RAVEN vocabulary.
    pub fn new(dataset: DatasetKind) -> Self {
        Self {
            dataset,
            vocab: AttributeVocab::raven(),
        }
    }

    /// Creates a generator whose panel values range over an enlarged attribute
    /// vocabulary — the knob that scales codebook rows into the 10^4+ regime where
    /// the solver's pruned cleanup index engages.
    pub fn with_vocab(dataset: DatasetKind, vocab: AttributeVocab) -> Self {
        Self { dataset, vocab }
    }

    /// The benchmark this generator produces.
    pub fn dataset(&self) -> DatasetKind {
        self.dataset
    }

    /// The attribute vocabulary panel values are drawn from.
    pub fn vocab(&self) -> AttributeVocab {
        self.vocab
    }

    /// Generates one problem with a random constellation.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Problem {
        let constellation = Constellation::ALL[rng.gen_range(0..Constellation::ALL.len())];
        self.generate_with_constellation(constellation, rng)
    }

    /// Generates one problem with a fixed constellation (used by the Tab. VII sweep).
    pub fn generate_with_constellation<R: Rng + ?Sized>(
        &self,
        constellation: Constellation,
        rng: &mut R,
    ) -> Problem {
        let rules = RuleSet::random_with(self.dataset.rule_pool(), self.vocab, rng);
        let row0 = rules.generate_row_with(self.vocab, rng);
        let row1 = rules.generate_row_with(self.vocab, rng);
        let row2 = rules.generate_row_with(self.vocab, rng);
        let answer = row2[2];

        let context = vec![
            row0[0], row0[1], row0[2], row1[0], row1[1], row1[2], row2[0], row2[1],
        ];

        let num_candidates = self.dataset.num_candidates();
        let distractors = match self.dataset {
            DatasetKind::IRaven => iraven_distractors(answer, self.vocab, num_candidates - 1, rng),
            _ => raven_distractors(answer, self.vocab, num_candidates - 1, rng),
        };
        let answer_index = rng.gen_range(0..num_candidates);
        let mut candidates = distractors;
        candidates.insert(answer_index, answer);

        Problem {
            dataset: self.dataset,
            constellation,
            context,
            candidates,
            answer_index,
            rules,
        }
    }

    /// Generates a batch of problems.
    pub fn generate_batch<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<Problem> {
        (0..count).map(|_| self.generate(rng)).collect()
    }

    /// Generates a deliberately **malformed** problem for robustness testing: a
    /// well-formed problem with one of four spec corruptions applied — a wrong
    /// context-panel count, an emptied candidate set, an out-of-range answer index,
    /// or an out-of-range attribute value (via [`Panel::new_unchecked`]).
    ///
    /// The solving engine's boundary validation must reject every shape this
    /// produces with a typed error instead of panicking; the `cogsys-serve` chaos
    /// harness uses it to poison traffic traces.
    pub fn generate_malformed<R: Rng + ?Sized>(&self, rng: &mut R) -> Problem {
        let mut problem = self.generate(rng);
        match rng.gen_range(0..4) {
            0 => {
                // Wrong panel count: drop or duplicate a context panel.
                if rng.gen_bool(0.5) {
                    problem.context.pop();
                } else {
                    problem.context.push(problem.context[0]);
                }
            }
            1 => problem.candidates.clear(),
            2 => problem.answer_index = problem.candidates.len() + rng.gen_range(0..3usize),
            _ => {
                let panel = rng.gen_range(0..problem.context.len());
                let attr = Attribute::ALL[rng.gen_range(0..Attribute::ALL.len())];
                let mut values = problem.context[panel].values();
                values[attr.index()] = self.vocab.cardinality(attr) + rng.gen_range(0..7usize);
                problem.context[panel] = Panel::new_unchecked(values);
            }
        }
        problem
    }
}

/// RAVEN-style distractors: independently perturb a random non-empty subset of the
/// answer's attributes. (This is the scheme whose statistical bias I-RAVEN later fixed.)
fn raven_distractors<R: Rng + ?Sized>(
    answer: Panel,
    vocab: AttributeVocab,
    count: usize,
    rng: &mut R,
) -> Vec<Panel> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let mut candidate = answer;
        let changes = 1 + rng.gen_range(0..3);
        for _ in 0..changes {
            let attr = Attribute::ALL[rng.gen_range(0..Attribute::ALL.len())];
            let card = vocab.cardinality(attr);
            let new = (candidate.value(attr) + 1 + rng.gen_range(0..card - 1)) % card;
            candidate = candidate.with_value_with(vocab, attr, new);
        }
        if candidate != answer && !out.contains(&candidate) {
            out.push(candidate);
        }
    }
    out
}

/// I-RAVEN-style distractors (attribute bisection): pick three attributes and enumerate
/// every non-empty subset of single-attribute modifications, so each attribute value is
/// balanced across the answer set and the answer cannot be guessed from candidate
/// statistics alone.
fn iraven_distractors<R: Rng + ?Sized>(
    answer: Panel,
    vocab: AttributeVocab,
    count: usize,
    rng: &mut R,
) -> Vec<Panel> {
    // Choose three distinct attributes and an alternative value for each.
    let mut attrs = Attribute::ALL.to_vec();
    for i in (1..attrs.len()).rev() {
        attrs.swap(i, rng.gen_range(0..=i));
    }
    let chosen: Vec<(Attribute, usize)> = attrs
        .into_iter()
        .take(3)
        .map(|a| {
            let card = vocab.cardinality(a);
            let alt = (answer.value(a) + 1 + rng.gen_range(0..card - 1)) % card;
            (a, alt)
        })
        .collect();

    let mut out = Vec::with_capacity(count);
    for mask in 1u32..8 {
        if out.len() >= count {
            break;
        }
        let mut candidate = answer;
        for (bit, (attr, alt)) in chosen.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                candidate = candidate.with_value_with(vocab, *attr, *alt);
            }
        }
        out.push(candidate);
    }
    // Top up (only needed when count > 7, which no benchmark uses) with perturbations.
    while out.len() < count {
        out.extend(raven_distractors(answer, vocab, count - out.len(), rng));
    }
    out.truncate(count);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn dataset_metadata() {
        assert_eq!(DatasetKind::ALL.len(), 5);
        assert_eq!(DatasetKind::Raven.num_candidates(), 8);
        assert_eq!(DatasetKind::Cvr.num_candidates(), 4);
        assert_eq!(DatasetKind::Pgm.rule_pool().len(), 7);
        assert_eq!(DatasetKind::Raven.rule_pool().len(), 4);
        assert_eq!(DatasetKind::Svrt.rule_pool().len(), 2);
        assert_eq!(DatasetKind::IRaven.to_string(), "I-RAVEN");
        assert_eq!(Constellation::ALL.len(), 7);
        assert_eq!(Constellation::Grid3x3.objects_per_panel(), 9);
        assert_eq!(Constellation::Center.objects_per_panel(), 1);
        assert_eq!(Constellation::Grid2x2.to_string(), "2x2Grid");
    }

    #[test]
    fn generated_problems_are_well_formed() {
        for dataset in DatasetKind::ALL {
            let generator = ProblemGenerator::new(dataset);
            assert_eq!(generator.dataset(), dataset);
            let mut r = rng(42);
            for _ in 0..25 {
                let p = generator.generate(&mut r);
                assert_eq!(p.context.len(), 8);
                assert_eq!(p.candidates.len(), dataset.num_candidates());
                assert!(p.answer_index < p.candidates.len());
                assert!(p.verify_answer(), "{dataset}: answer fails its own rules");
                assert!(p.is_correct(p.answer_index));
            }
        }
    }

    #[test]
    fn answer_is_the_unique_rule_consistent_candidate() {
        // Every rule determines the third value uniquely given the first two, so no
        // distractor can complete the bottom row consistently.
        let generator = ProblemGenerator::new(DatasetKind::IRaven);
        let mut r = rng(7);
        for _ in 0..50 {
            let p = generator.generate(&mut r);
            let (c0, c1) = p.last_row_context();
            let consistent: Vec<usize> = p
                .candidates
                .iter()
                .enumerate()
                .filter(|(_, cand)| p.rules.row_satisfied(&[c0, c1, **cand]))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(consistent, vec![p.answer_index]);
        }
    }

    #[test]
    fn distractors_are_distinct_from_answer() {
        let mut r = rng(8);
        for dataset in DatasetKind::ALL {
            let p = ProblemGenerator::new(dataset).generate(&mut r);
            for (i, cand) in p.candidates.iter().enumerate() {
                if i != p.answer_index {
                    assert_ne!(*cand, p.answer(), "{dataset} distractor equals answer");
                }
            }
        }
    }

    #[test]
    fn iraven_distractors_differ_in_at_most_three_attributes() {
        let mut r = rng(9);
        let p = ProblemGenerator::new(DatasetKind::IRaven).generate(&mut r);
        for cand in &p.candidates {
            assert!(cand.distance(&p.answer()) <= 3);
        }
    }

    #[test]
    fn fixed_constellation_generation() {
        let mut r = rng(10);
        let p = ProblemGenerator::new(DatasetKind::Raven)
            .generate_with_constellation(Constellation::Grid3x3, &mut r);
        assert_eq!(p.constellation, Constellation::Grid3x3);
    }

    #[test]
    fn malformed_problems_break_at_least_one_invariant() {
        let generator = ProblemGenerator::new(DatasetKind::Raven);
        let mut r = rng(13);
        for _ in 0..100 {
            let p = generator.generate_malformed(&mut r);
            let well_formed = p.context.len() == 8
                && !p.candidates.is_empty()
                && p.answer_index < p.candidates.len()
                && p.context.iter().all(Panel::is_well_formed)
                && p.candidates.iter().all(Panel::is_well_formed);
            assert!(!well_formed, "generate_malformed produced a valid problem");
        }
    }

    #[test]
    fn unchecked_panels_carry_out_of_range_values() {
        let p = Panel::new_unchecked([100, 0, 0, 0, 0]);
        assert_eq!(p.values()[0], 100);
        assert!(!p.is_well_formed());
        assert!(Panel::new([1, 2, 3, 4, 5]).is_well_formed());
    }

    #[test]
    fn raven_vocab_generator_matches_default_generator() {
        // The vocab-threaded paths reproduce the exact rng draw pattern of the
        // original code, so a generator built with the RAVEN vocab is
        // indistinguishable from the default one under the same seed.
        let default_gen = ProblemGenerator::new(DatasetKind::IRaven);
        let vocab_gen = ProblemGenerator::with_vocab(DatasetKind::IRaven, AttributeVocab::raven());
        assert!(vocab_gen.vocab().is_raven());
        for seed in 0..10u64 {
            let a = default_gen.generate(&mut rng(seed));
            let b = vocab_gen.generate(&mut rng(seed));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn enlarged_vocab_problems_verify_and_use_large_values() {
        let vocab = AttributeVocab::uniform(600);
        assert_eq!(vocab.max_cardinality(), 600);
        for dataset in DatasetKind::ALL {
            let generator = ProblemGenerator::with_vocab(dataset, vocab);
            let mut r = rng(21);
            let mut saw_large_value = false;
            for _ in 0..25 {
                let p = generator.generate(&mut r);
                assert_eq!(p.context.len(), 8);
                assert_eq!(p.candidates.len(), dataset.num_candidates());
                assert!(
                    p.verify_answer_with(vocab),
                    "{dataset}: vocab answer fails its own rules"
                );
                saw_large_value |= p
                    .context
                    .iter()
                    .chain(p.candidates.iter())
                    .any(|panel| panel.values().iter().any(|v| *v >= 10));
                for panel in p.context.iter().chain(p.candidates.iter()) {
                    assert!(panel.is_well_formed_with(vocab));
                }
            }
            assert!(
                saw_large_value,
                "{dataset}: enlarged vocab never produced values beyond the RAVEN range"
            );
        }
    }

    #[test]
    fn enlarged_vocab_answer_is_unique_consistent_candidate() {
        let vocab = AttributeVocab::uniform(512);
        let generator = ProblemGenerator::with_vocab(DatasetKind::IRaven, vocab);
        let mut r = rng(31);
        for _ in 0..30 {
            let p = generator.generate(&mut r);
            let (c0, c1) = p.last_row_context();
            let consistent: Vec<usize> = p
                .candidates
                .iter()
                .enumerate()
                .filter(|(_, cand)| p.rules.row_satisfied_with(vocab, &[c0, c1, **cand]))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(consistent, vec![p.answer_index]);
        }
    }

    #[test]
    fn batch_generation() {
        let mut r = rng(11);
        let batch = ProblemGenerator::new(DatasetKind::Pgm).generate_batch(12, &mut r);
        assert_eq!(batch.len(), 12);
        assert!(batch.iter().all(Problem::verify_answer));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_problems_always_verify(seed in 0u64..5000, kind_idx in 0usize..5) {
            let dataset = DatasetKind::ALL[kind_idx];
            let mut r = rng(seed);
            let p = ProblemGenerator::new(dataset).generate(&mut r);
            prop_assert!(p.verify_answer());
            prop_assert_eq!(p.context.len(), 8);
            // Candidates are pairwise structurally valid panels.
            for c in &p.candidates {
                for (v, card) in c.values().iter().zip(crate::panel::ATTRIBUTE_CARDINALITIES) {
                    prop_assert!(*v < card);
                }
            }
        }
    }
}
