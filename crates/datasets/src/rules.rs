//! Row-governing rules (RAVEN / PGM rule types).

use crate::panel::{Attribute, AttributeVocab, Panel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The rule families used by RAVEN and PGM (Tab. VII's second half lists Constant,
/// Progression, XOR, AND, OR, Arithmetic, Distribution as the evaluated rule types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// The attribute value is identical across the row.
    Constant,
    /// The attribute increases by a fixed step along the row (modulo its cardinality).
    Progression,
    /// Third panel's value is (first + second) modulo the cardinality.
    Arithmetic,
    /// The three values of the row are a permutation of a fixed value triple
    /// ("distribute three" in RAVEN, "distribution" in PGM).
    DistributeThree,
    /// Third value is the bitwise XOR of the first two (PGM logical rule).
    Xor,
    /// Third value is the bitwise AND of the first two (PGM logical rule).
    And,
    /// Third value is the bitwise OR of the first two (PGM logical rule).
    Or,
}

impl RuleKind {
    /// Rule kinds used when generating RAVEN / I-RAVEN problems.
    pub const RAVEN: [RuleKind; 4] = [
        RuleKind::Constant,
        RuleKind::Progression,
        RuleKind::Arithmetic,
        RuleKind::DistributeThree,
    ];

    /// Rule kinds used when generating PGM-style problems (adds the logical rules).
    pub const PGM: [RuleKind; 7] = [
        RuleKind::Constant,
        RuleKind::Progression,
        RuleKind::Arithmetic,
        RuleKind::DistributeThree,
        RuleKind::Xor,
        RuleKind::And,
        RuleKind::Or,
    ];
}

impl fmt::Display for RuleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RuleKind::Constant => "Constant",
            RuleKind::Progression => "Progression",
            RuleKind::Arithmetic => "Arithmetic",
            RuleKind::DistributeThree => "Distribute-Three",
            RuleKind::Xor => "XOR",
            RuleKind::And => "AND",
            RuleKind::Or => "OR",
        };
        write!(f, "{name}")
    }
}

/// A rule bound to one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rule {
    /// Which attribute the rule governs.
    pub attribute: Attribute,
    /// The rule family.
    pub kind: RuleKind,
    /// Family-specific parameter: step for Progression, the value triple's seed for
    /// DistributeThree, unused otherwise.
    pub parameter: usize,
}

impl Rule {
    /// Samples a random rule of the given kind for an attribute.
    pub fn random<R: Rng + ?Sized>(attribute: Attribute, kind: RuleKind, rng: &mut R) -> Self {
        Self::random_with(attribute, kind, AttributeVocab::raven(), rng)
    }

    /// [`Rule::random`] drawing family parameters from a configurable vocabulary
    /// (the Distribute-Three triple seed ranges over the vocab's cardinality).
    /// The draw pattern matches [`Rule::random`], so with the RAVEN vocab the rng
    /// stream and resulting rule are identical.
    pub fn random_with<R: Rng + ?Sized>(
        attribute: Attribute,
        kind: RuleKind,
        vocab: AttributeVocab,
        rng: &mut R,
    ) -> Self {
        let parameter = match kind {
            RuleKind::Progression => 1 + rng.gen_range(0..2usize), // step 1 or 2
            RuleKind::DistributeThree => rng.gen_range(0..vocab.cardinality(attribute)),
            _ => 0,
        };
        Self {
            attribute,
            kind,
            parameter,
        }
    }

    /// The value triple `(v0, v1, v2)` this rule produces for one row, given the first
    /// two values (which the generator may choose freely for most rules).
    pub fn complete_row(&self, v0: usize, v1: usize) -> (usize, usize, usize) {
        self.complete_row_with(AttributeVocab::raven(), v0, v1)
    }

    /// [`Rule::complete_row`] with values taken modulo a configurable vocabulary's
    /// cardinality for this rule's attribute.
    pub fn complete_row_with(
        &self,
        vocab: AttributeVocab,
        v0: usize,
        v1: usize,
    ) -> (usize, usize, usize) {
        let card = vocab.cardinality(self.attribute);
        match self.kind {
            RuleKind::Constant => (v0, v0, v0),
            RuleKind::Progression => {
                let step = self.parameter.max(1);
                (v0, (v0 + step) % card, (v0 + 2 * step) % card)
            }
            RuleKind::Arithmetic => (v0, v1, (v0 + v1) % card),
            RuleKind::DistributeThree => {
                // The triple is {p, p+1, p+2} (mod card), rotated so each row is a
                // different permutation; v0 selects the rotation.
                let p = self.parameter;
                let triple = [p % card, (p + 1) % card, (p + 2) % card];
                let r = v0 % 3;
                (triple[r], triple[(r + 1) % 3], triple[(r + 2) % 3])
            }
            RuleKind::Xor => (v0, v1, (v0 ^ v1) % card),
            RuleKind::And => (v0, v1, (v0 & v1) % card),
            RuleKind::Or => (v0, v1, (v0 | v1) % card),
        }
    }

    /// The unique third value that completes a row whose first two panels carry the
    /// values `v0` and `v1`.
    ///
    /// Unlike [`Rule::complete_row`] (which *generates* a row and may reinterpret `v0`
    /// as a free parameter, e.g. the rotation of a Distribute-Three triple), this takes
    /// `v0`/`v1` as the actual observed panel values — it is what a reasoner uses to
    /// execute an abduced rule.
    pub fn third_value(&self, v0: usize, v1: usize) -> usize {
        self.third_value_with(AttributeVocab::raven(), v0, v1)
    }

    /// [`Rule::third_value`] with arithmetic taken modulo a configurable
    /// vocabulary's cardinality for this rule's attribute.
    pub fn third_value_with(&self, vocab: AttributeVocab, v0: usize, v1: usize) -> usize {
        let card = vocab.cardinality(self.attribute);
        match self.kind {
            RuleKind::Constant => v0,
            RuleKind::Progression => (v0 + 2 * self.parameter.max(1)) % card,
            RuleKind::Arithmetic => (v0 + v1) % card,
            RuleKind::DistributeThree => {
                let p = self.parameter;
                let triple = [p % card, (p + 1) % card, (p + 2) % card];
                triple
                    .into_iter()
                    .find(|v| *v != v0 && *v != v1)
                    .unwrap_or(triple[0])
            }
            RuleKind::Xor => (v0 ^ v1) % card,
            RuleKind::And => (v0 & v1) % card,
            RuleKind::Or => (v0 | v1) % card,
        }
    }

    /// Whether a value triple satisfies this rule.
    pub fn satisfied(&self, v0: usize, v1: usize, v2: usize) -> bool {
        self.satisfied_with(AttributeVocab::raven(), v0, v1, v2)
    }

    /// [`Rule::satisfied`] with arithmetic taken modulo a configurable
    /// vocabulary's cardinality for this rule's attribute.
    pub fn satisfied_with(&self, vocab: AttributeVocab, v0: usize, v1: usize, v2: usize) -> bool {
        let card = vocab.cardinality(self.attribute);
        match self.kind {
            RuleKind::Constant => v0 == v1 && v1 == v2,
            RuleKind::Progression => {
                let step = self.parameter.max(1);
                v1 == (v0 + step) % card && v2 == (v1 + step) % card
            }
            RuleKind::Arithmetic => v2 == (v0 + v1) % card,
            RuleKind::DistributeThree => {
                let p = self.parameter;
                let mut expected = [p % card, (p + 1) % card, (p + 2) % card];
                let mut actual = [v0, v1, v2];
                expected.sort_unstable();
                actual.sort_unstable();
                expected == actual
            }
            RuleKind::Xor => v2 == (v0 ^ v1) % card,
            RuleKind::And => v2 == (v0 & v1) % card,
            RuleKind::Or => v2 == (v0 | v1) % card,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.kind, self.attribute)
    }
}

/// One rule per attribute — the hidden structure of a reasoning problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Samples one random rule per attribute from the given rule-kind pool.
    pub fn random<R: Rng + ?Sized>(pool: &[RuleKind], rng: &mut R) -> Self {
        Self::random_with(pool, AttributeVocab::raven(), rng)
    }

    /// [`RuleSet::random`] drawing rule parameters from a configurable vocabulary.
    pub fn random_with<R: Rng + ?Sized>(
        pool: &[RuleKind],
        vocab: AttributeVocab,
        rng: &mut R,
    ) -> Self {
        let rules = Attribute::ALL
            .iter()
            .map(|&attr| {
                let kind = pool[rng.gen_range(0..pool.len())];
                Rule::random_with(attr, kind, vocab, rng)
            })
            .collect();
        Self { rules }
    }

    /// The per-attribute rules in [`Attribute::ALL`] order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule governing one attribute.
    pub fn rule_for(&self, attribute: Attribute) -> Rule {
        self.rules[attribute.index()]
    }

    /// Generates one complete row of three panels consistent with every rule.
    pub fn generate_row<R: Rng + ?Sized>(&self, rng: &mut R) -> [Panel; 3] {
        self.generate_row_with(AttributeVocab::raven(), rng)
    }

    /// [`RuleSet::generate_row`] drawing free panel values from a configurable
    /// vocabulary. The per-rule draw pattern (two `gen_range` calls) matches
    /// [`RuleSet::generate_row`], so with the RAVEN vocab the rng stream and
    /// generated row are identical.
    pub fn generate_row_with<R: Rng + ?Sized>(
        &self,
        vocab: AttributeVocab,
        rng: &mut R,
    ) -> [Panel; 3] {
        let mut row = [[0usize; 5]; 3];
        for rule in &self.rules {
            let card = vocab.cardinality(rule.attribute);
            let v0 = rng.gen_range(0..card);
            let v1 = rng.gen_range(0..card);
            let (a, b, c) = rule.complete_row_with(vocab, v0, v1);
            row[0][rule.attribute.index()] = a;
            row[1][rule.attribute.index()] = b;
            row[2][rule.attribute.index()] = c;
        }
        // Values from an enlarged vocab exceed `Panel::new`'s RAVEN bounds check.
        [
            Panel::new_unchecked(row[0]),
            Panel::new_unchecked(row[1]),
            Panel::new_unchecked(row[2]),
        ]
    }

    /// Completes a row's third panel given its first two panels.
    pub fn complete(&self, first: &Panel, second: &Panel) -> Panel {
        self.complete_with(AttributeVocab::raven(), first, second)
    }

    /// [`RuleSet::complete`] with rule arithmetic over a configurable vocabulary.
    pub fn complete_with(&self, vocab: AttributeVocab, first: &Panel, second: &Panel) -> Panel {
        let mut values = [0usize; 5];
        for rule in &self.rules {
            let v0 = first.value(rule.attribute);
            let v1 = second.value(rule.attribute);
            values[rule.attribute.index()] = rule.third_value_with(vocab, v0, v1);
        }
        Panel::new_unchecked(values)
    }

    /// Whether a full row satisfies every rule.
    pub fn row_satisfied(&self, row: &[Panel; 3]) -> bool {
        self.row_satisfied_with(AttributeVocab::raven(), row)
    }

    /// [`RuleSet::row_satisfied`] with rule arithmetic over a configurable vocabulary.
    pub fn row_satisfied_with(&self, vocab: AttributeVocab, row: &[Panel; 3]) -> bool {
        self.rules.iter().all(|rule| {
            rule.satisfied_with(
                vocab,
                row[0].value(rule.attribute),
                row[1].value(rule.attribute),
                row[2].value(rule.attribute),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rule_kind_pools() {
        assert_eq!(RuleKind::RAVEN.len(), 4);
        assert_eq!(RuleKind::PGM.len(), 7);
        assert!(RuleKind::PGM.contains(&RuleKind::Xor));
        assert!(!RuleKind::RAVEN.contains(&RuleKind::Xor));
        assert_eq!(RuleKind::DistributeThree.to_string(), "Distribute-Three");
    }

    #[test]
    fn each_rule_kind_generates_satisfying_rows() {
        let mut r = rng(10);
        for kind in RuleKind::PGM {
            for _ in 0..20 {
                let rule = Rule::random(Attribute::Color, kind, &mut r);
                let v0 = r.gen_range(0..10);
                let v1 = r.gen_range(0..10);
                let (a, b, c) = rule.complete_row(v0, v1);
                assert!(
                    rule.satisfied(a, b, c),
                    "kind {kind}: ({a},{b},{c}) does not satisfy {rule}"
                );
            }
        }
    }

    #[test]
    fn constant_and_progression_specifics() {
        let constant = Rule {
            attribute: Attribute::Size,
            kind: RuleKind::Constant,
            parameter: 0,
        };
        assert_eq!(constant.complete_row(3, 5), (3, 3, 3));
        assert!(constant.satisfied(2, 2, 2));
        assert!(!constant.satisfied(2, 2, 3));

        let prog = Rule {
            attribute: Attribute::Number,
            kind: RuleKind::Progression,
            parameter: 2,
        };
        assert_eq!(prog.complete_row(7, 0), (7, 0, 2)); // wraps modulo 9
        assert!(prog.satisfied(1, 3, 5));
        assert!(!prog.satisfied(1, 3, 6));
    }

    #[test]
    fn arithmetic_and_logical_rules() {
        let arith = Rule {
            attribute: Attribute::Color,
            kind: RuleKind::Arithmetic,
            parameter: 0,
        };
        assert_eq!(arith.complete_row(6, 7), (6, 7, 3)); // (6+7) mod 10
        let xor = Rule {
            attribute: Attribute::Color,
            kind: RuleKind::Xor,
            parameter: 0,
        };
        assert_eq!(xor.complete_row(6, 3), (6, 3, 5));
        let and = Rule {
            attribute: Attribute::Color,
            kind: RuleKind::And,
            parameter: 0,
        };
        assert_eq!(and.complete_row(6, 3), (6, 3, 2));
        let or = Rule {
            attribute: Attribute::Color,
            kind: RuleKind::Or,
            parameter: 0,
        };
        assert_eq!(or.complete_row(6, 3), (6, 3, 7));
    }

    #[test]
    fn distribute_three_is_a_permutation_of_a_fixed_triple() {
        let rule = Rule {
            attribute: Attribute::Type,
            kind: RuleKind::DistributeThree,
            parameter: 2,
        };
        let (a, b, c) = rule.complete_row(0, 0);
        let mut values = [a, b, c];
        values.sort_unstable();
        assert_eq!(values, [2, 3, 4]);
        assert!(rule.satisfied(4, 2, 3));
        assert!(!rule.satisfied(4, 2, 2));
        // Different rotations for different v0.
        assert_ne!(rule.complete_row(0, 0).0, rule.complete_row(1, 0).0);
    }

    #[test]
    fn ruleset_generates_consistent_rows_and_completions() {
        let mut r = rng(11);
        for seed in 0..20u64 {
            let mut r2 = rng(seed);
            let rules = RuleSet::random(&RuleKind::RAVEN, &mut r2);
            let row = rules.generate_row(&mut r);
            assert!(rules.row_satisfied(&row));
            let completed = rules.complete(&row[0], &row[1]);
            assert_eq!(completed, row[2]);
            assert_eq!(rules.rules().len(), 5);
            assert_eq!(rules.rule_for(Attribute::Color).attribute, Attribute::Color);
        }
    }

    proptest! {
        #[test]
        fn prop_complete_row_always_satisfies(seed in 0u64..300, kind_idx in 0usize..7, v0 in 0usize..10, v1 in 0usize..10) {
            let mut r = rng(seed);
            let kind = RuleKind::PGM[kind_idx];
            let rule = Rule::random(Attribute::Color, kind, &mut r);
            let (a, b, c) = rule.complete_row(v0 % 10, v1 % 10);
            prop_assert!(rule.satisfied(a, b, c));
            prop_assert!(a < 10 && b < 10 && c < 10);
        }

        #[test]
        fn prop_generated_rows_are_in_range(seed in 0u64..200) {
            let mut r = rng(seed);
            let rules = RuleSet::random(&RuleKind::PGM, &mut r);
            let row = rules.generate_row(&mut r);
            prop_assert!(rules.row_satisfied(&row));
        }
    }
}
