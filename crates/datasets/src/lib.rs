//! # cogsys-datasets — synthetic spatial-temporal reasoning task generators
//!
//! The paper evaluates on RAVEN, I-RAVEN, PGM, CVR and SVRT — image datasets for
//! Raven's-Progressive-Matrices-style abstract reasoning. We do not ship those images
//! (and the CogSys symbolic pipeline never consumes pixels anyway: its input is the
//! attribute-structured scene representation produced by the neural frontend). This
//! crate therefore generates *attribute-level* reasoning problems with the same
//! structure: panels described by (position, number, type, size, color) attributes, rows
//! governed by RAVEN/PGM rule types (Constant, Progression, Arithmetic,
//! Distribute-Three and the PGM logical rules XOR/AND/OR), candidate answer panels with
//! RAVEN-style or I-RAVEN-style (attribute-bisection, unbiased) distractors, and a
//! perception-noise model that emulates an imperfect neural frontend.
//!
//! # Example
//!
//! ```rust
//! use cogsys_datasets::{DatasetKind, ProblemGenerator};
//!
//! use rand::SeedableRng;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let generator = ProblemGenerator::new(DatasetKind::Raven);
//! let problem = generator.generate(&mut rng);
//! assert_eq!(problem.context.len(), 8);
//! assert_eq!(problem.candidates.len(), 8);
//! // The labelled answer really does complete every row rule.
//! assert!(problem.verify_answer());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod panel;
pub mod problem;
pub mod rules;

pub use panel::{Attribute, AttributeVocab, Panel, ATTRIBUTE_CARDINALITIES};
pub use problem::{Constellation, DatasetKind, Problem, ProblemGenerator};
pub use rules::{Rule, RuleKind, RuleSet};
