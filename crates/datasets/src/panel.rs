//! Panels and their symbolic attributes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five RAVEN panel attributes the symbolic reasoner operates on.
///
/// Each attribute takes a small number of discrete values; the cardinalities follow the
/// RAVEN dataset definition (position is a 3×3 occupancy pattern index, number is 1–9,
/// type is one of 5 shapes, size one of 6, color one of 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// Spatial arrangement of the objects inside the panel.
    Position,
    /// Number of objects.
    Number,
    /// Object shape type.
    Type,
    /// Object size.
    Size,
    /// Object color / shade.
    Color,
}

impl Attribute {
    /// All attributes in canonical order.
    pub const ALL: [Attribute; 5] = [
        Attribute::Position,
        Attribute::Number,
        Attribute::Type,
        Attribute::Size,
        Attribute::Color,
    ];

    /// Index of this attribute in [`Attribute::ALL`].
    pub fn index(self) -> usize {
        match self {
            Attribute::Position => 0,
            Attribute::Number => 1,
            Attribute::Type => 2,
            Attribute::Size => 3,
            Attribute::Color => 4,
        }
    }

    /// Number of discrete values this attribute can take.
    pub fn cardinality(self) -> usize {
        ATTRIBUTE_CARDINALITIES[self.index()]
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Attribute::Position => "position",
            Attribute::Number => "number",
            Attribute::Type => "type",
            Attribute::Size => "size",
            Attribute::Color => "color",
        };
        write!(f, "{name}")
    }
}

/// Cardinality of each attribute, in [`Attribute::ALL`] order
/// (position, number, type, size, color).
pub const ATTRIBUTE_CARDINALITIES: [usize; 5] = [9, 9, 5, 6, 10];

/// Configurable per-attribute vocabulary sizes.
///
/// The RAVEN cardinalities ([`ATTRIBUTE_CARDINALITIES`]) cap attribute codebooks at
/// 10 rows; production-scale item memories need 10^4+-row vocabularies to exercise
/// the sub-linear cleanup index end to end. An `AttributeVocab` scales every
/// attribute's value range **upward** (each cardinality stays at least the RAVEN
/// base, so every RAVEN-range panel remains well-formed under any vocab) and is
/// threaded through the generators (`Panel::random_with`, `RuleSet::random_with`,
/// `ProblemGenerator::with_vocab`) and the solver's codebook sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AttributeVocab {
    cards: [usize; 5],
}

impl Default for AttributeVocab {
    fn default() -> Self {
        Self::raven()
    }
}

impl AttributeVocab {
    /// The standard RAVEN vocabulary ([`ATTRIBUTE_CARDINALITIES`]).
    pub fn raven() -> Self {
        Self {
            cards: ATTRIBUTE_CARDINALITIES,
        }
    }

    /// A vocabulary with explicit per-attribute cardinalities.
    ///
    /// # Panics
    /// Panics when any cardinality is below its RAVEN base — vocabularies only
    /// extend the value ranges, so RAVEN-range panels stay well-formed everywhere.
    pub fn new(cards: [usize; 5]) -> Self {
        for (c, base) in cards.iter().zip(ATTRIBUTE_CARDINALITIES) {
            assert!(
                *c >= base,
                "vocab cardinality {c} below the RAVEN base {base}"
            );
        }
        Self { cards }
    }

    /// A vocabulary where every attribute has `card` values (clamped up to each
    /// attribute's RAVEN base) — the one-knob way to scale codebooks to 10^4+ rows.
    pub fn uniform(card: usize) -> Self {
        let mut cards = ATTRIBUTE_CARDINALITIES;
        for c in &mut cards {
            *c = card.max(*c);
        }
        Self { cards }
    }

    /// Number of discrete values `attribute` can take under this vocabulary.
    pub fn cardinality(&self, attribute: Attribute) -> usize {
        self.cards[attribute.index()]
    }

    /// All five cardinalities in [`Attribute::ALL`] order.
    pub fn cardinalities(&self) -> [usize; 5] {
        self.cards
    }

    /// Returns `true` when this is exactly the RAVEN vocabulary.
    pub fn is_raven(&self) -> bool {
        self.cards == ATTRIBUTE_CARDINALITIES
    }

    /// The largest per-attribute cardinality (the codebook row count that dominates
    /// cleanup cost).
    pub fn max_cardinality(&self) -> usize {
        self.cards.iter().copied().max().unwrap_or(0)
    }
}

/// One panel of a reasoning problem, described purely by its attribute values.
///
/// `values[i]` is the value of `Attribute::ALL[i]`, in `0..cardinality`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Panel {
    values: [usize; 5],
}

impl Panel {
    /// Creates a panel from explicit attribute values.
    ///
    /// # Panics
    /// Panics if any value exceeds its attribute's cardinality — panels are constructed
    /// by generators and rules, so an out-of-range value is a bug.
    pub fn new(values: [usize; 5]) -> Self {
        for (v, c) in values.iter().zip(ATTRIBUTE_CARDINALITIES) {
            assert!(*v < c, "attribute value {v} out of range (cardinality {c})");
        }
        Self { values }
    }

    /// Creates a panel **without** validating attribute ranges.
    ///
    /// Exists for fault injection and robustness testing: the solver's
    /// engine-boundary validation must reject out-of-range values with a typed
    /// error, which requires being able to construct them in the first place
    /// (see `ProblemGenerator::generate_malformed` and the `cogsys-serve` chaos
    /// harness). Production generators and rules use [`Panel::new`].
    pub fn new_unchecked(values: [usize; 5]) -> Self {
        Self { values }
    }

    /// Returns `true` when every attribute value is inside its cardinality — the
    /// invariant [`Panel::new`] enforces and [`Panel::new_unchecked`] deliberately
    /// does not.
    pub fn is_well_formed(&self) -> bool {
        self.is_well_formed_with(AttributeVocab::raven())
    }

    /// [`Panel::is_well_formed`] against a configurable vocabulary.
    pub fn is_well_formed_with(&self, vocab: AttributeVocab) -> bool {
        self.values
            .iter()
            .zip(vocab.cardinalities())
            .all(|(v, c)| *v < c)
    }

    /// Samples a uniformly random panel.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::random_with(AttributeVocab::raven(), rng)
    }

    /// [`Panel::random`] over a configurable vocabulary.
    pub fn random_with<R: Rng + ?Sized>(vocab: AttributeVocab, rng: &mut R) -> Self {
        let mut values = [0usize; 5];
        for (v, c) in values.iter_mut().zip(vocab.cardinalities()) {
            *v = rng.gen_range(0..c);
        }
        Self { values }
    }

    /// Value of one attribute.
    pub fn value(&self, attribute: Attribute) -> usize {
        self.values[attribute.index()]
    }

    /// Returns a copy with one attribute replaced (wrapped into range).
    pub fn with_value(&self, attribute: Attribute, value: usize) -> Self {
        self.with_value_with(AttributeVocab::raven(), attribute, value)
    }

    /// [`Panel::with_value`] wrapping into a configurable vocabulary's range.
    pub fn with_value_with(
        &self,
        vocab: AttributeVocab,
        attribute: Attribute,
        value: usize,
    ) -> Self {
        let mut values = self.values;
        values[attribute.index()] = value % vocab.cardinality(attribute);
        Self { values }
    }

    /// All five attribute values in canonical order.
    pub fn values(&self) -> [usize; 5] {
        self.values
    }

    /// Number of attributes on which two panels differ.
    pub fn distance(&self, other: &Panel) -> usize {
        self.values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Applies perception noise: each attribute is independently replaced by a random
    /// value with probability `p`, emulating neural-frontend errors.
    pub fn perturbed<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Self {
        self.perturbed_with(AttributeVocab::raven(), p, rng)
    }

    /// [`Panel::perturbed`] drawing replacement values from a configurable
    /// vocabulary. The draw pattern (one `gen_bool` per attribute, one `gen_range`
    /// per flip) is identical to [`Panel::perturbed`], so with the RAVEN vocab the
    /// rng stream and results match exactly.
    pub fn perturbed_with<R: Rng + ?Sized>(
        &self,
        vocab: AttributeVocab,
        p: f64,
        rng: &mut R,
    ) -> Self {
        let mut values = self.values;
        for (i, c) in vocab.cardinalities().iter().enumerate() {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                values[i] = rng.gen_range(0..*c);
            }
        }
        Self { values }
    }
}

impl fmt::Display for Panel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Panel(pos={}, num={}, type={}, size={}, color={})",
            self.values[0], self.values[1], self.values[2], self.values[3], self.values[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn attribute_metadata() {
        assert_eq!(Attribute::ALL.len(), 5);
        assert_eq!(Attribute::Color.cardinality(), 10);
        assert_eq!(Attribute::Type.index(), 2);
        assert_eq!(Attribute::Position.to_string(), "position");
        let total: usize = ATTRIBUTE_CARDINALITIES.iter().product();
        // The full product space — what a product codebook would have to store.
        assert_eq!(total, 9 * 9 * 5 * 6 * 10);
    }

    #[test]
    fn panel_accessors_and_mutation() {
        let p = Panel::new([1, 2, 3, 4, 5]);
        assert_eq!(p.value(Attribute::Position), 1);
        assert_eq!(p.value(Attribute::Color), 5);
        assert_eq!(p.values(), [1, 2, 3, 4, 5]);
        let q = p.with_value(Attribute::Color, 7);
        assert_eq!(q.value(Attribute::Color), 7);
        assert_eq!(p.distance(&q), 1);
        assert_eq!(p.distance(&p), 0);
        // with_value wraps out-of-range inputs.
        assert_eq!(
            p.with_value(Attribute::Type, 12).value(Attribute::Type),
            12 % 5
        );
        assert!(p.to_string().contains("color=5"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panel_panics() {
        let _ = Panel::new([0, 0, 9, 0, 0]);
    }

    #[test]
    fn perturbation_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = Panel::new([0, 1, 2, 3, 4]);
        assert_eq!(p.perturbed(0.0, &mut rng), p);
        // With p=1 every attribute is resampled; it may coincide by chance but over many
        // attributes at least one should change.
        let q = p.perturbed(1.0, &mut rng);
        assert!(q
            .values()
            .iter()
            .zip(ATTRIBUTE_CARDINALITIES)
            .all(|(v, c)| *v < c));
    }

    proptest! {
        #[test]
        fn prop_random_panels_are_in_range(seed in 0u64..1000) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let p = Panel::random(&mut rng);
            for (v, c) in p.values().iter().zip(ATTRIBUTE_CARDINALITIES) {
                prop_assert!(*v < c);
            }
        }

        #[test]
        fn prop_distance_is_symmetric_and_bounded(seed in 0u64..500) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Panel::random(&mut rng);
            let b = Panel::random(&mut rng);
            prop_assert_eq!(a.distance(&b), b.distance(&a));
            prop_assert!(a.distance(&b) <= 5);
        }
    }
}
