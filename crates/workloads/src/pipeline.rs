//! Functional neurosymbolic abduction pipeline (the accuracy side of the evaluation).
//!
//! This is an NVSA-style reasoner over the synthetic RPM problems of `cogsys-datasets`:
//!
//! 1. **Perception** — each context panel's attribute tuple (optionally corrupted by
//!    perception noise) is encoded as a product hypervector by binding one codevector
//!    per attribute (the role the CNN frontend plays in NVSA).
//! 2. **Factorization** — the CogSys factorizer decomposes each panel hypervector back
//!    into per-attribute codevector indices (Sec. IV).
//! 3. **Rule abduction** — for every attribute, the rule consistent with the two
//!    complete rows is abduced.
//! 4. **Execution** — the abduced rules predict the missing panel's attributes.
//! 5. **Answer selection** — the candidate whose encoding is most similar to the
//!    prediction is chosen.
//!
//! Reported accuracy feeds Tab. VII (per-constellation factorization accuracy) and
//! Tab. VIII (end-to-end reasoning accuracy under factorization, stochasticity and
//! quantization).

use crate::error::{ProblemFault, SolveError};
use crate::plan::{PlanCache, PlanCacheStats, PlanKey, PlanStage, SolvePlan, NOMINAL_CANDIDATES};
use cogsys_datasets::{Attribute, AttributeVocab, DatasetKind, Panel, Problem, RuleKind};
use cogsys_factorizer::{Factorizer, FactorizerConfig, FactorizerScratch};
use cogsys_vsa::batch::{BackendKind, HvMatrix, VsaBackend};
use cogsys_vsa::codebook::{BindingOp, CleanupRoute, CodebookSet};
use cogsys_vsa::packed::{BitMatrix, FusionMode, WordSpec};
use cogsys_vsa::quant::fake_quantize_slice;
use cogsys_vsa::{ops, Hypervector, Precision, VsaError, VsaKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the functional reasoner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Hypervector dimensionality.
    pub vector_dim: usize,
    /// Factorizer settings (stochasticity, iteration budget, precision).
    pub factorizer: FactorizerConfig,
    /// Probability that the emulated neural frontend mis-reads an attribute.
    pub perception_noise: f64,
    /// Bit-flip noise applied to the encoded scene hypervector (emulating an imperfect
    /// neural-to-symbolic interface).
    pub encoding_noise: f64,
    /// Arithmetic precision of the encoding / similarity stages.
    pub precision: Precision,
    /// Batched execution backend used for encoding, factorization and answer scoring.
    pub backend: BackendKind,
    /// Attribute vocabulary the solver's codebooks cover. Defaults to the RAVEN
    /// cardinalities; enlarged vocabularies (e.g. [`AttributeVocab::uniform`] with
    /// 10^4+ values) scale the per-attribute codebooks into the regime where the
    /// packed backend's pruned cleanup index takes over answer decoding.
    #[serde(default)]
    pub vocab: AttributeVocab,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            // NVSA uses d = 1024 per block; the solver defaults to 2048 so that the
            // five-factor attribute factorization has comfortable headroom (the
            // quasi-orthogonality noise between random codevectors scales as 1/sqrt(d)).
            vector_dim: 2048,
            factorizer: FactorizerConfig::default(),
            perception_noise: 0.0,
            encoding_noise: 0.005,
            precision: Precision::Fp32,
            backend: BackendKind::default(),
            vocab: AttributeVocab::raven(),
        }
    }
}

impl SolverConfig {
    /// Returns a copy running the whole pipeline at the given precision.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self.factorizer = self.factorizer.with_precision(precision);
        self
    }

    /// Returns a copy running the whole pipeline (encoding, factorization, answer
    /// scoring) on the given execution backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self.factorizer = self.factorizer.with_backend(backend);
        self
    }
}

/// Aggregate results of solving a batch of problems.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SolverReport {
    /// Problems attempted.
    pub problems: usize,
    /// Problems answered correctly.
    pub correct: usize,
    /// Panels whose full attribute tuple was factorized exactly.
    pub panels_exact: usize,
    /// Panels factorized in total.
    pub panels_total: usize,
    /// Total factorizer iterations (for the convergence-speed comparison).
    pub factorizer_iterations: usize,
}

impl SolverReport {
    /// End-to-end reasoning accuracy in `[0, 1]`.
    pub fn accuracy(&self) -> f64 {
        if self.problems == 0 {
            return 0.0;
        }
        self.correct as f64 / self.problems as f64
    }

    /// Factorization (attribute-extraction) accuracy in `[0, 1]` — the quantity of
    /// Tab. VII.
    pub fn factorization_accuracy(&self) -> f64 {
        if self.panels_total == 0 {
            return 0.0;
        }
        self.panels_exact as f64 / self.panels_total as f64
    }

    /// Merges another report into this one.
    pub fn merge(&mut self, other: &SolverReport) {
        self.problems += other.problems;
        self.correct += other.correct;
        self.panels_exact += other.panels_exact;
        self.panels_total += other.panels_total;
        self.factorizer_iterations += other.factorizer_iterations;
    }
}

/// Wall-clock nanoseconds spent in each fused stage group of a planned solve call
/// ([`NeurosymbolicSolver::solve_batch_with_plan_timed`]), accumulated across the
/// call's chunks. The three groups mirror the [`crate::plan::PlanStage`] IR at the
/// granularity `cogsys-serve`'s per-stage `ServiceModel` fit consumes: encode
/// (rng buffering + scene encode), decode (per-block resonate + polish), score
/// (rule prediction + answer selection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageNanos {
    /// Phases 1–2: per-problem rng draw buffering and the batched scene encode.
    pub encode: u64,
    /// Phase 3: per-block factorization and the coordinate-descent polish sweep.
    pub decode: u64,
    /// Phases 4–5: rule abduction/prediction and batched answer selection.
    pub score: u64,
}

impl StageNanos {
    /// Total nanoseconds across the three stage groups.
    pub fn total(&self) -> u64 {
        self.encode + self.decode + self.score
    }
}

/// Scratch of the batched panel-encoding stage.
#[derive(Debug, Default)]
struct EncodeScratch {
    idx: Vec<usize>,
    product: HvMatrix,
    operand: HvMatrix,
    tmp: HvMatrix,
    /// Second block's sign plane on the fully packed encode route.
    block_bits: BitMatrix,
}

/// Scratch of the factorize-and-polish stage (one attribute block over a row batch).
#[derive(Debug, Default)]
struct DecodeScratch {
    factorizer: FactorizerScratch,
    /// Decoded per-factor index tuple per row (inner vectors reused).
    tuples: Vec<Vec<usize>>,
    gather_idx: Vec<usize>,
    unbound: HvMatrix,
    tmp: HvMatrix,
    est_dense: Vec<HvMatrix>,
    unbound_bits: BitMatrix,
    est_bits: BitMatrix,
}

/// Reusable scratch of the cross-problem batched solving engine
/// ([`NeurosymbolicSolver::solve_batch_with`]): every matrix, sign plane, stream and
/// bookkeeping vector of the encode → factorize → score pipeline lives here and is
/// reshaped in place, so a steady-state serving loop performs no allocation beyond
/// the factorizer's per-row result tuples.
///
/// The scratch carries no decision state between calls — a fresh scratch produces
/// bitwise-identical answers, which is exactly what the plain
/// [`NeurosymbolicSolver::solve_batch`] entry point does.
#[derive(Debug, Default)]
pub struct SolverScratch {
    encode: EncodeScratch,
    decode: DecodeScratch,
    /// Per-query factorizer noise streams of the block currently being decoded.
    streams: Vec<StdRng>,
    perceived: Vec<Panel>,
    /// Recorded interface bit-flip positions as `(global row, dimension)`.
    flips: Vec<(u32, u32)>,
    /// Factorizer stream seeds, drawn per problem in sequential order; problem `q`
    /// occupies `seed_base[q] ..` with its blocks consecutive (rows inner).
    seeds: Vec<u64>,
    row_base: Vec<usize>,
    seed_base: Vec<usize>,
    encoded: HvMatrix,
    encoded_bits: BitMatrix,
    values: Vec<[usize; 5]>,
    decoded: Vec<Panel>,
    predicted: Vec<Panel>,
    cand_panels: Vec<Panel>,
    cand_base: Vec<usize>,
    pred_hv: HvMatrix,
    cand_hv: HvMatrix,
    pred_bits: BitMatrix,
    cand_bits: BitMatrix,
    choices: Vec<usize>,
}

impl SolverScratch {
    /// The candidate index chosen for each problem of the last
    /// [`NeurosymbolicSolver::solve_batch_with`] call, in problem order.
    pub fn choices(&self) -> &[usize] {
        &self.choices
    }

    /// Capacities of every factorizer scratch buffer (see
    /// [`FactorizerScratch::packed_capacity_fingerprint`]) — the regression hook
    /// asserting a pre-sized serving loop reallocates nothing across a chunked
    /// stream.
    pub fn factorizer_capacity_fingerprint(&self) -> Vec<usize> {
        self.decode.factorizer.packed_capacity_fingerprint()
    }
}

/// The end-to-end neurosymbolic reasoner.
///
/// Scene encoding follows NVSA's block structure: the five attributes are split into
/// two bound blocks — (position ⊙ number ⊙ type) and (size ⊙ color) — whose product
/// vectors are superposed (bundled) into a single scene hypervector. Decoding runs the
/// CogSys iterative factorizer on each block. Splitting keeps every factorization
/// problem well inside the resonator's operational capacity while still exercising the
/// paper's factorization machinery end to end.
#[derive(Debug, Clone)]
pub struct NeurosymbolicSolver {
    config: SolverConfig,
    codebooks: CodebookSet,
    blocks: Vec<(CodebookSet, Vec<usize>)>,
    factorizer: Factorizer,
    backend: Arc<dyn VsaBackend>,
    /// Compiled [`SolvePlan`]s by workload shape. Cloning the solver yields a fresh,
    /// empty cache (plans capture per-instance codebook state such as cleanup
    /// indexes), so the derived `Clone` stays correct.
    plans: PlanCache,
}

impl NeurosymbolicSolver {
    /// Attribute indices of the two encoding blocks (into [`Attribute::ALL`]).
    const BLOCKS: [&'static [usize]; 2] = [&[0, 1, 2], &[3, 4]];

    /// Convergence threshold for factorizing one block out of a `blocks`-way scene
    /// superposition.
    ///
    /// The scene is the *sign-thresholded* superposition of the block products, so a
    /// correctly decoded block plateaus well below cosine 1 against it (≈ 0.5 for two
    /// blocks: the other block halves the sign agreement and ties break to +1; more
    /// blocks push the plateau towards `sqrt(2/(π·blocks))`). A flat single-product
    /// threshold like 0.9 is therefore unreachable and every panel would burn the whole
    /// iteration budget. `0.6/sqrt(blocks)` tracks the plateau from below — safely
    /// under it, and far above the ≈ 0 cosine of a wrong tuple.
    pub fn block_convergence_threshold(blocks: usize) -> f32 {
        0.6 / (blocks.max(1) as f32).sqrt()
    }

    /// Creates a solver, generating one attribute codebook per RAVEN attribute.
    ///
    /// # Panics
    /// Panics on an invalid configuration. Serving layers use the non-panicking
    /// [`NeurosymbolicSolver::try_new`] instead.
    pub fn new<R: Rng + ?Sized>(config: SolverConfig, rng: &mut R) -> Self {
        match Self::try_new(config, rng) {
            Ok(solver) => solver,
            Err(e) => panic!("invalid solver configuration: {e}"),
        }
    }

    /// Non-panicking [`NeurosymbolicSolver::new`]: validates the configuration
    /// (dimensionality, noise probabilities, factorizer settings) and propagates
    /// codebook-construction failures as typed errors instead of panicking.
    ///
    /// # Errors
    /// Returns [`SolveError::Config`] for an invalid configuration and
    /// [`SolveError::Vsa`] when codebook construction fails.
    pub fn try_new<R: Rng + ?Sized>(config: SolverConfig, rng: &mut R) -> Result<Self, SolveError> {
        if config.vector_dim == 0 {
            return Err(SolveError::Config {
                message: "vector_dim must be > 0".to_string(),
            });
        }
        for (name, p) in [
            ("perception_noise", config.perception_noise),
            ("encoding_noise", config.encoding_noise),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(SolveError::Config {
                    message: format!("{name} must be a probability in [0, 1], got {p}"),
                });
            }
        }
        config
            .factorizer
            .validate()
            .map_err(|message| SolveError::Config { message })?;
        let attribute_codebooks: Vec<_> = Attribute::ALL
            .iter()
            .map(|a| {
                cogsys_vsa::Codebook::random(
                    a.to_string(),
                    config.vocab.cardinality(*a),
                    config.vector_dim,
                    rng,
                )
            })
            .collect();
        let codebooks = CodebookSet::new(attribute_codebooks.clone(), BindingOp::Hadamard)?;
        let blocks = Self::BLOCKS
            .iter()
            .map(|attrs| {
                let members = attrs
                    .iter()
                    .map(|&i| attribute_codebooks[i].clone())
                    .collect();
                let set = CodebookSet::new(members, BindingOp::Hadamard)?;
                Ok((set, attrs.to_vec()))
            })
            .collect::<Result<Vec<_>, VsaError>>()?;
        // One shared backend instance serves both the solver's own batch kernels and
        // the factorizer (sharing the FFT-plan cache when the backend is parallel).
        let backend = config.backend.create();
        // The factorizer decodes *blocks* of the scene superposition, so it runs with
        // the per-block convergence threshold; min() keeps a deliberately lower
        // configured threshold in charge, it never tightens past the block plateau.
        let block_threshold = Self::block_convergence_threshold(Self::BLOCKS.len())
            .min(config.factorizer.convergence_threshold);
        let factorizer_config = FactorizerConfig {
            convergence_threshold: block_threshold,
            ..config.factorizer.clone()
        }
        .with_backend(config.backend);
        let factorizer = Factorizer::with_backend(factorizer_config, Arc::clone(&backend));
        Ok(Self {
            config,
            codebooks,
            blocks,
            factorizer,
            backend,
            plans: PlanCache::default(),
        })
    }

    /// Returns a copy of this solver whose factorizer runs with a reduced iteration
    /// budget, **sharing the exact same codebooks** — so its decisions differ from
    /// the original only where the smaller budget changes factorization outcomes.
    ///
    /// This is the degradation knob of the `cogsys-serve` ladder: level 2 steps the
    /// budget down, level 3 runs a coarse single pass (`max_iterations == 1`, i.e.
    /// one resonator step plus the coordinate-descent polish sweep).
    pub fn with_iteration_cap(&self, max_iterations: usize) -> Self {
        let mut degraded = self.clone();
        degraded.config.factorizer.max_iterations = max_iterations.max(1);
        let block_threshold = Self::block_convergence_threshold(Self::BLOCKS.len())
            .min(degraded.config.factorizer.convergence_threshold);
        let factorizer_config = FactorizerConfig {
            convergence_threshold: block_threshold,
            ..degraded.config.factorizer.clone()
        }
        .with_backend(degraded.config.backend);
        degraded.factorizer =
            Factorizer::with_backend(factorizer_config, Arc::clone(&degraded.backend));
        degraded
    }

    /// Number of context panels every problem must carry (the 3×3 matrix minus the
    /// answer cell).
    pub const CONTEXT_PANELS: usize = 8;

    /// Validates one problem against the engine's input contract: exactly
    /// [`NeurosymbolicSolver::CONTEXT_PANELS`] context panels, a non-empty candidate
    /// set, an in-range answer index, and every attribute value of every panel
    /// (context first, then candidates) inside its attribute's cardinality — the
    /// bound that keeps codebook lookups in range.
    pub fn validate_problem(problem: &Problem) -> Result<(), ProblemFault> {
        Self::validate_problem_with(AttributeVocab::raven(), problem)
    }

    /// [`NeurosymbolicSolver::validate_problem`] against a configurable attribute
    /// vocabulary — the bound a vocab-enlarged solver ([`SolverConfig::vocab`])
    /// checks its inputs against.
    pub fn validate_problem_with(
        vocab: AttributeVocab,
        problem: &Problem,
    ) -> Result<(), ProblemFault> {
        if problem.context.len() != Self::CONTEXT_PANELS {
            return Err(ProblemFault::WrongPanelCount {
                expected: Self::CONTEXT_PANELS,
                got: problem.context.len(),
            });
        }
        if problem.candidates.is_empty() {
            return Err(ProblemFault::NoCandidates);
        }
        if problem.answer_index >= problem.candidates.len() {
            return Err(ProblemFault::AnswerOutOfRange {
                answer: problem.answer_index,
                candidates: problem.candidates.len(),
            });
        }
        for (panel, p) in problem
            .context
            .iter()
            .chain(problem.candidates.iter())
            .enumerate()
        {
            for attr in Attribute::ALL {
                let value = p.value(attr);
                if value >= vocab.cardinality(attr) {
                    return Err(ProblemFault::ValueOutOfRange {
                        panel,
                        attribute: attr.index(),
                        value,
                        cardinality: vocab.cardinality(attr),
                    });
                }
            }
        }
        Ok(())
    }

    /// Validates a batch, reporting the **first** malformed problem by its index in
    /// `problems`. Consumes no rng draws, so rejecting a poisoned batch and
    /// resubmitting it without the offender yields exactly the results the reduced
    /// batch would have produced in the first place.
    fn validate_problems(&self, problems: &[Problem]) -> Result<(), SolveError> {
        for (index, problem) in problems.iter().enumerate() {
            Self::validate_problem_with(self.config.vocab, problem).map_err(|fault| {
                SolveError::Malformed {
                    problem: index,
                    fault,
                }
            })?;
        }
        Ok(())
    }

    /// The solver's configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The attribute codebooks (exposed for memory-footprint accounting).
    pub fn codebooks(&self) -> &CodebookSet {
        &self.codebooks
    }

    /// The batched execution backend this solver runs on.
    pub fn backend(&self) -> &Arc<dyn VsaBackend> {
        &self.backend
    }

    /// Drops every cached cleanup index so packed cleanups fall back to the linear
    /// scan. The index is exact, so decisions are unchanged — this knob exists for
    /// A/B perf comparison and decision-identity regression tests.
    pub fn disable_cleanup_index(&mut self) {
        self.codebooks.clear_cleanup_indexes();
        for (set, _) in &mut self.blocks {
            set.clear_cleanup_indexes();
        }
        // Cached plans captured Indexed cleanup routes that no longer exist; drop
        // them so the next solve compiles against the demoted state.
        self.plans.clear();
    }

    /// The [`PlanKey`] a solve call over `batch` problems resolves to on this solver.
    pub fn plan_key(&self, batch: usize) -> PlanKey {
        PlanKey {
            backend: self.config.backend,
            dim: self.config.vector_dim,
            blocks: self.blocks.len(),
            batch,
            codebook_rows: (0..self.codebooks.num_factors())
                .map(|f| self.codebooks.factor(f).map_or(0, |cb| cb.len()))
                .collect(),
        }
    }

    /// Compiles a [`SolvePlan`] for a `batch`-problem solve call: every routing
    /// decision the executor needs — packed vs dense encode, chunk width, per-factor
    /// cleanup routes, and (when `specialize` is set) the const-generic word-count
    /// kernel specialization — resolved once, up front.
    ///
    /// `specialize = false` compiles the same plan with [`WordSpec::Generic`]
    /// (runtime-length inner loops); the two plans are decision-identical, which is
    /// what makes the specialized-vs-generic bench cells a pure kernel A/B.
    pub fn compile_plan(&self, batch: usize, specialize: bool) -> SolvePlan {
        self.compile_plan_with_fusion(batch, specialize, FusionMode::resolve_env())
    }

    /// [`NeurosymbolicSolver::compile_plan`] with the resonator [`FusionMode`]
    /// forced instead of resolved from the environment (`COGSYS_FUSION`) — the
    /// in-process A/B switch the fused-vs-split bench cells and the
    /// decision-identity tests use. `fusion` only lands on packed resonate
    /// stages; dense blocks always carry [`FusionMode::Split`] (the dense
    /// engine has no fused kernel).
    pub fn compile_plan_with_fusion(
        &self,
        batch: usize,
        specialize: bool,
        fusion: FusionMode,
    ) -> SolvePlan {
        let dim = self.config.vector_dim;
        let packed_route = self.packed_encode_route();
        let pack_dense_bits = !packed_route
            && self
                .blocks
                .iter()
                .any(|(set, _)| self.factorizer.packed_pipeline(set));
        // The packed route keeps the whole batch in one pass (sign planes stay
        // cache-resident); the dense engines sub-chunk to DENSE_SERVE_CHUNK.
        let chunk_problems = if packed_route {
            batch.max(1)
        } else {
            Self::DENSE_SERVE_CHUNK
        };
        let have_bits = packed_route || pack_dense_bits;
        let spec = if specialize && have_bits {
            WordSpec::for_dim(dim)
        } else {
            WordSpec::Generic
        };
        let rows = batch * Self::CONTEXT_PANELS;
        let backend = self.backend.as_ref();
        let mut stages = Vec::with_capacity(2 * self.blocks.len() + 3);
        stages.push(PlanStage::Encode {
            rows,
            packed: packed_route,
        });
        for (b, (set, _)) in self.blocks.iter().enumerate() {
            let block_packed = have_bits && self.factorizer.packed_pipeline(set);
            let codebook_rows: Vec<usize> = (0..set.num_factors())
                .map(|f| set.factor(f).map_or(0, |cb| cb.len()))
                .collect();
            stages.push(PlanStage::Resonate {
                block: b,
                rows,
                factors: set.num_factors(),
                codebook_rows,
                packed: block_packed,
                iterations: self.factorizer.config().max_iterations,
                fusion: if block_packed {
                    fusion
                } else {
                    FusionMode::Split
                },
            });
            let routes: Vec<CleanupRoute> = (0..set.num_factors())
                .map(|f| {
                    set.factor(f)
                        .map_or(CleanupRoute::Dense, |cb| cb.cleanup_route(backend))
                })
                .collect();
            stages.push(PlanStage::Polish {
                block: b,
                rows,
                routes,
            });
        }
        stages.push(PlanStage::Predict { problems: batch });
        stages.push(PlanStage::Score {
            problems: batch,
            // Candidate counts are per problem and unknown at compile time; the IR
            // carries the nominal RPM shape (8 candidates + 1 prediction per
            // problem) for scheduling/observability. Not a decision input.
            rows: batch * (NOMINAL_CANDIDATES + 1),
            packed: packed_route,
        });
        SolvePlan {
            key: self.plan_key(batch),
            packed_route,
            pack_dense_bits,
            chunk_problems,
            spec,
            stages,
        }
    }

    /// The cached plan for a `batch`-problem call, compiling (specialized) on first
    /// use. Same shape → same `Arc` — the compile-once/run-many entry the serving
    /// loop and `solve_batch_with` share.
    pub fn plan_for_batch(&self, batch: usize) -> Arc<SolvePlan> {
        let key = self.plan_key(batch);
        self.plans
            .get_or_compile(&key, || self.compile_plan(batch, true))
    }

    /// Hit/miss counters of this solver's plan cache (the `--explain` surface).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Encodes a panel as a scene hypervector (the neural frontend's output): the
    /// superposition of one bound product vector per attribute block.
    ///
    /// # Errors
    /// Propagates [`VsaError`] from the binding operations.
    pub fn encode_panel(&self, panel: &Panel) -> Result<Hypervector, VsaError> {
        let encoded = self.encode_panels(std::slice::from_ref(panel))?;
        encoded.row_hypervector(0, VsaKind::Bipolar)
    }

    /// Batch-encodes a set of panels into one scene hypervector per row (a whole RPM
    /// context in one pass over the bind/bundle kernels).
    ///
    /// # Errors
    /// Propagates [`VsaError`] from the binding operations.
    pub fn encode_panels(&self, panels: &[Panel]) -> Result<HvMatrix, VsaError> {
        let mut enc = EncodeScratch::default();
        let mut out = HvMatrix::default();
        self.encode_panels_into(panels, &mut enc, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`NeurosymbolicSolver::encode_panels`]: per block, the factor
    /// codevectors are gathered and bound in factor order (identical arithmetic to
    /// [`CodebookSet::bind_indices_batch`]), the block products are superposed and
    /// sign-thresholded, all in caller-owned buffers.
    fn encode_panels_into(
        &self,
        panels: &[Panel],
        enc: &mut EncodeScratch,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        let EncodeScratch {
            idx,
            product,
            operand,
            tmp,
            ..
        } = enc;
        if panels.is_empty() {
            out.ensure_shape(0, 0);
            return Ok(());
        }
        let backend = self.backend.as_ref();
        let n = panels.len();
        out.ensure_shape(n, self.config.vector_dim);
        for (block_index, (set, attrs)) in self.blocks.iter().enumerate() {
            for (f, &attr) in attrs.iter().enumerate() {
                idx.clear();
                idx.extend(panels.iter().map(|p| p.values()[attr]));
                if f == 0 {
                    set.factor(0)?.matrix().gather_into(idx, product)?;
                } else {
                    set.factor(f)?.matrix().gather_into(idx, operand)?;
                    backend.bind_batch_into(product, operand, set.binding(), tmp)?;
                    std::mem::swap(product, tmp);
                }
            }
            if block_index == 0 {
                out.as_mut_slice().copy_from_slice(product.as_slice());
            } else {
                for (slot, v) in out.as_mut_slice().iter_mut().zip(product.as_slice()) {
                    *slot += v;
                }
            }
        }
        for q in 0..n {
            let row = out.row_mut(q);
            for v in row.iter_mut() {
                *v = if *v < 0.0 { -1.0 } else { 1.0 };
            }
            fake_quantize_slice(row, self.config.precision);
        }
        Ok(())
    }

    /// Returns `true` when panels can be encoded **directly into sign planes**: FP32
    /// precision (the sign threshold is the last arithmetic step), exactly two
    /// attribute blocks (their sign-thresholded superposition is a word-wise AND) and
    /// every block running the packed factorizer pipeline (cached codebook sign
    /// planes to gather from, packed consumers downstream).
    fn packed_encode_route(&self) -> bool {
        self.config.precision == Precision::Fp32
            && self.blocks.len() == 2
            && self
                .blocks
                .iter()
                .all(|(set, _)| self.factorizer.packed_pipeline(set))
    }

    /// Fully packed batch encode: block products are XOR-composed straight from the
    /// cached codebook sign planes and the two blocks are superposed with one
    /// word-wise AND ([`BitMatrix::and_assign`]) — bitwise identical to
    /// [`NeurosymbolicSolver::encode_panels`] followed by a strict pack, with no f32
    /// round trip and no [`cogsys_vsa::packed`] pack call at all. This closes the
    /// "first pack at the encode boundary" bottleneck: the encode boundary no longer
    /// packs, it *starts* packed.
    fn encode_panels_bits_into(
        &self,
        panels: &[Panel],
        enc: &mut EncodeScratch,
        out: &mut BitMatrix,
    ) -> Result<(), VsaError> {
        debug_assert!(self.packed_encode_route());
        let EncodeScratch {
            idx, block_bits, ..
        } = enc;
        let n = panels.len();
        out.ensure_shape(n, self.config.vector_dim);
        for (block_index, (set, attrs)) in self.blocks.iter().enumerate() {
            let dst: &mut BitMatrix = if block_index == 0 { out } else { block_bits };
            for (f, &attr) in attrs.iter().enumerate() {
                idx.clear();
                idx.extend(panels.iter().map(|p| p.values()[attr]));
                let planes = set.factor(f)?.packed().ok_or(VsaError::Unsupported {
                    what: "packed encode route requires cached codebook sign planes",
                })?;
                if f == 0 {
                    planes.gather_into(idx, dst)?;
                } else {
                    dst.xor_gather_assign(planes, idx)?;
                }
            }
        }
        out.and_assign(block_bits)?;
        Ok(())
    }

    /// Perceives (optionally mis-reads), encodes, adds interface noise, and factorizes a
    /// panel back into attribute values.
    ///
    /// # Errors
    /// Propagates [`VsaError`] from encoding or factorization.
    pub fn perceive_and_factorize<R: Rng + ?Sized>(
        &self,
        panel: &Panel,
        rng: &mut R,
    ) -> Result<(Panel, usize), VsaError> {
        let (mut panels, iterations) =
            self.perceive_and_factorize_batch(std::slice::from_ref(panel), rng)?;
        Ok((
            panels.pop().expect("one panel in, one panel out"),
            iterations,
        ))
    }

    /// Batched [`NeurosymbolicSolver::perceive_and_factorize`]: perceives, encodes and
    /// decodes a whole set of panels through the batch kernels, returning the decoded
    /// panels and the total factorizer iteration count.
    ///
    /// # Errors
    /// Propagates [`VsaError`] from encoding or factorization.
    pub fn perceive_and_factorize_batch<R: Rng + ?Sized>(
        &self,
        panels: &[Panel],
        rng: &mut R,
    ) -> Result<(Vec<Panel>, usize), VsaError> {
        let n = panels.len();
        if n == 0 {
            return Ok((Vec::new(), 0));
        }

        // Perception noise (panel order matches the sequential path).
        let perceived: Vec<Panel> = panels
            .iter()
            .map(|p| {
                if self.config.perception_noise > 0.0 {
                    p.perturbed_with(self.config.vocab, self.config.perception_noise, rng)
                } else {
                    *p
                }
            })
            .collect();

        // Neural-frontend encoding plus interface bit-flip noise.
        let mut encoded = self.encode_panels(&perceived)?;
        if self.config.encoding_noise > 0.0 {
            let p = self.config.encoding_noise.clamp(0.0, 1.0);
            for q in 0..n {
                for v in encoded.row_mut(q) {
                    if rng.gen_bool(p) {
                        *v = -*v;
                    }
                }
            }
        }

        // End-to-end packed decode: when the factorizer runs its bit-packed engine on
        // these blocks, the encoded scenes are packed ONCE here and the whole decode —
        // resonator, polish unbinding, cleanup — stays in sign planes, with no
        // per-call re-pack of the query batch.
        let encoded_bits = if self
            .blocks
            .iter()
            .any(|(set, _)| self.factorizer.packed_pipeline(set))
        {
            BitMatrix::from_matrix(&encoded)
        } else {
            None
        };

        // Factorize each attribute block for the whole batch at once; the other
        // block's product vector acts as bounded superposition noise.
        let mut ds = DecodeScratch::default();
        let mut values = vec![[0usize; 5]; n];
        let mut iterations = 0usize;
        for (set, attrs) in &self.blocks {
            let mut streams: Vec<StdRng> = (0..n)
                .map(|_| StdRng::seed_from_u64(rng.next_u64()))
                .collect();
            iterations += self.decode_block_into(
                set,
                attrs,
                Some(&encoded),
                encoded_bits.as_ref(),
                &mut streams,
                &mut ds,
                &mut values,
                // Auto-specialize like the planned path (bitwise-identical kernels);
                // routes and fusion are re-derived per call on this unplanned entry
                // point, mirroring what compile_plan would resolve.
                WordSpec::for_dim(self.config.vector_dim),
                FusionMode::resolve_env(),
                None,
            )?;
        }
        // Decoded values range over the configured vocab, which may exceed
        // `Panel::new`'s RAVEN bounds; the clamp above keeps them in-vocab.
        Ok((
            values.into_iter().map(Panel::new_unchecked).collect(),
            iterations,
        ))
    }

    /// Factorizes every row of the encoded scene batch against one attribute block,
    /// runs the one-sweep coordinate-descent polish, and writes the block's decoded
    /// attribute values into `values` (row-indexed). Returns the total factorizer
    /// iterations. This is the shared decode stage of the per-problem and the
    /// cross-problem batched paths — sharing it is what makes the two
    /// decision-identical per row by construction.
    ///
    /// The polish sweep repairs single-attribute decode errors cheaply with the same
    /// unbind→search primitive the factorizer iterates — one gather + batched unbind
    /// plus batched cleanup per factor. On the packed route the sweep is XOR +
    /// popcount over sign planes (identical results: bipolar Hadamard unbinding is
    /// exactly the XOR of sign planes).
    /// `spec` selects the const-generic word-count kernels of the packed route
    /// (bitwise identical to the runtime-length kernels — pass
    /// [`WordSpec::Generic`] or a mismatched spec and only speed changes); `fusion`
    /// selects the fused mega-kernel vs the split reference sequence for the packed
    /// resonator iteration (decision-identical either way); `routes`,
    /// when given, carries the plan's pre-resolved cleanup route per factor —
    /// `None` re-derives per call (the unplanned sequential path).
    #[allow(clippy::too_many_arguments)]
    fn decode_block_into(
        &self,
        set: &CodebookSet,
        attrs: &[usize],
        encoded: Option<&HvMatrix>,
        encoded_bits: Option<&BitMatrix>,
        streams: &mut [StdRng],
        ds: &mut DecodeScratch,
        values: &mut [[usize; 5]],
        spec: WordSpec,
        fusion: FusionMode,
        routes: Option<&[CleanupRoute]>,
    ) -> Result<usize, VsaError> {
        let DecodeScratch {
            factorizer: fscratch,
            tuples,
            gather_idx,
            unbound,
            tmp,
            est_dense,
            unbound_bits,
            est_bits,
        } = ds;
        let backend = self.backend.as_ref();
        let packed_query = encoded_bits.filter(|_| self.factorizer.packed_pipeline(set));
        let results = match packed_query {
            Some(bits) => self
                .factorizer
                .factorize_matrix_bits_scratch_plan(set, bits, streams, fscratch, spec, fusion)?,
            None => {
                let queries = encoded.ok_or(VsaError::Unsupported {
                    what: "dense decode route requires f32 queries",
                })?;
                self.factorizer
                    .factorize_matrix_scratch(set, queries, streams, fscratch)?
            }
        };
        let iterations = results.iter().map(|r| r.iterations).sum::<usize>();

        tuples.resize_with(results.len(), Vec::new);
        for (t, r) in tuples.iter_mut().zip(&results) {
            t.clear();
            t.extend_from_slice(&r.indices);
        }

        for f in 0..set.num_factors() {
            if let Some(bits) = packed_query {
                unbound_bits.copy_from(bits);
                for g in 0..set.num_factors() {
                    if g == f {
                        continue;
                    }
                    gather_idx.clear();
                    gather_idx.extend(tuples.iter().map(|t| t[g]));
                    set.factor(g)?
                        .packed()
                        .ok_or(VsaError::Unsupported {
                            what: "packed pipeline requires packed codebooks",
                        })?
                        .gather_into(gather_idx, est_bits)?;
                    unbound_bits.xor_assign(est_bits)?;
                }
                // Allocation-free cleanup through the factorizer scratch; on
                // index-carrying codebooks this is the pruned sub-linear scan. The
                // route comes from the plan when one was compiled (stale routes
                // degrade gracefully inside the routed call).
                let factor = set.factor(f)?;
                let route = routes
                    .and_then(|r| r.get(f).copied())
                    .unwrap_or_else(|| factor.cleanup_route(backend));
                let (cscratch, cleaned) = fscratch.cleanup_buffers();
                factor.cleanup_batch_bits_routed_into(
                    backend,
                    route,
                    spec,
                    unbound_bits,
                    cscratch,
                    cleaned,
                )?;
                for (t, &(best, _)) in tuples.iter_mut().zip(cleaned.iter()) {
                    t[f] = best;
                }
            } else {
                let queries = encoded.ok_or(VsaError::Unsupported {
                    what: "dense decode route requires f32 queries",
                })?;
                est_dense.resize_with(set.num_factors(), HvMatrix::default);
                for (g, est) in est_dense.iter_mut().enumerate() {
                    gather_idx.clear();
                    gather_idx.extend(tuples.iter().map(|t| t[g]));
                    set.factor(g)?.matrix().gather_into(gather_idx, est)?;
                }
                set.unbind_all_but_batch(backend, queries, est_dense, f, unbound, tmp)?;
                let cleaned = set.factor(f)?.cleanup_batch(backend, unbound)?;
                for (t, (best, _)) in tuples.iter_mut().zip(cleaned) {
                    t[f] = best;
                }
            }
        }

        let vocab = self.config.vocab;
        for (row, tuple) in tuples.iter().enumerate() {
            for (&attr_index, &idx) in attrs.iter().zip(tuple) {
                let attr = Attribute::ALL[attr_index];
                values[row][attr_index] = idx.min(vocab.cardinality(attr) - 1);
            }
        }
        Ok(iterations)
    }

    /// Abduces the rule governing one attribute from the two complete rows and executes
    /// it on the incomplete row, returning the predicted attribute value.
    fn abduce_and_execute(
        dataset: DatasetKind,
        vocab: AttributeVocab,
        attribute: Attribute,
        rows: &[[usize; 3]; 2],
        last_row: (usize, usize),
    ) -> usize {
        let card = vocab.cardinality(attribute);
        let pool: &[RuleKind] = dataset.rule_pool();

        // Score every candidate rule by how many of the two complete rows it explains,
        // then execute the best-scoring rule on the incomplete row. Progression steps 1
        // and 2 are tried separately.
        let mut best: Option<(usize, usize)> = None; // (score, predicted value)
        let mut consider = |score: usize, predicted: usize| {
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, predicted));
            }
        };

        for &kind in pool {
            match kind {
                RuleKind::Progression => {
                    for step in 1..=2usize {
                        let score = rows
                            .iter()
                            .filter(|r| {
                                r[1] == (r[0] + step) % card && r[2] == (r[1] + step) % card
                            })
                            .count();
                        consider(score, (last_row.0 + 2 * step) % card);
                    }
                }
                RuleKind::Constant => {
                    let score = rows.iter().filter(|r| r[0] == r[1] && r[1] == r[2]).count();
                    consider(score, last_row.0);
                }
                RuleKind::Arithmetic => {
                    let score = rows.iter().filter(|r| r[2] == (r[0] + r[1]) % card).count();
                    consider(score, (last_row.0 + last_row.1) % card);
                }
                RuleKind::Xor => {
                    let score = rows.iter().filter(|r| r[2] == (r[0] ^ r[1]) % card).count();
                    consider(score, (last_row.0 ^ last_row.1) % card);
                }
                RuleKind::And => {
                    let score = rows.iter().filter(|r| r[2] == (r[0] & r[1]) % card).count();
                    consider(score, (last_row.0 & last_row.1) % card);
                }
                RuleKind::Or => {
                    let score = rows.iter().filter(|r| r[2] == (r[0] | r[1]) % card).count();
                    consider(score, (last_row.0 | last_row.1) % card);
                }
                RuleKind::DistributeThree => {
                    // Both rows must share the same 3-value set; the prediction is the
                    // member of that set missing from the incomplete row.
                    let mut s0 = rows[0].to_vec();
                    let mut s1 = rows[1].to_vec();
                    s0.sort_unstable();
                    s1.sort_unstable();
                    let coherent = s0 == s1 && s0[0] != s0[1] && s0[1] != s0[2];
                    let score = if coherent { 2 } else { 0 };
                    let predicted = s0
                        .iter()
                        .copied()
                        .find(|v| *v != last_row.0 && *v != last_row.1)
                        .unwrap_or(last_row.1);
                    consider(score, predicted);
                }
            }
        }
        best.map(|(_, p)| p).unwrap_or(last_row.1)
    }

    /// Abduces every attribute's rule from the decoded context panels (row-major, the
    /// eight visible cells) and executes it on the incomplete row, producing the
    /// predicted answer panel. Pure — shared verbatim by the per-problem and the
    /// cross-problem batched paths.
    fn predict_panel(dataset: DatasetKind, vocab: AttributeVocab, decoded: &[Panel]) -> Panel {
        let mut predicted_values = [0usize; 5];
        for attr in Attribute::ALL {
            let rows = [
                [
                    decoded[0].value(attr),
                    decoded[1].value(attr),
                    decoded[2].value(attr),
                ],
                [
                    decoded[3].value(attr),
                    decoded[4].value(attr),
                    decoded[5].value(attr),
                ],
            ];
            let last_row = (decoded[6].value(attr), decoded[7].value(attr));
            predicted_values[attr.index()] =
                Self::abduce_and_execute(dataset, vocab, attr, &rows, last_row)
                    .min(vocab.cardinality(attr) - 1);
        }
        Panel::new_unchecked(predicted_values)
    }

    /// Solves one problem end to end, returning the chosen candidate index and the
    /// per-panel factorization bookkeeping.
    ///
    /// # Errors
    /// Returns [`SolveError::Malformed`] (with `problem == 0`) when the input fails
    /// the engine-boundary validation — before any rng draw — and propagates
    /// [`VsaError`] from the VSA stages as [`SolveError::Vsa`].
    pub fn solve<R: Rng + ?Sized>(
        &self,
        problem: &Problem,
        rng: &mut R,
    ) -> Result<(usize, SolverReport), SolveError> {
        self.validate_problems(std::slice::from_ref(problem))?;
        let mut report = SolverReport::default();

        // Perception + factorization of the eight context panels, as one batch through
        // the backend's kernels.
        let (decoded, iterations) = self.perceive_and_factorize_batch(&problem.context, rng)?;
        report.panels_total += decoded.len();
        report.factorizer_iterations += iterations;
        report.panels_exact += decoded
            .iter()
            .zip(&problem.context)
            .filter(|(estimate, panel)| estimate == panel)
            .count();

        // Abduction + execution per attribute.
        let predicted = Self::predict_panel(problem.dataset, self.config.vocab, &decoded);

        // Answer selection. NVSA scores candidates per attribute (the product encodings
        // of two panels that differ in even one attribute are quasi-orthogonal, so a
        // whole-panel similarity would be all-or-nothing): the candidate agreeing with
        // the prediction on the most attributes wins, with the full-vector similarity
        // (one batched cleanup against the candidate encodings) used to break ties.
        let predicted_hv = self.encode_panel(&predicted)?;
        let candidates_hv = self.encode_panels(&problem.candidates)?;
        let mut best = (0usize, 0usize, f32::NEG_INFINITY);
        for (i, candidate) in problem.candidates.iter().enumerate() {
            let agreement = Attribute::ALL.len() - predicted.distance(candidate);
            let hv = candidates_hv.row_hypervector(i, VsaKind::Bipolar)?;
            let sim = ops::try_cosine_similarity(&predicted_hv, &hv)?;
            if agreement > best.1 || (agreement == best.1 && sim > best.2) {
                best = (i, agreement, sim);
            }
        }

        report.problems = 1;
        if problem.is_correct(best.0) {
            report.correct = 1;
        }
        Ok((best.0, report))
    }

    /// Solves a batch of problems through the **cross-problem batched engine** and
    /// returns the aggregate report.
    ///
    /// Equivalent to calling [`NeurosymbolicSolver::solve`] per problem with the same
    /// `rng` — decisions, reports and rng consumption are identical (regression-
    /// tested) — but every context panel of every problem flows through ONE encode,
    /// ONE factorize call per attribute block and ONE batched answer-scoring pass,
    /// so the packed kernels see `8·N`-row batches instead of one problem's panels.
    /// See [`NeurosymbolicSolver::solve_batch_with`] for the allocation-free variant.
    ///
    /// # Errors
    /// Returns [`SolveError::Malformed`] naming the first invalid problem's batch
    /// index (before any rng draw), or [`SolveError::Vsa`] from the VSA stages.
    pub fn solve_batch<R: Rng + ?Sized>(
        &self,
        problems: &[Problem],
        rng: &mut R,
    ) -> Result<SolverReport, SolveError> {
        self.solve_batch_with(problems, rng, &mut SolverScratch::default())
    }

    /// [`NeurosymbolicSolver::solve_batch`] with **caller-owned scratch**: the
    /// allocation-free steady state of a serving loop. All buffers of the
    /// encode → factorize → score pipeline live in `scratch` and are reused across
    /// calls; `scratch.choices()` afterwards holds the chosen candidate per problem.
    ///
    /// Decision identity with the sequential path is by construction:
    ///
    /// * every per-problem rng draw (perception noise, interface bit flips, the
    ///   factorizer stream seeds) is made **in the sequential order** and buffered,
    ///   so the generator state evolves exactly as if [`NeurosymbolicSolver::solve`]
    ///   ran per problem — which also makes the result independent of how a problem
    ///   stream is chunked into batches;
    /// * encoding and factorization are row-independent batch kernels driven by those
    ///   per-query streams (on the packed route the scene planes are XOR/AND-composed
    ///   from cached codebook planes, bitwise equal to the f32 encode);
    /// * batched answer scoring preserves decisions: candidate encodings are exactly
    ///   bipolar, so both the popcount cosine `(d − 2h)/d` and the sequential scalar
    ///   cosine are strictly increasing rounded functions of the same exact integer
    ///   dot product — equal agreements break ties identically. Where the encodings
    ///   are not bipolar (sub-FP32 precisions), the scoring falls back to the scalar
    ///   cosine's exact numerics.
    ///
    /// Chunk-invariance also lets the engine pick the batch size each backend wants:
    /// the packed route takes the whole batch (sign planes keep an `8·N`-row working
    /// set cache-resident), while the dense f32 engines internally sub-chunk to
    /// [`NeurosymbolicSolver::DENSE_SERVE_CHUNK`] problems — their per-iteration
    /// working set is 32× larger and spills cache at wide batches, measurably
    /// *losing* throughput beyond a few problems per call.
    ///
    /// # Errors
    /// Returns [`SolveError::Malformed`] naming the first invalid problem's index
    /// in `problems`. Validation happens **before any rng draw**, so a caller that
    /// excises the offender and resubmits the remainder (with the same generator
    /// state or seed) gets exactly the results the reduced batch would have
    /// produced outright — the contract the `cogsys-serve` retry path relies on.
    /// VSA-stage failures propagate as [`SolveError::Vsa`].
    pub fn solve_batch_with<R: Rng + ?Sized>(
        &self,
        problems: &[Problem],
        rng: &mut R,
        scratch: &mut SolverScratch,
    ) -> Result<SolverReport, SolveError> {
        scratch.choices.clear();
        if problems.is_empty() {
            return Ok(SolverReport::default());
        }
        self.validate_problems(problems)?;
        let plan = self.plan_for_batch(problems.len());
        self.execute_plan(&plan, problems, rng, scratch, None)
    }

    /// [`NeurosymbolicSolver::solve_batch_with`] executing a **pre-compiled plan**:
    /// the steady state of a serving loop, which compiles the plan once at chunk
    /// formation ([`NeurosymbolicSolver::plan_for_batch`]) and replays it across the
    /// stream. Decision-identical to the unplanned entry point by construction —
    /// every plan field holds exactly the value the per-call derivation would have
    /// computed — and chunk-invariance makes a plan compiled for one batch size
    /// valid for any other (only `chunk_problems` shapes the internal slicing).
    ///
    /// # Errors
    /// Returns [`SolveError::Config`] when the plan was compiled for a different
    /// solver shape (backend, dimension, block structure or codebook sizes), plus
    /// everything [`NeurosymbolicSolver::solve_batch_with`] returns.
    pub fn solve_batch_with_plan<R: Rng + ?Sized>(
        &self,
        plan: &SolvePlan,
        problems: &[Problem],
        rng: &mut R,
        scratch: &mut SolverScratch,
    ) -> Result<SolverReport, SolveError> {
        scratch.choices.clear();
        if problems.is_empty() {
            return Ok(SolverReport::default());
        }
        self.check_plan(plan)?;
        self.validate_problems(problems)?;
        self.execute_plan(plan, problems, rng, scratch, None)
    }

    /// [`NeurosymbolicSolver::solve_batch_with_plan`] that additionally accumulates
    /// per-stage wall-clock time into `timings` — the measurement hook behind the
    /// `plan_stage_*` bench cells and `cogsys-serve`'s per-stage service-time fit.
    /// Timing is observation only; decisions and rng consumption are identical.
    ///
    /// # Errors
    /// Exactly those of [`NeurosymbolicSolver::solve_batch_with_plan`].
    pub fn solve_batch_with_plan_timed<R: Rng + ?Sized>(
        &self,
        plan: &SolvePlan,
        problems: &[Problem],
        rng: &mut R,
        scratch: &mut SolverScratch,
        timings: &mut StageNanos,
    ) -> Result<SolverReport, SolveError> {
        scratch.choices.clear();
        if problems.is_empty() {
            return Ok(SolverReport::default());
        }
        self.check_plan(plan)?;
        self.validate_problems(problems)?;
        self.execute_plan(plan, problems, rng, scratch, Some(timings))
    }

    /// Pre-sizes the factorizer scratch from the plan's workload shape — chunk
    /// rows, dimension, per-block factor count and codebook widths are all fixed
    /// by the [`PlanKey`], so the buffers the packed resonator and the fused
    /// kernel reshape per call can be bounded **before** the stream starts and
    /// the steady-state serving loop stays allocation-free
    /// (`SolverScratch::factorizer_capacity_fingerprint` is the regression hook).
    /// Draws no rng and touches no decision state; a no-op once sized.
    fn reserve_scratch_for_plan(&self, plan: &SolvePlan, scratch: &mut SolverScratch) {
        let rows = plan.chunk_problems.max(1) * Self::CONTEXT_PANELS;
        let num_factors = self
            .blocks
            .iter()
            .map(|(set, _)| set.num_factors())
            .max()
            .unwrap_or(0);
        let max_cb_rows = plan.key.codebook_rows.iter().copied().max().unwrap_or(0);
        scratch
            .decode
            .factorizer
            .reserve_packed(rows, plan.key.dim, num_factors, max_cb_rows);
    }

    /// Rejects a plan compiled for a different solver shape before any rng draw.
    fn check_plan(&self, plan: &SolvePlan) -> Result<(), SolveError> {
        let expected = self.plan_key(plan.key.batch);
        if plan.key != expected {
            return Err(SolveError::Config {
                message: format!(
                    "plan compiled for {:?}, solver shape is {:?}",
                    plan.key, expected
                ),
            });
        }
        Ok(())
    }

    /// The thin chunk loop over a compiled plan: slice `problems` by the plan's
    /// chunk width and run the batched engine per chunk. All routing below this
    /// point reads the plan, never re-derives.
    fn execute_plan<R: Rng + ?Sized>(
        &self,
        plan: &SolvePlan,
        problems: &[Problem],
        rng: &mut R,
        scratch: &mut SolverScratch,
        mut timings: Option<&mut StageNanos>,
    ) -> Result<SolverReport, SolveError> {
        self.reserve_scratch_for_plan(plan, scratch);
        let mut total = SolverReport::default();
        for chunk in problems.chunks(plan.chunk_problems.max(1)) {
            total.merge(&self.solve_batch_chunk(
                plan,
                chunk,
                rng,
                scratch,
                timings.as_deref_mut(),
            )?);
        }
        Ok(total)
    }

    /// Problems per internal chunk on the dense (f32) solving route.
    ///
    /// Four problems (32 panel rows) keep the dense engines' per-iteration working
    /// set — query batch, per-factor estimates, unbound/projected/rebound buffers,
    /// each `rows × dim` f32 — inside cache on the 1-core CI machine; measured
    /// throughput degrades ~1.2–1.3× by 64-problem chunks and is flat in [1, 4].
    /// Decision-invariant by the per-problem rng draw order. No longer a hardcoded
    /// executor constant: plan compilation folds it into
    /// [`SolvePlan::chunk_problems`] (whole batch on the packed route, this width on
    /// the dense route), and the executor only reads the plan.
    pub const DENSE_SERVE_CHUNK: usize = 4;

    /// One pass of the batched engine over `problems`, appending to
    /// `scratch.choices`. A thin executor over `plan`: the encode route, dense
    /// pack decision, kernel specialization and cleanup routes are all read from
    /// the plan (see [`NeurosymbolicSolver::compile_plan`], which owns the policy).
    fn solve_batch_chunk<R: Rng + ?Sized>(
        &self,
        plan: &SolvePlan,
        problems: &[Problem],
        rng: &mut R,
        scratch: &mut SolverScratch,
        mut timings: Option<&mut StageNanos>,
    ) -> Result<SolverReport, VsaError> {
        let mut mark = Instant::now();
        let mut report = SolverReport::default();
        let SolverScratch {
            encode,
            decode,
            streams,
            perceived,
            flips,
            seeds,
            row_base,
            seed_base,
            encoded,
            encoded_bits,
            values,
            decoded,
            predicted,
            cand_panels,
            cand_base,
            pred_hv,
            cand_hv,
            pred_bits,
            cand_bits,
            choices,
        } = scratch;
        let num_blocks = self.blocks.len();
        let dim = self.config.vector_dim;

        // ---- Phase 1: every per-problem rng draw, in exactly the sequential order.
        // None of the draws depend on encoded data, so they can be buffered up front;
        // replaying them per problem keeps the generator state bitwise identical to
        // the per-problem path no matter how the batch is sliced.
        perceived.clear();
        flips.clear();
        seeds.clear();
        row_base.clear();
        seed_base.clear();
        for problem in problems {
            row_base.push(perceived.len());
            seed_base.push(seeds.len());
            let base = perceived.len();
            for panel in &problem.context {
                perceived.push(if self.config.perception_noise > 0.0 {
                    panel.perturbed_with(self.config.vocab, self.config.perception_noise, rng)
                } else {
                    *panel
                });
            }
            let rows_q = problem.context.len();
            if self.config.encoding_noise > 0.0 {
                let p = self.config.encoding_noise.clamp(0.0, 1.0);
                for r in 0..rows_q {
                    for j in 0..dim {
                        if rng.gen_bool(p) {
                            flips.push(((base + r) as u32, j as u32));
                        }
                    }
                }
            }
            for _ in 0..num_blocks {
                for _ in 0..rows_q {
                    seeds.push(rng.next_u64());
                }
            }
        }
        let total_rows = perceived.len();

        // ---- Phase 2: one encode over every context panel of every problem. On the
        // packed route the scene batch is born as sign planes and the interface noise
        // is applied as bit flips; otherwise the f32 encode runs and the batch is
        // packed once if any block decodes packed (mirroring the sequential path).
        let packed_route = plan.packed_route;
        let have_bits = if packed_route {
            self.encode_panels_bits_into(perceived, encode, encoded_bits)?;
            for &(r, j) in flips.iter() {
                encoded_bits.flip_bit(r as usize, j as usize);
            }
            true
        } else {
            self.encode_panels_into(perceived, encode, encoded)?;
            for &(r, j) in flips.iter() {
                let v = &mut encoded.row_mut(r as usize)[j as usize];
                *v = -*v;
            }
            plan.pack_dense_bits && encoded_bits.pack_from(encoded)
        };
        if let Some(t) = timings.as_deref_mut() {
            let now = Instant::now();
            t.encode += now.duration_since(mark).as_nanos() as u64;
            mark = now;
        }

        // ---- Phase 3: one factorize + polish pass per attribute block over the
        // whole `8·N`-row batch, each row driven by the stream seeded for it in
        // phase 1 — per-row dynamics identical to the per-problem call.
        values.clear();
        values.resize(total_rows, [0usize; 5]);
        let mut iterations = 0usize;
        for (b, (set, attrs)) in self.blocks.iter().enumerate() {
            streams.clear();
            for (q, problem) in problems.iter().enumerate() {
                let rows_q = problem.context.len();
                let sb = seed_base[q];
                for r in 0..rows_q {
                    streams.push(StdRng::seed_from_u64(seeds[sb + b * rows_q + r]));
                }
            }
            iterations += self.decode_block_into(
                set,
                attrs,
                if packed_route { None } else { Some(&*encoded) },
                if have_bits {
                    Some(&*encoded_bits)
                } else {
                    None
                },
                streams,
                decode,
                values,
                plan.spec,
                plan.resonate_fusion(b).unwrap_or(FusionMode::Split),
                plan.polish_routes(b),
            )?;
        }
        report.factorizer_iterations = iterations;
        if let Some(t) = timings.as_deref_mut() {
            let now = Instant::now();
            t.decode += now.duration_since(mark).as_nanos() as u64;
            mark = now;
        }

        // ---- Phase 4: per-problem abduction + prediction (pure symbolic work).
        decoded.clear();
        decoded.extend(values.iter().map(|v| Panel::new_unchecked(*v)));
        predicted.clear();
        for (q, problem) in problems.iter().enumerate() {
            let base = row_base[q];
            let ctx = &decoded[base..base + problem.context.len()];
            report.panels_total += ctx.len();
            report.panels_exact += ctx
                .iter()
                .zip(&problem.context)
                .filter(|(estimate, panel)| estimate == panel)
                .count();
            predicted.push(Self::predict_panel(problem.dataset, self.config.vocab, ctx));
        }

        // ---- Phase 5: batched answer selection. All predicted panels and all
        // candidates are encoded together; on the packed route the per-candidate
        // similarity is one popcount row dot, replacing the sequential path's
        // per-candidate hypervector allocation + scalar cosine.
        cand_panels.clear();
        cand_base.clear();
        for problem in problems {
            cand_base.push(cand_panels.len());
            cand_panels.extend_from_slice(&problem.candidates);
        }
        if packed_route {
            self.encode_panels_bits_into(predicted, encode, pred_bits)?;
            self.encode_panels_bits_into(cand_panels, encode, cand_bits)?;
        } else {
            self.encode_panels_into(predicted, encode, pred_hv)?;
            self.encode_panels_into(cand_panels, encode, cand_hv)?;
        }
        for (q, problem) in problems.iter().enumerate() {
            let base = cand_base[q];
            let mut best = (0usize, 0usize, f32::NEG_INFINITY);
            for (i, candidate) in problem.candidates.iter().enumerate() {
                let agreement = Attribute::ALL.len() - predicted[q].distance(candidate);
                // Fallback route: ops::cosine_slices is the exact numerics of the
                // sequential path's per-candidate ops::try_cosine_similarity.
                let sim = if packed_route {
                    cand_bits.cosine_rows(base + i, pred_bits, q)
                } else {
                    ops::cosine_slices(pred_hv.row(q), cand_hv.row(base + i))
                };
                if agreement > best.1 || (agreement == best.1 && sim > best.2) {
                    best = (i, agreement, sim);
                }
            }
            choices.push(best.0);
            report.problems += 1;
            if problem.is_correct(best.0) {
                report.correct += 1;
            }
        }
        if let Some(t) = timings {
            t.score += Instant::now().duration_since(mark).as_nanos() as u64;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_datasets::ProblemGenerator;
    use cogsys_vsa::rng;
    use rand::RngCore;

    fn solver(seed: u64, config: SolverConfig) -> (NeurosymbolicSolver, rand::rngs::StdRng) {
        let mut r = rng(seed);
        let s = NeurosymbolicSolver::new(config, &mut r);
        (s, r)
    }

    #[test]
    fn encode_and_factorize_round_trip() {
        let (s, mut r) = solver(1, SolverConfig::default());
        let panel = Panel::new([3, 4, 2, 5, 7]);
        let (decoded, iters) = s.perceive_and_factorize(&panel, &mut r).unwrap();
        assert_eq!(decoded, panel);
        assert!(iters >= 1);
    }

    #[test]
    fn solver_achieves_high_accuracy_on_clean_raven() {
        let (s, mut r) = solver(2, SolverConfig::default());
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(10, &mut r);
        let report = s.solve_batch(&problems, &mut r).unwrap();
        assert!(
            report.accuracy() >= 0.75,
            "accuracy {} too low",
            report.accuracy()
        );
        assert!(
            report.factorization_accuracy() >= 0.85,
            "factorization accuracy {}",
            report.factorization_accuracy()
        );
        assert_eq!(report.problems, 10);
        assert_eq!(report.panels_total, 80);
    }

    #[test]
    fn solver_handles_iraven_and_pgm() {
        for dataset in [DatasetKind::IRaven, DatasetKind::Pgm] {
            let (s, mut r) = solver(3, SolverConfig::default());
            let problems = ProblemGenerator::new(dataset).generate_batch(6, &mut r);
            let report = s.solve_batch(&problems, &mut r).unwrap();
            assert!(
                report.accuracy() >= 0.5,
                "{dataset}: accuracy {}",
                report.accuracy()
            );
        }
    }

    #[test]
    fn int8_precision_preserves_reasoning_accuracy() {
        // Tab. VIII: quantization costs only a fraction of a percent of accuracy.
        let config = SolverConfig::default().with_precision(Precision::Int8);
        let (s, mut r) = solver(4, config);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(6, &mut r);
        let report = s.solve_batch(&problems, &mut r).unwrap();
        assert!(report.accuracy() >= 0.6, "accuracy {}", report.accuracy());
    }

    #[test]
    fn heavy_perception_noise_degrades_accuracy() {
        let clean_cfg = SolverConfig::default();
        let noisy_cfg = SolverConfig {
            perception_noise: 0.5,
            ..SolverConfig::default()
        };
        let (clean, mut r1) = solver(5, clean_cfg);
        let (noisy, mut r2) = solver(5, noisy_cfg);
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(8, &mut r1);
        let clean_report = clean.solve_batch(&problems, &mut r1).unwrap();
        let noisy_report = noisy.solve_batch(&problems, &mut r2).unwrap();
        assert!(
            clean_report.accuracy() + 1e-9 >= noisy_report.accuracy(),
            "clean {} vs noisy {}",
            clean_report.accuracy(),
            noisy_report.accuracy()
        );
    }

    #[test]
    fn report_merging_and_empty_report() {
        let mut a = SolverReport {
            problems: 2,
            correct: 1,
            panels_exact: 10,
            panels_total: 16,
            factorizer_iterations: 40,
        };
        let b = SolverReport {
            problems: 2,
            correct: 2,
            panels_exact: 16,
            panels_total: 16,
            factorizer_iterations: 30,
        };
        a.merge(&b);
        assert_eq!(a.problems, 4);
        assert!((a.accuracy() - 0.75).abs() < 1e-12);
        assert!((a.factorization_accuracy() - 26.0 / 32.0).abs() < 1e-12);
        assert_eq!(SolverReport::default().accuracy(), 0.0);
        assert_eq!(SolverReport::default().factorization_accuracy(), 0.0);
    }

    #[test]
    fn solve_returns_candidate_index_in_range() {
        let (s, mut r) = solver(6, SolverConfig::default());
        let problem = ProblemGenerator::new(DatasetKind::Cvr).generate(&mut r);
        let (choice, _) = s.solve(&problem, &mut r).unwrap();
        assert!(choice < problem.candidates.len());
    }

    #[test]
    fn batch_encoding_matches_scalar_encoding() {
        let (s, _) = solver(8, SolverConfig::default());
        let panels = [
            Panel::new([0, 1, 2, 3, 4]),
            Panel::new([3, 4, 2, 5, 7]),
            Panel::new([8, 0, 4, 0, 9]),
        ];
        let batch = s.encode_panels(&panels).unwrap();
        assert_eq!(batch.rows(), 3);
        for (q, panel) in panels.iter().enumerate() {
            let scalar = s.encode_panel(panel).unwrap();
            assert_eq!(batch.row(q), scalar.values(), "panel {q}");
        }
    }

    #[test]
    fn batch_factorization_decodes_whole_context() {
        let (s, mut r) = solver(9, SolverConfig::default());
        let panels: Vec<Panel> = (0..6).map(|_| Panel::random(&mut r)).collect();
        let (decoded, iters) = s.perceive_and_factorize_batch(&panels, &mut r).unwrap();
        assert_eq!(decoded.len(), panels.len());
        assert!(iters >= panels.len());
        let exact = decoded.iter().zip(&panels).filter(|(a, b)| a == b).count();
        assert!(exact >= 5, "only {exact}/6 panels decoded exactly");
    }

    #[test]
    fn reference_backend_reaches_same_accuracy() {
        let config = SolverConfig::default();
        let (fast, mut r1) = solver(11, config.clone().with_backend(BackendKind::Parallel));
        let (slow, mut r2) = solver(11, config.with_backend(BackendKind::Reference));
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r1);
        let fast_report = fast.solve_batch(&problems, &mut r1).unwrap();
        // Re-sync the second rng stream to the same state the first solver consumed.
        let _ = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r2);
        let slow_report = slow.solve_batch(&problems, &mut r2).unwrap();
        // The backends agree within the 1e-4 cosine contract, far inside the
        // resonator's decision margins: identical codebooks and rng streams must give
        // near-identical reports (allow one problem of divergence) and both must
        // decode panels reliably.
        assert_eq!(fast_report.problems, slow_report.problems);
        assert_eq!(fast_report.panels_total, slow_report.panels_total);
        assert!(
            (fast_report.correct as i64 - slow_report.correct as i64).abs() <= 1,
            "fast {} vs slow {}",
            fast_report.correct,
            slow_report.correct
        );
        assert!(fast_report.accuracy() >= 0.66, "{}", fast_report.accuracy());
        assert!(slow_report.accuracy() >= 0.66, "{}", slow_report.accuracy());
        assert!(fast_report.factorization_accuracy() >= 0.85);
        assert!(slow_report.factorization_accuracy() >= 0.85);
        assert_eq!(fast.backend().name(), "parallel");
        assert_eq!(slow.backend().name(), "reference");
    }

    #[test]
    fn block_threshold_stops_factorizer_early() {
        // The scene superposition caps the per-block rebind cosine around
        // 1/sqrt(#blocks), so with the flat 0.9 threshold every panel used to burn the
        // whole 200-iteration budget per block. The per-block threshold converges
        // correct decodes in a handful of iterations.
        let (s, mut r) = solver(12, SolverConfig::default());
        assert!(
            (NeurosymbolicSolver::block_convergence_threshold(2) - 0.6 / 2f32.sqrt()).abs() < 1e-6
        );
        let panels: Vec<Panel> = (0..4).map(|_| Panel::random(&mut r)).collect();
        let (decoded, iters) = s.perceive_and_factorize_batch(&panels, &mut r).unwrap();
        let exact = decoded.iter().zip(&panels).filter(|(a, b)| a == b).count();
        assert!(exact >= 3, "only {exact}/4 panels decoded exactly");
        let budget = panels.len() * 2 * s.config().factorizer.max_iterations;
        assert!(
            iters * 4 < budget,
            "expected early convergence: {iters} of {budget} budget iterations"
        );
    }

    #[test]
    fn packed_backend_reaches_same_accuracy() {
        // BackendKind::Packed end to end: the XOR/popcount pipeline must match the
        // dense backends' reasoning quality (its similarity decisions are exact).
        let config = SolverConfig::default();
        let (packed, mut r1) = solver(13, config.clone().with_backend(BackendKind::Packed));
        let (dense, mut r2) = solver(13, config.with_backend(BackendKind::Parallel));
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r1);
        let packed_report = packed.solve_batch(&problems, &mut r1).unwrap();
        let _ = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r2);
        let dense_report = dense.solve_batch(&problems, &mut r2).unwrap();
        assert_eq!(packed_report.problems, dense_report.problems);
        assert_eq!(packed_report.panels_total, dense_report.panels_total);
        assert!(
            (packed_report.correct as i64 - dense_report.correct as i64).abs() <= 1,
            "packed {} vs dense {}",
            packed_report.correct,
            dense_report.correct
        );
        assert!(
            packed_report.accuracy() >= 0.66,
            "{}",
            packed_report.accuracy()
        );
        assert!(packed_report.factorization_accuracy() >= 0.85);
        assert_eq!(packed.backend().name(), "packed");
    }

    #[test]
    fn packed_decode_equals_dense_decode_exactly() {
        // The end-to-end packed decode (scene packed once, XOR polish, popcount
        // cleanup) makes the same decisions as the dense route: the packed kernels'
        // similarities are the exact integer dot products, so on identical codebooks
        // and rng streams the decoded panels must be *equal*, not just close.
        let config = SolverConfig::default();
        let (packed, _) = solver(21, config.clone().with_backend(BackendKind::Packed));
        let (dense, _) = solver(21, config.with_backend(BackendKind::Parallel));
        let mut r1 = rng(31);
        let mut r2 = rng(31);
        let panels: Vec<Panel> = (0..5).map(|_| Panel::random(&mut r1)).collect();
        let _: Vec<Panel> = (0..5).map(|_| Panel::random(&mut r2)).collect();
        let (decoded_packed, iters_packed) = packed
            .perceive_and_factorize_batch(&panels, &mut r1)
            .unwrap();
        let (decoded_dense, iters_dense) = dense
            .perceive_and_factorize_batch(&panels, &mut r2)
            .unwrap();
        assert_eq!(decoded_packed, decoded_dense);
        assert_eq!(iters_packed, iters_dense);
        let exact = decoded_packed
            .iter()
            .zip(&panels)
            .filter(|(a, b)| a == b)
            .count();
        assert!(exact >= 4, "only {exact}/5 panels decoded exactly");
    }

    /// The sequential reference: a plain loop over [`NeurosymbolicSolver::solve`],
    /// collecting per-problem choices and the merged report.
    fn solve_sequentially(
        s: &NeurosymbolicSolver,
        problems: &[Problem],
        rng: &mut rand::rngs::StdRng,
    ) -> (Vec<usize>, SolverReport) {
        let mut choices = Vec::new();
        let mut total = SolverReport::default();
        for problem in problems {
            let (choice, report) = s.solve(problem, rng).unwrap();
            choices.push(choice);
            total.merge(&report);
        }
        (choices, total)
    }

    #[test]
    fn batched_solve_is_decision_identical_to_sequential_path() {
        // THE tentpole regression: the cross-problem batched engine must return the
        // exact choices and report of the per-problem path — same decisions, same rng
        // consumption — on every backend and dataset family.
        use cogsys_datasets::Problem;
        for kind in BackendKind::ALL {
            for dataset in [DatasetKind::Raven, DatasetKind::IRaven, DatasetKind::Pgm] {
                let config = SolverConfig {
                    perception_noise: 0.05, // exercise the perception-noise rng draws
                    ..SolverConfig::default()
                }
                .with_backend(kind);
                let (s, mut r1) = solver(40, config);
                let problems: Vec<Problem> =
                    ProblemGenerator::new(dataset).generate_batch(5, &mut r1);
                let mut r2 = r1.clone();

                let mut scratch = SolverScratch::default();
                let batched = s
                    .solve_batch_with(&problems, &mut r1, &mut scratch)
                    .unwrap();
                let (seq_choices, sequential) = solve_sequentially(&s, &problems, &mut r2);

                assert_eq!(batched, sequential, "{kind}/{dataset}: reports diverge");
                assert_eq!(
                    scratch.choices(),
                    &seq_choices[..],
                    "{kind}/{dataset}: choices diverge"
                );
                // Identical rng consumption: both generators must be in the same
                // state afterwards.
                assert_eq!(
                    r1.next_u64(),
                    r2.next_u64(),
                    "{kind}/{dataset}: rng streams diverge"
                );
            }
        }
    }

    #[test]
    fn batched_solve_is_invariant_to_chunking() {
        // The per-problem rng draw order makes the engine chunk-invariant: solving
        // 8 problems as one batch, as 3+5, or per problem gives identical results —
        // the property `CogSysSystem::run_reasoning` relies on when it slices a
        // problem stream into `batch_tasks`-sized chunks.
        let (s, mut r1) = solver(41, SolverConfig::default());
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(8, &mut r1);
        let mut r2 = r1.clone();
        let mut r3 = r1.clone();

        let whole = s.solve_batch(&problems, &mut r1).unwrap();

        let mut scratch = SolverScratch::default();
        let mut chunked = SolverReport::default();
        let mut chunked_choices = Vec::new();
        for chunk in problems.chunks(3) {
            let report = s.solve_batch_with(chunk, &mut r2, &mut scratch).unwrap();
            chunked_choices.extend_from_slice(scratch.choices());
            chunked.merge(&report);
        }
        assert_eq!(whole, chunked);

        let (seq_choices, _) = solve_sequentially(&s, &problems, &mut r3);
        assert_eq!(chunked_choices, seq_choices);
    }

    #[test]
    fn batched_solve_reuses_scratch_across_shapes() {
        // One scratch must serve alternating batch shapes and datasets without state
        // leaking between calls: each call equals a fresh-scratch run.
        let (s, mut r) = solver(42, SolverConfig::default());
        let raven = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r);
        let cvr = ProblemGenerator::new(DatasetKind::Cvr).generate_batch(2, &mut r);
        let mut shared = SolverScratch::default();
        for problems in [&raven[..], &cvr[..], &raven[..1]] {
            let mut r1 = r.clone();
            let mut r2 = r.clone();
            let reused = s.solve_batch_with(problems, &mut r1, &mut shared).unwrap();
            let reused_choices = shared.choices().to_vec();
            let mut fresh = SolverScratch::default();
            let fresh_report = s.solve_batch_with(problems, &mut r2, &mut fresh).unwrap();
            assert_eq!(reused, fresh_report);
            assert_eq!(reused_choices, fresh.choices());
        }
    }

    #[test]
    fn packed_encode_route_matches_f32_encode_bitwise() {
        // The fully packed encode (XOR-composed block planes + AND superposition)
        // must equal the f32 encode + strict pack on every panel.
        let (s, mut r) = solver(43, SolverConfig::default());
        assert!(s.packed_encode_route());
        let panels: Vec<Panel> = (0..7).map(|_| Panel::random(&mut r)).collect();
        let dense = s.encode_panels(&panels).unwrap();
        let expected = BitMatrix::from_matrix(&dense).expect("FP32 encodings are bipolar");
        let mut enc = EncodeScratch::default();
        let mut bits = BitMatrix::default();
        s.encode_panels_bits_into(&panels, &mut enc, &mut bits)
            .unwrap();
        assert_eq!(bits, expected);
        // The route steps aside at reduced precision (quantization follows the sign
        // threshold, so the planes alone no longer describe the encoding).
        let (s8, _) = solver(43, SolverConfig::default().with_precision(Precision::Int8));
        assert!(!s8.packed_encode_route());
    }

    #[test]
    fn malformed_problems_are_rejected_with_typed_errors_before_any_rng_draw() {
        use cogsys_datasets::ProblemGenerator;
        use rand::RngCore;
        let (s, mut r) = solver(50, SolverConfig::default());
        let generator = ProblemGenerator::new(DatasetKind::Raven);
        let mut problems = generator.generate_batch(3, &mut r);
        problems[1].context.pop();

        let mut probe = r.clone();
        let err = s.solve_batch(&problems, &mut r).unwrap_err();
        match err {
            SolveError::Malformed { problem: 1, fault } => {
                assert!(matches!(
                    fault,
                    ProblemFault::WrongPanelCount { got: 7, .. }
                ))
            }
            other => panic!("expected Malformed {{ problem: 1 }}, got {other:?}"),
        }
        // Rejection happened before any rng draw: the generator state is untouched,
        // so solving the valid remainder equals solving it outright.
        assert_eq!(r.next_u64(), probe.next_u64());

        // Every corruption kind maps to a typed fault, problem index intact.
        let mut r2 = rng(51);
        for _ in 0..40 {
            let bad = generator.generate_malformed(&mut r2);
            let err = s
                .solve_batch(std::slice::from_ref(&bad), &mut r2)
                .unwrap_err();
            assert!(
                matches!(err, SolveError::Malformed { problem: 0, .. }),
                "unexpected error {err:?}"
            );
            let (_, err) = (0, s.solve(&bad, &mut r2).unwrap_err());
            assert_eq!(err.problem_index(), Some(0));
        }
    }

    #[test]
    fn excising_the_poisoned_problem_reproduces_the_clean_batch() {
        // The serve-layer retry contract: validation consumes no rng, so dropping
        // the malformed problem and re-running with the same seed is bitwise the
        // same as never having submitted it.
        use cogsys_datasets::ProblemGenerator;
        let (s, mut r) = solver(52, SolverConfig::default());
        let clean = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r);
        let mut poisoned = clean.clone();
        poisoned.insert(
            2,
            ProblemGenerator::new(DatasetKind::Raven).generate_malformed(&mut rng(53)),
        );

        let mut scratch = SolverScratch::default();
        let mut r1 = r.clone();
        let err = s
            .solve_batch_with(&poisoned, &mut r1, &mut scratch)
            .unwrap_err();
        let victim = err.problem_index().expect("typed poison index");
        poisoned.remove(victim);
        let retried = s
            .solve_batch_with(&poisoned, &mut r1, &mut scratch)
            .unwrap();
        let retried_choices = scratch.choices().to_vec();

        let mut r2 = r.clone();
        let direct = s.solve_batch_with(&clean, &mut r2, &mut scratch).unwrap();
        assert_eq!(retried, direct);
        assert_eq!(retried_choices, scratch.choices());
    }

    #[test]
    fn try_new_rejects_invalid_configurations() {
        let mut r = rng(54);
        for config in [
            SolverConfig {
                vector_dim: 0,
                ..SolverConfig::default()
            },
            SolverConfig {
                perception_noise: -0.1,
                ..SolverConfig::default()
            },
            SolverConfig {
                encoding_noise: f64::NAN,
                ..SolverConfig::default()
            },
            SolverConfig {
                factorizer: FactorizerConfig::default().with_max_iterations(0),
                ..SolverConfig::default()
            },
        ] {
            let err = NeurosymbolicSolver::try_new(config, &mut r).unwrap_err();
            assert!(matches!(err, SolveError::Config { .. }), "{err:?}");
        }
        assert!(NeurosymbolicSolver::try_new(SolverConfig::default(), &mut r).is_ok());
    }

    #[test]
    fn iteration_capped_solver_shares_codebooks_and_still_answers() {
        // The degradation knob: a capped clone must produce in-range answers from
        // the same codebooks, and at the full cap it is the identical engine.
        use cogsys_datasets::ProblemGenerator;
        let (s, mut r) = solver(55, SolverConfig::default());
        let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(2, &mut r);

        let full_cap = s.with_iteration_cap(s.config().factorizer.max_iterations);
        let mut r1 = r.clone();
        let mut r2 = r.clone();
        let mut scratch = SolverScratch::default();
        let a = s
            .solve_batch_with(&problems, &mut r1, &mut scratch)
            .unwrap();
        let a_choices = scratch.choices().to_vec();
        let b = full_cap
            .solve_batch_with(&problems, &mut r2, &mut scratch)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a_choices, scratch.choices());

        let coarse = s.with_iteration_cap(1);
        assert_eq!(coarse.config().factorizer.max_iterations, 1);
        let mut r3 = r.clone();
        let report = coarse
            .solve_batch_with(&problems, &mut r3, &mut scratch)
            .unwrap();
        assert_eq!(report.problems, 2);
        // One resonator step per block per panel, plus nothing else.
        assert!(report.factorizer_iterations <= 2 * 2 * 8);
        for &c in scratch.choices() {
            assert!(c < problems[0].candidates.len());
        }
    }

    #[test]
    fn large_vocab_solver_indexed_cleanup_is_decision_identical() {
        // A 600-value vocabulary pushes every attribute codebook past
        // CLEANUP_INDEX_MIN_ROWS, so the whole decode path (resonator cleanups +
        // polish sweep + answer scoring) runs through the pruned cleanup index.
        // The index is exact: disabling it must change nothing — same choices,
        // same report, same rng consumption.
        let vocab = AttributeVocab::uniform(600);
        let config = SolverConfig {
            vector_dim: 512,
            perception_noise: 0.05, // exercise the vocab-wide perturbation draws
            factorizer: FactorizerConfig::default().with_max_iterations(8),
            vocab,
            ..SolverConfig::default()
        };
        let (indexed, mut r) = solver(60, config);
        assert!(
            indexed
                .codebooks()
                .factor(0)
                .unwrap()
                .cleanup_index()
                .is_some(),
            "600-row codebooks must carry a cleanup index"
        );
        let mut linear = indexed.clone();
        linear.disable_cleanup_index();
        assert!(linear
            .codebooks()
            .factor(0)
            .unwrap()
            .cleanup_index()
            .is_none());

        let problems =
            ProblemGenerator::with_vocab(DatasetKind::Raven, vocab).generate_batch(3, &mut r);
        for p in &problems {
            assert!(p.verify_answer_with(vocab));
        }
        // A RAVEN-vocab solver must reject these out-of-range values outright.
        let (raven, mut r0) = solver(61, SolverConfig::default());
        assert!(matches!(
            raven.solve_batch(&problems, &mut r0),
            Err(SolveError::Malformed { .. })
        ));

        let mut r1 = r.clone();
        let mut r2 = r.clone();
        let mut scratch1 = SolverScratch::default();
        let mut scratch2 = SolverScratch::default();
        let report_indexed = indexed
            .solve_batch_with(&problems, &mut r1, &mut scratch1)
            .unwrap();
        let report_linear = linear
            .solve_batch_with(&problems, &mut r2, &mut scratch2)
            .unwrap();
        assert_eq!(report_indexed, report_linear);
        assert_eq!(scratch1.choices(), scratch2.choices());
        assert_eq!(r1.next_u64(), r2.next_u64(), "rng streams diverge");
        assert_eq!(report_indexed.problems, 3);
    }

    #[test]
    fn codebooks_are_exposed_for_memory_accounting() {
        let (s, _) = solver(7, SolverConfig::default());
        assert_eq!(s.codebooks().num_factors(), 5);
        assert_eq!(s.codebooks().dim(), 2048);
        assert_eq!(s.config().vector_dim, 2048);
        // Factored codebooks are tiny compared to the expanded product space.
        assert!(s.codebooks().footprint_bytes(4) < s.codebooks().product_footprint_bytes(4) / 50);
    }

    mod plan_exec {
        use super::*;
        use crate::plan::PlanCacheStats;
        use cogsys_vsa::WordSpec;
        use proptest::prelude::*;

        #[test]
        fn plan_cache_reuses_compiled_plans() {
            let (s, mut r) = solver(70, SolverConfig::default());
            assert_eq!(s.plan_cache_stats(), PlanCacheStats::default());
            let p1 = s.plan_for_batch(4);
            let p2 = s.plan_for_batch(4);
            assert!(Arc::ptr_eq(&p1, &p2), "same key must reuse the same plan");
            assert_eq!(s.plan_cache_stats(), PlanCacheStats { hits: 1, misses: 1 });
            let p3 = s.plan_for_batch(8);
            assert!(!Arc::ptr_eq(&p1, &p3));
            assert_eq!(s.plan_cache_stats(), PlanCacheStats { hits: 1, misses: 2 });

            // The plain solve entry point goes through the same cache.
            let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(4, &mut r);
            s.solve_batch(&problems, &mut r).unwrap();
            assert_eq!(s.plan_cache_stats(), PlanCacheStats { hits: 2, misses: 2 });

            // The default 2048-dim packed solver resolves the W=32 specialization
            // and takes the whole batch in one chunk.
            assert_eq!(p1.spec, WordSpec::W32);
            assert!(p1.packed_route);
            assert_eq!(p1.chunk_problems, 4);

            // Clones start with a cold cache (plans capture per-instance state).
            let cloned = s.clone();
            assert_eq!(cloned.plan_cache_stats(), PlanCacheStats::default());

            // Disabling the cleanup index invalidates cached plans.
            let mut demoted = s.clone();
            demoted.plan_for_batch(4);
            demoted.disable_cleanup_index();
            assert_eq!(demoted.plan_cache_stats(), PlanCacheStats::default());
        }

        #[test]
        fn specialized_plan_resolves_word_spec_for_dim() {
            // The tentpole specialization table, d=1024 → W=16 in particular
            // (mirrored by the BENCH_REQUIRE_PLAN_SPEC bench-smoke gate). d=1000
            // also packs into 16 words: specialization keys on word count, and the
            // padded-tail kernels stay exact for any dim.
            for (dim, spec) in [
                (1024, WordSpec::W16),
                (1000, WordSpec::W16),
                (2048, WordSpec::W32),
                (4096, WordSpec::W64),
            ] {
                let config = SolverConfig {
                    vector_dim: dim,
                    ..SolverConfig::default()
                };
                let (s, _) = solver(74, config);
                let plan = s.plan_for_batch(8);
                assert_eq!(plan.spec, spec, "dim {dim}");
                assert!(plan.packed_route, "dim {dim}");
                assert_eq!(plan.chunk_problems, 8);
                assert!(plan.describe().contains(spec.as_str()));
            }
            // Dense backends have no packed inner loops to specialize; the plan
            // folds DENSE_SERVE_CHUNK in as its chunk width instead.
            let dense = SolverConfig::default().with_backend(BackendKind::Parallel);
            let (s, _) = solver(74, dense);
            let plan = s.plan_for_batch(8);
            assert_eq!(plan.spec, WordSpec::Generic);
            assert!(!plan.packed_route);
            assert_eq!(plan.chunk_problems, NeurosymbolicSolver::DENSE_SERVE_CHUNK);
        }

        #[test]
        fn mismatched_plan_is_rejected_before_any_rng_draw() {
            let (a, _) = solver(72, SolverConfig::default());
            let narrow = SolverConfig {
                vector_dim: 1024,
                ..SolverConfig::default()
            };
            let (b, mut r) = solver(73, narrow);
            let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(2, &mut r);
            let plan = a.compile_plan(2, true);
            let mut probe = r.clone();
            let err = b
                .solve_batch_with_plan(&plan, &problems, &mut r, &mut SolverScratch::default())
                .unwrap_err();
            assert!(matches!(err, SolveError::Config { .. }), "{err:?}");
            assert_eq!(
                r.next_u64(),
                probe.next_u64(),
                "rejection must consume no rng"
            );
        }

        #[test]
        fn planned_path_is_chunk_invariant_across_plan_batch_sizes() {
            // A plan compiled at serve chunk formation (say 64 problems) must serve
            // any submitted batch size with unchanged decisions — on the packed
            // route and on the dense sub-chunking route alike.
            for kind in [BackendKind::Packed, BackendKind::Parallel] {
                let (s, mut r) = solver(71, SolverConfig::default().with_backend(kind));
                let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(6, &mut r);
                let mut r1 = r.clone();
                let mut r2 = r.clone();

                let plan64 = s.compile_plan(64, true);
                let mut sc1 = SolverScratch::default();
                let whole = s
                    .solve_batch_with_plan(&plan64, &problems, &mut r1, &mut sc1)
                    .unwrap();
                let whole_choices = sc1.choices().to_vec();

                let plan2 = s.compile_plan(2, true);
                let mut chunked = SolverReport::default();
                let mut chunked_choices = Vec::new();
                let mut sc2 = SolverScratch::default();
                for chunk in problems.chunks(2) {
                    let rep = s
                        .solve_batch_with_plan(&plan2, chunk, &mut r2, &mut sc2)
                        .unwrap();
                    chunked_choices.extend_from_slice(sc2.choices());
                    chunked.merge(&rep);
                }
                assert_eq!(whole, chunked, "{kind}: reports diverge");
                assert_eq!(whole_choices, chunked_choices, "{kind}: choices diverge");
                assert_eq!(r1.next_u64(), r2.next_u64(), "{kind}: rng streams diverge");
            }
        }

        #[test]
        fn timed_execution_is_decision_identical_and_accounts_all_stages() {
            let (s, mut r) = solver(75, SolverConfig::default());
            let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(3, &mut r);
            let plan = s.plan_for_batch(problems.len());
            let mut r1 = r.clone();
            let mut r2 = r.clone();
            let mut sc1 = SolverScratch::default();
            let mut sc2 = SolverScratch::default();
            let mut stages = StageNanos::default();
            let timed = s
                .solve_batch_with_plan_timed(&plan, &problems, &mut r1, &mut sc1, &mut stages)
                .unwrap();
            let untimed = s
                .solve_batch_with_plan(&plan, &problems, &mut r2, &mut sc2)
                .unwrap();
            assert_eq!(timed, untimed);
            assert_eq!(sc1.choices(), sc2.choices());
            assert_eq!(r1.next_u64(), r2.next_u64());
            assert!(stages.encode > 0 && stages.decode > 0 && stages.score > 0);
            assert_eq!(stages.total(), stages.encode + stages.decode + stages.score);
        }

        #[test]
        fn planned_serving_scratch_never_reallocates_after_the_first_chunk() {
            // Steady-state serving must stay allocation-free under fusion: the
            // planned executor pre-sizes the factorizer scratch from the plan
            // key on entry, so every capacity the packed resonator (and its
            // fused kernel) touches is final after the first chunk. The
            // fingerprint is the full ordered capacity vector of the packed
            // scratch — any buffer regrowing across chunks changes it.
            let (s, mut r) = solver(76, SolverConfig::default());
            let problems = ProblemGenerator::new(DatasetKind::Raven).generate_batch(10, &mut r);
            let plan = s.plan_for_batch(4);
            assert_eq!(
                plan.resonate_fusion(0),
                Some(cogsys_vsa::FusionMode::Fused),
                "default packed plan must resolve the fused resonator"
            );
            let mut scratch = SolverScratch::default();
            // Serve an under-full chunk first: the presize keys on the *plan's*
            // chunk width, so even this 2-problem call must leave every buffer
            // at full 4-problem capacity — if sizing instead trailed the
            // submitted batch, the full chunks below would regrow the scratch
            // and change the fingerprint.
            s.solve_batch_with_plan(&plan, &problems[..2], &mut r, &mut scratch)
                .unwrap();
            let fingerprint = scratch.factorizer_capacity_fingerprint();
            assert!(
                fingerprint.iter().any(|&c| c > 0),
                "presize must have reserved the packed scratch"
            );
            for chunk in problems[2..].chunks(4) {
                s.solve_batch_with_plan(&plan, chunk, &mut r, &mut scratch)
                    .unwrap();
                assert_eq!(
                    scratch.factorizer_capacity_fingerprint(),
                    fingerprint,
                    "steady-state serving reallocated factorizer scratch"
                );
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            // The satellite pin: planned (specialized AND forced-generic) execution
            // equals the sequential per-problem path — choices, reports, final rng
            // state — across all three backends × pow2/non-pow2 dims.
            #[test]
            fn prop_planned_execution_is_decision_identical(seed in 0u64..500) {
                for kind in BackendKind::ALL {
                    for dim in [256usize, 320] {
                        let config = SolverConfig {
                            vector_dim: dim,
                            perception_noise: 0.05,
                            factorizer: FactorizerConfig::default().with_max_iterations(6),
                            ..SolverConfig::default()
                        }
                        .with_backend(kind);
                        let (s, mut r1) = solver(seed, config);
                        let problems =
                            ProblemGenerator::new(DatasetKind::Raven).generate_batch(3, &mut r1);
                        let mut r2 = r1.clone();
                        let mut r3 = r1.clone();

                        let specialized = s.compile_plan(problems.len(), true);
                        let mut sc1 = SolverScratch::default();
                        let planned = s
                            .solve_batch_with_plan(&specialized, &problems, &mut r1, &mut sc1)
                            .unwrap();

                        let generic = s.compile_plan(problems.len(), false);
                        prop_assert_eq!(generic.spec, WordSpec::Generic);
                        let mut sc2 = SolverScratch::default();
                        let generic_report = s
                            .solve_batch_with_plan(&generic, &problems, &mut r2, &mut sc2)
                            .unwrap();

                        let (seq_choices, sequential) =
                            solve_sequentially(&s, &problems, &mut r3);

                        prop_assert_eq!(planned, sequential);
                        prop_assert_eq!(generic_report, sequential);
                        prop_assert_eq!(sc1.choices(), &seq_choices[..]);
                        prop_assert_eq!(sc2.choices(), &seq_choices[..]);
                        let fingerprint = r3.next_u64();
                        prop_assert_eq!(r1.next_u64(), fingerprint);
                        prop_assert_eq!(r2.next_u64(), fingerprint);
                    }
                }
            }
        }
    }
}
