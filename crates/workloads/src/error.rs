//! Typed error surface of the solving engine.
//!
//! Every fallible entry point of [`crate::NeurosymbolicSolver`] returns
//! `Result<_, SolveError>`: malformed inputs are rejected at the engine boundary
//! with [`SolveError::Malformed`] (carrying the offending problem's index so a
//! serving layer can excise exactly that request and retry its batch-mates), VSA
//! substrate failures propagate as [`SolveError::Vsa`], and infrastructure
//! wrappers (the `cogsys-serve` chaos harness, future transport layers) surface
//! transient faults as [`SolveError::Fault`]. Nothing on the request path panics.

use cogsys_vsa::VsaError;
use std::fmt;

/// Why one problem failed the engine-boundary validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProblemFault {
    /// The context did not contain exactly the expected number of panels
    /// (a 3×3 matrix minus the answer cell: eight).
    WrongPanelCount {
        /// Number of context panels the engine requires.
        expected: usize,
        /// Number of context panels the problem carried.
        got: usize,
    },
    /// The candidate answer set was empty.
    NoCandidates,
    /// The labelled answer index pointed outside the candidate set.
    AnswerOutOfRange {
        /// The out-of-range answer index.
        answer: usize,
        /// Number of candidates actually present.
        candidates: usize,
    },
    /// A panel carried an attribute value outside the attribute's cardinality,
    /// which would index past the end of the attribute's codebook.
    ValueOutOfRange {
        /// Which panel (context panels first, then candidates).
        panel: usize,
        /// Attribute index into `Attribute::ALL`.
        attribute: usize,
        /// The out-of-range value.
        value: usize,
        /// The attribute's cardinality (valid values are `0..cardinality`).
        cardinality: usize,
    },
}

impl fmt::Display for ProblemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemFault::WrongPanelCount { expected, got } => {
                write!(f, "expected {expected} context panels, got {got}")
            }
            ProblemFault::NoCandidates => write!(f, "candidate answer set is empty"),
            ProblemFault::AnswerOutOfRange { answer, candidates } => {
                write!(f, "answer index {answer} out of range for {candidates} candidates")
            }
            ProblemFault::ValueOutOfRange {
                panel,
                attribute,
                value,
                cardinality,
            } => write!(
                f,
                "panel {panel}, attribute {attribute}: value {value} exceeds cardinality {cardinality}"
            ),
        }
    }
}

/// Errors of the end-to-end solving engine.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A VSA substrate operation failed (shape mismatch, missing packed planes, …).
    Vsa(VsaError),
    /// One problem failed the engine-boundary validation. `problem` is its index in
    /// the batch passed to the solve call, so callers can fail that request alone
    /// and retry the rest.
    Malformed {
        /// Index of the offending problem in the submitted batch.
        problem: usize,
        /// What was wrong with it.
        fault: ProblemFault,
    },
    /// The solver configuration itself was invalid (zero dimensionality, bad noise
    /// probabilities, an invalid factorizer configuration).
    Config {
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A transient infrastructure fault: not produced by the engine itself, but by
    /// wrappers on the request path (fault injection in tests, transport layers).
    /// Serving layers treat it as retryable.
    Fault {
        /// Description of the injected or encountered fault.
        message: String,
    },
}

impl SolveError {
    /// The index of the offending problem, when this error isolates one request
    /// of a batch (serving layers use it to excise the poisoned request and retry
    /// the remainder).
    pub fn problem_index(&self) -> Option<usize> {
        match self {
            SolveError::Malformed { problem, .. } => Some(*problem),
            _ => None,
        }
    }
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Vsa(e) => write!(f, "vsa error: {e}"),
            SolveError::Malformed { problem, fault } => {
                write!(f, "malformed problem {problem}: {fault}")
            }
            SolveError::Config { message } => write!(f, "invalid solver config: {message}"),
            SolveError::Fault { message } => write!(f, "transient fault: {message}"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Vsa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VsaError> for SolveError {
    fn from(e: VsaError) -> Self {
        SolveError::Vsa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SolveError::from(VsaError::Empty { what: "codebook" });
        assert!(e.to_string().contains("codebook"));
        assert!(e.problem_index().is_none());
        let e = SolveError::Malformed {
            problem: 3,
            fault: ProblemFault::NoCandidates,
        };
        assert_eq!(e.problem_index(), Some(3));
        assert!(e.to_string().contains("malformed problem 3"));
        let e = SolveError::Malformed {
            problem: 0,
            fault: ProblemFault::ValueOutOfRange {
                panel: 2,
                attribute: 4,
                value: 99,
                cardinality: 10,
            },
        };
        assert!(e.to_string().contains("99"));
        assert!(SolveError::Config {
            message: "vector_dim must be > 0".into()
        }
        .to_string()
        .contains("vector_dim"));
        assert!(SolveError::Fault {
            message: "injected".into()
        }
        .to_string()
        .contains("transient"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
