//! Performance-oriented workload descriptions (Tab. I, Fig. 4).

use cogsys_scheduler::OpGraph;
use cogsys_sim::Kernel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four representative neurosymbolic workloads of Tab. I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Neuro-Vector-Symbolic Architecture (spatial-temporal abduction reasoning).
    Nvsa,
    /// Multiple-Input-Multiple-Output Networks (computation in superposition).
    Mimonet,
    /// Learning Vector-symbolic Rules Framework (probabilistic abduction, OOD).
    Lvrf,
    /// Probabilistic Abduction and Execution learner.
    Prae,
}

impl WorkloadKind {
    /// All four workloads in Tab. I order.
    pub const ALL: [WorkloadKind; 4] = [
        WorkloadKind::Nvsa,
        WorkloadKind::Mimonet,
        WorkloadKind::Lvrf,
        WorkloadKind::Prae,
    ];
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadKind::Nvsa => "NVSA",
            WorkloadKind::Mimonet => "MIMONet",
            WorkloadKind::Lvrf => "LVRF",
            WorkloadKind::Prae => "PrAE",
        };
        write!(f, "{name}")
    }
}

/// The RPM task size (Fig. 4c compares 2×2 against 3×3 grids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskSize {
    /// 2×2 Raven's Progressive Matrix.
    Grid2x2,
    /// 3×3 Raven's Progressive Matrix (the standard RAVEN setting).
    #[default]
    Grid3x3,
}

impl TaskSize {
    /// Number of context panels the neural frontend must process.
    pub fn context_panels(self) -> usize {
        match self {
            TaskSize::Grid2x2 => 3,
            TaskSize::Grid3x3 => 8,
        }
    }

    /// Scaling factor applied to the symbolic kernel counts relative to the 3×3 case.
    pub fn symbolic_scale(self) -> f64 {
        match self {
            TaskSize::Grid2x2 => 0.35,
            TaskSize::Grid3x3 => 1.0,
        }
    }
}

/// Memory footprint of a workload, in bytes (Fig. 4d and Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryFootprint {
    /// Neural network weights.
    pub neural_bytes: usize,
    /// Original (unfactorized) symbolic knowledge codebook.
    pub symbolic_codebook_bytes: usize,
    /// Factorized per-attribute codebooks (the CogSys representation).
    pub factored_codebook_bytes: usize,
}

impl MemoryFootprint {
    /// Total footprint with the original codebook.
    pub fn total_original(&self) -> usize {
        self.neural_bytes + self.symbolic_codebook_bytes
    }

    /// Total footprint with the factorized codebook.
    pub fn total_factored(&self) -> usize {
        self.neural_bytes + self.factored_codebook_bytes
    }

    /// Codebook reduction factor achieved by factorization (Fig. 8 reports 71.4×).
    pub fn codebook_reduction(&self) -> f64 {
        if self.factored_codebook_bytes == 0 {
            return f64::INFINITY;
        }
        self.symbolic_codebook_bytes as f64 / self.factored_codebook_bytes as f64
    }
}

/// A parameterised workload model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which workload this instance models.
    pub kind: WorkloadKind,
    /// RPM task size.
    pub task_size: TaskSize,
    /// Hypervector dimensionality of the symbolic stage.
    pub vector_dim: usize,
    /// Number of circular convolutions (bind/unbind) per reasoning task.
    pub circconv_count: usize,
    /// Number of codebook rows searched per similarity step.
    pub codebook_rows: usize,
    /// Number of similarity searches per task.
    pub similarity_count: usize,
    /// Elements processed by element-wise / reduction symbolic ops per task.
    pub elementwise_elements: usize,
    /// Neural frontend layers, as GEMM-lowered shapes `(output_pixels, out_channels,
    /// reduction)` per context panel.
    pub neural_layers: Vec<(usize, usize, usize)>,
    /// Memory footprint.
    pub memory: MemoryFootprint,
}

impl WorkloadSpec {
    /// Builds the default (3×3 task) model of a workload.
    ///
    /// The parameters follow the source papers and the profiling in Sec. III: NVSA and
    /// LVRF use d = 1024 hypervectors with k = 210 / 2575 circular convolutions per
    /// task, MIMONet uses d = 64 superposition channels, and PrAE is dominated by
    /// probabilistic element-wise work. Memory footprints match Fig. 4d (neural +
    /// symbolic codebook, in MB).
    pub fn new(kind: WorkloadKind) -> Self {
        Self::with_task_size(kind, TaskSize::Grid3x3)
    }

    /// Builds a workload model for an explicit task size.
    pub fn with_task_size(kind: WorkloadKind, task_size: TaskSize) -> Self {
        let mb = |x: f64| (x * 1024.0 * 1024.0) as usize;
        let scale = task_size.symbolic_scale();
        let s = |x: usize| ((x as f64 * scale).ceil() as usize).max(1);

        // A ResNet-18-style frontend per panel (conv layers lowered to GEMM): a stem,
        // four stages of two 3x3 convolutions each, and a final projection to the
        // hypervector dimensionality.
        let resnet_frontend = vec![
            (80 * 80, 32, 3 * 7 * 7),
            (40 * 40, 64, 32 * 3 * 3),
            (20 * 20, 128, 64 * 3 * 3),
            (20 * 20, 128, 128 * 3 * 3),
            (10 * 10, 256, 128 * 3 * 3),
            (10 * 10, 256, 256 * 3 * 3),
            (5 * 5, 512, 256 * 3 * 3),
            (5 * 5, 512, 512 * 3 * 3),
            (1, 1024, 512 * 5 * 5),
        ];
        // A transformer-ish frontend for MIMONet (attention + MLP GEMMs).
        let transformer_frontend = vec![
            (256, 512, 512),
            (256, 512, 512),
            (256, 2048, 512),
            (256, 512, 2048),
        ];

        match kind {
            WorkloadKind::Nvsa => Self {
                kind,
                task_size,
                vector_dim: 1024,
                circconv_count: s(210),
                codebook_rows: 39, // sum of per-attribute codebook sizes
                similarity_count: s(80),
                elementwise_elements: s(200_000),
                neural_layers: resnet_frontend,
                memory: MemoryFootprint {
                    neural_bytes: mb(11.7),
                    symbolic_codebook_bytes: mb(19.1),
                    factored_codebook_bytes: 190 * 1024,
                },
            },
            WorkloadKind::Mimonet => Self {
                kind,
                task_size,
                vector_dim: 64,
                circconv_count: s(4096),
                codebook_rows: 64,
                similarity_count: s(256),
                elementwise_elements: s(120_000),
                neural_layers: transformer_frontend,
                memory: MemoryFootprint {
                    neural_bytes: mb(48.2),
                    symbolic_codebook_bytes: mb(23.8),
                    factored_codebook_bytes: 256 * 1024,
                },
            },
            WorkloadKind::Lvrf => Self {
                kind,
                task_size,
                vector_dim: 1024,
                circconv_count: s(2575),
                codebook_rows: 39,
                similarity_count: s(320),
                elementwise_elements: s(350_000),
                neural_layers: resnet_frontend,
                memory: MemoryFootprint {
                    neural_bytes: mb(11.7),
                    symbolic_codebook_bytes: mb(16.8),
                    factored_codebook_bytes: 190 * 1024,
                },
            },
            WorkloadKind::Prae => Self {
                kind,
                task_size,
                vector_dim: 512,
                circconv_count: s(96),
                codebook_rows: 39,
                similarity_count: s(400),
                elementwise_elements: s(2_000_000),
                neural_layers: resnet_frontend,
                memory: MemoryFootprint {
                    neural_bytes: mb(10.8),
                    symbolic_codebook_bytes: mb(20.1),
                    factored_codebook_bytes: 170 * 1024,
                },
            },
        }
    }

    /// Neural kernels for one reasoning task (one frontend pass per context panel).
    pub fn neural_kernels(&self) -> Vec<Kernel> {
        let panels = self.task_size.context_panels();
        let mut kernels = Vec::with_capacity(self.neural_layers.len());
        for &(pixels, channels, reduction) in &self.neural_layers {
            kernels.push(Kernel::Conv2d {
                // Panels are batched along the GEMM's row dimension.
                output_pixels: pixels * panels,
                out_channels: channels,
                reduction,
            });
        }
        kernels
    }

    /// Maximum size of one element-wise symbolic kernel. The symbolic stage of real
    /// neurosymbolic workloads issues many small vector operations rather than one
    /// fused kernel (Sec. III-D attributes much of the GPU's symbolic latency to exactly
    /// this dispatch pattern), so the element-wise work is split into chunks.
    const ELEMENTWISE_CHUNK: usize = 65_536;

    /// Symbolic kernels for one reasoning task.
    pub fn symbolic_kernels(&self) -> Vec<Kernel> {
        let mut kernels = vec![
            Kernel::CircConv {
                dim: self.vector_dim,
                count: self.circconv_count,
            },
            Kernel::Similarity {
                rows: self.codebook_rows,
                dim: self.vector_dim,
                count: self.similarity_count,
            },
        ];
        let mut remaining = self.elementwise_elements;
        while remaining > 0 {
            let chunk = remaining.min(Self::ELEMENTWISE_CHUNK);
            kernels.push(Kernel::ElementWise {
                elements: chunk,
                op: "mult".into(),
            });
            remaining -= chunk;
        }
        kernels.push(Kernel::ElementWise {
            elements: self.similarity_count * self.codebook_rows,
            op: "softmax".into(),
        });
        kernels
    }

    /// All kernels of one task, neural first (the symbolic stage depends on the neural
    /// output — the sequential critical path of Sec. III-B).
    pub fn task_kernels(&self) -> Vec<Kernel> {
        let mut kernels = self.neural_kernels();
        kernels.extend(self.symbolic_kernels());
        kernels
    }

    /// Builds the operation graph for `tasks` consecutive reasoning tasks.
    ///
    /// Within a task the neural layers form a chain and every symbolic kernel depends on
    /// the last neural layer; different tasks are independent, which is exactly the
    /// freedom the adSCH scheduler exploits.
    pub fn operation_graph(&self, tasks: usize) -> OpGraph {
        let mut graph = OpGraph::new();
        for task in 0..tasks {
            let mut prev = None;
            for kernel in self.neural_kernels() {
                let deps: Vec<usize> = prev.into_iter().collect();
                prev = Some(graph.add_op(task, kernel, &deps));
            }
            let neural_tail: Vec<usize> = prev.into_iter().collect();
            let mut symbolic_prev = neural_tail.clone();
            for kernel in self.symbolic_kernels() {
                let id = graph.add_op(task, kernel, &symbolic_prev);
                symbolic_prev = vec![id];
            }
        }
        graph
    }

    /// The share of total FLOPs spent in symbolic kernels — small (the paper reports
    /// ~19% for NVSA) even though symbolic latency dominates on CPUs/GPUs.
    pub fn symbolic_flop_share(&self) -> f64 {
        let graph = self.operation_graph(1);
        let (neural, symbolic) = graph.flops_by_class();
        symbolic as f64 / (neural + symbolic).max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cogsys_sim::KernelClass;

    #[test]
    fn all_workloads_build_consistent_specs() {
        for kind in WorkloadKind::ALL {
            let spec = WorkloadSpec::new(kind);
            assert_eq!(spec.kind, kind);
            assert!(spec.vector_dim > 0);
            assert!(spec.circconv_count > 0);
            assert!(!spec.neural_layers.is_empty());
            assert!(spec.memory.total_original() > spec.memory.total_factored());
            assert!(spec.memory.codebook_reduction() > 10.0);
        }
        assert_eq!(WorkloadKind::Nvsa.to_string(), "NVSA");
    }

    #[test]
    fn nvsa_parameters_match_paper() {
        let nvsa = WorkloadSpec::new(WorkloadKind::Nvsa);
        assert_eq!(nvsa.vector_dim, 1024);
        assert_eq!(nvsa.circconv_count, 210);
        // Fig. 4d: 11.7 MB neural + 19.1 MB symbolic codebook.
        assert_eq!(nvsa.memory.neural_bytes, (11.7 * 1024.0 * 1024.0) as usize);
        assert_eq!(
            nvsa.memory.symbolic_codebook_bytes,
            (19.1 * 1024.0 * 1024.0) as usize
        );
        // Fig. 8: the factorized codebook is ~190 KB, a >70x reduction over the 13.56 MB
        // codebook portion it replaces (we compare against the 19.1 MB symbolic total
        // here, so the ratio is even larger).
        assert!(nvsa.memory.codebook_reduction() > 70.0);
        let lvrf = WorkloadSpec::new(WorkloadKind::Lvrf);
        assert_eq!(lvrf.circconv_count, 2575);
        let mimonet = WorkloadSpec::new(WorkloadKind::Mimonet);
        assert_eq!(mimonet.vector_dim, 64);
    }

    #[test]
    fn symbolic_flops_are_minor_share() {
        // Sec. III-B: NVSA's symbolic FLOPs are ~19% of the total even though its
        // symbolic runtime share is ~87% on GPUs. LVRF's much larger k (2575 circular
        // convolutions) pushes its share higher, but symbolic work never dominates the
        // FLOP count the way it dominates the runtime.
        let nvsa_share = WorkloadSpec::new(WorkloadKind::Nvsa).symbolic_flop_share();
        assert!(
            (0.05..0.35).contains(&nvsa_share),
            "NVSA share {nvsa_share}"
        );
        for kind in WorkloadKind::ALL {
            let share = WorkloadSpec::new(kind).symbolic_flop_share();
            assert!(share > 0.0 && share < 0.8, "{kind}: share {share}");
        }
    }

    #[test]
    fn task_size_scaling() {
        let small = WorkloadSpec::with_task_size(WorkloadKind::Nvsa, TaskSize::Grid2x2);
        let large = WorkloadSpec::new(WorkloadKind::Nvsa);
        assert!(small.circconv_count < large.circconv_count);
        assert_eq!(TaskSize::Grid2x2.context_panels(), 3);
        assert_eq!(TaskSize::Grid3x3.context_panels(), 8);
        let (sn, ss) = small.operation_graph(1).flops_by_class();
        let (ln, ls) = large.operation_graph(1).flops_by_class();
        assert!(sn < ln);
        assert!(ss < ls);
    }

    #[test]
    fn operation_graph_structure() {
        let spec = WorkloadSpec::new(WorkloadKind::Nvsa);
        let single = spec.operation_graph(1);
        assert!(single.validate().is_ok());
        assert_eq!(single.num_tasks(), 1);
        assert_eq!(
            single.len(),
            spec.neural_kernels().len() + spec.symbolic_kernels().len()
        );
        // Symbolic ops come after neural ops in dependency order.
        let symbolic_ids: Vec<usize> = single
            .iter()
            .filter(|n| n.class() == KernelClass::Symbolic)
            .map(|n| n.id)
            .collect();
        let max_neural = single
            .iter()
            .filter(|n| n.class() == KernelClass::Neural)
            .map(|n| n.id)
            .max()
            .unwrap();
        assert!(symbolic_ids.iter().all(|&id| id > max_neural));

        let multi = spec.operation_graph(3);
        assert_eq!(multi.num_tasks(), 3);
        assert_eq!(multi.len(), 3 * single.len());
        assert!(multi.validate().is_ok());
    }

    #[test]
    fn kernel_lists_are_nonempty_and_classified() {
        let spec = WorkloadSpec::new(WorkloadKind::Lvrf);
        assert!(spec
            .neural_kernels()
            .iter()
            .all(|k| k.class() == KernelClass::Neural));
        assert!(spec
            .symbolic_kernels()
            .iter()
            .all(|k| k.class() == KernelClass::Symbolic));
        assert_eq!(
            spec.task_kernels().len(),
            spec.neural_kernels().len() + spec.symbolic_kernels().len()
        );
    }
}
