//! Compile-once/run-many plan IR for the batched solve pipeline.
//!
//! The paper's codesign story decides layout, kernel tiers and schedule per workload
//! shape **once**, then executes that decision at line rate. This module is the
//! software analogue: [`NeurosymbolicSolver::compile_plan`] resolves every per-call
//! routing question — packed vs dense encode, chunk width, per-factor cleanup route
//! (linear scan vs pruned [`cogsys_vsa::CleanupIndex`]), and the const-generic
//! word-count specialization ([`WordSpec`]) that monomorphizes the hamming /
//! projection / noise inner loops — into a [`SolvePlan`], cached per [`PlanKey`] in a
//! [`PlanCache`]. The executor ([`NeurosymbolicSolver::solve_batch_with`]) then just
//! replays the plan's decisions; it re-derives nothing.
//!
//! ```text
//!   (backend, dim, blocks, batch, codebook_rows)          PlanKey
//!                    │ compile_plan (once, cached)
//!                    ▼
//!   Encode → [Resonate → Polish]×blocks → Predict → Score  SolvePlan (stage IR)
//!                    │ solve_batch_with_plan (per call)
//!                    ▼
//!   thin executor: pre-resolved route/spec/chunk, no per-call re-derivation
//! ```
//!
//! The plan also gives `cogsys-scheduler` (ADSCH) and `cogsys-sim` their first live
//! target: [`SolvePlan::op_graph`] lowers the stage IR into the scheduler's
//! [`OpGraph`], so real solve stages — not synthetic workload specs — can be
//! scheduled and their cost estimates validated against measured kernel cells.
//!
//! [`NeurosymbolicSolver::compile_plan`]: crate::NeurosymbolicSolver::compile_plan
//! [`NeurosymbolicSolver::solve_batch_with`]: crate::NeurosymbolicSolver::solve_batch_with

use cogsys_scheduler::OpGraph;
use cogsys_sim::Kernel;
use cogsys_vsa::{BackendKind, CleanupRoute, FusionMode, WordSpec};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The workload-shape key a [`SolvePlan`] is compiled for.
///
/// Two solve calls with equal keys are served by the same cached plan: every routing
/// decision the plan pre-resolves depends only on these fields (plus solver
/// configuration, which is fixed per solver instance — each solver owns its own
/// [`PlanCache`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanKey {
    /// Execution backend the pipeline runs on.
    pub backend: BackendKind,
    /// Hypervector dimensionality.
    pub dim: usize,
    /// Number of attribute blocks in the scene superposition.
    pub blocks: usize,
    /// Problems per solve call (the plan's chunking decision is batch-dependent only
    /// through the packed/dense route, but the key keeps batch explicit so stage row
    /// counts in the IR — and therefore the lowered op graph — are exact).
    pub batch: usize,
    /// Rows of each attribute codebook, in attribute order (cleanup-route choices and
    /// Similarity-kernel shapes depend on them).
    pub codebook_rows: Vec<usize>,
}

/// Nominal candidate panels per problem used to shape the Score stage of the lowered
/// op graph (RPM answer sets carry 8 candidates).
pub const NOMINAL_CANDIDATES: usize = 8;

/// One fused kernel stage of a compiled [`SolvePlan`].
///
/// Stages mirror the executor's phases over a batch of `problems × 8` context-panel
/// rows: one batched encode, then per attribute block a resonator factorization and a
/// coordinate-descent polish sweep, then the pure-symbolic rule prediction, then one
/// batched answer-scoring pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanStage {
    /// Batched scene encode of every context panel (`rows = problems × 8`).
    Encode {
        /// Panel rows encoded.
        rows: usize,
        /// `true` when scenes are born as sign planes (XOR/AND-composed from cached
        /// codebook planes) instead of f32 rows.
        packed: bool,
    },
    /// Iterative resonator factorization of one attribute block over the whole batch.
    Resonate {
        /// Attribute-block index.
        block: usize,
        /// Rows factorized.
        rows: usize,
        /// Factors in the block.
        factors: usize,
        /// Rows of each factor codebook (similarity-search shape per iteration).
        codebook_rows: Vec<usize>,
        /// `true` on the bit-packed resonator engine.
        packed: bool,
        /// Configured iteration cap of the resonator loop — the worst-case trip
        /// count the scheduler lowering charges the stage with (rows converge
        /// and compact out earlier at run time).
        iterations: usize,
        /// How the packed iteration executes: the fused single-pass mega-kernel
        /// or the split three-kernel reference sequence (decision-identical;
        /// only meaningful when `packed`).
        fusion: FusionMode,
    },
    /// One coordinate-descent polish sweep (unbind-all-but + cleanup per factor),
    /// with the cleanup route pre-chosen per factor.
    Polish {
        /// Attribute-block index.
        block: usize,
        /// Rows polished.
        rows: usize,
        /// Pre-resolved cleanup route per factor of the block.
        routes: Vec<CleanupRoute>,
    },
    /// Per-problem rule abduction + execution (pure symbolic, no VSA kernels).
    Predict {
        /// Problems predicted.
        problems: usize,
    },
    /// Batched answer selection: encode predictions + candidates, score each
    /// candidate against its problem's prediction.
    Score {
        /// Problems scored.
        problems: usize,
        /// Panel rows encoded for scoring (predictions + candidates).
        rows: usize,
        /// `true` when scoring runs over sign planes (popcount cosine).
        packed: bool,
    },
}

impl PlanStage {
    /// Short stage name used by [`SolvePlan::describe`] and bench cell labels.
    pub fn name(&self) -> &'static str {
        match self {
            PlanStage::Encode { .. } => "encode",
            PlanStage::Resonate { .. } => "resonate",
            PlanStage::Polish { .. } => "polish",
            PlanStage::Predict { .. } => "predict",
            PlanStage::Score { .. } => "score",
        }
    }

    /// Lowers the stage onto the accelerator-model kernel vocabulary of
    /// `cogsys-sim`, the shape the ADSCH scheduler costs and places.
    ///
    /// The mapping follows the dominant arithmetic of each stage: encoding is
    /// per-row binding ([`Kernel::CircConv`] is the paper's binding kernel class),
    /// resonator and scoring are codebook similarity searches, and the polish sweep
    /// is one cleanup search per factor. `Predict` is control-flow-only symbolic
    /// work, lowered as a per-problem element-wise op so the scheduler still sees
    /// (and orders) the stage.
    ///
    /// The resonate lowering is **iteration-aware**: the similarity count is the
    /// row count multiplied by the configured iteration cap, so the scheduled
    /// stage shares track the measured `plan_stage_*` cells (one resonator call
    /// runs the per-iteration kernels up to `iterations` times) instead of
    /// charging a single sweep.
    pub fn kernel(&self, dim: usize) -> Kernel {
        match self {
            PlanStage::Encode { rows, .. } => Kernel::CircConv { dim, count: *rows },
            PlanStage::Resonate {
                rows,
                codebook_rows,
                iterations,
                ..
            } => Kernel::Similarity {
                rows: codebook_rows.iter().sum::<usize>().max(1),
                dim,
                count: rows * iterations.max(&1),
            },
            PlanStage::Polish { rows, routes, .. } => Kernel::Similarity {
                rows: routes.len().max(1),
                dim,
                count: *rows,
            },
            PlanStage::Predict { problems } => Kernel::ElementWise {
                elements: problems * NOMINAL_CANDIDATES,
                op: "predict".into(),
            },
            PlanStage::Score { problems, rows, .. } => Kernel::Similarity {
                rows: (*rows).max(1),
                dim,
                count: problems * NOMINAL_CANDIDATES,
            },
        }
    }
}

/// A compiled, immutable execution plan for one workload shape.
///
/// Produced by `NeurosymbolicSolver::compile_plan`, cached in a [`PlanCache`], and
/// executed by `solve_batch_with_plan`. All fields are decisions the unplanned path
/// used to re-derive per call; the plan resolves them once. Executing a plan is
/// decision-identical to the unplanned path **by construction**: every field holds
/// exactly the value the per-call derivation would have computed for this key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolvePlan {
    /// The workload shape this plan was compiled for.
    pub key: PlanKey,
    /// `true` when scenes are encoded directly into sign planes end to end.
    pub packed_route: bool,
    /// On the dense route: `true` when the f32 encode is followed by one strict pack
    /// because at least one block decodes packed.
    pub pack_dense_bits: bool,
    /// Problems per executor chunk (whole batch on the packed route; the dense
    /// engines' cache-resident sub-chunk width otherwise).
    pub chunk_problems: usize,
    /// Const-generic word-count specialization of the packed inner loops, or
    /// [`WordSpec::Generic`] for the runtime-length kernels.
    pub spec: WordSpec,
    /// The fused stage IR, in execution order.
    pub stages: Vec<PlanStage>,
}

impl SolvePlan {
    /// Human-readable description of the compiled plan: key, specialization, route,
    /// chunk width, and the stage list — the `--explain` output of the bench and
    /// serve binaries.
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "plan {}/d={} blocks={} batch={} rows={:?}",
            self.key.backend, self.key.dim, self.key.blocks, self.key.batch, self.key.codebook_rows,
        );
        let _ = writeln!(
            out,
            "  route={} spec={} chunk={}",
            if self.packed_route {
                "packed"
            } else if self.pack_dense_bits {
                "dense+pack"
            } else {
                "dense"
            },
            self.spec.as_str(),
            self.chunk_problems,
        );
        for (i, stage) in self.stages.iter().enumerate() {
            let detail = match stage {
                PlanStage::Encode { rows, packed } => {
                    format!("rows={rows} packed={packed}")
                }
                PlanStage::Resonate {
                    block,
                    rows,
                    factors,
                    codebook_rows,
                    packed,
                    iterations,
                    fusion,
                } => format!(
                    "block={block} rows={rows} factors={factors} cb={codebook_rows:?} \
                     packed={packed} iters={iterations} fusion={fusion}"
                ),
                PlanStage::Polish {
                    block,
                    rows,
                    routes,
                } => {
                    let routes: Vec<&str> = routes.iter().map(|r| r.as_str()).collect();
                    format!("block={block} rows={rows} routes={routes:?}")
                }
                PlanStage::Predict { problems } => format!("problems={problems}"),
                PlanStage::Score {
                    problems,
                    rows,
                    packed,
                } => format!("problems={problems} rows={rows} packed={packed}"),
            };
            let _ = writeln!(out, "  [{i}] {:<8} {detail}", stage.name());
        }
        out
    }

    /// The pre-resolved [`FusionMode`] of block `block`'s resonate stage, or
    /// `None` when the plan carries no resonate stage for that block.
    pub fn resonate_fusion(&self, block: usize) -> Option<FusionMode> {
        self.stages.iter().find_map(|stage| match stage {
            PlanStage::Resonate {
                block: b, fusion, ..
            } if *b == block => Some(*fusion),
            _ => None,
        })
    }

    /// The pre-resolved cleanup routes of block `block`'s polish stage (one per
    /// factor), or `None` when the plan carries no polish stage for that block.
    pub fn polish_routes(&self, block: usize) -> Option<&[CleanupRoute]> {
        self.stages.iter().find_map(|stage| match stage {
            PlanStage::Polish {
                block: b, routes, ..
            } if *b == block => Some(routes.as_slice()),
            _ => None,
        })
    }

    /// Lowers the plan into the scheduler's operation graph: one op per stage, as a
    /// linear dependence chain under task id `task` (the executor's stages are
    /// sequential over one batch; cross-batch parallelism comes from appending
    /// several tasks' graphs).
    pub fn op_graph(&self, task: usize) -> OpGraph {
        let mut graph = OpGraph::new();
        let mut prev = None;
        for stage in &self.stages {
            let deps: Vec<usize> = prev.into_iter().collect();
            prev = Some(graph.add_op(task, stage.kernel(self.key.dim), &deps));
        }
        graph
    }
}

/// Hit/miss counters of a [`PlanCache`] (the `--explain` observability surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlanCacheStats {
    /// Lookups served by an already-compiled plan.
    pub hits: usize,
    /// Lookups that compiled a new plan.
    pub misses: usize,
}

#[derive(Debug, Default)]
struct PlanCacheInner {
    plans: HashMap<PlanKey, Arc<SolvePlan>>,
    stats: PlanCacheStats,
}

/// Per-solver cache of compiled [`SolvePlan`]s, keyed by [`PlanKey`].
///
/// Interior-mutable (`&self` lookups) so the solver's `solve_batch_with` — which
/// takes `&self` — can compile lazily. Cloning a solver yields a **fresh, empty**
/// cache: cached routes reference the clone's codebook state (e.g. cleanup indexes
/// that `disable_cleanup_index` may since have dropped), so plans never travel
/// between instances.
#[derive(Debug, Default)]
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
}

impl Clone for PlanCache {
    /// A cloned cache starts empty (see the type-level docs for why).
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PlanCache {
    /// Returns the cached plan for `key`, or compiles one with `compile` and caches
    /// it. Same key → same `Arc` (pointer-equal), no recompile.
    pub fn get_or_compile<F>(&self, key: &PlanKey, compile: F) -> Arc<SolvePlan>
    where
        F: FnOnce() -> SolvePlan,
    {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        if let Some(plan) = inner.plans.get(key).map(Arc::clone) {
            inner.stats.hits += 1;
            return plan;
        }
        inner.stats.misses += 1;
        let plan = Arc::new(compile());
        inner.plans.insert(key.clone(), Arc::clone(&plan));
        plan
    }

    /// Hit/miss counters since construction (or the last [`PlanCache::clear`]).
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().expect("plan cache poisoned").stats
    }

    /// Number of distinct compiled plans currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("plan cache poisoned").plans.len()
    }

    /// Returns `true` when no plan has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan and resets the counters. Called when solver state a
    /// plan captured changes (e.g. `disable_cleanup_index` demoting cleanup routes).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.plans.clear();
        inner.stats = PlanCacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(batch: usize) -> PlanKey {
        PlanKey {
            backend: BackendKind::Packed,
            dim: 1024,
            blocks: 2,
            batch,
            codebook_rows: vec![9, 9, 5, 6, 10],
        }
    }

    fn plan(batch: usize) -> SolvePlan {
        SolvePlan {
            key: key(batch),
            packed_route: true,
            pack_dense_bits: false,
            chunk_problems: batch,
            spec: WordSpec::W16,
            stages: vec![
                PlanStage::Encode {
                    rows: batch * 8,
                    packed: true,
                },
                PlanStage::Resonate {
                    block: 0,
                    rows: batch * 8,
                    factors: 3,
                    codebook_rows: vec![9, 9, 5],
                    packed: true,
                    iterations: 200,
                    fusion: FusionMode::Fused,
                },
                PlanStage::Polish {
                    block: 0,
                    rows: batch * 8,
                    routes: vec![CleanupRoute::Linear; 3],
                },
                PlanStage::Predict { problems: batch },
                PlanStage::Score {
                    problems: batch,
                    rows: batch * (NOMINAL_CANDIDATES + 1),
                    packed: true,
                },
            ],
        }
    }

    #[test]
    fn describe_names_every_stage_and_the_spec() {
        let text = plan(4).describe();
        for needle in [
            "packed/d=1024",
            "spec=W=16",
            "chunk=4",
            "encode",
            "resonate",
            "polish",
            "predict",
            "score",
            "iters=200",
            "fusion=fused",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn resonate_fusion_reports_the_per_block_decision() {
        let p = plan(4);
        assert_eq!(p.resonate_fusion(0), Some(FusionMode::Fused));
        assert_eq!(p.resonate_fusion(1), None);
    }

    #[test]
    fn resonate_lowering_is_iteration_aware() {
        // The lowered similarity count charges the configured iteration cap, so
        // the scheduled share of the resonate stage tracks what the executor can
        // actually spend there — not a single sweep.
        let mut capped = plan(4);
        let mut single = plan(4);
        if let PlanStage::Resonate { iterations, .. } = &mut capped.stages[1] {
            *iterations = 200;
        }
        if let PlanStage::Resonate { iterations, .. } = &mut single.stages[1] {
            *iterations = 1;
        }
        let dim = capped.key.dim;
        let capped_flops = capped.stages[1].kernel(dim).flops();
        let single_flops = single.stages[1].kernel(dim).flops();
        assert_eq!(capped_flops, 200 * single_flops);
    }

    #[test]
    fn op_graph_is_a_valid_linear_chain_over_the_stages() {
        let p = plan(4);
        let g = p.op_graph(3);
        assert_eq!(g.len(), p.stages.len());
        assert!(g.validate().is_ok());
        for (i, node) in g.iter().enumerate() {
            assert_eq!(node.task, 3);
            assert_eq!(node.deps, if i == 0 { vec![] } else { vec![i - 1] });
        }
        // Every VSA stage lowers to a symbolic kernel with nonzero work.
        for node in &g {
            assert!(node.kernel.flops() > 0, "{:?}", node.kernel);
        }
    }

    #[test]
    fn cache_reuses_plans_by_key_and_counts_hits() {
        let cache = PlanCache::default();
        let a = cache.get_or_compile(&key(4), || plan(4));
        let b = cache.get_or_compile(&key(4), || plan(4));
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same plan");
        let c = cache.get_or_compile(&key(8), || plan(8));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 2 });
        assert_eq!(cache.len(), 2);

        // Clones start cold; clear drops plans and counters.
        let cloned = cache.clone();
        assert!(cloned.is_empty());
        assert_eq!(cloned.stats(), PlanCacheStats::default());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }
}
