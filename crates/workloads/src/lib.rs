//! # cogsys-workloads — neurosymbolic workload models
//!
//! Two complementary views of the paper's four workloads (NVSA, MIMONet, LVRF, PrAE —
//! Tab. I):
//!
//! * [`spec`] — *performance* view: each workload as a parameterised [`WorkloadSpec`]
//!   with its neural layer shapes, symbolic kernel counts, vector dimensionality and
//!   memory footprints, from which operation graphs for the scheduler/simulator and
//!   kernel lists for the baseline device models are generated. These drive every
//!   latency/energy figure (Fig. 4, 15, 16, 18, 19, Tab. X).
//! * [`pipeline`] — *functional* view: an end-to-end VSA abduction reasoner (perception
//!   encoding → codebook factorization → rule abduction → execution → answer selection)
//!   built on `cogsys-vsa`, `cogsys-factorizer` and `cogsys-datasets`. This produces the
//!   reasoning-accuracy numbers (Tab. VII, Tab. VIII).
//!
//! # Example
//!
//! ```rust
//! use cogsys_workloads::{WorkloadKind, WorkloadSpec};
//!
//! let nvsa = WorkloadSpec::new(WorkloadKind::Nvsa);
//! let graph = nvsa.operation_graph(2);
//! assert!(graph.len() > 4);
//! // Symbolic FLOPs are a small fraction of the total, yet dominate runtime on
//! // conventional hardware — the core observation of the paper's Sec. III.
//! let (neural, symbolic) = graph.flops_by_class();
//! assert!(symbolic < neural);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod pipeline;
pub mod plan;
pub mod spec;

pub use error::{ProblemFault, SolveError};
pub use pipeline::{NeurosymbolicSolver, SolverConfig, SolverReport, SolverScratch, StageNanos};
pub use plan::{PlanCache, PlanCacheStats, PlanKey, PlanStage, SolvePlan};
pub use spec::{MemoryFootprint, TaskSize, WorkloadKind, WorkloadSpec};
