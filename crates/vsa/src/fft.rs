//! A small self-contained FFT used for `O(d log d)` circular convolution.
//!
//! The CogSys accelerator performs circular convolution directly in the time domain
//! (bubble-streaming dataflow, Sec. V-C); the FFT path here exists so the *functional*
//! pipelines (factorizer, workload models) can run at large dimensionality without the
//! `O(d^2)` cost, and so tests can cross-check the naive, FFT, and simulated-hardware
//! implementations against each other.
//!
//! Only power-of-two sizes take the radix-2 path; other sizes fall back to the naive
//! algorithm in [`crate::ops`] at the call site.

use std::f64::consts::PI;

/// A complex number with `f64` parts, sufficient for the FFT's internal use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// The inherent `mul`/`add`/`sub` names predate this PR's clippy gate; they are used
// pervasively by value (no operator-trait ergonomics lost) and renaming them would
// churn every FFT call site.
#[allow(clippy::should_implement_trait)]
impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    pub fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    pub fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex subtraction.
    pub fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse = true` computes the unscaled inverse transform; the caller is responsible
/// for dividing by `n`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "fft size must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = 2.0 * PI / len as f64 * if inverse { 1.0 } else { -1.0 };
        let wlen = Complex::new(angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// A precomputed radix-2 FFT plan for one transform size.
///
/// [`fft_in_place`] recomputes every twiddle factor and re-derives the bit-reversal
/// permutation on each call; a plan hoists both into lookup tables so the batched
/// backends can amortise that work across thousands of transforms. The twiddle tables
/// are filled with the *same* `w ← w·w_len` recurrence the direct implementation uses,
/// so planned and direct transforms produce bitwise-identical results.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Swap pairs `(i, j)` with `i < j` of the bit-reversal permutation.
    swaps: Vec<(u32, u32)>,
    /// Forward twiddles, stages concatenated: len = 2, 4, ..., n (n − 1 entries).
    forward: Vec<Complex>,
    /// Inverse twiddles in the same layout.
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_power_of_two(n), "fft size must be a power of two");

        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }

        let mut tables = [
            Vec::with_capacity(n.saturating_sub(1)),
            Vec::with_capacity(n.saturating_sub(1)),
        ];
        for (slot, inverse) in tables.iter_mut().zip([false, true]) {
            let mut len = 2;
            while len <= n {
                let angle = 2.0 * PI / len as f64 * if inverse { 1.0 } else { -1.0 };
                let wlen = Complex::new(angle.cos(), angle.sin());
                let mut w = Complex::new(1.0, 0.0);
                for _ in 0..len / 2 {
                    slot.push(w);
                    w = w.mul(wlen);
                }
                len <<= 1;
            }
        }
        let [forward, inverse] = tables;

        Self {
            n,
            swaps,
            forward,
            inverse,
        }
    }

    /// The transform size this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` for the degenerate size-0 plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place FFT using the precomputed tables; identical semantics (and identical
    /// floating-point results) to [`fft_in_place`].
    ///
    /// # Panics
    /// Panics if `data.len()` differs from the planned size.
    pub fn apply(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        assert_eq!(data.len(), n, "fft plan size mismatch");
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            data.swap(i as usize, j as usize);
        }
        let twiddles = if inverse {
            &self.inverse
        } else {
            &self.forward
        };
        let mut len = 2;
        let mut stage_offset = 0;
        while len <= n {
            let half = len / 2;
            let stage = &twiddles[stage_offset..stage_offset + half];
            let mut i = 0;
            while i < n {
                for (k, w) in stage.iter().enumerate() {
                    let u = data[i + k];
                    let v = data[i + k + half].mul(*w);
                    data[i + k] = u.add(v);
                    data[i + k + half] = u.sub(v);
                }
                i += len;
            }
            stage_offset += half;
            len <<= 1;
        }
    }

    /// Planned circular convolution of two real rows into `out`, using caller-provided
    /// scratch buffers (resized on first use, reused afterwards — no steady-state
    /// allocation).
    ///
    /// # Panics
    /// Panics if `a`, `b` or `out` differ from the planned size.
    pub fn circular_convolve_into(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch_a: &mut Vec<Complex>,
        scratch_b: &mut Vec<Complex>,
    ) {
        self.transform_pair(a, b, scratch_a, scratch_b);
        for (x, y) in scratch_a.iter_mut().zip(scratch_b.iter()) {
            *x = x.mul(*y);
        }
        self.finish_real(out, scratch_a);
    }

    /// Planned circular correlation of `a` with `b` into `out` (see
    /// [`circular_correlate_fft`]).
    ///
    /// # Panics
    /// Panics if `a`, `b` or `out` differ from the planned size.
    pub fn circular_correlate_into(
        &self,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        scratch_a: &mut Vec<Complex>,
        scratch_b: &mut Vec<Complex>,
    ) {
        self.transform_pair(a, b, scratch_a, scratch_b);
        for (x, y) in scratch_a.iter_mut().zip(scratch_b.iter()) {
            *x = x.mul(y.conj());
        }
        self.finish_real(out, scratch_a);
    }

    fn transform_pair(
        &self,
        a: &[f32],
        b: &[f32],
        scratch_a: &mut Vec<Complex>,
        scratch_b: &mut Vec<Complex>,
    ) {
        assert_eq!(a.len(), self.n, "fft plan size mismatch");
        assert_eq!(b.len(), self.n, "fft plan size mismatch");
        scratch_a.clear();
        scratch_a.extend(a.iter().map(|&x| Complex::new(x as f64, 0.0)));
        scratch_b.clear();
        scratch_b.extend(b.iter().map(|&x| Complex::new(x as f64, 0.0)));
        self.apply(scratch_a, false);
        self.apply(scratch_b, false);
    }

    fn finish_real(&self, out: &mut [f32], scratch: &mut [Complex]) {
        assert_eq!(out.len(), self.n, "fft plan size mismatch");
        self.apply(scratch, true);
        for (slot, c) in out.iter_mut().zip(scratch.iter()) {
            *slot = (c.re / self.n as f64) as f32;
        }
    }
}

/// Circular convolution of two equal-length real sequences via FFT.
///
/// Returns `None` when the length is not a power of two (callers then use the naive
/// time-domain algorithm). Output has the same length as the inputs.
pub fn circular_convolve_fft(a: &[f32], b: &[f32]) -> Option<Vec<f32>> {
    let n = a.len();
    if n != b.len() || !is_power_of_two(n) {
        return None;
    }
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = x.mul(*y);
    }
    fft_in_place(&mut fa, true);
    Some(fa.iter().map(|c| (c.re / n as f64) as f32).collect())
}

/// Circular correlation (`a` correlated with `b`) via FFT: `FFT^-1(conj(FFT(b)) * FFT(a))`.
///
/// Circular correlation is the approximate inverse of circular convolution binding and
/// is what the nsPE performs when the stationary vector is reversed (Sec. V-B).
/// Returns `None` when the length is not a power of two.
pub fn circular_correlate_fft(a: &[f32], b: &[f32]) -> Option<Vec<f32>> {
    let n = a.len();
    if n != b.len() || !is_power_of_two(n) {
        return None;
    }
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = x.mul(y.conj());
    }
    fft_in_place(&mut fa, true);
    Some(fa.iter().map(|c| (c.re / n as f64) as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_circular_convolve(a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = a.len();
        (0..n)
            .map(|i| (0..n).map(|k| a[k] * b[(i + n - k) % n]).sum::<f32>())
            .collect()
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1000));
    }

    #[test]
    fn fft_inverse_round_trip() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * 2) as f64))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (o, d) in original.iter().zip(&data) {
            assert!((o.re - d.re / 16.0).abs() < 1e-9);
            assert!((o.im - d.im / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_convolution_matches_naive() {
        let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.5, 2.0, -3.0];
        let b: Vec<f32> = vec![0.5, -1.0, 2.0, 1.0, 1.0, -2.0, 0.0, 3.0];
        let fft = circular_convolve_fft(&a, &b).unwrap();
        let naive = naive_circular_convolve(&a, &b);
        for (x, y) in fft.iter().zip(&naive) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let a = vec![1.0; 6];
        let b = vec![1.0; 6];
        assert!(circular_convolve_fft(&a, &b).is_none());
        assert!(circular_correlate_fft(&a, &b).is_none());
    }

    #[test]
    fn correlation_undoes_convolution_with_identity() {
        // conv(a, delta) = a, and correlate(a, delta) = a as well.
        let mut delta = vec![0.0_f32; 8];
        delta[0] = 1.0;
        let a = vec![3.0, 1.0, -2.0, 0.5, 4.0, -1.0, 2.0, 7.0];
        let conv = circular_convolve_fft(&a, &delta).unwrap();
        let corr = circular_correlate_fft(&a, &delta).unwrap();
        for ((c1, c2), orig) in conv.iter().zip(&corr).zip(&a) {
            assert!((c1 - orig).abs() < 1e-4);
            assert!((c2 - orig).abs() < 1e-4);
        }
    }

    #[test]
    fn plan_matches_direct_fft_bitwise() {
        for n in [1usize, 2, 8, 64, 256] {
            let plan = FftPlan::new(n);
            let mut direct: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            let mut planned = direct.clone();
            for inverse in [false, true] {
                fft_in_place(&mut direct, inverse);
                plan.apply(&mut planned, inverse);
                for (d, p) in direct.iter().zip(&planned) {
                    assert_eq!(d.re.to_bits(), p.re.to_bits());
                    assert_eq!(d.im.to_bits(), p.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn planned_convolution_matches_unplanned_bitwise() {
        let n = 128;
        let a: Vec<f32> = (0..n).map(|i| ((i * 7 % 13) as f32) - 6.0).collect();
        let b: Vec<f32> = (0..n).map(|i| ((i * 5 % 11) as f32) - 5.0).collect();
        let plan = FftPlan::new(n);
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        let mut out = vec![0.0f32; n];
        plan.circular_convolve_into(&a, &b, &mut out, &mut sa, &mut sb);
        let reference = circular_convolve_fft(&a, &b).unwrap();
        assert_eq!(
            out.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        // Scratch buffers are reusable: a second call must give the same answer.
        let mut out2 = vec![0.0f32; n];
        plan.circular_convolve_into(&a, &b, &mut out2, &mut sa, &mut sb);
        assert_eq!(out, out2);

        let mut corr = vec![0.0f32; n];
        plan.circular_correlate_into(&a, &b, &mut corr, &mut sa, &mut sb);
        let corr_ref = circular_correlate_fft(&a, &b).unwrap();
        assert_eq!(
            corr.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            corr_ref.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let prod = a.mul(b);
        assert!((prod.re - 5.0).abs() < 1e-12);
        assert!((prod.im - 5.0).abs() < 1e-12);
        assert_eq!(a.conj().im, -2.0);
        assert_eq!(a.add(b).re, 4.0);
        assert_eq!(a.sub(b).im, 3.0);
    }
}
