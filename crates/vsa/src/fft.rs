//! A small self-contained FFT used for `O(d log d)` circular convolution.
//!
//! The CogSys accelerator performs circular convolution directly in the time domain
//! (bubble-streaming dataflow, Sec. V-C); the FFT path here exists so the *functional*
//! pipelines (factorizer, workload models) can run at large dimensionality without the
//! `O(d^2)` cost, and so tests can cross-check the naive, FFT, and simulated-hardware
//! implementations against each other.
//!
//! Only power-of-two sizes take the radix-2 path; other sizes fall back to the naive
//! algorithm in [`crate::ops`] at the call site.

use std::f64::consts::PI;

/// A complex number with `f64` parts, sufficient for the FFT's internal use.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    pub fn mul(self, other: Self) -> Self {
        Self {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    /// Complex addition.
    pub fn add(self, other: Self) -> Self {
        Self {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    /// Complex subtraction.
    pub fn sub(self, other: Self) -> Self {
        Self {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }
}

/// Returns `true` if `n` is a power of two (and non-zero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `inverse = true` computes the unscaled inverse transform; the caller is responsible
/// for dividing by `n`.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(is_power_of_two(n), "fft size must be a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = 2.0 * PI / len as f64 * if inverse { 1.0 } else { -1.0 };
        let wlen = Complex::new(angle.cos(), angle.sin());
        let mut i = 0;
        while i < n {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2].mul(w);
                data[i + k] = u.add(v);
                data[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Circular convolution of two equal-length real sequences via FFT.
///
/// Returns `None` when the length is not a power of two (callers then use the naive
/// time-domain algorithm). Output has the same length as the inputs.
pub fn circular_convolve_fft(a: &[f32], b: &[f32]) -> Option<Vec<f32>> {
    let n = a.len();
    if n != b.len() || !is_power_of_two(n) {
        return None;
    }
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = x.mul(*y);
    }
    fft_in_place(&mut fa, true);
    Some(fa.iter().map(|c| (c.re / n as f64) as f32).collect())
}

/// Circular correlation (`a` correlated with `b`) via FFT: `FFT^-1(conj(FFT(b)) * FFT(a))`.
///
/// Circular correlation is the approximate inverse of circular convolution binding and
/// is what the nsPE performs when the stationary vector is reversed (Sec. V-B).
/// Returns `None` when the length is not a power of two.
pub fn circular_correlate_fft(a: &[f32], b: &[f32]) -> Option<Vec<f32>> {
    let n = a.len();
    if n != b.len() || !is_power_of_two(n) {
        return None;
    }
    let mut fa: Vec<Complex> = a.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    let mut fb: Vec<Complex> = b.iter().map(|&x| Complex::new(x as f64, 0.0)).collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = x.mul(y.conj());
    }
    fft_in_place(&mut fa, true);
    Some(fa.iter().map(|c| (c.re / n as f64) as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_circular_convolve(a: &[f32], b: &[f32]) -> Vec<f32> {
        let n = a.len();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|k| a[k] * b[(i + n - k % n) % n])
                    .sum::<f32>()
            })
            .collect()
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(1000));
    }

    #[test]
    fn fft_inverse_round_trip() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * 2) as f64))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data, false);
        fft_in_place(&mut data, true);
        for (o, d) in original.iter().zip(&data) {
            assert!((o.re - d.re / 16.0).abs() < 1e-9);
            assert!((o.im - d.im / 16.0).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_convolution_matches_naive() {
        let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0, -1.0, 0.5, 2.0, -3.0];
        let b: Vec<f32> = vec![0.5, -1.0, 2.0, 1.0, 1.0, -2.0, 0.0, 3.0];
        let fft = circular_convolve_fft(&a, &b).unwrap();
        let naive = naive_circular_convolve(&a, &b);
        for (x, y) in fft.iter().zip(&naive) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let a = vec![1.0; 6];
        let b = vec![1.0; 6];
        assert!(circular_convolve_fft(&a, &b).is_none());
        assert!(circular_correlate_fft(&a, &b).is_none());
    }

    #[test]
    fn correlation_undoes_convolution_with_identity() {
        // conv(a, delta) = a, and correlate(a, delta) = a as well.
        let mut delta = vec![0.0_f32; 8];
        delta[0] = 1.0;
        let a = vec![3.0, 1.0, -2.0, 0.5, 4.0, -1.0, 2.0, 7.0];
        let conv = circular_convolve_fft(&a, &delta).unwrap();
        let corr = circular_correlate_fft(&a, &delta).unwrap();
        for ((c1, c2), orig) in conv.iter().zip(&corr).zip(&a) {
            assert!((c1 - orig).abs() < 1e-4);
            assert!((c2 - orig).abs() < 1e-4);
        }
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let prod = a.mul(b);
        assert!((prod.re - 5.0).abs() < 1e-12);
        assert!((prod.im - 5.0).abs() < 1e-12);
        assert_eq!(a.conj().im, -2.0);
        assert_eq!(a.add(b).re, 4.0);
        assert_eq!(a.sub(b).im, 3.0);
    }
}
