//! Core VSA operations: binding, unbinding, bundling, similarity, noise.
//!
//! The operations here are the *functional* reference implementations. The hardware
//! simulator in `cogsys-sim` re-implements circular convolution cycle-by-cycle on the
//! nsPE array and is cross-checked against these functions in its tests.

use crate::error::VsaError;
use crate::fft;
use crate::hypervector::{Hypervector, VsaKind};
use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Circular convolution of two hypervectors: `C[n] = Σ_k A[k]·B[(n−k) mod d]`.
///
/// This is the paper's binding operation (Sec. II-C). Power-of-two dimensions use an
/// FFT path (`O(d log d)`); other dimensions fall back to the `O(d²)` definition.
///
/// # Panics
/// Panics if the operands have different dimensionalities; use [`try_circular_convolve`]
/// for the checked variant.
///
/// # Example
/// ```
/// use cogsys_vsa::{Hypervector, ops};
/// let a = Hypervector::from_values(vec![1.0, 2.0, 3.0]);
/// let b = Hypervector::from_values(vec![4.0, 5.0, 6.0]);
/// let c = ops::circular_convolve(&a, &b);
/// // C[0] = 1*4 + 2*6 + 3*5 = 31
/// assert_eq!(c.values()[0], 31.0);
/// ```
pub fn circular_convolve(a: &Hypervector, b: &Hypervector) -> Hypervector {
    try_circular_convolve(a, b).expect("hypervector dimension mismatch")
}

/// Checked circular convolution.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn try_circular_convolve(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, VsaError> {
    if a.dim() != b.dim() {
        return Err(VsaError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    if let Some(values) = fft::circular_convolve_fft(a.values(), b.values()) {
        return Ok(Hypervector::with_kind(values, VsaKind::Real));
    }
    Ok(Hypervector::with_kind(
        circular_convolve_naive(a.values(), b.values()),
        VsaKind::Real,
    ))
}

/// Time-domain `O(d²)` circular convolution over raw slices.
///
/// Exposed publicly because the hardware simulator and benchmarks need the exact
/// reference kernel the nsPE array implements.
pub fn circular_convolve_naive(a: &[f32], b: &[f32]) -> Vec<f32> {
    let d = a.len();
    debug_assert_eq!(d, b.len());
    let mut out = vec![0.0f32; d];
    for (n, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (k, &a_k) in a.iter().enumerate() {
            // (n - k) mod d in unsigned arithmetic: adding d keeps the numerator
            // non-negative, which is valid because k < d and n < d.
            debug_assert!(k < d && n < d);
            let idx = (n + d - k) % d;
            acc += a_k * b[idx];
        }
        *slot = acc;
    }
    out
}

/// Circular correlation of `a` with `b`: `C[n] = Σ_k A[k]·B[(n+k) mod d]`.
///
/// Circular correlation approximately inverts circular-convolution binding: if
/// `q = x ⊛ y` then `correlate(q, x) ≈ y` (exactly so for unitary `x`). The nsPE
/// supports it by reversing the stationary vector (Sec. V-B).
///
/// # Panics
/// Panics on dimension mismatch; use [`try_circular_correlate`] for the checked variant.
pub fn circular_correlate(a: &Hypervector, b: &Hypervector) -> Hypervector {
    try_circular_correlate(a, b).expect("hypervector dimension mismatch")
}

/// Checked circular correlation.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn try_circular_correlate(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, VsaError> {
    if a.dim() != b.dim() {
        return Err(VsaError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    if let Some(values) = fft::circular_correlate_fft(a.values(), b.values()) {
        return Ok(Hypervector::with_kind(values, VsaKind::Real));
    }
    let d = a.dim();
    let av = a.values();
    let bv = b.values();
    let mut out = vec![0.0f32; d];
    for (n, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..d {
            acc += av[k] * bv[(n + k) % d];
        }
        *slot = acc;
    }
    Ok(Hypervector::with_kind(out, VsaKind::Real))
}

/// Element-wise (Hadamard) binding, the MAP-style multiplicative binding used by NVSA's
/// attribute codebooks.
///
/// For bipolar vectors Hadamard binding is exactly self-inverse: `bind(bind(a,b),b) = a`.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn hadamard_bind(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, VsaError> {
    if a.dim() != b.dim() {
        return Err(VsaError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    let values = a
        .values()
        .iter()
        .zip(b.values())
        .map(|(x, y)| x * y)
        .collect();
    Ok(Hypervector::with_kind(values, VsaKind::Dense))
}

/// Element-wise unbinding (for bipolar vectors identical to [`hadamard_bind`]).
///
/// The factorizer's Step 1 (Fig. 8) "factor unbinding via element-wise multiplication ⊘"
/// is this operation.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn hadamard_unbind(a: &Hypervector, b: &Hypervector) -> Result<Hypervector, VsaError> {
    hadamard_bind(a, b)
}

/// Bundles (superposes) a set of hypervectors by element-wise summation.
///
/// # Errors
/// Returns [`VsaError::Empty`] when `items` is empty and
/// [`VsaError::DimensionMismatch`] when members disagree in dimension.
pub fn bundle<'a, I>(items: I) -> Result<Hypervector, VsaError>
where
    I: IntoIterator<Item = &'a Hypervector>,
{
    let mut iter = items.into_iter();
    let first = iter.next().ok_or(VsaError::Empty {
        what: "bundle input",
    })?;
    let mut acc = first.values().to_vec();
    for hv in iter {
        if hv.dim() != acc.len() {
            return Err(VsaError::DimensionMismatch {
                left: acc.len(),
                right: hv.dim(),
            });
        }
        for (slot, v) in acc.iter_mut().zip(hv.values()) {
            *slot += v;
        }
    }
    Ok(Hypervector::with_kind(acc, VsaKind::Dense))
}

/// Bundles bipolar vectors and snaps the result back to `{-1, +1}` by majority vote.
///
/// Ties (possible with an even number of inputs) resolve to `+1`, matching
/// [`Hypervector::sign`].
///
/// # Errors
/// Propagates the errors of [`bundle`].
pub fn majority_bundle<'a, I>(items: I) -> Result<Hypervector, VsaError>
where
    I: IntoIterator<Item = &'a Hypervector>,
{
    Ok(bundle(items)?.sign())
}

/// Cosine similarity between two hypervectors, in `[-1, 1]`.
///
/// Returns 0 when either vector has zero norm.
///
/// # Panics
/// Panics on dimension mismatch; use [`try_cosine_similarity`] for the checked variant.
pub fn cosine_similarity(a: &Hypervector, b: &Hypervector) -> f32 {
    try_cosine_similarity(a, b).expect("hypervector dimension mismatch")
}

/// Checked cosine similarity.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn try_cosine_similarity(a: &Hypervector, b: &Hypervector) -> Result<f32, VsaError> {
    if a.dim() != b.dim() {
        return Err(VsaError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    Ok(cosine_slices(a.values(), b.values()))
}

/// Cosine similarity of two equal-length slices — the **canonical numerics** (strict
/// serial dot, serial squared-sum norms, zero-norm pairs score 0) every cosine in the
/// workspace reduces to. The resonator's convergence check and the solver's answer
/// scoring call this same function, which is what makes their decision-identity
/// contracts structural rather than three hand-synchronized copies.
pub fn cosine_slices(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let norm = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>().sqrt();
    let denom = norm(a) * norm(b);
    if denom == 0.0 {
        return 0.0;
    }
    dot / denom
}

/// Normalised Hamming-style similarity for bipolar vectors: fraction of positions with
/// matching sign, mapped to `[-1, 1]`.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] when the operands differ in dimension.
pub fn sign_similarity(a: &Hypervector, b: &Hypervector) -> Result<f32, VsaError> {
    let agree = a.sign_agreement(b)? as f32;
    let d = a.dim().max(1) as f32;
    Ok(2.0 * agree / d - 1.0)
}

/// Adds i.i.d. Gaussian noise with standard deviation `sigma` to a copy of `hv`.
///
/// This is the stochasticity-injection primitive of Sec. IV-B: noise added to the
/// similarity and projection steps lets the factorizer escape limit cycles.
pub fn add_gaussian_noise<R: Rng + ?Sized>(
    hv: &Hypervector,
    sigma: f32,
    rng: &mut R,
) -> Hypervector {
    if sigma <= 0.0 {
        return hv.clone();
    }
    let normal = Normal::new(0.0_f32, sigma).expect("sigma is positive and finite");
    let values = hv.values().iter().map(|v| v + normal.sample(rng)).collect();
    Hypervector::with_kind(values, VsaKind::Dense)
}

/// Flips the sign of each entry independently with probability `p` (bit-flip noise).
///
/// Used by the dataset generators to emulate imperfect neural perception.
pub fn flip_noise<R: Rng + ?Sized>(hv: &Hypervector, p: f64, rng: &mut R) -> Hypervector {
    let values = hv
        .values()
        .iter()
        .map(|&v| {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                -v
            } else {
                v
            }
        })
        .collect();
    Hypervector::with_kind(values, hv.kind())
}

/// Matrix–vector similarity: the dot product of `query` with every row of `matrix`.
///
/// This is the factorizer's Step 2 ("similarity search via matrix–vector
/// multiplication") and the codebook cleanup operation; on the accelerator it maps onto
/// GEMV in GEMM mode.
///
/// # Errors
/// Returns [`VsaError::DimensionMismatch`] if any row disagrees with the query dimension.
pub fn matvec_similarity(
    matrix: &[Hypervector],
    query: &Hypervector,
) -> Result<Vec<f32>, VsaError> {
    matrix.iter().map(|row| row.dot(query)).collect()
}

/// Weighted sum of rows: `Σ_i weights[i] · matrix[i]`.
///
/// This is the factorizer's Step 3 projection (`α_f(t) · X_fᵀ`) before the sign
/// non-linearity.
///
/// # Errors
/// Returns [`VsaError::Empty`] for an empty matrix, [`VsaError::DimensionMismatch`] if
/// `weights.len() != matrix.len()`.
pub fn weighted_superposition(
    matrix: &[Hypervector],
    weights: &[f32],
) -> Result<Hypervector, VsaError> {
    if matrix.is_empty() {
        return Err(VsaError::Empty { what: "codebook" });
    }
    if matrix.len() != weights.len() {
        return Err(VsaError::DimensionMismatch {
            left: matrix.len(),
            right: weights.len(),
        });
    }
    let dim = matrix[0].dim();
    let mut acc = vec![0.0f32; dim];
    for (row, &w) in matrix.iter().zip(weights) {
        if row.dim() != dim {
            return Err(VsaError::DimensionMismatch {
                left: dim,
                right: row.dim(),
            });
        }
        for (slot, v) in acc.iter_mut().zip(row.values()) {
            *slot += w * v;
        }
    }
    Ok(Hypervector::with_kind(acc, VsaKind::Dense))
}

/// Softmax over a similarity vector with an inverse-temperature parameter `beta`.
///
/// Used by the probabilistic abduction pipelines (LVRF/PrAE style) to turn similarity
/// scores into rule probabilities; on the accelerator it runs on the custom SIMD unit.
pub fn softmax(scores: &[f32], beta: f32) -> Vec<f32> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| ((s - max) * beta).exp()).collect();
    let sum: f32 = exps.iter().sum();
    if sum == 0.0 {
        return vec![1.0 / scores.len() as f32; scores.len()];
    }
    exps.iter().map(|e| e / sum).collect()
}

/// Returns the index of the largest element (ties resolve to the first).
///
/// Returns `None` for an empty slice.
pub fn argmax(scores: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &s) in scores.iter().enumerate() {
        match best {
            Some((_, b)) if s <= b => {}
            _ => best = Some((i, s)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use proptest::prelude::*;

    #[test]
    fn convolution_matches_hand_computed_example() {
        // Example from Fig. 11b of the paper:
        // (A1,A2,A3) ⊛ (B1,B2,B3) = (A1B1+A2B3+A3B2, A1B2+A2B1+A3B3, A1B3+A2B2+A3B1)
        // with the paper's indexing convention C[n] = Σ A[k] B[(n-k) mod N].
        let a = Hypervector::from_values(vec![1.0, 2.0, 3.0]);
        let b = Hypervector::from_values(vec![10.0, 20.0, 30.0]);
        let c = circular_convolve(&a, &b);
        assert_eq!(c.values()[0], 1.0 * 10.0 + 2.0 * 30.0 + 3.0 * 20.0);
        assert_eq!(c.values()[1], 1.0 * 20.0 + 2.0 * 10.0 + 3.0 * 30.0);
        assert_eq!(c.values()[2], 1.0 * 30.0 + 2.0 * 20.0 + 3.0 * 10.0);
    }

    #[test]
    fn convolution_identity_element() {
        let mut r = rng(3);
        let a = Hypervector::random_bipolar(64, &mut r);
        let id = Hypervector::identity(64);
        let c = circular_convolve(&a, &id);
        for (x, y) in c.values().iter().zip(a.values()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn correlation_recovers_bound_factor() {
        let mut r = rng(4);
        let d = 1024;
        let x = Hypervector::random_real(d, &mut r);
        let y = Hypervector::random_real(d, &mut r);
        let bound = circular_convolve(&x, &y);
        let recovered = circular_correlate(&bound, &x);
        let sim = cosine_similarity(&recovered, &y);
        assert!(sim > 0.5, "similarity {sim} too low");
        // And the recovered vector should not resemble an unrelated vector.
        let z = Hypervector::random_real(d, &mut r);
        assert!(cosine_similarity(&recovered, &z).abs() < 0.2);
    }

    #[test]
    fn hadamard_binding_is_self_inverse_for_bipolar() {
        let mut r = rng(5);
        let a = Hypervector::random_bipolar(256, &mut r);
        let b = Hypervector::random_bipolar(256, &mut r);
        let bound = hadamard_bind(&a, &b).unwrap();
        let recovered = hadamard_unbind(&bound, &b).unwrap();
        assert_eq!(recovered.values(), a.values());
    }

    #[test]
    fn bundle_preserves_similarity_to_members() {
        let mut r = rng(6);
        let members: Vec<_> = (0..5)
            .map(|_| Hypervector::random_bipolar(2048, &mut r))
            .collect();
        let sum = bundle(members.iter()).unwrap();
        for m in &members {
            assert!(cosine_similarity(&sum, m) > 0.3);
        }
        let outsider = Hypervector::random_bipolar(2048, &mut r);
        assert!(cosine_similarity(&sum, &outsider).abs() < 0.15);
    }

    #[test]
    fn bundle_of_empty_set_is_error() {
        let empty: Vec<Hypervector> = Vec::new();
        assert!(matches!(bundle(empty.iter()), Err(VsaError::Empty { .. })));
    }

    #[test]
    fn majority_bundle_is_bipolar() {
        let mut r = rng(7);
        let members: Vec<_> = (0..3)
            .map(|_| Hypervector::random_bipolar(128, &mut r))
            .collect();
        let m = majority_bundle(members.iter()).unwrap();
        assert!(m.values().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn cosine_similarity_bounds() {
        let mut r = rng(8);
        let a = Hypervector::random_bipolar(512, &mut r);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-6);
        let neg = -a.clone();
        assert!((cosine_similarity(&a, &neg) + 1.0).abs() < 1e-6);
        let zero = Hypervector::zeros(512);
        assert_eq!(cosine_similarity(&a, &zero), 0.0);
    }

    #[test]
    fn sign_similarity_matches_cosine_for_bipolar() {
        let mut r = rng(9);
        let a = Hypervector::random_bipolar(4096, &mut r);
        let b = Hypervector::random_bipolar(4096, &mut r);
        let cs = cosine_similarity(&a, &b);
        let ss = sign_similarity(&a, &b).unwrap();
        assert!((cs - ss).abs() < 1e-4);
    }

    #[test]
    fn gaussian_noise_zero_sigma_is_identity() {
        let mut r = rng(10);
        let a = Hypervector::random_bipolar(64, &mut r);
        let noisy = add_gaussian_noise(&a, 0.0, &mut r);
        assert_eq!(noisy.values(), a.values());
    }

    #[test]
    fn gaussian_noise_perturbs_but_preserves_similarity() {
        let mut r = rng(11);
        let a = Hypervector::random_bipolar(1024, &mut r);
        let noisy = add_gaussian_noise(&a, 0.5, &mut r);
        assert_ne!(noisy.values(), a.values());
        assert!(cosine_similarity(&a, &noisy) > 0.7);
    }

    #[test]
    fn flip_noise_extremes() {
        let mut r = rng(12);
        let a = Hypervector::random_bipolar(128, &mut r);
        let same = flip_noise(&a, 0.0, &mut r);
        assert_eq!(same.values(), a.values());
        let flipped = flip_noise(&a, 1.0, &mut r);
        for (x, y) in flipped.values().iter().zip(a.values()) {
            assert_eq!(*x, -*y);
        }
    }

    #[test]
    fn matvec_similarity_identifies_member() {
        let mut r = rng(13);
        let rows: Vec<_> = (0..8)
            .map(|_| Hypervector::random_bipolar(512, &mut r))
            .collect();
        let sims = matvec_similarity(&rows, &rows[3]).unwrap();
        assert_eq!(argmax(&sims), Some(3));
    }

    #[test]
    fn weighted_superposition_one_hot_selects_row() {
        let mut r = rng(14);
        let rows: Vec<_> = (0..4)
            .map(|_| Hypervector::random_bipolar(64, &mut r))
            .collect();
        let mut w = vec![0.0; 4];
        w[2] = 1.0;
        let hv = weighted_superposition(&rows, &w).unwrap();
        assert_eq!(hv.values(), rows[2].values());
    }

    #[test]
    fn weighted_superposition_validates_lengths() {
        let rows = vec![Hypervector::zeros(4)];
        assert!(weighted_superposition(&rows, &[1.0, 2.0]).is_err());
        let empty: Vec<Hypervector> = vec![];
        assert!(matches!(
            weighted_superposition(&empty, &[]),
            Err(VsaError::Empty { .. })
        ));
    }

    #[test]
    fn softmax_sums_to_one_and_orders_correctly() {
        let p = softmax(&[1.0, 3.0, 2.0], 1.0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(p[1] > p[2] && p[2] > p[0]);
        assert!(softmax(&[], 1.0).is_empty());
    }

    #[test]
    fn softmax_high_beta_approaches_argmax() {
        let p = softmax(&[0.1, 0.9, 0.3], 50.0);
        assert!(p[1] > 0.99);
    }

    #[test]
    fn argmax_handles_ties_and_empty() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn checked_variants_report_mismatch() {
        let a = Hypervector::zeros(4);
        let b = Hypervector::zeros(6);
        assert!(try_circular_convolve(&a, &b).is_err());
        assert!(try_circular_correlate(&a, &b).is_err());
        assert!(try_cosine_similarity(&a, &b).is_err());
        assert!(hadamard_bind(&a, &b).is_err());
    }

    proptest! {
        #[test]
        fn prop_convolution_commutative(seed in 0u64..500, dim in 2usize..64) {
            let mut r = rng(seed);
            let a = Hypervector::random_bipolar(dim, &mut r);
            let b = Hypervector::random_bipolar(dim, &mut r);
            let ab = circular_convolve(&a, &b);
            let ba = circular_convolve(&b, &a);
            for (x, y) in ab.values().iter().zip(ba.values()) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        #[test]
        fn prop_convolution_associative(seed in 0u64..200) {
            let mut r = rng(seed);
            let dim = 32;
            let a = Hypervector::random_bipolar(dim, &mut r);
            let b = Hypervector::random_bipolar(dim, &mut r);
            let c = Hypervector::random_bipolar(dim, &mut r);
            let left = circular_convolve(&circular_convolve(&a, &b), &c);
            let right = circular_convolve(&a, &circular_convolve(&b, &c));
            for (x, y) in left.values().iter().zip(right.values()) {
                prop_assert!((x - y).abs() < 1e-1 * dim as f32);
            }
        }

        #[test]
        fn prop_convolution_distributes_over_addition(seed in 0u64..200) {
            let mut r = rng(seed);
            let dim = 16;
            let a = Hypervector::random_bipolar(dim, &mut r);
            let b = Hypervector::random_bipolar(dim, &mut r);
            let c = Hypervector::random_bipolar(dim, &mut r);
            let lhs = circular_convolve(&a, &(&b + &c));
            let rhs = &circular_convolve(&a, &b) + &circular_convolve(&a, &c);
            for (x, y) in lhs.values().iter().zip(rhs.values()) {
                prop_assert!((x - y).abs() < 1e-2 * dim as f32);
            }
        }

        #[test]
        fn prop_naive_and_fft_agree(seed in 0u64..200) {
            let mut r = rng(seed);
            let dim = 64; // power of two so the FFT path is taken
            let a = Hypervector::random_bipolar(dim, &mut r);
            let b = Hypervector::random_bipolar(dim, &mut r);
            let fft = circular_convolve(&a, &b);
            let naive = circular_convolve_naive(a.values(), b.values());
            for (x, y) in fft.values().iter().zip(&naive) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        #[test]
        fn prop_hadamard_bind_unbind_roundtrip(seed in 0u64..500, dim in 1usize..256) {
            let mut r = rng(seed);
            let a = Hypervector::random_bipolar(dim, &mut r);
            let b = Hypervector::random_bipolar(dim, &mut r);
            let round = hadamard_unbind(&hadamard_bind(&a, &b).unwrap(), &b).unwrap();
            prop_assert_eq!(round.values(), a.values());
        }

        #[test]
        fn prop_cosine_similarity_symmetric_and_bounded(seed in 0u64..500) {
            let mut r = rng(seed);
            let a = Hypervector::random_real(128, &mut r);
            let b = Hypervector::random_real(128, &mut r);
            let ab = cosine_similarity(&a, &b);
            let ba = cosine_similarity(&b, &a);
            prop_assert!((ab - ba).abs() < 1e-6);
            prop_assert!((-1.0001..=1.0001).contains(&ab));
        }
    }
}
