//! Dense hypervector representation.
//!
//! CogSys workloads (NVSA, MIMONet, LVRF, PrAE) all use dense distributed vectors with
//! dimensionality in the hundreds to thousands (the paper uses `d = 1024` for NVSA/LVRF
//! and `d = 64` for MIMONet). We store them as `Vec<f32>` — the same storage the
//! accelerator's SRAM model in `cogsys-sim` accounts for.

use crate::error::VsaError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, Mul, Neg, Sub};

/// The family of VSA encodings a vector belongs to.
///
/// CogSys (following NVSA) uses bipolar dense vectors bound with circular convolution
/// (holographic reduced representation, HRR) or element-wise multiplication (MAP). The
/// kind is carried alongside the data so pipelines can assert they are composing
/// representations from the same algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum VsaKind {
    /// Bipolar entries in `{-1, +1}`, bound with circular convolution or Hadamard product.
    #[default]
    Bipolar,
    /// Real-valued entries (e.g. Gaussian), bound with circular convolution (HRR).
    Real,
    /// Values produced as intermediate results (sums of bipolar vectors, similarities...).
    Dense,
}

impl fmt::Display for VsaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaKind::Bipolar => write!(f, "bipolar"),
            VsaKind::Real => write!(f, "real"),
            VsaKind::Dense => write!(f, "dense"),
        }
    }
}

/// A dense hypervector.
///
/// The element type is `f32` throughout the repository; reduced-precision behaviour is
/// modelled explicitly by [`crate::quant`] rather than by changing the storage type, so
/// that the functional pipelines and the hardware simulator agree on numerics.
///
/// # Example
/// ```
/// use cogsys_vsa::Hypervector;
/// let hv = Hypervector::from_values(vec![1.0, -1.0, 1.0, 1.0]);
/// assert_eq!(hv.dim(), 4);
/// assert_eq!(hv[1], -1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervector {
    values: Vec<f32>,
    kind: VsaKind,
}

impl Hypervector {
    /// Creates a hypervector from raw values, tagged as [`VsaKind::Dense`].
    pub fn from_values(values: Vec<f32>) -> Self {
        Self {
            values,
            kind: VsaKind::Dense,
        }
    }

    /// Creates a hypervector from raw values with an explicit kind tag.
    pub fn with_kind(values: Vec<f32>, kind: VsaKind) -> Self {
        Self { values, kind }
    }

    /// Creates an all-zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            values: vec![0.0; dim],
            kind: VsaKind::Dense,
        }
    }

    /// Creates the binding identity for circular convolution: `(1, 0, 0, ..., 0)`.
    ///
    /// Convolving any vector with the identity returns the vector unchanged.
    pub fn identity(dim: usize) -> Self {
        let mut values = vec![0.0; dim];
        if dim > 0 {
            values[0] = 1.0;
        }
        Self {
            values,
            kind: VsaKind::Real,
        }
    }

    /// Samples a random bipolar vector with entries drawn uniformly from `{-1, +1}`.
    ///
    /// Random bipolar vectors of high dimension are quasi-orthogonal: the expected
    /// cosine similarity between two independent draws is 0 with standard deviation
    /// `1/sqrt(d)` — the property the factorizer (Sec. IV-A) relies on.
    pub fn random_bipolar<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        let values = (0..dim)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        Self {
            values,
            kind: VsaKind::Bipolar,
        }
    }

    /// Samples a random real-valued vector with i.i.d. `N(0, 1/d)` entries (HRR-style).
    ///
    /// The `1/d` variance makes the expected Euclidean norm equal to 1, which keeps
    /// repeated circular convolutions numerically stable.
    pub fn random_real<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        use rand_distr::{Distribution, Normal};
        let normal = Normal::new(0.0_f32, (1.0 / dim.max(1) as f32).sqrt())
            .expect("standard deviation is finite and positive");
        let values = (0..dim).map(|_| normal.sample(rng)).collect();
        Self {
            values,
            kind: VsaKind::Real,
        }
    }

    /// Returns the dimensionality.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Returns the VSA kind tag.
    pub fn kind(&self) -> VsaKind {
        self.kind
    }

    /// Returns a view of the underlying values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Returns a mutable view of the underlying values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_values(self) -> Vec<f32> {
        self.values
    }

    /// Returns the Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Returns the dot product with another vector.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the dimensionalities differ.
    pub fn dot(&self, other: &Self) -> Result<f32, VsaError> {
        if self.dim() != other.dim() {
            return Err(VsaError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Returns a copy with every entry replaced by its sign (`+1`, `-1`; zero maps to `+1`).
    ///
    /// This is the projection step used by the factorizer (Step 3 in Fig. 8) to snap a
    /// continuous estimate back onto the bipolar codevector manifold.
    pub fn sign(&self) -> Self {
        let values = self
            .values
            .iter()
            .map(|&v| if v < 0.0 { -1.0 } else { 1.0 })
            .collect();
        Self {
            values,
            kind: VsaKind::Bipolar,
        }
    }

    /// Returns an L2-normalised copy (zero vectors are returned unchanged).
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        let values = self.values.iter().map(|v| v / n).collect();
        Self {
            values,
            kind: self.kind,
        }
    }

    /// Returns a copy with entries cyclically rotated right by `shift` positions.
    ///
    /// Cyclic shift (permutation) is the standard VSA mechanism for encoding order /
    /// position information, used by the dataset encoders to distinguish panel slots.
    pub fn rotated(&self, shift: usize) -> Self {
        let d = self.dim();
        if d == 0 {
            return self.clone();
        }
        let shift = shift % d;
        let mut values = Vec::with_capacity(d);
        // Element i of the result takes element (i - shift) mod d of the input.
        values.extend_from_slice(&self.values[d - shift..]);
        values.extend_from_slice(&self.values[..d - shift]);
        Self {
            values,
            kind: self.kind,
        }
    }

    /// Returns the involution `A*` of the vector: `A*[n] = A[(-n) mod d]`.
    ///
    /// For circular convolution binding, convolving with the involution of `A`
    /// approximately unbinds `A` (exactly, for unitary vectors). The reconfigurable PE
    /// (Sec. V-B) supports circular correlation "by reversing stationary vector A" —
    /// this is that reversal.
    pub fn involution(&self) -> Self {
        let d = self.dim();
        if d == 0 {
            return self.clone();
        }
        let mut values = Vec::with_capacity(d);
        values.push(self.values[0]);
        values.extend(self.values[1..].iter().rev().copied());
        Self {
            values,
            kind: self.kind,
        }
    }

    /// Flips the sign of every entry in place.
    pub fn negate_in_place(&mut self) {
        for v in &mut self.values {
            *v = -*v;
        }
    }

    /// Returns the number of entries where `self` and `other` have identical sign.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the dimensionalities differ.
    pub fn sign_agreement(&self, other: &Self) -> Result<usize, VsaError> {
        if self.dim() != other.dim() {
            return Err(VsaError::DimensionMismatch {
                left: self.dim(),
                right: other.dim(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| (**a >= 0.0) == (**b >= 0.0))
            .count())
    }

    /// Approximate in-memory footprint of this vector in bytes (FP32 storage).
    pub fn footprint_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }
}

impl Default for Hypervector {
    fn default() -> Self {
        Self::zeros(0)
    }
}

impl Index<usize> for Hypervector {
    type Output = f32;

    fn index(&self, index: usize) -> &f32 {
        &self.values[index]
    }
}

impl<'a> Add for &'a Hypervector {
    type Output = Hypervector;

    /// Element-wise addition (bundling without normalisation).
    ///
    /// # Panics
    /// Panics if the dimensionalities differ; use [`crate::ops::bundle`] for the checked
    /// variant.
    fn add(self, rhs: &'a Hypervector) -> Hypervector {
        assert_eq!(self.dim(), rhs.dim(), "hypervector dimension mismatch");
        let values = self
            .values
            .iter()
            .zip(&rhs.values)
            .map(|(a, b)| a + b)
            .collect();
        Hypervector::with_kind(values, VsaKind::Dense)
    }
}

impl<'a> Sub for &'a Hypervector {
    type Output = Hypervector;

    /// Element-wise subtraction.
    ///
    /// # Panics
    /// Panics if the dimensionalities differ.
    fn sub(self, rhs: &'a Hypervector) -> Hypervector {
        assert_eq!(self.dim(), rhs.dim(), "hypervector dimension mismatch");
        let values = self
            .values
            .iter()
            .zip(&rhs.values)
            .map(|(a, b)| a - b)
            .collect();
        Hypervector::with_kind(values, VsaKind::Dense)
    }
}

impl Mul<f32> for &Hypervector {
    type Output = Hypervector;

    /// Scalar multiplication.
    fn mul(self, rhs: f32) -> Hypervector {
        let values = self.values.iter().map(|v| v * rhs).collect();
        Hypervector::with_kind(values, self.kind)
    }
}

impl Neg for Hypervector {
    type Output = Hypervector;

    fn neg(mut self) -> Hypervector {
        self.negate_in_place();
        self
    }
}

impl FromIterator<f32> for Hypervector {
    fn from_iter<T: IntoIterator<Item = f32>>(iter: T) -> Self {
        Self::from_values(iter.into_iter().collect())
    }
}

impl fmt::Display for Hypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Hypervector(d={}, kind={})", self.dim(), self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_bipolar_has_only_plus_minus_one() {
        let mut rng = crate::rng(1);
        let hv = Hypervector::random_bipolar(256, &mut rng);
        assert!(hv.values().iter().all(|&v| v == 1.0 || v == -1.0));
        assert_eq!(hv.kind(), VsaKind::Bipolar);
    }

    #[test]
    fn random_real_has_unit_expected_norm() {
        let mut rng = crate::rng(2);
        let hv = Hypervector::random_real(4096, &mut rng);
        // Norm concentrates around 1 for N(0, 1/d) entries.
        assert!((hv.norm() - 1.0).abs() < 0.1, "norm = {}", hv.norm());
    }

    #[test]
    fn dot_rejects_dimension_mismatch() {
        let a = Hypervector::zeros(4);
        let b = Hypervector::zeros(8);
        assert_eq!(
            a.dot(&b),
            Err(VsaError::DimensionMismatch { left: 4, right: 8 })
        );
    }

    #[test]
    fn sign_maps_to_bipolar() {
        let hv = Hypervector::from_values(vec![0.5, -0.2, 0.0, -7.0]);
        let s = hv.sign();
        assert_eq!(s.values(), &[1.0, -1.0, 1.0, -1.0]);
        assert_eq!(s.kind(), VsaKind::Bipolar);
    }

    #[test]
    fn rotation_round_trips() {
        let hv = Hypervector::from_values(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let r = hv.rotated(2);
        assert_eq!(r.values(), &[4.0, 5.0, 1.0, 2.0, 3.0]);
        let back = r.rotated(3);
        assert_eq!(back.values(), hv.values());
    }

    #[test]
    fn rotation_by_dim_is_identity() {
        let hv = Hypervector::from_values(vec![1.0, 2.0, 3.0]);
        assert_eq!(hv.rotated(3).values(), hv.values());
        assert_eq!(hv.rotated(0).values(), hv.values());
    }

    #[test]
    fn involution_is_self_inverse() {
        let hv = Hypervector::from_values(vec![1.0, 2.0, 3.0, 4.0]);
        let inv = hv.involution();
        assert_eq!(inv.values(), &[1.0, 4.0, 3.0, 2.0]);
        assert_eq!(inv.involution().values(), hv.values());
    }

    #[test]
    fn identity_has_unit_first_entry() {
        let id = Hypervector::identity(8);
        assert_eq!(id[0], 1.0);
        assert_eq!(id.values()[1..].iter().sum::<f32>(), 0.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let hv = Hypervector::from_values(vec![3.0, 4.0]);
        assert!((hv.normalized().norm() - 1.0).abs() < 1e-6);
        // Zero vector stays zero instead of producing NaN.
        let z = Hypervector::zeros(4);
        assert_eq!(z.normalized().values(), &[0.0; 4]);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Hypervector::from_values(vec![1.0, 2.0]);
        let b = Hypervector::from_values(vec![3.0, 5.0]);
        assert_eq!((&a + &b).values(), &[4.0, 7.0]);
        assert_eq!((&b - &a).values(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).values(), &[2.0, 4.0]);
        assert_eq!((-a).values(), &[-1.0, -2.0]);
    }

    #[test]
    fn sign_agreement_counts_matches() {
        let a = Hypervector::from_values(vec![1.0, -1.0, 1.0, -1.0]);
        let b = Hypervector::from_values(vec![1.0, 1.0, 1.0, -1.0]);
        assert_eq!(a.sign_agreement(&b).unwrap(), 3);
    }

    #[test]
    fn footprint_is_four_bytes_per_element() {
        let hv = Hypervector::zeros(1024);
        assert_eq!(hv.footprint_bytes(), 4096);
    }

    #[test]
    fn display_mentions_dimension() {
        let hv = Hypervector::zeros(16);
        assert!(hv.to_string().contains("16"));
    }

    #[test]
    fn collect_from_iterator() {
        let hv: Hypervector = (0..4).map(|i| i as f32).collect();
        assert_eq!(hv.values(), &[0.0, 1.0, 2.0, 3.0]);
    }
}
