//! # cogsys-vsa — Vector-Symbolic Architecture substrate
//!
//! This crate implements the hypervector algebra that every other part of the CogSys
//! reproduction builds on: dense hypervectors, binding via circular convolution or
//! element-wise (Hadamard) multiplication, unbinding via circular correlation, bundling,
//! permutation, similarity search, attribute codebooks, and reduced-precision
//! (FP8 / INT8) arithmetic.
//!
//! The paper (Sec. II-C) describes symbolic knowledge as a set of attribute codebooks
//! whose codevectors are combined by *binding* into product vectors representing
//! composite objects; queries produced by the neural frontend are compared against
//! codebooks by cosine similarity. The key compute kernel is block-wise **circular
//! convolution**:
//!
//! ```text
//! C[n] = sum_{k=0}^{N-1} A[k] * B[(n - k) mod N]
//! ```
//!
//! # Example
//!
//! ```rust
//! use cogsys_vsa::{Hypervector, ops};
//!
//! let mut rng = cogsys_vsa::rng(7);
//! let a = Hypervector::random_bipolar(512, &mut rng);
//! let b = Hypervector::random_bipolar(512, &mut rng);
//! // Bind the two symbols; the result is dissimilar to both factors...
//! let bound = ops::circular_convolve(&a, &b);
//! assert!(ops::cosine_similarity(&bound, &a).abs() < 0.2);
//! // ...but correlating with one factor approximately recovers the other.
//! let recovered = ops::circular_correlate(&bound, &a);
//! assert!(ops::cosine_similarity(&recovered, &b) > 0.5);
//! ```
//!
//! # Batched execution
//!
//! The scalar functions above are the ground truth; production paths go through the
//! [`batch`] module, which phrases the same algebra over contiguous row-major batches
//! ([`HvMatrix`]) dispatched to a pluggable [`VsaBackend`] — the software analogue of
//! the paper's array-level batch kernels (Sec. IV–VI):
//!
//! ```rust
//! use cogsys_vsa::{BackendKind, Codebook, HvMatrix, Hypervector, ops};
//!
//! let mut rng = cogsys_vsa::rng(7);
//! let backend = BackendKind::Parallel.create();
//! let codebook = Codebook::random("color", 16, 256, &mut rng);
//!
//! // A batch of noisy queries, one per row.
//! let queries: Vec<Hypervector> = (0..8)
//!     .map(|i| ops::flip_noise(codebook.vector(i).unwrap(), 0.2, &mut rng))
//!     .collect();
//! let batch = HvMatrix::from_rows(&queries).unwrap();
//!
//! // One batched cleanup replaces eight vector-at-a-time searches.
//! let decoded = codebook.cleanup_batch(backend.as_ref(), &batch).unwrap();
//! for (i, (index, similarity)) in decoded.iter().enumerate() {
//!     assert_eq!(*index, i);
//!     assert!(*similarity > 0.4);
//! }
//! ```
//!
//! For bipolar `{-1, +1}` data under the MAP/Hadamard algebra, the [`packed`] module
//! stores sign planes instead of floats ([`BitMatrix`], 32× smaller) and executes the
//! same operations as word-wise XOR and popcount ([`PackedBackend`],
//! [`BackendKind::Packed`] — the **default** backend); non-bipolar inputs and
//! circular-convolution binding fall back to the dense backends transparently, and
//! callers that already hold sign planes pass [`BitMatrix`] queries end to end
//! (`cleanup_batch_bits`, `similarities_batch_bits`) without re-packing per call.

// Unsafe is denied crate-wide; the single exception is the runtime-dispatched SIMD
// Hamming kernel module `packed::simd` (scalar `popcnt`, Harley–Seal AVX2, and
// AVX-512 `vpopcntq` tiers — `#[target_feature]` functions cannot be called or
// coerced without `unsafe` even when the feature was verified via cpuid, and the
// vector load/store intrinsics take raw pointers), which carries a scoped
// `#![allow(unsafe_code)]` and per-call safety arguments.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codebook;
pub mod error;
pub mod fft;
pub mod hypervector;
pub mod ops;
pub mod packed;
pub mod quant;

pub use batch::{BackendKind, HvMatrix, ParallelBackend, ReferenceBackend, VsaBackend};
pub use codebook::{CleanupRoute, Codebook, CodebookSet, ProductCodebook};
pub use error::VsaError;
pub use hypervector::{Hypervector, VsaKind};
pub use packed::{
    dispatch_tier, BitMatrix, CleanupIndex, CleanupScratch, DispatchTier, FusionMode,
    PackedBackend, ResonatePhase, WordSpec, CLEANUP_INDEX_MIN_ROWS,
};
pub use quant::{Precision, QuantizedVector};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Convenience constructor for a deterministic random-number generator.
///
/// All stochastic components of the reproduction (codebook generation, noise injection,
/// dataset synthesis) take an explicit `&mut impl Rng` so experiments are reproducible;
/// this helper gives callers a seeded [`StdRng`] without importing `rand` themselves.
///
/// # Example
/// ```
/// let mut rng = cogsys_vsa::rng(42);
/// let hv = cogsys_vsa::Hypervector::random_bipolar(64, &mut rng);
/// assert_eq!(hv.dim(), 64);
/// ```
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
