//! Batched VSA execution engine.
//!
//! The paper's performance story (Sec. IV–VI) treats circular convolution, similarity
//! search and bundling as *batch* kernels mapped onto a shared compute array. This
//! module is the software seam for that view: a contiguous row-major matrix of
//! hypervectors ([`HvMatrix`]) plus a pluggable execution backend ([`VsaBackend`])
//! exposing the array-level operations — batched binding/unbinding, bundling,
//! codebook-vs-queries similarity (GEMM-style) and batched cleanup.
//!
//! Three implementations ship:
//!
//! * [`ReferenceBackend`] — row-at-a-time delegation to [`crate::ops`], kept as ground
//!   truth;
//! * [`ParallelBackend`] — data-parallel over rows with scoped threads, cached FFT
//!   plans (precomputed twiddle/bit-reversal tables) and reusable scratch buffers;
//! * [`PackedBackend`] (the default) — bit-packed sign planes with XOR binding and
//!   popcount similarity for the bipolar MAP/Hadamard algebra, falling back to
//!   [`ParallelBackend`] elsewhere, and accepting pre-packed
//!   [`crate::packed::BitMatrix`] queries through the `*_bits` surface.
//!
//! Backend compatibility contract: binding/unbinding (Hadamard and circular, planned
//! FFT included — the plans replay the reference twiddle recurrence), bundling and
//! projection are **bitwise identical** across backends; the similarity kernels
//! (`similarity_matrix`, `cleanup_batch`) use lane-split accumulation in the parallel
//! backend for SIMD throughput and agree with the reference within **1e-4 cosine**.
//! Parallelism is across rows only, so results never depend on the thread count.

use crate::codebook::BindingOp;
use crate::error::VsaError;
use crate::fft::{self, Complex, FftPlan};
use crate::hypervector::{Hypervector, VsaKind};
use crate::ops;
use crate::packed::{BitMatrix, PackedBackend};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A dense, row-major, contiguous batch of `rows` hypervectors of dimension `dim`.
///
/// This is the storage layout the accelerator's SRAM model assumes and the unit of
/// work every [`VsaBackend`] operation consumes: one row per hypervector, rows packed
/// back to back in a single `Vec<f32>`.
///
/// # Example
/// ```
/// use cogsys_vsa::batch::HvMatrix;
/// use cogsys_vsa::Hypervector;
///
/// let rows = vec![
///     Hypervector::from_values(vec![1.0, 2.0]),
///     Hypervector::from_values(vec![3.0, 4.0]),
/// ];
/// let m = HvMatrix::from_rows(&rows).unwrap();
/// assert_eq!((m.rows(), m.dim()), (2, 2));
/// assert_eq!(m.row(1), &[3.0, 4.0]);
/// assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HvMatrix {
    data: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl HvMatrix {
    /// Creates a zero-filled matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        Self {
            data: vec![0.0; rows * dim],
            rows,
            dim,
        }
    }

    /// Wraps an existing contiguous buffer.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `data.len() != rows * dim`.
    pub fn from_vec(data: Vec<f32>, rows: usize, dim: usize) -> Result<Self, VsaError> {
        if data.len() != rows * dim {
            return Err(VsaError::DimensionMismatch {
                left: data.len(),
                right: rows * dim,
            });
        }
        Ok(Self { data, rows, dim })
    }

    /// Packs a slice of hypervectors into a contiguous matrix (one row each).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the vectors disagree in dimension.
    /// An empty slice yields the empty `0 × 0` matrix.
    pub fn from_rows(rows: &[Hypervector]) -> Result<Self, VsaError> {
        let Some(first) = rows.first() else {
            return Ok(Self::default());
        };
        let dim = first.dim();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for hv in rows {
            if hv.dim() != dim {
                return Err(VsaError::DimensionMismatch {
                    left: dim,
                    right: hv.dim(),
                });
            }
            data.extend_from_slice(hv.values());
        }
        Ok(Self {
            data,
            rows: rows.len(),
            dim,
        })
    }

    /// A single-row matrix holding a copy of `hv`.
    pub fn from_hypervector(hv: &Hypervector) -> Self {
        Self {
            data: hv.values().to_vec(),
            rows: 1,
            dim: hv.dim(),
        }
    }

    /// A matrix whose every row is a copy of `hv`.
    pub fn broadcast(hv: &Hypervector, rows: usize) -> Self {
        let mut data = Vec::with_capacity(rows * hv.dim());
        for _ in 0..rows {
            data.extend_from_slice(hv.values());
        }
        Self {
            data,
            rows,
            dim: hv.dim(),
        }
    }

    /// Number of rows (hypervectors).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of each row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns `true` when the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The whole matrix as one contiguous slice, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the contiguous storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the rows as slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Overwrites row `i` with `values`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] / [`VsaError::DimensionMismatch`] on a bad
    /// row index or length.
    pub fn set_row(&mut self, i: usize, values: &[f32]) -> Result<(), VsaError> {
        if i >= self.rows {
            return Err(VsaError::IndexOutOfRange {
                index: i,
                len: self.rows,
            });
        }
        if values.len() != self.dim {
            return Err(VsaError::DimensionMismatch {
                left: values.len(),
                right: self.dim,
            });
        }
        self.row_mut(i).copy_from_slice(values);
        Ok(())
    }

    /// Appends one row.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if `values.len()` differs from `dim()`
    /// (the first pushed row fixes the dimension of an empty matrix).
    pub fn push_row(&mut self, values: &[f32]) -> Result<(), VsaError> {
        if self.rows == 0 && self.dim == 0 {
            self.dim = values.len();
        }
        if values.len() != self.dim {
            return Err(VsaError::DimensionMismatch {
                left: values.len(),
                right: self.dim,
            });
        }
        self.data.extend_from_slice(values);
        self.rows += 1;
        Ok(())
    }

    /// Capacity of the backing element buffer — a reallocation fingerprint for
    /// steady-state-allocation regression tests ([`HvMatrix::ensure_shape`]
    /// never shrinks it).
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reshapes the buffer to `rows × dim` for reuse as an output buffer (avoids
    /// reallocation when the capacity already suffices). Contents are preserved when
    /// the shape is unchanged and **zeroed on any shape change** — a plain `resize`
    /// would silently reinterpret stale elements under the new `(rows, dim)` layout.
    pub fn ensure_shape(&mut self, rows: usize, dim: usize) {
        if self.rows == rows && self.dim == dim {
            return;
        }
        // clear() drops the length to zero first, so resize() zero-fills everything.
        self.data.clear();
        self.data.resize(rows * dim, 0.0);
        self.rows = rows;
        self.dim = dim;
    }

    /// Selects `indices` rows into a new matrix (used to gather decoded codevectors).
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn gather(&self, indices: &[usize]) -> Result<Self, VsaError> {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            if i >= self.rows {
                return Err(VsaError::IndexOutOfRange {
                    index: i,
                    len: self.rows,
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Self {
            data,
            rows: indices.len(),
            dim: self.dim,
        })
    }

    /// Allocation-free [`HvMatrix::gather`]: selects `indices` rows into `out`
    /// (reshaped as needed). `out` must not alias `self`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn gather_into(&self, indices: &[usize], out: &mut Self) -> Result<(), VsaError> {
        out.ensure_shape(indices.len(), self.dim);
        for (slot, &i) in indices.iter().enumerate() {
            if i >= self.rows {
                return Err(VsaError::IndexOutOfRange {
                    index: i,
                    len: self.rows,
                });
            }
            out.row_mut(slot).copy_from_slice(self.row(i));
        }
        Ok(())
    }

    /// Copies `src` into `self`, reshaping as needed (allocation-free once warm).
    pub fn copy_from(&mut self, src: &Self) {
        self.ensure_shape(src.rows, src.dim);
        self.data.copy_from_slice(&src.data);
    }

    /// Converts row `i` into an owned [`Hypervector`] with the given kind tag.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn row_hypervector(&self, i: usize, kind: VsaKind) -> Result<Hypervector, VsaError> {
        if i >= self.rows {
            return Err(VsaError::IndexOutOfRange {
                index: i,
                len: self.rows,
            });
        }
        Ok(Hypervector::with_kind(self.row(i).to_vec(), kind))
    }

    /// Unpacks into owned hypervectors, all tagged `kind`.
    pub fn to_hypervectors(&self, kind: VsaKind) -> Vec<Hypervector> {
        (0..self.rows)
            .map(|i| Hypervector::with_kind(self.row(i).to_vec(), kind))
            .collect()
    }

    /// Consumes the matrix and returns the contiguous storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }
}

/// Which [`VsaBackend`] implementation a pipeline runs on.
///
/// Threaded through `SolverConfig` / `FactorizerConfig` so backend selection reaches
/// every layer from `cogsys-core` down without plumbing trait objects through config
/// structs (configs stay `Clone + PartialEq + Serialize`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum BackendKind {
    /// Row-at-a-time ground truth ([`ReferenceBackend`]).
    Reference,
    /// Multi-threaded batch execution with cached FFT plans ([`ParallelBackend`]).
    Parallel,
    /// Bit-packed bipolar execution — XOR binding and popcount similarity for the
    /// MAP/Hadamard algebra, dense fallback otherwise ([`PackedBackend`]).
    ///
    /// The **default**: every hot pipeline in the repository runs bipolar Hadamard
    /// configurations, where the packed kernels are exact and several times faster;
    /// HRR/circular-convolution and non-bipolar workloads transparently run on the
    /// wrapped dense [`ParallelBackend`].
    #[default]
    Packed,
}

impl BackendKind {
    /// Every selectable backend.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Reference,
        BackendKind::Parallel,
        BackendKind::Packed,
    ];

    /// Instantiates the backend this kind names.
    pub fn create(self) -> Arc<dyn VsaBackend> {
        match self {
            BackendKind::Reference => Arc::new(ReferenceBackend),
            BackendKind::Parallel => Arc::new(ParallelBackend::new()),
            BackendKind::Packed => Arc::new(PackedBackend::new()),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Reference => write!(f, "reference"),
            BackendKind::Parallel => write!(f, "parallel"),
            BackendKind::Packed => write!(f, "packed"),
        }
    }
}

fn check_same_shape(a: &HvMatrix, b: &HvMatrix) -> Result<(), VsaError> {
    if a.rows() != b.rows() {
        return Err(VsaError::DimensionMismatch {
            left: a.rows(),
            right: b.rows(),
        });
    }
    if a.dim() != b.dim() {
        return Err(VsaError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    Ok(())
}

/// The batched execution engine every pipeline layer talks to.
///
/// All operations are *batch*-shaped: operands are [`HvMatrix`] values and the
/// per-row semantics exactly match the scalar functions in [`crate::ops`]. The
/// `*_into` variants are the required methods so implementations can be allocation-free
/// in steady state; the allocating variants are provided conveniences.
pub trait VsaBackend: Send + Sync + std::fmt::Debug {
    /// Short identifier for logs and benchmark output.
    fn name(&self) -> &'static str;

    /// The bit-packed bipolar fast path, when this backend has one.
    ///
    /// Layers that cache packed operands (codebook sign planes, the factorizer's
    /// packed estimates) probe this to route around the `f32` surface; the default of
    /// `None` keeps dense backends on the dense path.
    fn as_packed(&self) -> Option<&PackedBackend> {
        None
    }

    /// Row-wise binding: `out[i] = bind(a[i], b[i])` under `op`, writing into `out`
    /// (reshaped as needed).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `a` and `b` disagree in shape.
    fn bind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError>;

    /// Row-wise unbinding, the approximate inverse of [`VsaBackend::bind_batch_into`]
    /// (`⊘` for Hadamard, circular correlation for convolution binding).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `a` and `b` disagree in shape.
    fn unbind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError>;

    /// GEMM-style similarity: `out[q][m] = queries[q] · codebook[m]`, with `out`
    /// reshaped to `queries.rows() × codebook.rows()`.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the dimensionalities disagree.
    fn similarity_matrix_into(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError>;

    /// Batched weighted superposition (the factorizer's projection step):
    /// `out[q] = Σ_m weights[q][m] · codebook[m]`, with `out` reshaped to
    /// `weights.rows() × codebook.dim()`.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `weights.dim() != codebook.rows()`
    /// and [`VsaError::Empty`] for an empty codebook.
    fn project_batch_into(
        &self,
        codebook: &HvMatrix,
        weights: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError>;

    /// Bundles (superposes) all rows into a single hypervector, matching
    /// [`crate::ops::bundle`].
    ///
    /// # Errors
    /// Returns [`VsaError::Empty`] for a matrix with no rows.
    fn bundle(&self, items: &HvMatrix) -> Result<Hypervector, VsaError>;

    /// Batched cleanup: for each query row, the index and cosine similarity of the
    /// best-matching codebook row (ties resolve to the first, zero-norm pairs score 0).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the dimensionalities disagree and
    /// [`VsaError::Empty`] for an empty codebook.
    fn cleanup_batch(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError>;

    /// Batched cleanup with **bit-packed** queries: callers that already hold sign
    /// planes (the packed resonator's estimates, a packed-encoded scene batch) pass
    /// them directly instead of round-tripping through `f32` and re-packing per call.
    ///
    /// The default unpacks the queries and delegates to
    /// [`VsaBackend::cleanup_batch`]; [`PackedBackend`] overrides it to stay entirely
    /// in sign planes. Results are identical to cleaning up the unpacked queries.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the dimensionalities disagree and
    /// [`VsaError::Empty`] for an empty codebook.
    fn cleanup_batch_bits(
        &self,
        codebook: &HvMatrix,
        queries: &BitMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        let mut dense = HvMatrix::default();
        queries.unpack_into(&mut dense);
        self.cleanup_batch(codebook, &dense)
    }

    /// GEMM-style similarity with **bit-packed** queries (see
    /// [`VsaBackend::cleanup_batch_bits`] for the motivation). The default unpacks and
    /// delegates to [`VsaBackend::similarity_matrix_into`].
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the dimensionalities disagree.
    fn similarity_matrix_bits_into(
        &self,
        codebook: &HvMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        let mut dense = HvMatrix::default();
        queries.unpack_into(&mut dense);
        self.similarity_matrix_into(codebook, &dense, out)
    }

    /// Allocating variant of [`VsaBackend::bind_batch_into`].
    ///
    /// # Errors
    /// See [`VsaBackend::bind_batch_into`].
    fn bind_batch(&self, a: &HvMatrix, b: &HvMatrix, op: BindingOp) -> Result<HvMatrix, VsaError> {
        let mut out = HvMatrix::default();
        self.bind_batch_into(a, b, op, &mut out)?;
        Ok(out)
    }

    /// Allocating variant of [`VsaBackend::unbind_batch_into`].
    ///
    /// # Errors
    /// See [`VsaBackend::unbind_batch_into`].
    fn unbind_batch(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
    ) -> Result<HvMatrix, VsaError> {
        let mut out = HvMatrix::default();
        self.unbind_batch_into(a, b, op, &mut out)?;
        Ok(out)
    }

    /// Allocating variant of [`VsaBackend::similarity_matrix_into`].
    ///
    /// # Errors
    /// See [`VsaBackend::similarity_matrix_into`].
    fn similarity_matrix(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<HvMatrix, VsaError> {
        let mut out = HvMatrix::default();
        self.similarity_matrix_into(codebook, queries, &mut out)?;
        Ok(out)
    }

    /// Allocating variant of [`VsaBackend::project_batch_into`].
    ///
    /// # Errors
    /// See [`VsaBackend::project_batch_into`].
    fn project_batch(&self, codebook: &HvMatrix, weights: &HvMatrix) -> Result<HvMatrix, VsaError> {
        let mut out = HvMatrix::default();
        self.project_batch_into(codebook, weights, &mut out)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Shared row kernels. Both backends funnel through these so per-row arithmetic
// (and therefore floating-point rounding) is identical; only the iteration
// strategy across rows differs.
// ---------------------------------------------------------------------------

fn hadamard_row(a: &[f32], b: &[f32], out: &mut [f32]) {
    for ((slot, x), y) in out.iter_mut().zip(a).zip(b) {
        *slot = x * y;
    }
}

fn convolve_row_naive(a: &[f32], b: &[f32], out: &mut [f32]) {
    let d = a.len();
    for (n, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..d {
            acc += a[k] * b[(n + d - k) % d];
        }
        *slot = acc;
    }
}

fn correlate_row_naive(a: &[f32], b: &[f32], out: &mut [f32]) {
    let d = a.len();
    for (n, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..d {
            acc += a[k] * b[(n + k) % d];
        }
        *slot = acc;
    }
}

fn dot_row(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm_row(a: &[f32]) -> f32 {
    a.iter().map(|v| v * v).sum::<f32>().sqrt()
}

/// Dot product with eight independent accumulators.
///
/// The reference dot is a strict left-to-right f32 sum — a serial dependency chain the
/// compiler may not reorder, so it can neither vectorise nor hide FP latency. Splitting
/// the sum across lanes breaks the chain (SIMD + ILP) at the cost of a different — not
/// worse — rounding order; the backend contract only promises 1e-4 cosine agreement
/// for the similarity kernels.
fn dot_row_fast(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks_a = a.chunks_exact(LANES);
    let chunks_b = b.chunks_exact(LANES);
    let tail: f32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    for (xa, xb) in chunks_a.zip(chunks_b) {
        for l in 0..LANES {
            acc[l] += xa[l] * xb[l];
        }
    }
    let p0 = (acc[0] + acc[4]) + (acc[1] + acc[5]);
    let p1 = (acc[2] + acc[6]) + (acc[3] + acc[7]);
    p0 + p1 + tail
}

fn norm_row_fast(a: &[f32]) -> f32 {
    dot_row_fast(a, a).sqrt()
}

fn cleanup_row_fast(codebook: &HvMatrix, codebook_norms: &[f32], query: &[f32]) -> (usize, f32) {
    let q_norm = norm_row_fast(query);
    let mut best = (0usize, f32::NEG_INFINITY);
    for (m, row) in codebook.row_iter().enumerate() {
        let denom = codebook_norms[m] * q_norm;
        let sim = if denom == 0.0 {
            0.0
        } else {
            dot_row_fast(row, query) / denom
        };
        if sim > best.1 {
            best = (m, sim);
        }
    }
    best
}

fn project_row(codebook: &HvMatrix, weights: &[f32], out: &mut [f32]) {
    out.fill(0.0);
    for (row, &w) in codebook.row_iter().zip(weights) {
        for (slot, v) in out.iter_mut().zip(row) {
            *slot += w * v;
        }
    }
}

fn cleanup_row(codebook: &HvMatrix, codebook_norms: &[f32], query: &[f32]) -> (usize, f32) {
    let q_norm = norm_row(query);
    let mut best = (0usize, f32::NEG_INFINITY);
    for (m, row) in codebook.row_iter().enumerate() {
        let denom = codebook_norms[m] * q_norm;
        let sim = if denom == 0.0 {
            0.0
        } else {
            dot_row(row, query) / denom
        };
        if sim > best.1 {
            best = (m, sim);
        }
    }
    best
}

fn check_gemm_shapes(codebook: &HvMatrix, queries: &HvMatrix) -> Result<(), VsaError> {
    if codebook.dim() != queries.dim() {
        return Err(VsaError::DimensionMismatch {
            left: codebook.dim(),
            right: queries.dim(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Reference backend
// ---------------------------------------------------------------------------

/// Ground-truth backend: one row at a time, straight through [`crate::ops`].
///
/// Kept deliberately boring — every other backend is validated against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceBackend;

impl VsaBackend for ReferenceBackend {
    fn name(&self) -> &'static str {
        "reference"
    }

    fn bind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        check_same_shape(a, b)?;
        out.ensure_shape(a.rows(), a.dim());
        for i in 0..a.rows() {
            let (ra, rb) = (a.row(i), b.row(i));
            match op {
                BindingOp::Hadamard => hadamard_row(ra, rb, out.row_mut(i)),
                BindingOp::CircularConvolution => {
                    let bound = ops::try_circular_convolve(
                        &Hypervector::from_values(ra.to_vec()),
                        &Hypervector::from_values(rb.to_vec()),
                    )?;
                    out.row_mut(i).copy_from_slice(bound.values());
                }
            }
        }
        Ok(())
    }

    fn unbind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        check_same_shape(a, b)?;
        out.ensure_shape(a.rows(), a.dim());
        for i in 0..a.rows() {
            let (ra, rb) = (a.row(i), b.row(i));
            match op {
                BindingOp::Hadamard => hadamard_row(ra, rb, out.row_mut(i)),
                BindingOp::CircularConvolution => {
                    let unbound = ops::try_circular_correlate(
                        &Hypervector::from_values(ra.to_vec()),
                        &Hypervector::from_values(rb.to_vec()),
                    )?;
                    out.row_mut(i).copy_from_slice(unbound.values());
                }
            }
        }
        Ok(())
    }

    fn similarity_matrix_into(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        check_gemm_shapes(codebook, queries)?;
        out.ensure_shape(queries.rows(), codebook.rows());
        for q in 0..queries.rows() {
            let query = queries.row(q);
            for (m, row) in codebook.row_iter().enumerate() {
                out.row_mut(q)[m] = dot_row(row, query);
            }
        }
        Ok(())
    }

    fn project_batch_into(
        &self,
        codebook: &HvMatrix,
        weights: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        if weights.dim() != codebook.rows() {
            return Err(VsaError::DimensionMismatch {
                left: weights.dim(),
                right: codebook.rows(),
            });
        }
        out.ensure_shape(weights.rows(), codebook.dim());
        for q in 0..weights.rows() {
            project_row(codebook, weights.row(q), out.row_mut(q));
        }
        Ok(())
    }

    fn bundle(&self, items: &HvMatrix) -> Result<Hypervector, VsaError> {
        if items.rows() == 0 {
            return Err(VsaError::Empty {
                what: "bundle input",
            });
        }
        let mut acc = items.row(0).to_vec();
        for i in 1..items.rows() {
            for (slot, v) in acc.iter_mut().zip(items.row(i)) {
                *slot += v;
            }
        }
        Ok(Hypervector::with_kind(acc, VsaKind::Dense))
    }

    fn cleanup_batch(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        check_gemm_shapes(codebook, queries)?;
        let norms: Vec<f32> = codebook.row_iter().map(norm_row).collect();
        Ok((0..queries.rows())
            .map(|q| cleanup_row(codebook, &norms, queries.row(q)))
            .collect())
    }
}

// ---------------------------------------------------------------------------
// Parallel backend
// ---------------------------------------------------------------------------

/// Multi-threaded batch backend.
///
/// * Rows are distributed over scoped worker threads (`std::thread::scope`); results
///   never depend on the thread count because rows are independent.
/// * Power-of-two circular convolution/correlation uses cached [`FftPlan`]s —
///   twiddle factors and the bit-reversal permutation are computed once per dimension
///   and shared across calls and threads — and is bitwise identical to the reference.
/// * The similarity kernels use eight-lane accumulation ([`dot_row_fast`]) so they
///   vectorise; they agree with the reference within the 1e-4 cosine contract.
/// * Workers reuse per-thread scratch buffers, so the factorizer's inner loop performs
///   no per-iteration allocation beyond first use.
#[derive(Debug)]
pub struct ParallelBackend {
    max_threads: usize,
    plans: Mutex<HashMap<usize, Arc<FftPlan>>>,
}

impl Default for ParallelBackend {
    fn default() -> Self {
        Self::new()
    }
}

/// Minimum per-thread work (in f32 multiply–accumulates) before another worker thread
/// pays for itself; below this everything runs on the calling thread.
const PARALLEL_WORK_THRESHOLD: usize = 1 << 16;

impl ParallelBackend {
    /// Creates a backend using every available core.
    pub fn new() -> Self {
        Self::with_threads(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// Creates a backend capped at `max_threads` worker threads (minimum 1).
    pub fn with_threads(max_threads: usize) -> Self {
        Self {
            max_threads: max_threads.max(1),
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// The configured thread cap.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Fetches (or builds and caches) the FFT plan for power-of-two `dim`.
    fn plan(&self, dim: usize) -> Option<Arc<FftPlan>> {
        if !fft::is_power_of_two(dim) {
            return None;
        }
        let mut plans = self.plans.lock().expect("fft plan cache poisoned");
        Some(Arc::clone(
            plans
                .entry(dim)
                .or_insert_with(|| Arc::new(FftPlan::new(dim))),
        ))
    }

    /// Number of worker threads for a job of `rows` rows costing ~`work_per_row` MACs.
    fn threads_for(&self, rows: usize, work_per_row: usize) -> usize {
        let total = rows.saturating_mul(work_per_row.max(1));
        let by_work = (total / PARALLEL_WORK_THRESHOLD).max(1);
        self.max_threads.min(by_work).min(rows.max(1))
    }

    /// Runs `body(row_index, row_out)` for every row of `out`, split across threads.
    /// `body` must be deterministic per row — rows never share output.
    fn for_each_row<F>(&self, out: &mut HvMatrix, work_per_row: usize, body: F)
    where
        F: Fn(usize, &mut [f32]) + Sync,
    {
        let rows = out.rows();
        let dim = out.dim().max(1);
        let threads = self.threads_for(rows, work_per_row);
        if threads <= 1 || rows <= 1 {
            for i in 0..rows {
                body(i, out.row_mut(i));
            }
            return;
        }
        let chunk_rows = rows.div_ceil(threads);
        let data = out.as_mut_slice();
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in data.chunks_mut(chunk_rows * dim).enumerate() {
                let body = &body;
                scope.spawn(move || {
                    let base = chunk_index * chunk_rows;
                    for (offset, row) in chunk.chunks_mut(dim).enumerate() {
                        body(base + offset, row);
                    }
                });
            }
        });
    }

    fn bind_or_unbind_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        correlate: bool,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        check_same_shape(a, b)?;
        let dim = a.dim();
        out.ensure_shape(a.rows(), dim);
        match op {
            BindingOp::Hadamard => {
                self.for_each_row(out, dim, |i, row| hadamard_row(a.row(i), b.row(i), row));
            }
            BindingOp::CircularConvolution => match self.plan(dim) {
                Some(plan) => {
                    // O(d log d) planned path; per-thread scratch reused across rows.
                    let work = dim * usize::max(dim.ilog2() as usize, 1);
                    let rows = out.rows();
                    let threads = self.threads_for(rows, work);
                    let run_rows =
                        |chunk: &mut [f32],
                         base: usize,
                         scratch_a: &mut Vec<Complex>,
                         scratch_b: &mut Vec<Complex>| {
                            for (offset, row) in chunk.chunks_mut(dim.max(1)).enumerate() {
                                let i = base + offset;
                                if correlate {
                                    plan.circular_correlate_into(
                                        a.row(i),
                                        b.row(i),
                                        row,
                                        scratch_a,
                                        scratch_b,
                                    );
                                } else {
                                    plan.circular_convolve_into(
                                        a.row(i),
                                        b.row(i),
                                        row,
                                        scratch_a,
                                        scratch_b,
                                    );
                                }
                            }
                        };
                    if threads <= 1 || rows <= 1 {
                        // Serial path (batch of one, or work below the thread
                        // threshold): no thread spawn, and the scratch buffers live in
                        // a thread-local so repeated calls — e.g. the resonator inner
                        // loop — allocate nothing in steady state.
                        thread_local! {
                            static FFT_SCRATCH: std::cell::RefCell<(Vec<Complex>, Vec<Complex>)> =
                                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
                        }
                        FFT_SCRATCH.with(|cell| {
                            let (scratch_a, scratch_b) = &mut *cell.borrow_mut();
                            run_rows(out.as_mut_slice(), 0, scratch_a, scratch_b);
                        });
                    } else {
                        let chunk_rows = rows.div_ceil(threads).max(1);
                        let data = out.as_mut_slice();
                        std::thread::scope(|scope| {
                            for (chunk_index, chunk) in
                                data.chunks_mut(chunk_rows * dim.max(1)).enumerate()
                            {
                                let run_rows = &run_rows;
                                scope.spawn(move || {
                                    // Worker-local scratch, amortised over the chunk.
                                    let mut scratch_a: Vec<Complex> = Vec::new();
                                    let mut scratch_b: Vec<Complex> = Vec::new();
                                    run_rows(
                                        chunk,
                                        chunk_index * chunk_rows,
                                        &mut scratch_a,
                                        &mut scratch_b,
                                    );
                                });
                            }
                        });
                    }
                }
                None => {
                    self.for_each_row(out, dim * dim, |i, row| {
                        if correlate {
                            correlate_row_naive(a.row(i), b.row(i), row);
                        } else {
                            convolve_row_naive(a.row(i), b.row(i), row);
                        }
                    });
                }
            },
        }
        Ok(())
    }
}

impl VsaBackend for ParallelBackend {
    fn name(&self) -> &'static str {
        "parallel"
    }

    fn bind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        self.bind_or_unbind_into(a, b, op, false, out)
    }

    fn unbind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        self.bind_or_unbind_into(a, b, op, true, out)
    }

    fn similarity_matrix_into(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        check_gemm_shapes(codebook, queries)?;
        out.ensure_shape(queries.rows(), codebook.rows());
        self.for_each_row(out, codebook.rows() * codebook.dim(), |q, sims| {
            let query = queries.row(q);
            for (m, row) in codebook.row_iter().enumerate() {
                sims[m] = dot_row_fast(row, query);
            }
        });
        Ok(())
    }

    fn project_batch_into(
        &self,
        codebook: &HvMatrix,
        weights: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        if weights.dim() != codebook.rows() {
            return Err(VsaError::DimensionMismatch {
                left: weights.dim(),
                right: codebook.rows(),
            });
        }
        out.ensure_shape(weights.rows(), codebook.dim());
        self.for_each_row(out, codebook.rows() * codebook.dim(), |q, row| {
            project_row(codebook, weights.row(q), row);
        });
        Ok(())
    }

    fn bundle(&self, items: &HvMatrix) -> Result<Hypervector, VsaError> {
        // Sequential column accumulation in row order: bundling is memory-bound and
        // must keep the reference summation order for bitwise compatibility.
        ReferenceBackend.bundle(items)
    }

    fn cleanup_batch(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        check_gemm_shapes(codebook, queries)?;
        let norms: Vec<f32> = codebook.row_iter().map(norm_row_fast).collect();
        let rows = queries.rows();
        let threads = self.threads_for(rows, codebook.rows() * codebook.dim());
        if threads <= 1 || rows <= 1 {
            return Ok((0..rows)
                .map(|q| cleanup_row_fast(codebook, &norms, queries.row(q)))
                .collect());
        }
        let chunk_rows = rows.div_ceil(threads);
        let mut results = vec![(0usize, 0.0f32); rows];
        std::thread::scope(|scope| {
            for (chunk_index, chunk) in results.chunks_mut(chunk_rows).enumerate() {
                let norms = &norms;
                scope.spawn(move || {
                    let base = chunk_index * chunk_rows;
                    for (offset, slot) in chunk.iter_mut().enumerate() {
                        *slot = cleanup_row_fast(codebook, norms, queries.row(base + offset));
                    }
                });
            }
        });
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn random_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
        let mut r = rng(seed);
        let hvs: Vec<Hypervector> = (0..rows)
            .map(|_| Hypervector::random_real(dim, &mut r))
            .collect();
        HvMatrix::from_rows(&hvs).unwrap()
    }

    #[test]
    fn hv_matrix_round_trips_hypervectors() {
        let mut r = rng(1);
        let hvs: Vec<Hypervector> = (0..4)
            .map(|_| Hypervector::random_bipolar(16, &mut r))
            .collect();
        let m = HvMatrix::from_rows(&hvs).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.dim(), 16);
        let back = m.to_hypervectors(VsaKind::Bipolar);
        for (orig, round) in hvs.iter().zip(&back) {
            assert_eq!(orig.values(), round.values());
        }
    }

    #[test]
    fn hv_matrix_rejects_ragged_rows() {
        let bad = vec![Hypervector::zeros(4), Hypervector::zeros(8)];
        assert!(matches!(
            HvMatrix::from_rows(&bad),
            Err(VsaError::DimensionMismatch { .. })
        ));
        assert!(HvMatrix::from_vec(vec![0.0; 7], 2, 4).is_err());
    }

    #[test]
    fn hv_matrix_push_and_gather() {
        let mut m = HvMatrix::default();
        m.push_row(&[1.0, 2.0]).unwrap();
        m.push_row(&[3.0, 4.0]).unwrap();
        assert!(m.push_row(&[5.0]).is_err());
        let g = m.gather(&[1, 0, 1]).unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[3.0, 4.0]);
        assert_eq!(g.row(2), &[3.0, 4.0]);
        assert!(m.gather(&[2]).is_err());
    }

    #[test]
    fn backends_agree_on_every_op() {
        let reference = ReferenceBackend;
        let parallel = ParallelBackend::with_threads(4);
        for dim in [8usize, 12, 64, 100] {
            let a = random_matrix(5, dim, 10 + dim as u64);
            let b = random_matrix(5, dim, 20 + dim as u64);
            // Binding, unbinding and bundling are bitwise identical across backends.
            for op in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
                let r = reference.bind_batch(&a, &b, op).unwrap();
                let p = parallel.bind_batch(&a, &b, op).unwrap();
                assert_eq!(r, p, "bind dim {dim} {op:?}");
                let r = reference.unbind_batch(&a, &b, op).unwrap();
                let p = parallel.unbind_batch(&a, &b, op).unwrap();
                assert_eq!(r, p, "unbind dim {dim} {op:?}");
            }
            assert_eq!(
                reference.bundle(&a).unwrap().values(),
                parallel.bundle(&a).unwrap().values(),
                "bundle dim {dim}"
            );
            // The similarity kernels use lane-split accumulation in the parallel
            // backend; they agree within the documented tolerance.
            let codebook = random_matrix(9, dim, 30 + dim as u64);
            let rs = reference.similarity_matrix(&codebook, &a).unwrap();
            let ps = parallel.similarity_matrix(&codebook, &a).unwrap();
            for (x, y) in rs.as_slice().iter().zip(ps.as_slice()) {
                assert!((x - y).abs() < 1e-4, "similarity dim {dim}: {x} vs {y}");
            }
            // Projection accumulates in reference row order — bitwise identical
            // (use the reference similarities for both so inputs match exactly).
            let rp = reference.project_batch(&codebook, &rs).unwrap();
            let pp = parallel.project_batch(&codebook, &rs).unwrap();
            assert_eq!(rp, pp, "project dim {dim}");
            let rc = reference.cleanup_batch(&codebook, &a).unwrap();
            let pc = parallel.cleanup_batch(&codebook, &a).unwrap();
            for ((ri, rsim), (pi, psim)) in rc.iter().zip(&pc) {
                assert_eq!(ri, pi, "cleanup index dim {dim}");
                assert!((rsim - psim).abs() < 1e-4, "cleanup sim dim {dim}");
            }
        }
    }

    #[test]
    fn bind_batch_matches_scalar_ops() {
        let mut r = rng(33);
        let a: Vec<Hypervector> = (0..3)
            .map(|_| Hypervector::random_bipolar(32, &mut r))
            .collect();
        let b: Vec<Hypervector> = (0..3)
            .map(|_| Hypervector::random_bipolar(32, &mut r))
            .collect();
        let ma = HvMatrix::from_rows(&a).unwrap();
        let mb = HvMatrix::from_rows(&b).unwrap();
        for backend in BackendKind::ALL.map(BackendKind::create) {
            let bound = backend
                .bind_batch(&ma, &mb, BindingOp::CircularConvolution)
                .unwrap();
            for i in 0..3 {
                let scalar = ops::circular_convolve(&a[i], &b[i]);
                assert_eq!(bound.row(i), scalar.values(), "{} row {i}", backend.name());
            }
            let had = backend.bind_batch(&ma, &mb, BindingOp::Hadamard).unwrap();
            for i in 0..3 {
                let scalar = ops::hadamard_bind(&a[i], &b[i]).unwrap();
                assert_eq!(had.row(i), scalar.values());
            }
        }
    }

    #[test]
    fn similarity_matrix_matches_matvec() {
        let mut r = rng(34);
        let code: Vec<Hypervector> = (0..6)
            .map(|_| Hypervector::random_bipolar(64, &mut r))
            .collect();
        let query = Hypervector::random_bipolar(64, &mut r);
        let cb = HvMatrix::from_rows(&code).unwrap();
        let q = HvMatrix::from_hypervector(&query);
        let scalar = ops::matvec_similarity(&code, &query).unwrap();
        for backend in BackendKind::ALL.map(BackendKind::create) {
            let sims = backend.similarity_matrix(&cb, &q).unwrap();
            for (x, y) in sims.row(0).iter().zip(&scalar) {
                assert!((x - y).abs() < 1e-3, "{}: {x} vs {y}", backend.name());
            }
        }
    }

    #[test]
    fn cleanup_batch_matches_codebook_cleanup() {
        let mut r = rng(35);
        let cb = crate::Codebook::random("c", 12, 256, &mut r);
        let queries: Vec<Hypervector> = (0..5)
            .map(|i| ops::flip_noise(cb.vector(i * 2).unwrap(), 0.15, &mut r))
            .collect();
        let qm = HvMatrix::from_rows(&queries).unwrap();
        let cbm = HvMatrix::from_rows(cb.as_slice()).unwrap();
        for backend in BackendKind::ALL.map(BackendKind::create) {
            let batch = backend.cleanup_batch(&cbm, &qm).unwrap();
            for (q, hv) in queries.iter().enumerate() {
                let (idx, sim) = cb.cleanup(hv).unwrap();
                assert_eq!(batch[q].0, idx, "{} query {q}", backend.name());
                assert!((batch[q].1 - sim).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn shape_mismatches_are_rejected() {
        let backend = ParallelBackend::new();
        let a = HvMatrix::zeros(2, 8);
        let b = HvMatrix::zeros(3, 8);
        let c = HvMatrix::zeros(2, 4);
        assert!(backend.bind_batch(&a, &b, BindingOp::Hadamard).is_err());
        assert!(backend.bind_batch(&a, &c, BindingOp::Hadamard).is_err());
        assert!(backend.similarity_matrix(&c, &a).is_err());
        assert!(backend.cleanup_batch(&HvMatrix::default(), &a).is_err());
        assert!(backend.bundle(&HvMatrix::default()).is_err());
        let w = HvMatrix::zeros(2, 5);
        assert!(backend.project_batch(&a, &w).is_err());
    }

    #[test]
    fn ensure_shape_zeroes_stale_data_on_reshape() {
        // Regression: a populated buffer reshaped to a new (rows, dim) must not
        // reinterpret the old elements under the new row layout.
        let mut m = HvMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        m.ensure_shape(3, 2);
        assert_eq!((m.rows(), m.dim()), (3, 2));
        assert!(
            m.as_slice().iter().all(|&v| v == 0.0),
            "stale data survived the reshape: {:?}",
            m.as_slice()
        );
        // Same-shape calls preserve contents (in-place scratch reuse stays valid).
        let mut m = HvMatrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        m.ensure_shape(2, 2);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn packed_query_cleanup_matches_dense_query_cleanup() {
        use crate::packed::BitMatrix;
        let mut r = rng(91);
        let hvs: Vec<Hypervector> = (0..6)
            .map(|_| Hypervector::random_bipolar(130, &mut r))
            .collect();
        let cb = HvMatrix::from_rows(&hvs).unwrap();
        let q = random_matrix(4, 130, 92);
        // Bipolar queries so both the packed kernel and the dense default apply.
        let mut qb = q.clone();
        for v in qb.as_mut_slice() {
            *v = if *v < 0.0 { -1.0 } else { 1.0 };
        }
        let bits = BitMatrix::from_matrix(&qb).unwrap();
        for kind in BackendKind::ALL {
            let backend = kind.create();
            let dense = backend.cleanup_batch(&cb, &qb).unwrap();
            let packed = backend.cleanup_batch_bits(&cb, &bits).unwrap();
            for ((di, dsim), (pi, psim)) in dense.iter().zip(&packed) {
                assert_eq!(di, pi, "{kind}");
                assert!((dsim - psim).abs() < 1e-4, "{kind}: {dsim} vs {psim}");
            }
            let mut from_bits = HvMatrix::default();
            backend
                .similarity_matrix_bits_into(&cb, &bits, &mut from_bits)
                .unwrap();
            let dense_sims = backend.similarity_matrix(&cb, &qb).unwrap();
            for (x, y) in from_bits.as_slice().iter().zip(dense_sims.as_slice()) {
                assert!((x - y).abs() < 1e-3, "{kind}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn backend_kind_round_trip() {
        for kind in BackendKind::ALL {
            let backend = kind.create();
            assert_eq!(backend.name(), kind.to_string());
        }
        assert_eq!(BackendKind::default(), BackendKind::Packed);
    }

    #[test]
    fn broadcast_replicates_rows() {
        let hv = Hypervector::from_values(vec![1.0, -1.0]);
        let m = HvMatrix::broadcast(&hv, 3);
        assert_eq!(m.rows(), 3);
        for i in 0..3 {
            assert_eq!(m.row(i), hv.values());
        }
    }
}
