//! Reduced-precision arithmetic models (FP32 / FP8 / INT8).
//!
//! Sec. IV-B of the paper applies 8-bit floating-point and integer arithmetic to both
//! neural and symbolic computation, trading a small accuracy loss for 4.75× memory and
//! 7.7× area savings (Tab. VIII/IX). This module provides *bit-accurate emulation* of
//! FP8 (E4M3) rounding and symmetric INT8 quantization so the functional pipelines can
//! measure the accuracy impact, and so the energy/area model in `cogsys-sim` can key off
//! the same [`Precision`] enum.

use crate::hypervector::Hypervector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Arithmetic precision of a kernel or storage buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Precision {
    /// IEEE-754 single precision (baseline).
    #[default]
    Fp32,
    /// 8-bit floating point, E4M3 format (1 sign, 4 exponent, 3 mantissa bits).
    Fp8,
    /// Signed 8-bit integer with symmetric per-vector scaling.
    Int8,
}

impl Precision {
    /// Storage size of one element in bytes.
    pub fn bytes_per_element(self) -> usize {
        match self {
            Precision::Fp32 => 4,
            Precision::Fp8 | Precision::Int8 => 1,
        }
    }

    /// Bits per element.
    pub fn bits(self) -> usize {
        self.bytes_per_element() * 8
    }

    /// All supported precisions, in decreasing width.
    pub fn all() -> [Precision; 3] {
        [Precision::Fp32, Precision::Fp8, Precision::Int8]
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Fp32 => write!(f, "FP32"),
            Precision::Fp8 => write!(f, "FP8"),
            Precision::Int8 => write!(f, "INT8"),
        }
    }
}

/// Maximum finite magnitude representable in FP8 E4M3 (per the OCP FP8 specification).
pub const FP8_E4M3_MAX: f32 = 448.0;

/// Rounds an `f32` to the nearest representable FP8 E4M3 value (round-to-nearest-even),
/// saturating at ±[`FP8_E4M3_MAX`].
///
/// The emulation covers normal and subnormal E4M3 values; NaN inputs map to 0 because
/// the symbolic pipelines never produce NaN in well-formed runs and the accelerator's
/// datapath has no NaN handling.
pub fn quantize_fp8_e4m3(x: f32) -> f32 {
    if x.is_nan() {
        return 0.0;
    }
    let clamped = x.clamp(-FP8_E4M3_MAX, FP8_E4M3_MAX);
    if clamped == 0.0 {
        return 0.0;
    }
    let sign = if clamped < 0.0 { -1.0 } else { 1.0 };
    let mag = clamped.abs();
    // E4M3: exponent bias 7, 3 mantissa bits. Smallest normal = 2^-6, smallest
    // subnormal = 2^-9.
    let exp = mag.log2().floor();
    let exp = exp.clamp(-6.0, 8.0);
    let scale = (exp - 3.0).exp2(); // quantization step within this binade: 2^(exp-3)
    let step = if mag < (-6.0f32).exp2() {
        // Subnormal range: fixed step of 2^-9.
        (-9.0f32).exp2()
    } else {
        scale
    };
    let q = (mag / step).round_ties_even() * step;
    sign * q.min(FP8_E4M3_MAX)
}

/// A vector stored in reduced precision together with its dequantization metadata.
///
/// INT8 uses symmetric per-vector scaling (`value ≈ scale * int8`); FP8 stores the
/// rounded values directly (scale = 1); FP32 is a pass-through.
///
/// # Example
/// ```
/// use cogsys_vsa::{Hypervector, Precision, QuantizedVector};
/// let hv = Hypervector::from_values(vec![0.5, -1.0, 0.25, 1.0]);
/// let q = QuantizedVector::quantize(&hv, Precision::Int8);
/// let back = q.dequantize();
/// for (a, b) in hv.values().iter().zip(back.values()) {
///     assert!((a - b).abs() < 0.02);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    precision: Precision,
    scale: f32,
    /// INT8 payload (used when `precision == Int8`).
    int_values: Vec<i8>,
    /// FP32/FP8 payload (rounded values for FP8).
    float_values: Vec<f32>,
}

impl QuantizedVector {
    /// Quantizes a hypervector into the requested precision.
    pub fn quantize(hv: &Hypervector, precision: Precision) -> Self {
        match precision {
            Precision::Fp32 => Self {
                precision,
                scale: 1.0,
                int_values: Vec::new(),
                float_values: hv.values().to_vec(),
            },
            Precision::Fp8 => Self {
                precision,
                scale: 1.0,
                int_values: Vec::new(),
                float_values: hv.values().iter().copied().map(quantize_fp8_e4m3).collect(),
            },
            Precision::Int8 => {
                let max_abs = hv.values().iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
                let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
                let int_values = hv
                    .values()
                    .iter()
                    .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
                    .collect();
                Self {
                    precision,
                    scale,
                    int_values,
                    float_values: Vec::new(),
                }
            }
        }
    }

    /// The precision this vector is stored in.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The per-vector scale factor (1.0 for FP32/FP8).
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self.precision {
            Precision::Int8 => self.int_values.len(),
            _ => self.float_values.len(),
        }
    }

    /// Returns `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage footprint in bytes (payload only).
    pub fn footprint_bytes(&self) -> usize {
        self.len() * self.precision.bytes_per_element()
    }

    /// Reconstructs an f32 hypervector (lossy for FP8/INT8).
    pub fn dequantize(&self) -> Hypervector {
        match self.precision {
            Precision::Int8 => Hypervector::from_values(
                self.int_values
                    .iter()
                    .map(|&v| v as f32 * self.scale)
                    .collect(),
            ),
            _ => Hypervector::from_values(self.float_values.clone()),
        }
    }
}

/// Applies a quantize→dequantize round trip, returning the precision-limited vector.
///
/// The functional pipelines use this "fake quantization" to run entire reasoning tasks
/// at FP8/INT8 fidelity while keeping f32 as the working type.
pub fn fake_quantize(hv: &Hypervector, precision: Precision) -> Hypervector {
    match precision {
        Precision::Fp32 => hv.clone(),
        _ => {
            let mut hv = hv.clone();
            fake_quantize_slice(hv.values_mut(), precision);
            hv
        }
    }
}

/// In-place [`fake_quantize`] over a raw slice (one hypervector / matrix row).
///
/// Identical numerics to `fake_quantize` — INT8 uses the per-vector symmetric scale of
/// the slice — but without allocating, so the batched backends can quantize
/// [`crate::batch::HvMatrix`] rows in their preallocated storage.
pub fn fake_quantize_slice(values: &mut [f32], precision: Precision) {
    match precision {
        Precision::Fp32 => {}
        Precision::Fp8 => {
            for v in values {
                *v = quantize_fp8_e4m3(*v);
            }
        }
        Precision::Int8 => {
            let max_abs = values.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
            for v in values {
                *v = (*v / scale).round().clamp(-127.0, 127.0) as i8 as f32 * scale;
            }
        }
    }
}

/// Mean absolute quantization error introduced by a quantize→dequantize round trip.
pub fn quantization_error(hv: &Hypervector, precision: Precision) -> f32 {
    if hv.is_empty() {
        return 0.0;
    }
    let q = fake_quantize(hv, precision);
    hv.values()
        .iter()
        .zip(q.values())
        .map(|(a, b)| (a - b).abs())
        .sum::<f32>()
        / hv.dim() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use proptest::prelude::*;

    #[test]
    fn fake_quantize_slice_matches_vector_path() {
        let mut r = rng(77);
        let hv = crate::Hypervector::random_real(512, &mut r);
        for precision in Precision::all() {
            let reference = fake_quantize(&hv, precision);
            let mut slice = hv.values().to_vec();
            fake_quantize_slice(&mut slice, precision);
            assert_eq!(reference.values(), slice.as_slice(), "{precision}");
        }
    }

    #[test]
    fn precision_sizes() {
        assert_eq!(Precision::Fp32.bytes_per_element(), 4);
        assert_eq!(Precision::Fp8.bytes_per_element(), 1);
        assert_eq!(Precision::Int8.bytes_per_element(), 1);
        assert_eq!(Precision::Fp32.bits(), 32);
        assert_eq!(Precision::all().len(), 3);
        assert_eq!(Precision::Int8.to_string(), "INT8");
    }

    #[test]
    fn fp8_exactly_represents_small_integers_and_powers_of_two() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, 0.25, 448.0, -448.0, 1.5, 3.5] {
            assert_eq!(quantize_fp8_e4m3(v), v, "value {v} should be exact in E4M3");
        }
    }

    #[test]
    fn fp8_saturates_and_handles_nan() {
        assert_eq!(quantize_fp8_e4m3(1e6), FP8_E4M3_MAX);
        assert_eq!(quantize_fp8_e4m3(-1e6), -FP8_E4M3_MAX);
        assert_eq!(quantize_fp8_e4m3(f32::NAN), 0.0);
    }

    #[test]
    fn fp8_rounding_error_is_bounded_by_half_step() {
        // In the binade [1, 2) the E4M3 step is 2^-3 = 0.125.
        let x = 1.06f32;
        let q = quantize_fp8_e4m3(x);
        assert!((x - q).abs() <= 0.0625 + 1e-6);
    }

    #[test]
    fn int8_round_trip_error_is_small() {
        let mut r = rng(31);
        let hv = Hypervector::random_real(1024, &mut r);
        let err = quantization_error(&hv, Precision::Int8);
        let max_abs = hv.values().iter().fold(0.0f32, |a, v| a.max(v.abs()));
        assert!(
            err <= max_abs / 127.0,
            "error {err} vs bound {}",
            max_abs / 127.0
        );
    }

    #[test]
    fn fp32_round_trip_is_exact() {
        let mut r = rng(32);
        let hv = Hypervector::random_real(256, &mut r);
        assert_eq!(quantization_error(&hv, Precision::Fp32), 0.0);
        assert_eq!(fake_quantize(&hv, Precision::Fp32).values(), hv.values());
    }

    #[test]
    fn bipolar_vectors_survive_all_precisions_exactly() {
        // ±1 is exactly representable in FP8 and INT8, so the symbolic codebooks lose
        // nothing from quantization — consistent with the small accuracy deltas the
        // paper reports in Tab. VIII.
        let mut r = rng(33);
        let hv = Hypervector::random_bipolar(512, &mut r);
        for p in Precision::all() {
            assert_eq!(fake_quantize(&hv, p).values(), hv.values(), "precision {p}");
        }
    }

    #[test]
    fn quantized_footprints() {
        let mut r = rng(34);
        let hv = Hypervector::random_real(1000, &mut r);
        assert_eq!(
            QuantizedVector::quantize(&hv, Precision::Fp32).footprint_bytes(),
            4000
        );
        assert_eq!(
            QuantizedVector::quantize(&hv, Precision::Int8).footprint_bytes(),
            1000
        );
        assert_eq!(
            QuantizedVector::quantize(&hv, Precision::Fp8).footprint_bytes(),
            1000
        );
    }

    #[test]
    fn int8_zero_vector_has_unit_scale() {
        let hv = Hypervector::zeros(16);
        let q = QuantizedVector::quantize(&hv, Precision::Int8);
        assert_eq!(q.scale(), 1.0);
        assert!(q.dequantize().values().iter().all(|&v| v == 0.0));
        assert_eq!(q.len(), 16);
        assert!(!q.is_empty());
    }

    proptest! {
        #[test]
        fn prop_int8_error_bounded_by_scale(seed in 0u64..200) {
            let mut r = rng(seed);
            let hv = Hypervector::random_real(128, &mut r);
            let q = QuantizedVector::quantize(&hv, Precision::Int8);
            let back = q.dequantize();
            for (a, b) in hv.values().iter().zip(back.values()) {
                prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
            }
        }

        #[test]
        fn prop_fp8_idempotent(x in -500.0f32..500.0) {
            // Quantizing twice gives the same result as quantizing once.
            let once = quantize_fp8_e4m3(x);
            let twice = quantize_fp8_e4m3(once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn prop_fp8_monotone_nonexpanding(x in -448.0f32..448.0) {
            // |q(x)| <= |x| never increases by more than half a step and sign is kept.
            let q = quantize_fp8_e4m3(x);
            if x != 0.0 && q != 0.0 {
                prop_assert_eq!(x.signum(), q.signum());
            }
            prop_assert!((q - x).abs() <= (x.abs() * 0.0625).max(0.002) + 1e-6);
        }
    }
}
