//! Symbolic knowledge codebooks.
//!
//! The paper (Sec. II-C, III-C) identifies the *symbolic knowledge codebook* — the set
//! of vectors representing every attribute combination — as the dominant memory cost of
//! VSA-based neurosymbolic systems (tens to hundreds of MB), and Sec. IV replaces it
//! with per-attribute codebooks plus iterative factorization. This module provides both
//! representations so the memory/latency comparison of Fig. 8 can be reproduced.

use crate::batch::{HvMatrix, ReferenceBackend, VsaBackend};
use crate::error::VsaError;
use crate::hypervector::Hypervector;
use crate::ops;
use crate::packed::{BitMatrix, CleanupIndex, CleanupScratch, WordSpec, CLEANUP_INDEX_MIN_ROWS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which cleanup kernel a `(backend, codebook)` pair resolves to — the routing
/// decision [`Codebook::cleanup_batch_bits_into`] makes per call, hoisted out as a
/// value so a solve plan can resolve it **once** at compile time and the executor
/// can dispatch on a pre-chosen route ([`Codebook::cleanup_batch_bits_routed_into`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CleanupRoute {
    /// Pruned exact [`CleanupIndex`] scan (packed backend, packed codebook with a
    /// built index).
    Indexed,
    /// Linear blocked packed popcount scan (packed backend, packed codebook, no
    /// index).
    Linear,
    /// Dense `f32` fallback through the backend's `cleanup_batch_bits`.
    Dense,
}

impl CleanupRoute {
    /// Label used by plan descriptions (`indexed` / `linear` / `dense`).
    pub fn as_str(self) -> &'static str {
        match self {
            CleanupRoute::Indexed => "indexed",
            CleanupRoute::Linear => "linear",
            CleanupRoute::Dense => "dense",
        }
    }
}

impl std::fmt::Display for CleanupRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How codevectors in a [`CodebookSet`] are combined into a product vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BindingOp {
    /// Element-wise (Hadamard) multiplicative binding — NVSA-style attribute binding.
    #[default]
    Hadamard,
    /// Circular convolution binding (holographic reduced representations).
    CircularConvolution,
}

/// A single attribute codebook: `M` quasi-orthogonal codevectors of dimension `d`.
///
/// # Example
/// ```
/// use cogsys_vsa::Codebook;
/// let mut rng = cogsys_vsa::rng(0);
/// let cb = Codebook::random("color", 8, 256, &mut rng);
/// assert_eq!(cb.len(), 8);
/// assert_eq!(cb.dim(), 256);
/// // Cleanup finds the exact codevector.
/// let (idx, sim) = cb.cleanup(cb.vector(5).unwrap()).unwrap();
/// assert_eq!(idx, 5);
/// assert!(sim > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Codebook {
    name: String,
    vectors: Vec<Hypervector>,
    /// Contiguous row-major copy of `vectors` — the similarity-search operand the
    /// batched backends consume (one GEMV/GEMM row per codevector).
    matrix: HvMatrix,
    /// Bit-packed sign planes of `matrix`, cached once at construction when every
    /// codevector is exactly bipolar (`None` otherwise). The packed similarity and
    /// cleanup fast paths read this instead of re-packing per call.
    packed: Option<BitMatrix>,
    /// Pruned exact top-1 Hamming index over `packed`, built at construction for
    /// codebooks of at least [`CLEANUP_INDEX_MIN_ROWS`] rows — the sub-linear
    /// cleanup path for production-scale item memories. `None` for small codebooks
    /// (the linear scan is faster there) and for non-bipolar codebooks.
    index: Option<CleanupIndex>,
}

/// Builds the cleanup index when the packed planes exist and are large enough for
/// the indexed scan to beat the linear one.
fn build_cleanup_index(packed: Option<&BitMatrix>) -> Option<CleanupIndex> {
    packed
        .filter(|p| p.rows() >= CLEANUP_INDEX_MIN_ROWS)
        .map(CleanupIndex::build)
}

impl Codebook {
    /// Builds a codebook from explicit codevectors.
    ///
    /// # Errors
    /// Returns [`VsaError::Empty`] if `vectors` is empty and
    /// [`VsaError::DimensionMismatch`] if the vectors disagree in dimension.
    pub fn new(name: impl Into<String>, vectors: Vec<Hypervector>) -> Result<Self, VsaError> {
        if vectors.is_empty() {
            return Err(VsaError::Empty { what: "codebook" });
        }
        let matrix = HvMatrix::from_rows(&vectors)?;
        let packed = BitMatrix::from_matrix(&matrix);
        let index = build_cleanup_index(packed.as_ref());
        Ok(Self {
            name: name.into(),
            vectors,
            matrix,
            packed,
            index,
        })
    }

    /// Generates a codebook of `size` random bipolar codevectors of dimension `dim`.
    pub fn random<R: Rng + ?Sized>(
        name: impl Into<String>,
        size: usize,
        dim: usize,
        rng: &mut R,
    ) -> Self {
        let vectors: Vec<Hypervector> = (0..size)
            .map(|_| Hypervector::random_bipolar(dim, rng))
            .collect();
        let matrix = HvMatrix::from_rows(&vectors).expect("generated rows share a dimension");
        let packed = BitMatrix::from_matrix(&matrix);
        let index = build_cleanup_index(packed.as_ref());
        Self {
            name: name.into(),
            vectors,
            matrix,
            packed,
            index,
        }
    }

    /// The attribute name this codebook represents (e.g. `"color"`, `"size"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of codevectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the codebook holds no codevectors (cannot happen via [`Codebook::new`]).
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Dimensionality of the codevectors.
    pub fn dim(&self) -> usize {
        self.vectors.first().map_or(0, Hypervector::dim)
    }

    /// Returns the codevector at `index`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] when `index >= len()`.
    pub fn vector(&self, index: usize) -> Result<&Hypervector, VsaError> {
        self.vectors.get(index).ok_or(VsaError::IndexOutOfRange {
            index,
            len: self.vectors.len(),
        })
    }

    /// Iterates over the codevectors.
    pub fn iter(&self) -> std::slice::Iter<'_, Hypervector> {
        self.vectors.iter()
    }

    /// Returns all codevectors as a slice (rows of the similarity-search matrix).
    pub fn as_slice(&self) -> &[Hypervector] {
        &self.vectors
    }

    /// The codevectors as one contiguous row-major matrix (`len() × dim()`), the
    /// operand shape the [`VsaBackend`] batch kernels consume.
    pub fn matrix(&self) -> &HvMatrix {
        &self.matrix
    }

    /// The bit-packed sign planes of the codebook, cached at construction — `Some`
    /// exactly when every codevector is bipolar. Packed-aware layers use this to skip
    /// re-packing the codebook on every similarity/cleanup call.
    pub fn packed(&self) -> Option<&BitMatrix> {
        self.packed.as_ref()
    }

    /// The cleanup index over the packed sign planes, built at construction for
    /// bipolar codebooks of at least [`CLEANUP_INDEX_MIN_ROWS`] rows.
    pub fn cleanup_index(&self) -> Option<&CleanupIndex> {
        self.index.as_ref()
    }

    /// Removes (and returns) the cleanup index, forcing every subsequent cleanup
    /// through the linear packed scan — the measurement / decision-identity knob the
    /// index-vs-linear tests and benches use.
    pub fn clear_cleanup_index(&mut self) -> Option<CleanupIndex> {
        self.index.take()
    }

    /// Similarity of `query` against every codevector (one GEMV on the accelerator).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn similarities(&self, query: &Hypervector) -> Result<Vec<f32>, VsaError> {
        self.similarities_with(&ReferenceBackend, query)
    }

    /// [`Codebook::similarities`] through an explicit backend.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn similarities_with(
        &self,
        backend: &dyn VsaBackend,
        query: &Hypervector,
    ) -> Result<Vec<f32>, VsaError> {
        let queries = HvMatrix::from_hypervector(query);
        Ok(self.similarities_batch(backend, &queries)?.into_vec())
    }

    /// Similarities of a whole batch of queries: `out[q][m] = queries[q] · code[m]`
    /// (a GEMM on the accelerator).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn similarities_batch(
        &self,
        backend: &dyn VsaBackend,
        queries: &HvMatrix,
    ) -> Result<HvMatrix, VsaError> {
        if let (Some(packed_backend), Some(packed_cb)) = (backend.as_packed(), &self.packed) {
            if queries.dim() == self.dim() {
                if let Some(packed_q) = BitMatrix::from_matrix(queries) {
                    let mut out = HvMatrix::default();
                    packed_backend.similarity_matrix_packed_into(packed_cb, &packed_q, &mut out);
                    return Ok(out);
                }
            }
        }
        backend.similarity_matrix(&self.matrix, queries)
    }

    /// Cleanup memory: returns the index and cosine similarity of the best-matching
    /// codevector.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn cleanup(&self, query: &Hypervector) -> Result<(usize, f32), VsaError> {
        self.cleanup_with(&ReferenceBackend, query)
    }

    /// [`Codebook::cleanup`] through an explicit backend.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn cleanup_with(
        &self,
        backend: &dyn VsaBackend,
        query: &Hypervector,
    ) -> Result<(usize, f32), VsaError> {
        let queries = HvMatrix::from_hypervector(query);
        let mut results = self.cleanup_batch(backend, &queries)?;
        Ok(results.pop().expect("one query row yields one result"))
    }

    /// Batched cleanup of many queries at once.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn cleanup_batch(
        &self,
        backend: &dyn VsaBackend,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        // Packed fast path: the codebook sign planes are already cached, so a packed
        // backend only has to pack the queries before the popcount kernel.
        if let (Some(packed_backend), Some(packed_cb)) = (backend.as_packed(), &self.packed) {
            if queries.dim() == self.dim() {
                if let Some(packed_q) = BitMatrix::from_matrix(queries) {
                    if let Some(index) = &self.index {
                        return Ok(packed_backend.cleanup_batch_indexed(index, &packed_q));
                    }
                    return Ok(packed_backend.cleanup_batch_packed(packed_cb, &packed_q));
                }
            }
        }
        backend.cleanup_batch(&self.matrix, queries)
    }

    /// Batched cleanup of **bit-packed** queries: the end-to-end packed path. With a
    /// packed backend this hits the popcount kernel directly — cached codebook sign
    /// planes against caller-held query planes, no per-call packing on either operand;
    /// other backends unpack the queries and run their dense cleanup.
    ///
    /// Results are identical to [`Codebook::cleanup_batch`] on the unpacked queries.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn cleanup_batch_bits(
        &self,
        backend: &dyn VsaBackend,
        queries: &BitMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if let (Some(packed_backend), Some(packed_cb)) = (backend.as_packed(), &self.packed) {
            if queries.dim() == self.dim() {
                if let Some(index) = &self.index {
                    return Ok(packed_backend.cleanup_batch_indexed(index, queries));
                }
                return Ok(packed_backend.cleanup_batch_packed(packed_cb, queries));
            }
        }
        backend.cleanup_batch_bits(&self.matrix, queries)
    }

    /// Scratch-reusing form of [`Codebook::cleanup_batch_bits`]: results land in
    /// `out` and all intermediate state in `scratch`, so the steady-state serving
    /// path ([`crate::PackedBackend`] factorizer/solver polish) allocates nothing.
    /// Routes through the cleanup index when one is present, else the linear packed
    /// scan, else the backend's dense fallback.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn cleanup_batch_bits_into(
        &self,
        backend: &dyn VsaBackend,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) -> Result<(), VsaError> {
        let route = self.cleanup_route(backend);
        self.cleanup_batch_bits_routed_into(
            backend,
            route,
            WordSpec::Generic,
            queries,
            scratch,
            out,
        )
    }

    /// The cleanup kernel this `(backend, codebook)` pair resolves to, for queries
    /// of matching dimension: the per-call routing of
    /// [`Codebook::cleanup_batch_bits_into`] exposed as a value so plan compilation
    /// can hoist the decision. Stable for the life of the codebook unless
    /// [`CodebookSet::clear_cleanup_indexes`] demotes `Indexed` to `Linear` —
    /// callers caching a route must re-resolve after mutating the indexes.
    pub fn cleanup_route(&self, backend: &dyn VsaBackend) -> CleanupRoute {
        if backend.as_packed().is_some() && self.packed.is_some() {
            if self.index.is_some() {
                CleanupRoute::Indexed
            } else {
                CleanupRoute::Linear
            }
        } else {
            CleanupRoute::Dense
        }
    }

    /// [`Codebook::cleanup_batch_bits_into`] with the route pre-chosen (and a
    /// [`WordSpec`] monomorphization hint for the linear scan): the executor half
    /// of the plan-compiled cleanup. A stale packed route (mismatched query
    /// dimension, or indexes cleared since the route was resolved) degrades to the
    /// next-best live kernel instead of panicking, keeping results identical to the
    /// per-call routing.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs on
    /// the dense route.
    pub fn cleanup_batch_bits_routed_into(
        &self,
        backend: &dyn VsaBackend,
        route: CleanupRoute,
        spec: WordSpec,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) -> Result<(), VsaError> {
        if route != CleanupRoute::Dense && queries.dim() == self.dim() {
            if let (Some(packed_backend), Some(packed_cb)) = (backend.as_packed(), &self.packed) {
                if route == CleanupRoute::Indexed {
                    if let Some(index) = &self.index {
                        packed_backend.cleanup_batch_indexed_into(index, queries, scratch, out);
                        return Ok(());
                    }
                }
                packed_backend
                    .cleanup_batch_packed_spec_into(spec, packed_cb, queries, scratch, out);
                return Ok(());
            }
        }
        let results = backend.cleanup_batch_bits(&self.matrix, queries)?;
        out.clear();
        out.extend(results);
        Ok(())
    }

    /// Similarities of a batch of **bit-packed** queries (the packed analogue of
    /// [`Codebook::similarities_batch`]): `out[q][m] = queries[q] · code[m]`, exact
    /// integer dot products via popcount when both sides are sign planes.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if the query dimension differs.
    pub fn similarities_batch_bits(
        &self,
        backend: &dyn VsaBackend,
        queries: &BitMatrix,
    ) -> Result<HvMatrix, VsaError> {
        if let (Some(packed_backend), Some(packed_cb)) = (backend.as_packed(), &self.packed) {
            if queries.dim() == self.dim() {
                let mut out = HvMatrix::default();
                packed_backend.similarity_matrix_packed_into(packed_cb, queries, &mut out);
                return Ok(out);
            }
        }
        let mut out = HvMatrix::default();
        backend.similarity_matrix_bits_into(&self.matrix, queries, &mut out)?;
        Ok(out)
    }

    /// Memory footprint of the codebook in bytes assuming `bytes_per_element` storage.
    pub fn footprint_bytes(&self, bytes_per_element: usize) -> usize {
        self.len() * self.dim() * bytes_per_element
    }
}

impl<'a> IntoIterator for &'a Codebook {
    type Item = &'a Hypervector;
    type IntoIter = std::slice::Iter<'a, Hypervector>;

    fn into_iter(self) -> Self::IntoIter {
        self.vectors.iter()
    }
}

/// A set of `F` attribute codebooks defining a factorizable product space.
///
/// An object with attribute indices `(i_1, ..., i_F)` is represented by binding the
/// corresponding codevectors, one from each codebook. The full product space has
/// `Π_f M_f` combinations — the quantity the paper's factorization strategy avoids
/// materialising.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodebookSet {
    codebooks: Vec<Codebook>,
    binding: BindingOp,
}

impl CodebookSet {
    /// Builds a codebook set.
    ///
    /// # Errors
    /// Returns [`VsaError::Empty`] if no codebooks are supplied and
    /// [`VsaError::DimensionMismatch`] if they disagree in dimension.
    pub fn new(codebooks: Vec<Codebook>, binding: BindingOp) -> Result<Self, VsaError> {
        if codebooks.is_empty() {
            return Err(VsaError::Empty {
                what: "codebook set",
            });
        }
        let dim = codebooks[0].dim();
        for cb in &codebooks {
            if cb.dim() != dim {
                return Err(VsaError::DimensionMismatch {
                    left: dim,
                    right: cb.dim(),
                });
            }
        }
        Ok(Self { codebooks, binding })
    }

    /// Generates `factor_sizes.len()` random codebooks with the given sizes.
    ///
    /// The attribute names default to `f0`, `f1`, ...
    pub fn random<R: Rng + ?Sized>(
        factor_sizes: &[usize],
        dim: usize,
        binding: BindingOp,
        rng: &mut R,
    ) -> Self {
        let codebooks = factor_sizes
            .iter()
            .enumerate()
            .map(|(i, &m)| Codebook::random(format!("f{i}"), m, dim, rng))
            .collect();
        Self { codebooks, binding }
    }

    /// Number of factors `F`.
    pub fn num_factors(&self) -> usize {
        self.codebooks.len()
    }

    /// Dimensionality of all codevectors.
    pub fn dim(&self) -> usize {
        self.codebooks.first().map_or(0, Codebook::dim)
    }

    /// The binding operation used to compose factors.
    pub fn binding(&self) -> BindingOp {
        self.binding
    }

    /// The per-factor codebooks.
    pub fn codebooks(&self) -> &[Codebook] {
        &self.codebooks
    }

    /// Returns `true` when every factor codebook carries cached sign planes
    /// ([`Codebook::packed`]) — the precondition for running a factorization or decode
    /// entirely in the bit-packed representation.
    pub fn all_packed(&self) -> bool {
        self.codebooks.iter().all(|cb| cb.packed().is_some())
    }

    /// Removes the cleanup index from every factor codebook (see
    /// [`Codebook::clear_cleanup_index`]), forcing subsequent cleanups through the
    /// linear packed scan — the indexed-vs-linear comparison knob.
    pub fn clear_cleanup_indexes(&mut self) {
        for cb in &mut self.codebooks {
            cb.clear_cleanup_index();
        }
    }

    /// Returns the codebook of factor `f`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] if `f` is not a valid factor index.
    pub fn factor(&self, f: usize) -> Result<&Codebook, VsaError> {
        self.codebooks.get(f).ok_or(VsaError::IndexOutOfRange {
            index: f,
            len: self.codebooks.len(),
        })
    }

    /// Total number of attribute combinations `Π_f M_f`.
    pub fn combinations(&self) -> usize {
        self.codebooks.iter().map(Codebook::len).product()
    }

    /// Binds one codevector per factor (selected by `indices`) into a product vector.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if `indices.len() != num_factors()` and
    /// [`VsaError::IndexOutOfRange`] for invalid per-factor indices.
    pub fn bind_indices(&self, indices: &[usize]) -> Result<Hypervector, VsaError> {
        if indices.len() != self.codebooks.len() {
            return Err(VsaError::DimensionMismatch {
                left: self.codebooks.len(),
                right: indices.len(),
            });
        }
        let mut product = self.codebooks[0].vector(indices[0])?.clone();
        for (cb, &idx) in self.codebooks.iter().zip(indices).skip(1) {
            let v = cb.vector(idx)?;
            product = match self.binding {
                BindingOp::Hadamard => ops::hadamard_bind(&product, v)?,
                BindingOp::CircularConvolution => ops::try_circular_convolve(&product, v)?,
            };
        }
        Ok(product)
    }

    /// Unbinds all factors except `keep` from `query` using the current factor estimates.
    ///
    /// This is Step 1 of the factorization procedure (Fig. 8): `x̃_i = q ⊘ Π_{f≠i} x̂_f`.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if `estimates.len() != num_factors()` or
    /// if any estimate dimension differs from the query.
    pub fn unbind_all_but(
        &self,
        query: &Hypervector,
        estimates: &[Hypervector],
        keep: usize,
    ) -> Result<Hypervector, VsaError> {
        if estimates.len() != self.codebooks.len() {
            return Err(VsaError::DimensionMismatch {
                left: self.codebooks.len(),
                right: estimates.len(),
            });
        }
        let mut result = query.clone();
        for (f, est) in estimates.iter().enumerate() {
            if f == keep {
                continue;
            }
            result = match self.binding {
                BindingOp::Hadamard => ops::hadamard_unbind(&result, est)?,
                BindingOp::CircularConvolution => ops::try_circular_correlate(&result, est)?,
            };
        }
        Ok(result)
    }

    /// Batched [`CodebookSet::bind_indices`]: row `q` of the result binds the
    /// codevectors selected by `tuples[q]` (one index per factor), composed in factor
    /// order exactly like the scalar path.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] if any tuple arity differs from
    /// `num_factors()` and [`VsaError::IndexOutOfRange`] for invalid per-factor
    /// indices. An empty `tuples` yields an empty matrix.
    pub fn bind_indices_batch(
        &self,
        backend: &dyn VsaBackend,
        tuples: &[Vec<usize>],
    ) -> Result<HvMatrix, VsaError> {
        if tuples.is_empty() {
            return Ok(HvMatrix::default());
        }
        for t in tuples {
            if t.len() != self.codebooks.len() {
                return Err(VsaError::DimensionMismatch {
                    left: self.codebooks.len(),
                    right: t.len(),
                });
            }
        }
        let gather_factor = |f: usize| -> Result<HvMatrix, VsaError> {
            let indices: Vec<usize> = tuples.iter().map(|t| t[f]).collect();
            self.codebooks[f].matrix().gather(&indices)
        };
        let mut product = gather_factor(0)?;
        let mut scratch = HvMatrix::default();
        for f in 1..self.codebooks.len() {
            let operand = gather_factor(f)?;
            backend.bind_batch_into(&product, &operand, self.binding, &mut scratch)?;
            std::mem::swap(&mut product, &mut scratch);
        }
        Ok(product)
    }

    /// Batched [`CodebookSet::unbind_all_but`]: row `q` of the result unbinds every
    /// factor's estimate except `keep` from `queries` row `q`. `estimates[f]` holds the
    /// current estimate of factor `f` for every query (`queries.rows() × dim()`).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] on arity or shape mismatches.
    pub fn unbind_all_but_batch(
        &self,
        backend: &dyn VsaBackend,
        queries: &HvMatrix,
        estimates: &[HvMatrix],
        keep: usize,
        out: &mut HvMatrix,
        scratch: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if estimates.len() != self.codebooks.len() {
            return Err(VsaError::DimensionMismatch {
                left: self.codebooks.len(),
                right: estimates.len(),
            });
        }
        out.ensure_shape(queries.rows(), queries.dim());
        out.as_mut_slice().copy_from_slice(queries.as_slice());
        for (f, est) in estimates.iter().enumerate() {
            if f == keep {
                continue;
            }
            backend.unbind_batch_into(out, est, self.binding, scratch)?;
            std::mem::swap(out, scratch);
        }
        Ok(())
    }

    /// Combined memory footprint of the factored codebooks in bytes.
    pub fn footprint_bytes(&self, bytes_per_element: usize) -> usize {
        self.codebooks
            .iter()
            .map(|cb| cb.footprint_bytes(bytes_per_element))
            .sum()
    }

    /// Memory footprint the *expanded* product codebook would need (Fig. 8 comparison).
    pub fn product_footprint_bytes(&self, bytes_per_element: usize) -> usize {
        self.combinations() * self.dim() * bytes_per_element
    }
}

/// The fully expanded product codebook — the baseline the paper's factorization removes.
///
/// Holds one product vector for every attribute combination, in lexicographic order of
/// the factor indices. Only practical for small combination counts; the constructor
/// refuses to materialise more than [`ProductCodebook::MAX_COMBINATIONS`] vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProductCodebook {
    vectors: Vec<Hypervector>,
    index_map: Vec<Vec<usize>>,
    factor_sizes: Vec<usize>,
}

impl ProductCodebook {
    /// Refuse to expand product spaces larger than this (memory guard).
    pub const MAX_COMBINATIONS: usize = 1 << 22;

    /// Expands a [`CodebookSet`] into its full product codebook.
    ///
    /// # Errors
    /// Returns [`VsaError::InvalidParameter`] if the combination count exceeds
    /// [`Self::MAX_COMBINATIONS`].
    pub fn expand(set: &CodebookSet) -> Result<Self, VsaError> {
        let total = set.combinations();
        if total > Self::MAX_COMBINATIONS {
            return Err(VsaError::InvalidParameter {
                name: "combinations",
                message: format!(
                    "product space of {total} vectors exceeds the expansion guard of {}",
                    Self::MAX_COMBINATIONS
                ),
            });
        }
        let factor_sizes: Vec<usize> = set.codebooks().iter().map(Codebook::len).collect();
        let mut vectors = Vec::with_capacity(total);
        let mut index_map = Vec::with_capacity(total);
        let mut indices = vec![0usize; factor_sizes.len()];
        for _ in 0..total {
            vectors.push(set.bind_indices(&indices)?);
            index_map.push(indices.clone());
            // Advance the mixed-radix counter (last factor fastest).
            for f in (0..indices.len()).rev() {
                indices[f] += 1;
                if indices[f] < factor_sizes[f] {
                    break;
                }
                indices[f] = 0;
            }
        }
        Ok(Self {
            vectors,
            index_map,
            factor_sizes,
        })
    }

    /// Number of product vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Returns `true` if the codebook holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The per-factor codebook sizes this product space was built from.
    pub fn factor_sizes(&self) -> &[usize] {
        &self.factor_sizes
    }

    /// Brute-force search: returns the factor indices of the best-matching product
    /// vector together with its cosine similarity.
    ///
    /// This is the operation whose cost (both memory and latency) the CogSys
    /// factorization strategy replaces.
    ///
    /// # Errors
    /// Returns [`VsaError::Empty`] for an empty codebook and
    /// [`VsaError::DimensionMismatch`] for a query of the wrong dimension.
    pub fn brute_force_search(&self, query: &Hypervector) -> Result<(Vec<usize>, f32), VsaError> {
        if self.vectors.is_empty() {
            return Err(VsaError::Empty {
                what: "product codebook",
            });
        }
        let mut best = (0usize, f32::NEG_INFINITY);
        for (i, v) in self.vectors.iter().enumerate() {
            let sim = ops::try_cosine_similarity(v, query)?;
            if sim > best.1 {
                best = (i, sim);
            }
        }
        Ok((self.index_map[best.0].clone(), best.1))
    }

    /// Memory footprint in bytes assuming `bytes_per_element` storage.
    pub fn footprint_bytes(&self, bytes_per_element: usize) -> usize {
        self.vectors.len() * self.vectors.first().map_or(0, Hypervector::dim) * bytes_per_element
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;
    use proptest::prelude::*;

    #[test]
    fn codebook_new_validates_input() {
        assert!(matches!(
            Codebook::new("x", vec![]),
            Err(VsaError::Empty { .. })
        ));
        let bad = vec![Hypervector::zeros(4), Hypervector::zeros(8)];
        assert!(matches!(
            Codebook::new("x", bad),
            Err(VsaError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn cleanup_recovers_noisy_codevector() {
        let mut r = rng(20);
        let cb = Codebook::random("type", 16, 1024, &mut r);
        let noisy = ops::flip_noise(cb.vector(7).unwrap(), 0.2, &mut r);
        let (idx, sim) = cb.cleanup(&noisy).unwrap();
        assert_eq!(idx, 7);
        assert!(sim > 0.4);
    }

    #[test]
    fn codebook_vector_out_of_range() {
        let mut r = rng(21);
        let cb = Codebook::random("c", 4, 32, &mut r);
        assert!(matches!(
            cb.vector(4),
            Err(VsaError::IndexOutOfRange { index: 4, len: 4 })
        ));
    }

    #[test]
    fn cleanup_index_built_only_for_large_codebooks() {
        let mut r = rng(29);
        let small = Codebook::random("small", CLEANUP_INDEX_MIN_ROWS - 1, 256, &mut r);
        assert!(small.cleanup_index().is_none());
        let large = Codebook::random("large", CLEANUP_INDEX_MIN_ROWS, 256, &mut r);
        assert!(large.cleanup_index().is_some());
        assert_eq!(
            large.cleanup_index().unwrap().rows(),
            CLEANUP_INDEX_MIN_ROWS
        );
    }

    #[test]
    fn indexed_cleanup_routing_matches_linear_scan() {
        use crate::packed::PackedBackend;
        let mut r = rng(30);
        let mut cb = Codebook::random("large", 600, 512, &mut r);
        assert!(cb.cleanup_index().is_some());
        // Perturbed codevectors as queries: the production cleanup regime.
        let queries: Vec<Hypervector> = (0..5)
            .map(|i| ops::flip_noise(cb.vector(i * 100).unwrap(), 0.02, &mut r))
            .collect();
        let dense = HvMatrix::from_rows(&queries).unwrap();
        let bits = BitMatrix::from_matrix(&dense).unwrap();
        let backend = PackedBackend::new();

        let indexed = cb.cleanup_batch(&backend, &dense).unwrap();
        let indexed_bits = cb.cleanup_batch_bits(&backend, &bits).unwrap();
        let mut scratch = CleanupScratch::default();
        let mut indexed_into = Vec::new();
        cb.cleanup_batch_bits_into(&backend, &bits, &mut scratch, &mut indexed_into)
            .unwrap();

        assert!(cb.clear_cleanup_index().is_some());
        assert!(cb.cleanup_index().is_none());
        let linear = cb.cleanup_batch(&backend, &dense).unwrap();
        let mut linear_into = Vec::new();
        cb.cleanup_batch_bits_into(&backend, &bits, &mut scratch, &mut linear_into)
            .unwrap();

        assert_eq!(indexed, linear);
        assert_eq!(indexed_bits, linear);
        assert_eq!(indexed_into, linear);
        assert_eq!(linear_into, linear);
        for (q, (idx, _)) in linear.iter().enumerate() {
            assert_eq!(*idx, q * 100, "query {q} should recover its source row");
        }
    }

    #[test]
    fn codebook_footprint() {
        let mut r = rng(22);
        let cb = Codebook::random("c", 10, 100, &mut r);
        assert_eq!(cb.footprint_bytes(4), 4000);
        assert_eq!(cb.footprint_bytes(1), 1000);
    }

    #[test]
    fn codebook_set_combinations_and_footprints() {
        let mut r = rng(23);
        let set = CodebookSet::random(&[3, 4, 5], 128, BindingOp::Hadamard, &mut r);
        assert_eq!(set.num_factors(), 3);
        assert_eq!(set.combinations(), 60);
        assert_eq!(set.footprint_bytes(4), (3 + 4 + 5) * 128 * 4);
        assert_eq!(set.product_footprint_bytes(4), 60 * 128 * 4);
        // The factorized representation is much smaller — the essence of Fig. 8.
        assert!(set.footprint_bytes(4) < set.product_footprint_bytes(4));
    }

    #[test]
    fn bind_indices_validates_arity() {
        let mut r = rng(24);
        let set = CodebookSet::random(&[2, 2], 64, BindingOp::Hadamard, &mut r);
        assert!(set.bind_indices(&[0]).is_err());
        assert!(set.bind_indices(&[0, 5]).is_err());
        assert!(set.bind_indices(&[1, 1]).is_ok());
    }

    #[test]
    fn unbind_all_but_recovers_factor_hadamard() {
        let mut r = rng(25);
        let set = CodebookSet::random(&[4, 4, 4], 512, BindingOp::Hadamard, &mut r);
        let product = set.bind_indices(&[1, 2, 3]).unwrap();
        // With the true codevectors of the other factors as estimates, unbinding exactly
        // recovers the kept factor (bipolar Hadamard binding is exactly invertible).
        let estimates = vec![
            set.factor(0).unwrap().vector(1).unwrap().clone(),
            set.factor(1).unwrap().vector(2).unwrap().clone(),
            set.factor(2).unwrap().vector(3).unwrap().clone(),
        ];
        let recovered = set.unbind_all_but(&product, &estimates, 1).unwrap();
        let (idx, sim) = set.factor(1).unwrap().cleanup(&recovered).unwrap();
        assert_eq!(idx, 2);
        assert!(sim > 0.99);
    }

    #[test]
    fn unbind_all_but_recovers_factor_circular() {
        let mut r = rng(26);
        let set = CodebookSet::random(&[4, 4], 1024, BindingOp::CircularConvolution, &mut r);
        let product = set.bind_indices(&[3, 1]).unwrap();
        let estimates = vec![
            set.factor(0).unwrap().vector(3).unwrap().clone(),
            set.factor(1).unwrap().vector(1).unwrap().clone(),
        ];
        let recovered = set.unbind_all_but(&product, &estimates, 1).unwrap();
        let (idx, sim) = set.factor(1).unwrap().cleanup(&recovered).unwrap();
        assert_eq!(idx, 1);
        assert!(sim > 0.3, "similarity {sim}");
    }

    #[test]
    fn product_codebook_expansion_and_search() {
        let mut r = rng(27);
        let set = CodebookSet::random(&[3, 4], 256, BindingOp::Hadamard, &mut r);
        let product = ProductCodebook::expand(&set).unwrap();
        assert_eq!(product.len(), 12);
        assert_eq!(product.factor_sizes(), &[3, 4]);
        let query = set.bind_indices(&[2, 1]).unwrap();
        let (indices, sim) = product.brute_force_search(&query).unwrap();
        assert_eq!(indices, vec![2, 1]);
        assert!(sim > 0.99);
    }

    #[test]
    fn product_codebook_guards_combinatorial_explosion() {
        let mut r = rng(28);
        // 2^24 combinations exceeds the guard.
        let set = CodebookSet::random(&[4096, 4096], 8, BindingOp::Hadamard, &mut r);
        assert!(matches!(
            ProductCodebook::expand(&set),
            Err(VsaError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn product_footprint_ratio_matches_paper_shape() {
        // NVSA-like setting (Fig. 8 caption: 13560 KB -> 190 KB, a 71.4x reduction):
        // the exact ratio depends on the attribute sizes; here we check the factored
        // representation wins by more than an order of magnitude for a realistic set.
        let mut r = rng(29);
        let set = CodebookSet::random(&[7, 10, 10, 4], 1024, BindingOp::Hadamard, &mut r);
        let factored = set.footprint_bytes(4);
        let product = set.product_footprint_bytes(4);
        assert!(product as f64 / factored as f64 > 10.0);
    }

    #[test]
    fn matrix_view_mirrors_codevectors() {
        let mut r = rng(60);
        let cb = Codebook::random("m", 6, 128, &mut r);
        assert_eq!(cb.matrix().rows(), 6);
        assert_eq!(cb.matrix().dim(), 128);
        for i in 0..cb.len() {
            assert_eq!(cb.matrix().row(i), cb.vector(i).unwrap().values());
        }
    }

    #[test]
    fn backend_similarities_match_scalar_path() {
        use crate::batch::BackendKind;
        let mut r = rng(61);
        let cb = Codebook::random("s", 10, 256, &mut r);
        let query = ops::flip_noise(cb.vector(4).unwrap(), 0.2, &mut r);
        let scalar = cb.similarities(&query).unwrap();
        let scalar_cleanup = cb.cleanup(&query).unwrap();
        for kind in BackendKind::ALL {
            let backend = kind.create();
            let sims = cb.similarities_with(backend.as_ref(), &query).unwrap();
            for (x, y) in sims.iter().zip(&scalar) {
                assert!((x - y).abs() < 1e-3, "{kind}: {x} vs {y}");
            }
            let (idx, sim) = cb.cleanup_with(backend.as_ref(), &query).unwrap();
            assert_eq!(idx, scalar_cleanup.0, "{kind}");
            assert!((sim - scalar_cleanup.1).abs() < 1e-4, "{kind}");
        }
    }

    #[test]
    fn cleanup_batch_bits_matches_dense_queries() {
        use crate::batch::BackendKind;
        let mut r = rng(64);
        let cb = Codebook::random("bits", 10, 260, &mut r);
        let queries: Vec<Hypervector> = (0..5)
            .map(|i| ops::flip_noise(cb.vector(i).unwrap(), 0.2, &mut r))
            .collect();
        let qm = HvMatrix::from_rows(&queries).unwrap();
        let bits = BitMatrix::from_matrix(&qm).expect("flip noise keeps queries bipolar");
        for kind in BackendKind::ALL {
            let backend = kind.create();
            let dense = cb.cleanup_batch(backend.as_ref(), &qm).unwrap();
            let packed = cb.cleanup_batch_bits(backend.as_ref(), &bits).unwrap();
            for ((di, dsim), (pi, psim)) in dense.iter().zip(&packed) {
                assert_eq!(di, pi, "{kind}");
                assert!((dsim - psim).abs() < 1e-4, "{kind}");
            }
            let dense_sims = cb.similarities_batch(backend.as_ref(), &qm).unwrap();
            let packed_sims = cb.similarities_batch_bits(backend.as_ref(), &bits).unwrap();
            for (x, y) in dense_sims.as_slice().iter().zip(packed_sims.as_slice()) {
                assert!((x - y).abs() < 1e-3, "{kind}: {x} vs {y}");
            }
        }
        assert!(CodebookSet::new(vec![cb], BindingOp::Hadamard)
            .unwrap()
            .all_packed());
    }

    #[test]
    fn bind_indices_batch_matches_scalar_bind() {
        use crate::batch::BackendKind;
        let mut r = rng(62);
        for binding in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
            let set = CodebookSet::random(&[3, 4, 2], 64, binding, &mut r);
            let tuples = vec![vec![0, 0, 0], vec![2, 3, 1], vec![1, 2, 0]];
            for kind in BackendKind::ALL {
                let backend = kind.create();
                let batch = set.bind_indices_batch(backend.as_ref(), &tuples).unwrap();
                for (q, t) in tuples.iter().enumerate() {
                    let scalar = set.bind_indices(t).unwrap();
                    assert_eq!(batch.row(q), scalar.values(), "{kind} {binding:?} row {q}");
                }
            }
        }
    }

    #[test]
    fn unbind_all_but_batch_matches_scalar_unbind() {
        use crate::batch::{BackendKind, HvMatrix};
        let mut r = rng(63);
        let set = CodebookSet::random(&[4, 4, 4], 128, BindingOp::Hadamard, &mut r);
        let tuples = [[1usize, 2, 3], [0, 0, 0]];
        let queries = HvMatrix::from_rows(
            &tuples
                .iter()
                .map(|t| set.bind_indices(t).unwrap())
                .collect::<Vec<_>>(),
        )
        .unwrap();
        // Estimates: the true codevectors per query.
        let estimates: Vec<HvMatrix> = (0..3)
            .map(|f| {
                let indices: Vec<usize> = tuples.iter().map(|t| t[f]).collect();
                set.factor(f).unwrap().matrix().gather(&indices).unwrap()
            })
            .collect();
        for keep in 0..3 {
            for kind in BackendKind::ALL {
                let backend = kind.create();
                let (mut out, mut scratch) = (HvMatrix::default(), HvMatrix::default());
                set.unbind_all_but_batch(
                    backend.as_ref(),
                    &queries,
                    &estimates,
                    keep,
                    &mut out,
                    &mut scratch,
                )
                .unwrap();
                for (q, t) in tuples.iter().enumerate() {
                    let est: Vec<Hypervector> = (0..3)
                        .map(|f| set.factor(f).unwrap().vector(t[f]).unwrap().clone())
                        .collect();
                    let scalar = set
                        .unbind_all_but(
                            &queries.row_hypervector(q, crate::VsaKind::Dense).unwrap(),
                            &est,
                            keep,
                        )
                        .unwrap();
                    assert_eq!(out.row(q), scalar.values(), "{kind} keep {keep} row {q}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_bind_then_factor_search_recovers_indices(seed in 0u64..100) {
            let mut r = rng(seed);
            let set = CodebookSet::random(&[3, 3, 3], 512, BindingOp::Hadamard, &mut r);
            let idx = [
                (seed % 3) as usize,
                ((seed / 3) % 3) as usize,
                ((seed / 9) % 3) as usize,
            ];
            let q = set.bind_indices(&idx).unwrap();
            let product = ProductCodebook::expand(&set).unwrap();
            let (found, sim) = product.brute_force_search(&q).unwrap();
            prop_assert_eq!(found, idx.to_vec());
            prop_assert!(sim > 0.99);
        }

        #[test]
        fn prop_codebook_vectors_quasi_orthogonal(seed in 0u64..50) {
            let mut r = rng(seed);
            let cb = Codebook::random("c", 8, 2048, &mut r);
            for i in 0..cb.len() {
                for j in 0..cb.len() {
                    let sim = ops::cosine_similarity(cb.vector(i).unwrap(), cb.vector(j).unwrap());
                    if i == j {
                        prop_assert!((sim - 1.0).abs() < 1e-5);
                    } else {
                        prop_assert!(sim.abs() < 0.15);
                    }
                }
            }
        }
    }
}
