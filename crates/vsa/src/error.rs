//! Error types for the VSA substrate.

use std::fmt;

/// Errors produced by VSA operations.
///
/// Every fallible public function in this crate returns `Result<_, VsaError>`. The
/// variants carry enough context to diagnose shape mismatches without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsaError {
    /// Two operands had different dimensionalities.
    DimensionMismatch {
        /// Dimensionality of the left-hand operand.
        left: usize,
        /// Dimensionality of the right-hand operand.
        right: usize,
    },
    /// An operation required a non-empty vector or codebook but received an empty one.
    Empty {
        /// Description of what was empty ("hypervector", "codebook", ...).
        what: &'static str,
    },
    /// A codebook lookup used an out-of-range index.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The number of available entries.
        len: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        message: String,
    },
    /// An execution route was entered without a representation it requires — e.g.
    /// the packed encode route without cached codebook sign planes, or a packed
    /// pipeline over codebooks that were never packed. Indicates a configuration
    /// or wiring fault; surfaced as an error (rather than a panic) so a serving
    /// layer can fail the offending request instead of the process.
    Unsupported {
        /// Description of the missing capability.
        what: &'static str,
    },
}

impl fmt::Display for VsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            VsaError::Empty { what } => write!(f, "{what} must not be empty"),
            VsaError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            VsaError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            VsaError::Unsupported { what } => {
                write!(f, "unsupported execution route: {what}")
            }
        }
    }
}

impl std::error::Error for VsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_lowercase_and_informative() {
        let e = VsaError::DimensionMismatch { left: 3, right: 5 };
        assert_eq!(e.to_string(), "dimension mismatch: 3 vs 5");
        let e = VsaError::Empty { what: "codebook" };
        assert_eq!(e.to_string(), "codebook must not be empty");
        let e = VsaError::IndexOutOfRange { index: 9, len: 4 };
        assert_eq!(e.to_string(), "index 9 out of range for length 4");
        let e = VsaError::InvalidParameter {
            name: "dim",
            message: "must be > 0".into(),
        };
        assert!(e.to_string().contains("dim"));
        let e = VsaError::Unsupported {
            what: "packed encode route requires cached sign planes",
        };
        assert!(e.to_string().contains("unsupported execution route"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VsaError>();
    }
}
