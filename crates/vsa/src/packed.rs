//! Bit-packed bipolar execution layer: XOR binding and popcount similarity.
//!
//! Every hot path in the repository runs bipolar `{-1, +1}` vectors, yet the dense
//! backends push them through `f32` arithmetic — 32× more memory traffic than the
//! algebra needs. For the MAP/Hadamard algebra the classic binary-spatter-code
//! reductions apply exactly:
//!
//! * **bind/unbind** of sign vectors is the XOR of their sign bits,
//! * **dot product** is `d − 2·hamming(a, b)` (so cosine is `1 − 2·hamming/d`),
//! * **bundling** is per-dimension vote counting followed by a sign threshold.
//!
//! [`BitMatrix`] stores one sign plane per hypervector row — 64 dimensions per `u64`
//! word, 32× smaller than the `f32` [`HvMatrix`] it mirrors — and [`PackedBackend`]
//! implements the [`VsaBackend`] surface on top of it. Inputs that are not exactly
//! bipolar, and the circular-convolution (HRR) binding, transparently fall back to the
//! dense [`ParallelBackend`], so `BackendKind::Packed` is always safe to select.
//!
//! Sign convention: a set bit means **negative** (`-1.0`), mirroring the IEEE-754 sign
//! bit; `+1.0` packs to 0. The unused tail bits of the last word in each row are kept
//! at zero (see [`BitMatrix::tail_mask`]), which lets every kernel run whole-word
//! XOR/popcount without per-row masking.

use crate::batch::{HvMatrix, ParallelBackend, VsaBackend};
use crate::codebook::BindingOp;
use crate::error::VsaError;
use crate::hypervector::{Hypervector, VsaKind};
use serde::{Deserialize, Serialize};

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Codebook rows per cache block in the popcount cleanup/similarity kernels.
///
/// A block of 128 rows at d = 4096 is 64 KiB of packed words — resident in L1/L2 while
/// it is streamed against every query, so large codebooks are read from DRAM once per
/// block instead of once per query.
const CODEBOOK_BLOCK_ROWS: usize = 128;

/// Query rows accumulated together per codebook-word pass in the SoA projection
/// kernel ([`PackedBackend::project_signs_packed_into`]).
///
/// Eight lanes turn the projection from "load every sign-plane word once per query"
/// into "once per 8 queries", while the per-word working tile (64 dims × 8 lanes ×
/// 4 B = 2 KiB) stays L1-resident across the whole codebook-row sweep. Public so
/// scratch pre-sizing can bound the fused-kernel lane buffers.
pub const PROJ_LANE_ROWS: usize = 8;

/// Minimum codebook row count at which [`CleanupIndex`] construction and the indexed
/// cleanup path pay off. Below this the linear blocked scan already streams the whole
/// codebook from L1/L2 faster than the sketch pass can rank it, so [`crate::Codebook`]
/// only builds an index for codebooks at least this large.
pub const CLEANUP_INDEX_MIN_ROWS: usize = 512;

/// Rows per chunk in the sketch-distance minimum pass of the indexed cleanup: chunk
/// minima are computed with an autovectorisable `u16` reduction, and refinement later
/// touches only chunks whose minimum beats the running bound.
const SKETCH_CHUNK_ROWS: usize = 64;

/// Words per refinement step in the indexed cleanup: candidates accumulate their exact
/// Hamming distance [`REFINE_CHUNK_WORDS`] words at a time, re-checking the
/// best-so-far bound between steps so provably-worse rows are abandoned early.
const REFINE_CHUNK_WORDS: usize = 4;

/// A dense, row-major batch of **sign planes**: the bit-packed mirror of [`HvMatrix`]
/// for bipolar data.
///
/// Each row holds `dim` sign bits packed into `dim.div_ceil(64)` little-endian `u64`
/// words (bit `j % 64` of word `j / 64` is dimension `j`); a set bit encodes `-1.0`.
/// Rows are padded to a whole number of words and the padding bits are always zero.
///
/// # Example
/// ```
/// use cogsys_vsa::batch::HvMatrix;
/// use cogsys_vsa::packed::BitMatrix;
///
/// let m = HvMatrix::from_vec(vec![1.0, -1.0, -1.0, 1.0], 1, 4).unwrap();
/// let bits = BitMatrix::from_matrix(&m).unwrap();
/// assert_eq!((bits.rows(), bits.dim(), bits.words_per_row()), (1, 4, 1));
/// assert_eq!(bits.row_words(0), &[0b0110]);
/// assert_eq!(bits.to_matrix(), m); // exact round trip
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    dim: usize,
    words_per_row: usize,
}

/// IEEE sign bits of eight lanes gathered into the low byte — the scalar spelling of
/// a `movmskps`-style extraction. The fixed `[f32; 8]` shape removes bounds checks and
/// the variable per-bit shift of a 64-step loop, so the eight extractions are
/// independent and combine as a tree instead of one serial OR chain.
#[inline]
fn sign_mask8(lane: &[f32; 8]) -> u64 {
    let s = |i: usize| u64::from(lane[i].to_bits() >> 31) << i;
    ((s(0) | s(1)) | (s(2) | s(3))) | ((s(4) | s(5)) | (s(6) | s(7)))
}

/// OR-accumulated "not exactly `±1.0`" detector for eight lanes: `|v| == 1.0` iff the
/// magnitude bits equal those of `1.0`, so the XOR is zero exactly on bipolar input.
#[inline]
fn nonbipolar_mask8(lane: &[f32; 8]) -> u32 {
    let b = |i: usize| (lane[i].to_bits() & 0x7fff_ffff) ^ 0x3f80_0000;
    ((b(0) | b(1)) | (b(2) | b(3))) | ((b(4) | b(5)) | (b(6) | b(7)))
}

/// Negative-mask of eight lanes under the estimate-binarisation convention `v < 0.0`
/// (`-0.0` packs to `+1`, unlike the raw IEEE sign bit).
#[inline]
fn neg_mask8(lane: &[f32; 8]) -> u64 {
    let s = |i: usize| u64::from(lane[i] < 0.0) << i;
    ((s(0) | s(1)) | (s(2) | s(3))) | ((s(4) | s(5)) | (s(6) | s(7)))
}

/// Packs one `f32` row into sign-plane words, returning `false` if any element is not
/// exactly `±1.0` (the packed representation would silently drop magnitudes).
///
/// Branchless: whole 8-lane groups flow through [`sign_mask8`] / [`nonbipolar_mask8`]
/// and the bipolarity verdict is OR-accumulated instead of tested per element, so the
/// first pack at the encode boundary runs at SIMD gather speed rather than one
/// test-and-shift per dimension.
fn pack_row_strict(row: &[f32], words: &mut [u64]) -> bool {
    let mut bad = 0u32;
    for (chunk, word) in row.chunks(WORD_BITS).zip(words.iter_mut()) {
        let mut w = 0u64;
        let mut lanes = chunk.chunks_exact(8);
        for (group, lane) in lanes.by_ref().enumerate() {
            let lane: &[f32; 8] = lane.try_into().expect("chunks_exact(8) yields 8 lanes");
            bad |= nonbipolar_mask8(lane);
            w |= sign_mask8(lane) << (group * 8);
        }
        let tail_base = chunk.len() - lanes.remainder().len();
        for (offset, &v) in lanes.remainder().iter().enumerate() {
            let b = v.to_bits();
            bad |= (b & 0x7fff_ffff) ^ 0x3f80_0000;
            w |= u64::from(b >> 31) << (tail_base + offset);
        }
        *word = w;
    }
    bad == 0
}

/// Packs the *signs* of an arbitrary `f32` row, using the `v < 0.0` convention of the
/// estimate binarisation step (`-0.0` packs to `+1`, unlike the IEEE sign bit).
/// Same unrolled 8-lane structure as [`pack_row_strict`].
fn pack_row_signs(row: &[f32], words: &mut [u64]) {
    for (chunk, word) in row.chunks(WORD_BITS).zip(words.iter_mut()) {
        let mut w = 0u64;
        let mut lanes = chunk.chunks_exact(8);
        for (group, lane) in lanes.by_ref().enumerate() {
            let lane: &[f32; 8] = lane.try_into().expect("chunks_exact(8) yields 8 lanes");
            w |= neg_mask8(lane) << (group * 8);
        }
        let tail_base = chunk.len() - lanes.remainder().len();
        for (offset, &v) in lanes.remainder().iter().enumerate() {
            w |= u64::from(v < 0.0) << (tail_base + offset);
        }
        *word = w;
    }
}

fn unpack_row(words: &[u64], row: &mut [f32]) {
    for (chunk, word) in row.chunks_mut(WORD_BITS).zip(words) {
        for (bit, v) in chunk.iter_mut().enumerate() {
            *v = if (word >> bit) & 1 == 1 { -1.0 } else { 1.0 };
        }
    }
}

/// Portable Hamming distance between two equal-length word rows (tail bits are zero
/// on both sides, so whole-word popcount needs no masking).
#[inline]
fn hamming_generic(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Function-pointer type of the Hamming kernels behind [`hamming_fn`].
type HammingFn = fn(&[u64], &[u64]) -> u32;

/// Sketch kernel over two SoA planes: `dist[r] = popcount(q0 ^ p0[r]) +
/// popcount(q1 ^ p1[r])` (overwrite).
type SketchPairFn = fn(u64, u64, &[u64], &[u64], &mut [u16]);

/// Sketch kernel over one SoA plane, either overwriting (`dist[r] = …`) or
/// accumulating (`dist[r] += …`) per-row popcounts against a single query word.
type SketchPlaneFn = fn(u64, &[u64], &mut [u16]);

/// Portable two-plane sketch sweep (overwrite form).
fn sketch_pair_generic(q0: u64, q1: u64, p0: &[u64], p1: &[u64], dist: &mut [u16]) {
    for ((slot, &a), &b) in dist.iter_mut().zip(p0).zip(p1) {
        *slot = ((q0 ^ a).count_ones() + (q1 ^ b).count_ones()) as u16;
    }
}

/// Portable one-plane sketch sweep (overwrite form).
fn sketch_one_generic(q: u64, plane: &[u64], dist: &mut [u16]) {
    for (slot, &a) in dist.iter_mut().zip(plane) {
        *slot = (q ^ a).count_ones() as u16;
    }
}

/// Portable one-plane sketch sweep (accumulate form).
fn sketch_accum_generic(q: u64, plane: &[u64], dist: &mut [u16]) {
    for (slot, &a) in dist.iter_mut().zip(plane) {
        *slot += (q ^ a).count_ones() as u16;
    }
}

/// SIMD width the Hamming kernels resolved to on this CPU (see [`dispatch_tier`]).
///
/// The tiers are ordered: each is at least as wide as the previous, and runtime
/// dispatch picks the widest tier the running CPU supports. The `COGSYS_SIMD`
/// environment variable (`generic` / `popcnt` / `avx2` / `avx512`, read once at the
/// first kernel call) *caps* the tier — useful for measuring one rung against the
/// next on the same host, never for enabling an unsupported one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DispatchTier {
    /// Portable `u64::count_ones()` — a ~12-operation bit hack on baseline x86-64.
    Generic,
    /// Scalar `popcnt` instruction, four independent accumulators.
    Popcnt,
    /// Harley–Seal carry-save adder tree over 256-bit AVX2 lanes (nibble-LUT
    /// `vpshufb` popcount), with a plain lookup loop below one 64-word block.
    Avx2,
    /// AVX-512 `vpopcntq` (VPOPCNTDQ): hardware popcount of eight words per lane.
    Avx512,
}

impl DispatchTier {
    /// Lower-case tier label used in bench output and CI logs.
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchTier::Generic => "generic",
            DispatchTier::Popcnt => "popcnt",
            DispatchTier::Avx2 => "avx2",
            DispatchTier::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for DispatchTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Runtime-dispatched SIMD Hamming kernels.
///
/// This module is the crate's **single scoped `unsafe_code` exception** (see the
/// crate-level lint note): `#[target_feature]` functions cannot be called or coerced
/// without `unsafe` even after cpuid verification, and the AVX loads go through raw
/// pointers. Every function here is only reachable through [`detect`], which gates
/// each tier on `is_x86_feature_detected!`.
#[cfg(target_arch = "x86_64")]
mod simd {
    #![allow(unsafe_code)]

    use std::arch::x86_64::*;

    /// Hamming distance compiled with the `popcnt` target feature enabled.
    ///
    /// The workspace builds for baseline x86-64, where `u64::count_ones()` lowers to
    /// a ~12-operation bit-twiddling sequence; with the feature enabled it is a
    /// single `popcnt` instruction. Four independent accumulators break the serial
    /// add chain so the XOR+popcount stream runs at popcount-unit throughput instead
    /// of add latency.
    #[target_feature(enable = "popcnt")]
    fn hamming_popcnt(a: &[u64], b: &[u64]) -> u32 {
        let chunks_a = a.chunks_exact(4);
        let chunks_b = b.chunks_exact(4);
        let tail: u32 = chunks_a
            .remainder()
            .iter()
            .zip(chunks_b.remainder())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        let mut acc = [0u32; 4];
        for (xa, xb) in chunks_a.zip(chunks_b) {
            acc[0] += (xa[0] ^ xb[0]).count_ones();
            acc[1] += (xa[1] ^ xb[1]).count_ones();
            acc[2] += (xa[2] ^ xb[2]).count_ones();
            acc[3] += (xa[3] ^ xb[3]).count_ones();
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// Per-64-bit-lane popcount of a 256-bit vector: nibble-LUT `vpshufb` counts
    /// summed per lane by `vpsadbw` (Muła's AVX2 popcount building block).
    #[target_feature(enable = "avx2")]
    fn popcount256(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Loads four words from each operand at `i` and XORs them.
    #[target_feature(enable = "avx2")]
    fn load_xor(a: &[u64], b: &[u64], i: usize) -> __m256i {
        debug_assert!(i + 4 <= a.len() && i + 4 <= b.len());
        // SAFETY: callers keep i + 4 <= len on both operands; loadu has no
        // alignment requirement.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            _mm256_xor_si256(va, vb)
        }
    }

    /// Carry-save adder: returns `(carry, sum)` of three one-bit-per-position
    /// addends — the Harley–Seal compression step.
    #[target_feature(enable = "avx2")]
    fn csa(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        (
            _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c)),
            _mm256_xor_si256(u, c),
        )
    }

    /// AVX2 Hamming distance: Harley–Seal carry-save adder tree over blocks of 16
    /// 256-bit vectors (64 words), then a plain lookup-popcount loop for the
    /// remainder. The CSA tree popcounts one vector of `sixteens` per block instead
    /// of sixteen, trading cheap bitwise ops for 15 of the 16 `vpshufb` reductions —
    /// the Muła/Kurz/Lemire result that pays off exactly at the d ≥ 4096 row widths
    /// of the GEMM/cleanup kernels. Rows shorter than one block skip the tree (and
    /// its fold-out overhead) entirely, keeping small-d dispatch profitable too.
    #[target_feature(enable = "avx2")]
    fn hamming_avx2(a: &[u64], b: &[u64]) -> u32 {
        let mut total = _mm256_setzero_si256();
        let mut i = 0;
        if a.len() >= 64 {
            let mut ones = _mm256_setzero_si256();
            let mut twos = _mm256_setzero_si256();
            let mut fours = _mm256_setzero_si256();
            let mut eights = _mm256_setzero_si256();
            while i + 64 <= a.len() {
                let (twos_a, o1) = csa(ones, load_xor(a, b, i), load_xor(a, b, i + 4));
                let (twos_b, o2) = csa(o1, load_xor(a, b, i + 8), load_xor(a, b, i + 12));
                let (fours_a, t1) = csa(twos, twos_a, twos_b);
                let (twos_a, o3) = csa(o2, load_xor(a, b, i + 16), load_xor(a, b, i + 20));
                let (twos_b, o4) = csa(o3, load_xor(a, b, i + 24), load_xor(a, b, i + 28));
                let (fours_b, t2) = csa(t1, twos_a, twos_b);
                let (eights_a, f1) = csa(fours, fours_a, fours_b);
                let (twos_a, o5) = csa(o4, load_xor(a, b, i + 32), load_xor(a, b, i + 36));
                let (twos_b, o6) = csa(o5, load_xor(a, b, i + 40), load_xor(a, b, i + 44));
                let (fours_a, t3) = csa(t2, twos_a, twos_b);
                let (twos_a, o7) = csa(o6, load_xor(a, b, i + 48), load_xor(a, b, i + 52));
                let (twos_b, o8) = csa(o7, load_xor(a, b, i + 56), load_xor(a, b, i + 60));
                let (fours_b, t4) = csa(t3, twos_a, twos_b);
                let (eights_b, f2) = csa(f1, fours_a, fours_b);
                let (sixteens, e) = csa(eights, eights_a, eights_b);
                ones = o8;
                twos = t4;
                fours = f2;
                eights = e;
                total = _mm256_add_epi64(total, popcount256(sixteens));
                i += 64;
            }
            // Fold the carry levels back in: each level's population counts with
            // weight 16/8/4/2/1.
            total = _mm256_slli_epi64(total, 4);
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(eights), 3));
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(fours), 2));
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(twos), 1));
            total = _mm256_add_epi64(total, popcount256(ones));
        }
        let n4 = a.len() & !3;
        while i < n4 {
            total = _mm256_add_epi64(total, popcount256(load_xor(a, b, i)));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is exactly 32 bytes; storeu has no alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), total) };
        let tail: u32 = a[n4..]
            .iter()
            .zip(&b[n4..])
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        (lanes.iter().sum::<u64>() as u32) + tail
    }

    /// AVX-512 Hamming distance: `vpopcntq` counts eight words per instruction into
    /// 64-bit lane accumulators; no adder tree is needed because the popcount itself
    /// is one hardware op.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn hamming_avx512(a: &[u64], b: &[u64]) -> u32 {
        let mut acc = _mm512_setzero_si512();
        let n = a.len() & !7;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 8 <= len on both operands; loadu has no alignment
            // requirement.
            let v = unsafe {
                let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
                let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
                _mm512_xor_si512(va, vb)
            };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let tail: u32 = a[n..]
            .iter()
            .zip(&b[n..])
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        _mm512_reduce_add_epi64(acc) as u32 + tail
    }

    /// Two-plane sketch sweep compiled with hardware `popcnt` (overwrite form); same
    /// body as the generic kernel — the feature gate alone turns each
    /// `count_ones()` into one instruction, and the plane-contiguous SoA layout lets
    /// the compiler keep the whole sweep in a tight load/popcnt/add stream.
    #[target_feature(enable = "popcnt")]
    fn sketch_pair_popcnt(q0: u64, q1: u64, p0: &[u64], p1: &[u64], dist: &mut [u16]) {
        for ((slot, &a), &b) in dist.iter_mut().zip(p0).zip(p1) {
            *slot = ((q0 ^ a).count_ones() + (q1 ^ b).count_ones()) as u16;
        }
    }

    /// One-plane sketch sweep with hardware `popcnt` (overwrite form).
    #[target_feature(enable = "popcnt")]
    fn sketch_one_popcnt(q: u64, plane: &[u64], dist: &mut [u16]) {
        for (slot, &a) in dist.iter_mut().zip(plane) {
            *slot = (q ^ a).count_ones() as u16;
        }
    }

    /// One-plane sketch sweep with hardware `popcnt` (accumulate form).
    #[target_feature(enable = "popcnt")]
    fn sketch_accum_popcnt(q: u64, plane: &[u64], dist: &mut [u16]) {
        for (slot, &a) in dist.iter_mut().zip(plane) {
            *slot += (q ^ a).count_ones() as u16;
        }
    }

    /// One codebook word's ±w update of the SoA projection tile, compiled with
    /// AVX2. The packed sign word is expanded once into eight ymm sign-mask
    /// vectors with variable left shifts (bit `b` lands in the IEEE sign
    /// position of slot `b`), then each lane's 64 accumulator slots take eight
    /// xor+add vector ops — versus 64 scalar shift/mask/xor/add rounds per lane
    /// in the baseline kernel.
    ///
    /// Bitwise identical to [`super::project_tile_word_generic`] by
    /// construction: vectorization runs *across* accumulator slots, never
    /// across addends, so every slot still sums the same ±w sequence in
    /// codebook-row order. An all-zero word yields all-zero masks, which is
    /// exactly the scalar fast path's `+w` broadcast.
    #[target_feature(enable = "avx2")]
    fn project_tile_word_avx2(
        tile: &mut [[f32; super::WORD_BITS]; super::PROJ_LANE_ROWS],
        lanes: &[&[f32]],
        m: usize,
        word: u64,
    ) {
        let sign = _mm256_set1_epi32(i32::MIN);
        // Left-shift counts that carry bit (8g + j) of a 32-bit half into the
        // sign position of group g's lane j: ((half >> (8g + j)) & 1) << 31
        // == (half << (31 - 8g - j)) & SIGN.
        let counts = [
            _mm256_setr_epi32(31, 30, 29, 28, 27, 26, 25, 24),
            _mm256_setr_epi32(23, 22, 21, 20, 19, 18, 17, 16),
            _mm256_setr_epi32(15, 14, 13, 12, 11, 10, 9, 8),
            _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0),
        ];
        let lo = _mm256_set1_epi32(word as u32 as i32);
        let hi = _mm256_set1_epi32((word >> 32) as u32 as i32);
        let mut masks = [_mm256_setzero_si256(); 8];
        for (g, &count) in counts.iter().enumerate() {
            masks[g] = _mm256_and_si256(_mm256_sllv_epi32(lo, count), sign);
            masks[g + 4] = _mm256_and_si256(_mm256_sllv_epi32(hi, count), sign);
        }
        for (row, lane) in tile.iter_mut().zip(lanes) {
            let w = _mm256_set1_epi32(lane[m].to_bits() as i32);
            for (chunk, mask) in row.chunks_exact_mut(8).zip(masks) {
                // SAFETY: chunks_exact_mut(8) guarantees exactly eight f32s;
                // loadu/storeu have no alignment requirement.
                unsafe {
                    let cur = _mm256_loadu_ps(chunk.as_ptr());
                    let addend = _mm256_castsi256_ps(_mm256_xor_si256(w, mask));
                    _mm256_storeu_ps(chunk.as_mut_ptr(), _mm256_add_ps(cur, addend));
                }
            }
        }
    }

    /// Safe wrapper over [`project_tile_word_avx2`]; only reachable after cpuid
    /// detection.
    pub(super) fn project_tile_word_avx2_checked(
        tile: &mut [[f32; super::WORD_BITS]; super::PROJ_LANE_ROWS],
        lanes: &[&[f32]],
        m: usize,
        word: u64,
    ) {
        // SAFETY: project_tile_fn() returns this function only when the avx2
        // feature was detected on the running CPU.
        unsafe { project_tile_word_avx2(tile, lanes, m, word) }
    }

    /// Safe wrapper over [`sketch_pair_popcnt`]; only reachable after cpuid detection.
    pub(super) fn sketch_pair_popcnt_checked(
        q0: u64,
        q1: u64,
        p0: &[u64],
        p1: &[u64],
        dist: &mut [u16],
    ) {
        // SAFETY: sketch_kernels() returns this function only when the popcnt
        // feature was detected on the running CPU.
        unsafe { sketch_pair_popcnt(q0, q1, p0, p1, dist) }
    }

    /// Safe wrapper over [`sketch_one_popcnt`]; only reachable after cpuid detection.
    pub(super) fn sketch_one_popcnt_checked(q: u64, plane: &[u64], dist: &mut [u16]) {
        // SAFETY: sketch_kernels() returns this function only when the popcnt
        // feature was detected on the running CPU.
        unsafe { sketch_one_popcnt(q, plane, dist) }
    }

    /// Safe wrapper over [`sketch_accum_popcnt`]; only reachable after cpuid detection.
    pub(super) fn sketch_accum_popcnt_checked(q: u64, plane: &[u64], dist: &mut [u16]) {
        // SAFETY: sketch_kernels() returns this function only when the popcnt
        // feature was detected on the running CPU.
        unsafe { sketch_accum_popcnt(q, plane, dist) }
    }

    /// Safe wrapper over [`hamming_popcnt`]; only reachable after cpuid detection.
    pub(super) fn hamming_popcnt_checked(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: detect() returns this function only when the popcnt feature was
        // detected on the running CPU.
        unsafe { hamming_popcnt(a, b) }
    }

    /// Safe wrapper over [`hamming_avx2`]; only reachable after cpuid detection.
    pub(super) fn hamming_avx2_checked(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: detect() returns this function only when the avx2 feature was
        // detected on the running CPU.
        unsafe { hamming_avx2(a, b) }
    }

    /// Safe wrapper over [`hamming_avx512`]; only reachable after cpuid detection.
    pub(super) fn hamming_avx512_checked(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: detect() returns this function only when the avx512f and
        // avx512vpopcntdq features were detected on the running CPU.
        unsafe { hamming_avx512(a, b) }
    }

    // ---- const-generic word-count specializations (see `WordSpec`) ----
    //
    // Same arithmetic as the runtime-length kernels above, with the row width `W`
    // fixed at compile time: the loop trip counts become constants, so LLVM fully
    // unrolls the XOR+popcount streams and drops the remainder/tail checks. Every
    // kernel is integer-exact, so specialization can never change a result — only
    // the schedule of the same adds.

    /// [`hamming_popcnt`] with the row width fixed at `W` words.
    #[target_feature(enable = "popcnt")]
    fn hamming_popcnt_w<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        let (a, b) = (&a[..W], &b[..W]);
        let mut acc = [0u32; 4];
        let mut i = 0;
        while i + 4 <= W {
            acc[0] += (a[i] ^ b[i]).count_ones();
            acc[1] += (a[i + 1] ^ b[i + 1]).count_ones();
            acc[2] += (a[i + 2] ^ b[i + 2]).count_ones();
            acc[3] += (a[i + 3] ^ b[i + 3]).count_ones();
            i += 4;
        }
        let mut tail = 0u32;
        while i < W {
            tail += (a[i] ^ b[i]).count_ones();
            i += 1;
        }
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }

    /// [`hamming_avx2`] with the row width fixed at `W` words. The `W >= 64` guard
    /// on the Harley–Seal tree is a compile-time constant, so the `W = 16`/`W = 32`
    /// instantiations compile to a straight run of `popcount256` adds with no block
    /// bookkeeping at all, and `W = 64` keeps exactly one CSA-tree pass.
    #[target_feature(enable = "avx2")]
    fn hamming_avx2_w<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        debug_assert!(a.len() >= W && b.len() >= W);
        let mut total = _mm256_setzero_si256();
        let mut i = 0;
        if W >= 64 {
            let mut ones = _mm256_setzero_si256();
            let mut twos = _mm256_setzero_si256();
            let mut fours = _mm256_setzero_si256();
            let mut eights = _mm256_setzero_si256();
            while i + 64 <= W {
                let (twos_a, o1) = csa(ones, load_xor(a, b, i), load_xor(a, b, i + 4));
                let (twos_b, o2) = csa(o1, load_xor(a, b, i + 8), load_xor(a, b, i + 12));
                let (fours_a, t1) = csa(twos, twos_a, twos_b);
                let (twos_a, o3) = csa(o2, load_xor(a, b, i + 16), load_xor(a, b, i + 20));
                let (twos_b, o4) = csa(o3, load_xor(a, b, i + 24), load_xor(a, b, i + 28));
                let (fours_b, t2) = csa(t1, twos_a, twos_b);
                let (eights_a, f1) = csa(fours, fours_a, fours_b);
                let (twos_a, o5) = csa(o4, load_xor(a, b, i + 32), load_xor(a, b, i + 36));
                let (twos_b, o6) = csa(o5, load_xor(a, b, i + 40), load_xor(a, b, i + 44));
                let (fours_a, t3) = csa(t2, twos_a, twos_b);
                let (twos_a, o7) = csa(o6, load_xor(a, b, i + 48), load_xor(a, b, i + 52));
                let (twos_b, o8) = csa(o7, load_xor(a, b, i + 56), load_xor(a, b, i + 60));
                let (fours_b, t4) = csa(t3, twos_a, twos_b);
                let (eights_b, f2) = csa(f1, fours_a, fours_b);
                let (sixteens, e) = csa(eights, eights_a, eights_b);
                ones = o8;
                twos = t4;
                fours = f2;
                eights = e;
                total = _mm256_add_epi64(total, popcount256(sixteens));
                i += 64;
            }
            total = _mm256_slli_epi64(total, 4);
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(eights), 3));
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(fours), 2));
            total = _mm256_add_epi64(total, _mm256_slli_epi64(popcount256(twos), 1));
            total = _mm256_add_epi64(total, popcount256(ones));
        }
        let n4 = W & !3;
        while i < n4 {
            total = _mm256_add_epi64(total, popcount256(load_xor(a, b, i)));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is exactly 32 bytes; storeu has no alignment requirement.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), total) };
        let tail: u32 = a[n4..W]
            .iter()
            .zip(&b[n4..W])
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        (lanes.iter().sum::<u64>() as u32) + tail
    }

    /// [`hamming_avx512`] with the row width fixed at `W` words.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    fn hamming_avx512_w<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        debug_assert!(a.len() >= W && b.len() >= W);
        let mut acc = _mm512_setzero_si512();
        let n = W & !7;
        let mut i = 0;
        while i < n {
            // SAFETY: i + 8 <= W <= len on both operands; loadu has no alignment
            // requirement.
            let v = unsafe {
                let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
                let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
                _mm512_xor_si512(va, vb)
            };
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
            i += 8;
        }
        let tail: u32 = a[n..W]
            .iter()
            .zip(&b[n..W])
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        _mm512_reduce_add_epi64(acc) as u32 + tail
    }

    /// Whole-block similarity scan with the AVX2 Hamming kernel inlined: one row of
    /// `out` per `W`-word codebook row, `out[r] = d − 2·hamming(qw, row_r)`. Keeping
    /// the scan inside one `target_feature` function removes the per-row indirect
    /// call of the dispatch path — at `W = 16` the call overhead is a measurable
    /// fraction of the unrolled popcount body.
    #[target_feature(enable = "avx2")]
    fn sim_scan_avx2_w<const W: usize>(d: i32, qw: &[u64], block_words: &[u64], out: &mut [f32]) {
        for (slot, row) in out.iter_mut().zip(block_words.chunks_exact(W)) {
            // avx2 is enabled on this function, satisfying the callee's
            // target-feature contract; chunks_exact(W) yields exactly W words.
            *slot = (d - 2 * hamming_avx2_w::<W>(qw, row) as i32) as f32;
        }
    }

    /// Whole-block cleanup scan with the AVX2 Hamming kernel inlined: updates the
    /// running `(index, hamming)` best under the strict-`<` / lowest-index rule of
    /// the generic scan.
    #[target_feature(enable = "avx2")]
    fn cleanup_scan_avx2_w<const W: usize>(
        block_start: usize,
        qw: &[u64],
        block_words: &[u64],
        slot: &mut (usize, u32),
    ) {
        for (offset, row) in block_words.chunks_exact(W).enumerate() {
            // avx2 is enabled on this function, satisfying the callee's
            // target-feature contract; chunks_exact(W) yields exactly W words.
            let h = hamming_avx2_w::<W>(qw, row);
            if h < slot.1 {
                *slot = (block_start + offset, h);
            }
        }
    }

    /// Safe wrapper over [`hamming_popcnt_w`]; only reachable after cpuid detection.
    pub(super) fn hamming_popcnt_w_checked<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: spec dispatch returns this function only when the popcnt feature
        // was detected on the running CPU.
        unsafe { hamming_popcnt_w::<W>(a, b) }
    }

    /// Safe wrapper over [`hamming_avx2_w`]; only reachable after cpuid detection.
    pub(super) fn hamming_avx2_w_checked<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: spec dispatch returns this function only when the avx2 feature
        // was detected on the running CPU.
        unsafe { hamming_avx2_w::<W>(a, b) }
    }

    /// Safe wrapper over [`hamming_avx512_w`]; only reachable after cpuid detection.
    pub(super) fn hamming_avx512_w_checked<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
        // SAFETY: spec dispatch returns this function only when the avx512f and
        // avx512vpopcntdq features were detected on the running CPU.
        unsafe { hamming_avx512_w::<W>(a, b) }
    }

    /// Safe wrapper over [`sim_scan_avx2_w`]; only reachable after cpuid detection.
    pub(super) fn sim_scan_avx2_w_checked<const W: usize>(
        d: i32,
        qw: &[u64],
        block_words: &[u64],
        out: &mut [f32],
    ) {
        // SAFETY: the spec scan paths call this only when dispatch resolved the
        // avx2 tier after cpuid detection.
        unsafe { sim_scan_avx2_w::<W>(d, qw, block_words, out) }
    }

    /// Safe wrapper over [`cleanup_scan_avx2_w`]; only reachable after cpuid
    /// detection.
    pub(super) fn cleanup_scan_avx2_w_checked<const W: usize>(
        block_start: usize,
        qw: &[u64],
        block_words: &[u64],
        slot: &mut (usize, u32),
    ) {
        // SAFETY: the spec scan paths call this only when dispatch resolved the
        // avx2 tier after cpuid detection.
        unsafe { cleanup_scan_avx2_w::<W>(block_start, qw, block_words, slot) }
    }
}

/// Probes the CPU once and picks the widest supported Hamming tier, capped by the
/// `COGSYS_SIMD` environment variable when set to a known tier name.
fn detect() -> (DispatchTier, HammingFn) {
    let cap = std::env::var("COGSYS_SIMD")
        .ok()
        .and_then(|v| match v.as_str() {
            "generic" => Some(DispatchTier::Generic),
            "popcnt" => Some(DispatchTier::Popcnt),
            "avx2" => Some(DispatchTier::Avx2),
            "avx512" => Some(DispatchTier::Avx512),
            _ => None,
        })
        .unwrap_or(DispatchTier::Avx512);
    #[cfg(target_arch = "x86_64")]
    {
        use std::arch::is_x86_feature_detected;
        if cap >= DispatchTier::Avx512
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512vpopcntdq")
        {
            return (DispatchTier::Avx512, simd::hamming_avx512_checked);
        }
        if cap >= DispatchTier::Avx2 && is_x86_feature_detected!("avx2") {
            return (DispatchTier::Avx2, simd::hamming_avx2_checked);
        }
        if cap >= DispatchTier::Popcnt && is_x86_feature_detected!("popcnt") {
            return (DispatchTier::Popcnt, simd::hamming_popcnt_checked);
        }
    }
    let _ = cap;
    (DispatchTier::Generic, hamming_generic)
}

/// The resolved `(tier, kernel)` pair, cached process-wide: after the first call,
/// dispatch is one atomic load — cheap enough that even the single-pair
/// [`BitMatrix::dot_rows`] / [`BitMatrix::cosine_rows`] paths pay no cpuid or env
/// probe per call. The batch kernels still hoist the function pointer outside their
/// row loops so nothing at all sits on the per-row path.
static DISPATCH: std::sync::OnceLock<(DispatchTier, HammingFn)> = std::sync::OnceLock::new();

#[inline]
fn dispatch() -> (DispatchTier, HammingFn) {
    *DISPATCH.get_or_init(detect)
}

/// The SIMD tier the Hamming kernels run at on this CPU (resolved once, cached).
///
/// Surfaced by the `backend_throughput` bench binary so CI logs record which rung
/// produced the numbers.
pub fn dispatch_tier() -> DispatchTier {
    dispatch().0
}

/// Resolves the fastest available Hamming kernel for this CPU (cached; see
/// [`DISPATCH`]). The hot loops fetch the function pointer outside their row loops,
/// so dispatch never sits on the per-row path.
#[inline]
fn hamming_fn() -> HammingFn {
    dispatch().1
}

/// Hamming distance via the best kernel for this CPU (single-shot entry point; the
/// batch kernels hoist [`hamming_fn`] instead).
#[inline]
fn hamming(a: &[u64], b: &[u64]) -> u32 {
    hamming_fn()(a, b)
}

/// The three sketch-sweep kernels of the indexed cleanup, resolved together.
#[derive(Clone, Copy)]
struct SketchKernels {
    pair: SketchPairFn,
    one: SketchPlaneFn,
    accum: SketchPlaneFn,
}

/// Resolves the sketch-sweep kernels for this CPU. Any tier at or above
/// [`DispatchTier::Popcnt`] implies the `popcnt` feature, which is all these
/// word-at-a-time sweeps need — the wide-vector tiers buy nothing extra here because
/// each plane element is a single `u64`.
fn sketch_kernels() -> SketchKernels {
    #[cfg(target_arch = "x86_64")]
    if dispatch_tier() >= DispatchTier::Popcnt && std::arch::is_x86_feature_detected!("popcnt") {
        return SketchKernels {
            pair: simd::sketch_pair_popcnt_checked,
            one: simd::sketch_one_popcnt_checked,
            accum: simd::sketch_accum_popcnt_checked,
        };
    }
    SketchKernels {
        pair: sketch_pair_generic,
        one: sketch_one_generic,
        accum: sketch_accum_generic,
    }
}

/// Compile-time row-width selector for the packed kernels.
///
/// The hot popcount/projection loops are parameterised by the number of `u64`
/// words per row (`dim.div_ceil(64)`), which the runtime kernels carry as a
/// variable. For the word counts the serving path actually sees — `d = 1024 →
/// W = 16`, the default `d = 2048 → W = 32`, `d = 4096 → W = 64` — this enum
/// selects **const-generic monomorphizations** whose trip counts are compile-time
/// constants, so the inner loops fully unroll and drop their remainder handling.
///
/// Specialization is keyed on the *word* count, not the exact dimension: padded
/// tail bits are zero on both operands (see [`BitMatrix::tail_mask`]), so
/// whole-word Hamming over `W` words is exact for every `dim` in
/// `(64·(W−1), 64·W]`. Every specialized kernel is decision-identical to its
/// runtime-length twin by construction — integer popcounts are exact, and the f32
/// projection keeps the same accumulation order — which the spec-vs-generic
/// proptests pin bitwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WordSpec {
    /// 16 words per row (`512 < d ≤ 1024`), the paper's per-block dimensionality.
    W16,
    /// 32 words per row (`1984 < d ≤ 2048`), the solver's default dimensionality.
    W32,
    /// 64 words per row (`4032 < d ≤ 4096`).
    W64,
    /// Any other width: the runtime-length kernels (no monomorphization).
    #[default]
    Generic,
}

impl WordSpec {
    /// The specialization for a row of `words` `u64`s, or [`WordSpec::Generic`]
    /// when no monomorphization exists for that width.
    pub fn for_words(words: usize) -> Self {
        match words {
            16 => WordSpec::W16,
            32 => WordSpec::W32,
            64 => WordSpec::W64,
            _ => WordSpec::Generic,
        }
    }

    /// The specialization for dimension `dim` (via [`BitMatrix::words_for_dim`]).
    pub fn for_dim(dim: usize) -> Self {
        Self::for_words(BitMatrix::words_for_dim(dim))
    }

    /// The fixed word count, or `None` for the generic tier.
    pub fn words(self) -> Option<usize> {
        match self {
            WordSpec::W16 => Some(16),
            WordSpec::W32 => Some(32),
            WordSpec::W64 => Some(64),
            WordSpec::Generic => None,
        }
    }

    /// `true` when this spec's fixed word count equals `words` (always `false`
    /// for [`WordSpec::Generic`]): the guard every spec entry point checks before
    /// taking a monomorphized path.
    pub fn matches(self, words: usize) -> bool {
        self.words() == Some(words)
    }

    /// Label used by plan descriptions and bench output (`W=16` … / `generic`).
    pub fn as_str(self) -> &'static str {
        match self {
            WordSpec::W16 => "W=16",
            WordSpec::W32 => "W=32",
            WordSpec::W64 => "W=64",
            WordSpec::Generic => "generic",
        }
    }
}

impl std::fmt::Display for WordSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How the packed resonator iteration is executed: as the fused single-pass
/// mega-kernel ([`PackedBackend::resonate_step_fused_into`]) or as the original
/// three-kernel sequence (XOR-unbind → similarity GEMM → sign projection).
///
/// The two paths are decision-identical by construction — same similarities,
/// same sign bits, same rng-stream consumption — so `Split` survives as the
/// bitwise reference path and as an A/B switch (`COGSYS_FUSION=split`), not as
/// a different algorithm. Plans record the resolved mode per resonate stage so
/// `--explain` and the scheduler lowering see the same decision the kernels run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FusionMode {
    /// One tiled pass per iteration over the codebook sign planes: unbind,
    /// popcount similarity, and weighted sign projection share each loaded word.
    #[default]
    Fused,
    /// The reference three-kernel sequence; bitwise-identical results.
    Split,
}

impl FusionMode {
    /// Resolves the default mode, honouring the `COGSYS_FUSION=split` escape
    /// hatch (any other value, or unset, selects the fused kernel).
    pub fn resolve_env() -> Self {
        match std::env::var("COGSYS_FUSION") {
            Ok(v) if v.eq_ignore_ascii_case("split") => FusionMode::Split,
            _ => FusionMode::Fused,
        }
    }

    /// Label used by plan descriptions and bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            FusionMode::Fused => "fused",
            FusionMode::Split => "split",
        }
    }
}

impl std::fmt::Display for FusionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which sub-step of the fused resonator iteration a
/// [`PackedBackend::resonate_step_fused_into`] hook invocation belongs to.
/// The hook fires once per query row per phase, in ascending row order within
/// each lane block, so per-query noise streams are consumed in exactly the
/// order the split pipeline consumes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResonatePhase {
    /// The row holds the freshly computed similarities (`d − 2·hamming`) for
    /// this query against every codebook row: perturb in place and decode.
    Similarity,
    /// The row holds the weighted sign-projection accumulator for this query:
    /// perturb in place before the signs are packed back into the estimate.
    Projection,
}

/// Portable Hamming distance with the row width fixed at `W` words — the
/// monomorphized twin of [`hamming_generic`] (the tier every non-x86 or
/// `COGSYS_SIMD=generic` host runs).
#[inline]
fn hamming_generic_w<const W: usize>(a: &[u64], b: &[u64]) -> u32 {
    let (a, b) = (&a[..W], &b[..W]);
    let mut acc = 0u32;
    for i in 0..W {
        acc += (a[i] ^ b[i]).count_ones();
    }
    acc
}

/// Function-pointer type of the projection-tile word kernels behind
/// [`project_tile_fn`]: accumulate one codebook word's ±w contributions for up
/// to [`PROJ_LANE_ROWS`] weight lanes into the per-word SoA tile.
type ProjTileFn = fn(&mut [[f32; WORD_BITS]; PROJ_LANE_ROWS], &[&[f32]], usize, u64);

/// Baseline projection-tile word update: flip the IEEE sign bit of each lane's
/// weight per packed codebook bit — `+w` or `-w` exactly, no rounding — with a
/// branch-free broadcast fast path for all-positive (zero) words.
fn project_tile_word_generic(
    tile: &mut [[f32; WORD_BITS]; PROJ_LANE_ROWS],
    lanes: &[&[f32]],
    m: usize,
    word: u64,
) {
    if word == 0 {
        for (row, lane) in tile.iter_mut().zip(lanes) {
            let w = lane[m];
            for slot in row.iter_mut() {
                *slot += w;
            }
        }
    } else {
        for (row, lane) in tile.iter_mut().zip(lanes) {
            let w_bits = lane[m].to_bits();
            for (bit, slot) in row.iter_mut().enumerate() {
                let sign = ((word >> bit) as u32 & 1) << 31;
                *slot += f32::from_bits(w_bits ^ sign);
            }
        }
    }
}

/// Resolves the projection-tile word kernel for this CPU: the AVX2 sign-mask
/// expansion on the avx2/avx512 tiers (the f32 projection sweep is the compute
/// bound of a resonator iteration, so this is where the wide registers pay),
/// the scalar sign-flip kernel otherwise. Capped by `COGSYS_SIMD` like every
/// other kernel, so `COGSYS_SIMD=generic` A/Bs the scalar tile too. Every tier
/// sums the identical ±w sequence per accumulator slot, so tier choice can
/// never change a packed sign.
fn project_tile_fn() -> ProjTileFn {
    #[cfg(target_arch = "x86_64")]
    if dispatch_tier() >= DispatchTier::Avx2 && std::arch::is_x86_feature_detected!("avx2") {
        return simd::project_tile_word_avx2_checked;
    }
    project_tile_word_generic
}

/// Resolves the Hamming kernel monomorphized at `W` words for the detected tier.
/// Same tier ladder as [`detect`]; the returned pointer is only ever invoked on
/// rows of exactly `W` words (the spec entry points check [`WordSpec::matches`]).
fn hamming_fn_spec_w<const W: usize>() -> HammingFn {
    #[cfg(target_arch = "x86_64")]
    {
        match dispatch_tier() {
            DispatchTier::Avx512 => return simd::hamming_avx512_w_checked::<W>,
            DispatchTier::Avx2 => return simd::hamming_avx2_w_checked::<W>,
            DispatchTier::Popcnt => return simd::hamming_popcnt_w_checked::<W>,
            DispatchTier::Generic => {}
        }
    }
    hamming_generic_w::<W>
}

impl BitMatrix {
    /// Number of `u64` words needed per row of dimension `dim`.
    pub fn words_for_dim(dim: usize) -> usize {
        dim.div_ceil(WORD_BITS)
    }

    /// Mask of the valid bits in the last word of a row (`u64::MAX` when `dim` is a
    /// multiple of 64). Padding bits above the mask are kept zero by construction.
    pub fn tail_mask(dim: usize) -> u64 {
        match dim % WORD_BITS {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// An all-`+1` (all bits clear) matrix.
    ///
    /// # Panics
    /// Panics when `dim == 0` with `rows > 0`: a sign plane with rows but no
    /// dimensions has no meaningful Hamming geometry, and rejecting it here lets the
    /// popcount kernels divide by `dim` without degenerate-input masks.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(
            rows == 0 || dim > 0,
            "BitMatrix requires dim > 0 for a non-empty matrix"
        );
        let words_per_row = Self::words_for_dim(dim);
        Self {
            words: vec![0; rows * words_per_row],
            rows,
            dim,
            words_per_row,
        }
    }

    /// A matrix of uniformly random sign planes, drawn directly in packed form (64
    /// dims per `gen::<u64>()` draw) — the cheap way to build the 10^5–10^6-row
    /// codebooks the cleanup-at-scale benches need without a dense `f32` detour.
    ///
    /// # Panics
    /// Panics when `dim == 0` with `rows > 0` (see [`BitMatrix::zeros`]).
    pub fn random_bipolar<R: rand::Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        let mut out = Self::zeros(rows, dim);
        let tail = Self::tail_mask(dim);
        let wpr = out.words_per_row;
        for (i, word) in out.words.iter_mut().enumerate() {
            *word = rng.gen::<u64>();
            if i % wpr == wpr - 1 {
                *word &= tail;
            }
        }
        out
    }

    /// Packs an f32 matrix of exactly-bipolar rows, or `None` if any element is not
    /// `±1.0` — callers use `None` as the signal to stay on the dense path. A
    /// zero-dimension matrix with rows is likewise refused (see [`BitMatrix::zeros`]).
    pub fn from_matrix(m: &HvMatrix) -> Option<Self> {
        let mut packed = Self::default();
        if packed.pack_from(m) {
            Some(packed)
        } else {
            None
        }
    }

    /// Packs a slice of bipolar hypervectors (one row each).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] on ragged rows, and
    /// [`VsaError::InvalidParameter`] when an element is not `±1.0`.
    pub fn from_hypervectors(rows: &[Hypervector]) -> Result<Self, VsaError> {
        let m = HvMatrix::from_rows(rows)?;
        Self::from_matrix(&m).ok_or(VsaError::InvalidParameter {
            name: "rows",
            message: "bit-packing requires exactly bipolar (±1.0) elements".to_string(),
        })
    }

    /// Re-packs `m` into this matrix's storage (reshaping as needed), returning whether
    /// every element was exactly `±1.0`. On `false` the contents are unspecified —
    /// packing bails at the first non-bipolar row so the dense fallback stays cheap.
    /// A zero-dimension matrix with rows is refused like any other unpackable input.
    pub fn pack_from(&mut self, m: &HvMatrix) -> bool {
        if m.rows() > 0 && m.dim() == 0 {
            return false;
        }
        self.ensure_shape(m.rows(), m.dim());
        for i in 0..m.rows() {
            let start = i * self.words_per_row;
            if !pack_row_strict(m.row(i), &mut self.words[start..start + self.words_per_row]) {
                return false;
            }
        }
        true
    }

    /// Packs the signs of one `f32` row into row `i` using the `v < 0.0 → −1`
    /// convention of the estimate binarisation step (magnitudes are discarded).
    ///
    /// # Panics
    /// Panics when `i >= rows()` or `row.len() != dim()`.
    pub fn pack_signs_row(&mut self, i: usize, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row length must match dim");
        let start = i * self.words_per_row;
        pack_row_signs(row, &mut self.words[start..start + self.words_per_row]);
    }

    /// Reshapes to `rows × dim` for reuse as an output buffer: contents are preserved
    /// when the shape is unchanged and **zeroed on any shape change** — stale words
    /// must never be reinterpreted under a new `(rows, dim)` layout.
    ///
    /// # Panics
    /// Panics when `dim == 0` with `rows > 0` (see [`BitMatrix::zeros`]).
    pub fn ensure_shape(&mut self, rows: usize, dim: usize) {
        assert!(
            rows == 0 || dim > 0,
            "BitMatrix requires dim > 0 for a non-empty matrix"
        );
        if self.rows == rows && self.dim == dim {
            return;
        }
        self.words_per_row = Self::words_for_dim(dim);
        // clear() drops the length to zero first, so resize() zero-fills every word.
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
        self.rows = rows;
        self.dim = dim;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Capacity of the backing word buffer — a reallocation fingerprint for
    /// steady-state-allocation regression tests ([`BitMatrix::ensure_shape`]
    /// never shrinks it).
    pub fn word_capacity(&self) -> usize {
        self.words.capacity()
    }

    /// Dimensionality (in bits) of each row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Storage footprint of the packed planes in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Row `i` as packed words.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Unpacks into an owned `f32` matrix of `±1.0` values.
    pub fn to_matrix(&self) -> HvMatrix {
        let mut out = HvMatrix::zeros(self.rows, self.dim);
        self.unpack_into(&mut out);
        out
    }

    /// Unpacks into `out` (reshaped as needed).
    pub fn unpack_into(&self, out: &mut HvMatrix) {
        out.ensure_shape(self.rows, self.dim);
        for i in 0..self.rows {
            unpack_row(self.row_words(i), out.row_mut(i));
        }
    }

    /// Unpacks row `i` into an owned [`Hypervector`] tagged [`VsaKind::Bipolar`].
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn row_hypervector(&self, i: usize) -> Result<Hypervector, VsaError> {
        if i >= self.rows {
            return Err(VsaError::IndexOutOfRange {
                index: i,
                len: self.rows,
            });
        }
        let mut row = vec![0.0f32; self.dim];
        unpack_row(self.row_words(i), &mut row);
        Ok(Hypervector::with_kind(row, VsaKind::Bipolar))
    }

    /// Selects `indices` rows into `out` (the packed analogue of [`HvMatrix::gather`]).
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn gather_into(&self, indices: &[usize], out: &mut Self) -> Result<(), VsaError> {
        out.ensure_shape(indices.len(), self.dim);
        for (slot, &i) in indices.iter().enumerate() {
            if i >= self.rows {
                return Err(VsaError::IndexOutOfRange {
                    index: i,
                    len: self.rows,
                });
            }
            let dst = slot * out.words_per_row;
            out.words[dst..dst + out.words_per_row].copy_from_slice(self.row_words(i));
        }
        Ok(())
    }

    /// Allocating variant of [`BitMatrix::gather_into`].
    ///
    /// # Errors
    /// See [`BitMatrix::gather_into`].
    pub fn gather(&self, indices: &[usize]) -> Result<Self, VsaError> {
        let mut out = Self::default();
        self.gather_into(indices, &mut out)?;
        Ok(out)
    }

    /// A matrix whose every row is a copy of row `src` of `self`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn broadcast_row(&self, src: usize, rows: usize) -> Result<Self, VsaError> {
        self.gather(&vec![src; rows])
    }

    /// XORs row `i` of `other` into row `i` of `self` for every row — the in-place MAP
    /// bind/unbind (its own inverse).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the shapes disagree.
    pub fn xor_assign(&mut self, other: &Self) -> Result<(), VsaError> {
        if self.rows != other.rows || self.dim != other.dim {
            return Err(VsaError::DimensionMismatch {
                left: self.rows.max(self.dim),
                right: other.rows.max(other.dim),
            });
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        Ok(())
    }

    /// ANDs `other` into `self` word-wise. For sign planes this is the **two-way
    /// sign-thresholded superposition**: `sign(a + b)` with ties (`a + b == 0`)
    /// resolving to `+1` is negative exactly when *both* operands are negative, so a
    /// two-block scene superposition is one word-wise AND — no f32 accumulate, no
    /// threshold pass, no re-pack.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the shapes disagree.
    pub fn and_assign(&mut self, other: &Self) -> Result<(), VsaError> {
        if self.rows != other.rows || self.dim != other.dim {
            return Err(VsaError::DimensionMismatch {
                left: self.rows.max(self.dim),
                right: other.rows.max(other.dim),
            });
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        Ok(())
    }

    /// XORs `src` row `indices[i]` into row `i` of `self` — the gather-and-bind step
    /// of a packed product encode, fused so the gathered operand is never
    /// materialised.
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when `indices.len() != self.rows()` or
    /// the dimensions disagree, and [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn xor_gather_assign(&mut self, src: &Self, indices: &[usize]) -> Result<(), VsaError> {
        if indices.len() != self.rows || src.dim != self.dim {
            return Err(VsaError::DimensionMismatch {
                left: self.rows.max(self.dim),
                right: indices.len().max(src.dim),
            });
        }
        for (slot, &i) in indices.iter().enumerate() {
            if i >= src.rows {
                return Err(VsaError::IndexOutOfRange {
                    index: i,
                    len: src.rows,
                });
            }
            let dst = slot * self.words_per_row;
            for (w, o) in self.words[dst..dst + self.words_per_row]
                .iter_mut()
                .zip(src.row_words(i))
            {
                *w ^= o;
            }
        }
        Ok(())
    }

    /// Flips the sign of dimension `j` in row `i` (the packed form of `v = -v` on one
    /// element — used for interface bit-flip noise on an encoded scene plane).
    ///
    /// # Panics
    /// Panics when `i >= rows()` or `j >= dim()`.
    pub fn flip_bit(&mut self, i: usize, j: usize) {
        assert!(i < self.rows && j < self.dim, "flip_bit out of range");
        self.words[i * self.words_per_row + j / WORD_BITS] ^= 1u64 << (j % WORD_BITS);
    }

    /// Fills `out` with `rows` copies of row `src` of `self` (allocation-free
    /// [`BitMatrix::broadcast_row`]).
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn broadcast_row_into(
        &self,
        src: usize,
        rows: usize,
        out: &mut Self,
    ) -> Result<(), VsaError> {
        if src >= self.rows {
            return Err(VsaError::IndexOutOfRange {
                index: src,
                len: self.rows,
            });
        }
        out.ensure_shape(rows, self.dim);
        let words = self.row_words(src);
        for slot in 0..rows {
            let dst = slot * out.words_per_row;
            out.words[dst..dst + out.words_per_row].copy_from_slice(words);
        }
        Ok(())
    }

    /// Copies `src` into `self`, reshaping as needed (allocation-free once warm).
    pub fn copy_from(&mut self, src: &Self) {
        self.ensure_shape(src.rows, src.dim);
        self.words.copy_from_slice(&src.words);
    }

    /// Dot product of rows `self[i]` and `other[j]` under the bipolar interpretation:
    /// `d − 2·hamming`.
    ///
    /// # Panics
    /// Panics on out-of-range rows (shapes are caller-checked in the kernels).
    pub fn dot_rows(&self, i: usize, other: &Self, j: usize) -> i32 {
        self.dim as i32 - 2 * hamming(self.row_words(i), other.row_words(j)) as i32
    }

    /// Bipolar cosine of rows `self[i]` and `other[j]`: `1 − 2·hamming/d`.
    pub fn cosine_rows(&self, i: usize, other: &Self, j: usize) -> f32 {
        if self.dim == 0 {
            return 0.0;
        }
        self.dot_rows(i, other, j) as f32 / self.dim as f32
    }
}

// ---------------------------------------------------------------------------
// Cleanup index
// ---------------------------------------------------------------------------

/// Pruned **exact** top-1 Hamming index over a [`BitMatrix`] codebook.
///
/// The linear cleanup scan reads all `rows × words_per_row` sign-plane words per
/// query; at 10^5–10^6 rows that stream is the dominant cost of every factorization
/// step. The index restructures the scan around what stays cache-resident:
///
/// * **Word permutation.** At build time the codebook words are scored for
///   discriminativeness (per-bit balance over a row sample — a bit set on half the
///   rows separates the most pairs) and a permutation `word_order` front-loads the
///   highest-scoring words. Queries are permuted once per lookup; distances are
///   unchanged because Hamming distance is word-order invariant.
/// * **SoA sketches.** The first `sketch_words` permuted words of every row are
///   stored plane-contiguous (`sketch[s·rows + r]`), so the per-query sketch pass is
///   a sequential sweep over `2·rows` bytes per plane — cache-resident even at 10^6
///   rows — instead of a strided walk of the full sign planes.
/// * **Progressive refinement.** Rows are visited in ascending sketch-distance
///   order and accumulate their exact distance over the remaining words a few words
///   at a time ([`REFINE_CHUNK_WORDS`]), abandoning as soon as the partial distance
///   exceeds the running best.
///
/// **Exactness.** The sketch distance and every partial refinement distance are
/// Hamming distances over word *subsets*, hence monotone lower bounds on the full
/// distance. The true winner `r*` can never be pruned: its bound never exceeds its
/// full distance `h*`, and `h*` is ≤ the running best at every point (the running
/// best only takes values of fully-refined rows, all ≥ `h*`). Ties resolve to the
/// lowest row index exactly as [`PackedBackend::cleanup_batch_packed`]: a row is
/// abandoned (not adopted) when it can at best *tie* a lower-indexed incumbent, and
/// equal-sketch rows are visited in ascending row order (stable counting sort).
///
/// Construction is `O(rows × words_per_row)` — one sampled scoring pass plus one
/// gather — and is done once per codebook behind [`crate::Codebook`]; codebooks
/// below [`CLEANUP_INDEX_MIN_ROWS`] rows skip the index and keep the linear scan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanupIndex {
    rows: usize,
    dim: usize,
    words_per_row: usize,
    /// Number of leading permuted words held in the SoA sketch planes.
    sketch_words: usize,
    /// Permutation of `0..words_per_row`: most discriminative words first.
    word_order: Vec<u32>,
    /// SoA sketch planes: plane `s` is `sketch[s·rows .. (s+1)·rows]`, holding word
    /// `word_order[s]` of every row.
    sketch: Vec<u64>,
    /// Remaining permuted words, row-major: row `r` is
    /// `rest[r·(words_per_row−sketch_words) ..][..words_per_row−sketch_words]`.
    rest: Vec<u64>,
}

impl CleanupIndex {
    /// Builds the index from a codebook's sign planes. An empty codebook yields an
    /// empty index (the checked entry points never query it).
    pub fn build(codebook: &BitMatrix) -> Self {
        let rows = codebook.rows();
        let dim = codebook.dim();
        let wpr = codebook.words_per_row();
        if rows == 0 {
            return Self {
                rows: 0,
                dim,
                words_per_row: wpr,
                sketch_words: 0,
                word_order: Vec::new(),
                sketch: Vec::new(),
                rest: Vec::new(),
            };
        }
        // One plane for every 8 row words (d=1024 → 2 of 16), at least one, and
        // capped so a sketch distance always fits the u16 dist entries.
        let sketch_words = (wpr / 8)
            .clamp(1, wpr)
            .min(usize::from(u16::MAX) / WORD_BITS);

        // Score each word's discriminativeness on a row sample: a bit set on n of
        // `sampled` rows separates n·(sampled−n) row pairs; a word's score sums its
        // 64 bits. The sample keeps construction O(rows) in the word count that
        // matters while still ranking words on real codebook statistics.
        let stride = rows.div_ceil(4096).max(1);
        let sampled = rows.div_ceil(stride) as u64;
        let mut counts = vec![0u32; wpr * WORD_BITS];
        for r in (0..rows).step_by(stride) {
            for (w, &word) in codebook.row_words(r).iter().enumerate() {
                let base = w * WORD_BITS;
                let mut x = word;
                while x != 0 {
                    counts[base + x.trailing_zeros() as usize] += 1;
                    x &= x - 1;
                }
            }
        }
        let scores: Vec<u64> = counts
            .chunks_exact(WORD_BITS)
            .map(|bits| {
                bits.iter()
                    .map(|&c| u64::from(c) * (sampled - u64::from(c)))
                    .sum()
            })
            .collect();
        let mut word_order: Vec<u32> = (0..wpr as u32).collect();
        word_order.sort_by(|&a, &b| scores[b as usize].cmp(&scores[a as usize]).then(a.cmp(&b)));

        // Gather the permuted words: sketch planes SoA, the rest row-major.
        let rest_words = wpr - sketch_words;
        let mut sketch = vec![0u64; sketch_words * rows];
        let mut rest = vec![0u64; rest_words * rows];
        for r in 0..rows {
            let row = codebook.row_words(r);
            for (s, &w) in word_order[..sketch_words].iter().enumerate() {
                sketch[s * rows + r] = row[w as usize];
            }
            for (k, &w) in word_order[sketch_words..].iter().enumerate() {
                rest[r * rest_words + k] = row[w as usize];
            }
        }
        Self {
            rows,
            dim,
            words_per_row: wpr,
            sketch_words,
            word_order,
            sketch,
            rest,
        }
    }

    /// Number of indexed codebook rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality (in bits) of the indexed rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of permuted words held in the SoA sketch planes.
    pub fn sketch_words(&self) -> usize {
        self.sketch_words
    }

    /// Storage footprint of the index in bytes (sketch + rest planes + permutation).
    pub fn footprint_bytes(&self) -> usize {
        (self.sketch.len() + self.rest.len()) * std::mem::size_of::<u64>()
            + self.word_order.len() * std::mem::size_of::<u32>()
    }

    /// The non-sketch permuted words of row `r`.
    #[inline]
    fn rest_row(&self, r: usize) -> &[u64] {
        let rest_words = self.words_per_row - self.sketch_words;
        &self.rest[r * rest_words..(r + 1) * rest_words]
    }
}

/// Reusable per-call scratch of the cleanup kernels (candidate order, sketch
/// distances, counting-sort buckets). Thread one through repeated
/// [`PackedBackend::cleanup_batch_indexed_into`] /
/// [`PackedBackend::cleanup_batch_packed_into`] calls so the steady-state serving
/// path allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct CleanupScratch {
    /// Query words permuted into index order.
    qperm: Vec<u64>,
    /// Per-row sketch distances (overwritten per query; sized once per row count).
    dist: Vec<u16>,
    /// Minimum sketch distance per [`SKETCH_CHUNK_ROWS`] chunk.
    chunk_min: Vec<u16>,
    /// Counting-sort buckets over sketch distances.
    counts: Vec<u32>,
    /// Candidate rows in ascending (sketch distance, row) order.
    order: Vec<u32>,
    /// Per-query running best of the linear scan.
    best: Vec<(usize, u32)>,
}

impl CleanupScratch {
    /// Pre-sizes the per-query buffer for a batch of `queries` rows, so the
    /// first cleanup call of a pre-sized serving loop allocates nothing. The
    /// index-shaped buffers (`dist`, `order`, …) are sized by the cleanup
    /// kernels themselves on first contact with a codebook and never grow past
    /// its row count.
    pub fn reserve_queries(&mut self, queries: usize) {
        self.best.reserve(queries.saturating_sub(self.best.len()));
    }

    /// Capacity of the per-query buffer — a reallocation fingerprint for
    /// steady-state-allocation regression tests.
    pub fn best_capacity(&self) -> usize {
        self.best.capacity()
    }
}

// ---------------------------------------------------------------------------
// Packed backend
// ---------------------------------------------------------------------------

/// Per-call scratch for the packed kernels, reused across invocations so the steady
/// state performs no allocation.
#[derive(Debug, Default)]
struct PackedScratch {
    a: BitMatrix,
    b: BitMatrix,
    cleanup: CleanupScratch,
}

/// [`VsaBackend`] over bit-packed sign planes for the MAP/Hadamard algebra.
///
/// * Hadamard bind/unbind on exactly-bipolar operands packs both sides and XORs words.
/// * `similarity_matrix` / `cleanup_batch` on bipolar operands run whole-word
///   XOR+popcount and map Hamming distance back to dot products / cosine, blocked over
///   codebook rows for cache residency.
/// * `bundle` counts votes per dimension in `i32` and emits the exact superposition.
/// * Everything else — circular convolution (HRR), non-bipolar inputs, weighted
///   projection — delegates to the wrapped dense [`ParallelBackend`], so this backend
///   is a drop-in [`crate::BackendKind::Packed`] choice for any pipeline.
///
/// Numerics: XOR bind/unbind and the popcount dot products are **exact** (bitwise equal
/// to the reference on bipolar inputs — `f32` sums of `±1` are themselves exact).
/// Cleanup cosines divide by `d` instead of the product of `f32` norms, which agrees
/// with the reference within the documented 1e-4 cosine contract.
#[derive(Debug, Default)]
pub struct PackedBackend {
    dense: ParallelBackend,
    scratch: std::sync::Mutex<PackedScratch>,
}

impl PackedBackend {
    /// Creates a packed backend with a dense [`ParallelBackend`] fallback.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dense backend non-bipolar / HRR operations fall back to.
    pub fn dense(&self) -> &ParallelBackend {
        &self.dense
    }

    /// Packed GEMM: `out[q][m] = queries[q] · codebook[m] = d − 2·hamming`, exact.
    pub fn similarity_matrix_packed_into(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) {
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        out.ensure_shape(queries.rows(), codebook.rows());
        let d = codebook.dim() as i32;
        let wpr = codebook.words_per_row().max(1);
        let ham = hamming_fn();
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            // One contiguous slice per block: the row iteration below is a plain
            // chunked walk with no per-row bounds-checked slicing.
            let block_words = &codebook.words[block_start * wpr..block_end * wpr];
            for q in 0..queries.rows() {
                let qw = queries.row_words(q);
                let sims = out.row_mut(q);
                for (slot, row) in sims[block_start..block_end]
                    .iter_mut()
                    .zip(block_words.chunks_exact(wpr))
                {
                    *slot = (d - 2 * ham(qw, row) as i32) as f32;
                }
            }
        }
    }

    /// Packed cleanup: per query, the index and bipolar cosine (`1 − 2·hamming/d`) of
    /// the best-matching codebook row. Ties resolve to the lowest index, matching the
    /// dense backends. Blocked over codebook rows so each block stays cache-resident
    /// across the whole query batch.
    ///
    /// # Panics
    /// Panics on an empty codebook (the checked entry points — the [`VsaBackend`]
    /// surface and [`crate::Codebook`] — guarantee at least one row).
    pub fn cleanup_batch_packed(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
    ) -> Vec<(usize, f32)> {
        let mut scratch = CleanupScratch::default();
        let mut out = Vec::new();
        self.cleanup_batch_packed_into(codebook, queries, &mut scratch, &mut out);
        out
    }

    /// Scratch-reusing form of [`PackedBackend::cleanup_batch_packed`]: the running
    /// per-query best and the results land in caller-owned buffers, so repeated calls
    /// on the hot serving path allocate nothing.
    ///
    /// # Panics
    /// Panics on an empty codebook (see [`PackedBackend::cleanup_batch_packed`]).
    pub fn cleanup_batch_packed_into(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) {
        assert!(codebook.rows() > 0, "cleanup requires a non-empty codebook");
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        let best = &mut scratch.best;
        best.clear();
        best.resize(queries.rows(), (0usize, u32::MAX));
        let wpr = codebook.words_per_row().max(1);
        let ham = hamming_fn();
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            let block_words = &codebook.words[block_start * wpr..block_end * wpr];
            for (q, slot) in best.iter_mut().enumerate() {
                let qw = queries.row_words(q);
                for (offset, row) in block_words.chunks_exact(wpr).enumerate() {
                    let h = ham(qw, row);
                    // Strictly smaller Hamming distance wins; equal keeps the earlier
                    // index — identical tie-breaking to the dense `sim > best` scan.
                    if h < slot.1 {
                        *slot = (block_start + offset, h);
                    }
                }
            }
        }
        // A non-empty BitMatrix always has dim > 0 (enforced at construction), so the
        // cosine mapping never needs a degenerate-input mask.
        let d = queries.dim() as f32;
        out.clear();
        out.extend(best.iter().map(|&(m, h)| (m, (d - 2.0 * h as f32) / d)));
    }

    /// Indexed cleanup: decision-identical to
    /// [`PackedBackend::cleanup_batch_packed`] against the codebook `index` was built
    /// from — same winning index, same cosine, same lowest-index tie-breaking — but
    /// sub-linear in the words read per query (see [`CleanupIndex`] for the sketch /
    /// refine / abandon scheme and the exactness argument). Allocating entry point;
    /// the serving path uses [`PackedBackend::cleanup_batch_indexed_into`].
    ///
    /// # Panics
    /// Panics on an empty index or a query dimension mismatch.
    pub fn cleanup_batch_indexed(
        &self,
        index: &CleanupIndex,
        queries: &BitMatrix,
    ) -> Vec<(usize, f32)> {
        let mut out = Vec::new();
        let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
        self.cleanup_batch_indexed_into(index, queries, &mut scratch.cleanup, &mut out);
        out
    }

    /// Scratch-reusing form of [`PackedBackend::cleanup_batch_indexed`].
    ///
    /// Per query: (1) permute the query words into index order; (2) one sequential
    /// SoA sweep computes every row's sketch distance into cache-resident `u16`
    /// entries; (3) a chunked minimum pass finds the best sketch row, whose full
    /// distance seeds the bound; (4) a counting sort over the surviving chunks
    /// orders candidates by ascending (sketch distance, row); (5) candidates refine
    /// word-wise under the running bound, abandoning as soon as their monotone
    /// partial distance proves them no better than the incumbent.
    ///
    /// # Panics
    /// Panics on an empty index or a query dimension mismatch.
    pub fn cleanup_batch_indexed_into(
        &self,
        index: &CleanupIndex,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) {
        assert!(index.rows() > 0, "cleanup requires a non-empty codebook");
        assert_eq!(index.dim(), queries.dim(), "operand dims must match");
        let rows = index.rows;
        let s_words = index.sketch_words;
        let rest_words = index.words_per_row - s_words;
        let d = index.dim as f32;
        let ham = hamming_fn();
        let kernels = sketch_kernels();
        // The sketch sweep overwrites every entry, so `dist` only needs re-sizing
        // (not re-zeroing) when the row count changes.
        if scratch.dist.len() != rows {
            scratch.dist.clear();
            scratch.dist.resize(rows, 0);
        }
        out.clear();
        out.reserve(queries.rows());
        for q in 0..queries.rows() {
            let qw = queries.row_words(q);
            scratch.qperm.clear();
            scratch
                .qperm
                .extend(index.word_order.iter().map(|&w| qw[w as usize]));
            let (qs, qrest) = scratch.qperm.split_at(s_words);

            // (2) Sketch sweep: dist[r] = Hamming over the sketch words, one
            // sequential pass per SoA plane (the first two planes fused).
            let dist = &mut scratch.dist[..];
            if s_words >= 2 {
                (kernels.pair)(
                    qs[0],
                    qs[1],
                    &index.sketch[..rows],
                    &index.sketch[rows..2 * rows],
                    dist,
                );
            } else {
                (kernels.one)(qs[0], &index.sketch[..rows], dist);
            }
            for (s, &qword) in qs.iter().enumerate().skip(2) {
                (kernels.accum)(qword, &index.sketch[s * rows..(s + 1) * rows], dist);
            }

            // (3) Chunk minima, then seed the bound with the full distance of the
            // first row attaining the global sketch minimum.
            scratch.chunk_min.clear();
            scratch
                .chunk_min
                .extend(dist.chunks(SKETCH_CHUNK_ROWS).map(|chunk| {
                    let mut m = u16::MAX;
                    for &v in chunk {
                        m = m.min(v);
                    }
                    m
                }));
            let min_sketch = *scratch.chunk_min.iter().min().expect("rows > 0");
            let min_chunk = scratch
                .chunk_min
                .iter()
                .position(|&m| m == min_sketch)
                .expect("a chunk attains the minimum");
            let base = min_chunk * SKETCH_CHUNK_ROWS;
            let seed = base
                + dist[base..]
                    .iter()
                    .position(|&v| v == min_sketch)
                    .expect("the chunk contains its minimum");
            let mut best_i = seed;
            let mut best_h = u32::from(dist[seed]);
            if rest_words > 0 {
                best_h += ham(qrest, index.rest_row(seed));
            }

            // (4) Stable counting sort of the candidates by sketch distance,
            // restricted to chunks (and entries) at or under the seed bound —
            // ascending row order within equal distances preserves the
            // lowest-index tie-breaking of the linear scan.
            let bound = best_h.min((s_words * WORD_BITS) as u32);
            let cap = bound as usize;
            scratch.counts.clear();
            scratch.counts.resize(cap + 1, 0);
            let mut survivors = 0usize;
            for (ci, &cm) in scratch.chunk_min.iter().enumerate() {
                if u32::from(cm) > bound {
                    continue;
                }
                let start = ci * SKETCH_CHUNK_ROWS;
                let end = (start + SKETCH_CHUNK_ROWS).min(rows);
                for &v in &dist[start..end] {
                    if usize::from(v) <= cap {
                        scratch.counts[usize::from(v)] += 1;
                        survivors += 1;
                    }
                }
            }
            let mut acc = 0u32;
            for c in scratch.counts.iter_mut() {
                let n = *c;
                *c = acc;
                acc += n;
            }
            scratch.order.clear();
            scratch.order.resize(survivors, 0);
            for (ci, &cm) in scratch.chunk_min.iter().enumerate() {
                if u32::from(cm) > bound {
                    continue;
                }
                let start = ci * SKETCH_CHUNK_ROWS;
                let end = (start + SKETCH_CHUNK_ROWS).min(rows);
                for (offset, &v) in dist[start..end].iter().enumerate() {
                    if usize::from(v) <= cap {
                        let slot = scratch.counts[usize::from(v)];
                        scratch.order[slot as usize] = (start + offset) as u32;
                        scratch.counts[usize::from(v)] = slot + 1;
                    }
                }
            }

            // (5) Progressive refinement under the running (best_h, best_i) bound.
            // Every abandonment is provable: the partial distance is a monotone
            // lower bound, so a row is dropped only when it can no longer beat the
            // incumbent — or at best tie it with a higher row index.
            for &r32 in &scratch.order {
                let r = r32 as usize;
                let lb = u32::from(dist[r]);
                if lb > best_h {
                    // Candidates are in ascending sketch order: nothing later can win.
                    break;
                }
                if r == seed || (lb == best_h && r > best_i) {
                    continue;
                }
                let mut h = lb;
                let rest = index.rest_row(r);
                let mut viable = true;
                let mut k = 0;
                while k < rest_words {
                    let end = (k + REFINE_CHUNK_WORDS).min(rest_words);
                    h += ham(&qrest[k..end], &rest[k..end]);
                    if h > best_h || (h == best_h && r > best_i) {
                        viable = false;
                        break;
                    }
                    k = end;
                }
                if viable && (h < best_h || (h == best_h && r < best_i)) {
                    best_h = h;
                    best_i = r;
                }
            }
            out.push((best_i, (d - 2.0 * best_h as f32) / d));
        }
    }

    /// Packed bundling: per-dimension `i32` vote counters over all rows. The result is
    /// the exact element-wise sum of the `±1` rows (identical to the reference bundle).
    pub fn bundle_packed(&self, items: &BitMatrix) -> Result<Hypervector, VsaError> {
        if items.rows() == 0 {
            return Err(VsaError::Empty {
                what: "bundle input",
            });
        }
        let mut neg = vec![0i32; items.dim()];
        for i in 0..items.rows() {
            for (chunk, word) in neg.chunks_mut(WORD_BITS).zip(items.row_words(i)) {
                if *word == 0 {
                    continue;
                }
                for (bit, slot) in chunk.iter_mut().enumerate() {
                    *slot += ((word >> bit) & 1) as i32;
                }
            }
        }
        let rows = items.rows() as i32;
        let values = neg.into_iter().map(|n| (rows - 2 * n) as f32).collect();
        Ok(Hypervector::with_kind(values, VsaKind::Dense))
    }

    /// Packed weighted superposition fused with a per-query perturbation and the sign
    /// threshold: for every weight row `q` it accumulates
    /// `acc[j] = Σ_m weights[q][m] · codebook[m][j]` in per-dimension `f32`
    /// accumulators driven word-wise over the codebook sign planes, hands the row to
    /// `perturb(q, acc)` (noise injection), and packs `acc[j] < 0.0` straight into row
    /// `q` of `out` — the resonator's Step 3 without ever materialising a dense
    /// projection matrix.
    ///
    /// Numerics: adding `w` for a clear bit and `-w` for a set bit is **bitwise
    /// identical** to the dense `acc[j] += w * (±1.0)` accumulation (multiplying by
    /// `±1.0` only copies/flips the sign), and every accumulator slot receives its
    /// addends in ascending codebook-row order regardless of the lane blocking below,
    /// so the result equals the dense `project_batch_into` + threshold exactly.
    ///
    /// Layout: queries are processed [`PROJ_LANE_ROWS`] at a time in an SoA sweep —
    /// the *word index* is the outer loop and the codebook row the inner one, so each
    /// sign-plane word is loaded once per 8 queries (instead of once per query) and
    /// the 64-dim × 8-lane accumulator tile stays L1-resident across the whole
    /// codebook-row sweep. `perturb(q, acc_row)` and the sign packing still run per
    /// query in ascending `q` order, so noise-stream consumption is unchanged.
    ///
    /// `acc` is caller-owned scratch (resized to at most
    /// `PROJ_LANE_ROWS · codebook.dim()`), so steady-state calls allocate nothing.
    pub fn project_signs_packed_into<F>(
        &self,
        codebook: &BitMatrix,
        weights: &HvMatrix,
        mut perturb: F,
        acc: &mut Vec<f32>,
        out: &mut BitMatrix,
    ) where
        F: FnMut(usize, &mut [f32]),
    {
        debug_assert_eq!(
            weights.dim(),
            codebook.rows(),
            "one weight per codebook row"
        );
        let dim = codebook.dim();
        out.ensure_shape(weights.rows(), dim);
        let wpr = codebook.words_per_row();
        let tile_word = project_tile_fn();
        for block_start in (0..weights.rows()).step_by(PROJ_LANE_ROWS) {
            let block_len = (weights.rows() - block_start).min(PROJ_LANE_ROWS);
            let mut lanes: [&[f32]; PROJ_LANE_ROWS] = [&[]; PROJ_LANE_ROWS];
            for (lane, row) in lanes.iter_mut().enumerate().take(block_len) {
                *row = weights.row(block_start + lane);
            }
            acc.clear();
            acc.resize(block_len * dim, 0.0);
            for wi in 0..if codebook.rows() > 0 { wpr } else { 0 } {
                let base = wi * WORD_BITS;
                let width = (dim - base).min(WORD_BITS);
                // The per-word tile: 64 dims × 8 lanes of f32, accumulated across
                // every codebook row while both the tile and the strided column of
                // codebook words stay cache-hot.
                let mut tile = [[0.0f32; WORD_BITS]; PROJ_LANE_ROWS];
                let column = codebook.words[wi..].iter().step_by(wpr);
                for (m, &word) in column.take(codebook.rows()).enumerate() {
                    tile_word(&mut tile, &lanes[..block_len], m, word);
                }
                for (lane, row) in tile.iter().enumerate().take(block_len) {
                    let dst = lane * dim + base;
                    acc[dst..dst + width].copy_from_slice(&row[..width]);
                }
            }
            for lane in 0..block_len {
                let q = block_start + lane;
                let acc_row = &mut acc[lane * dim..(lane + 1) * dim];
                perturb(q, acc_row);
                out.pack_signs_row(q, acc_row);
            }
        }
    }

    /// [`PackedBackend::similarity_matrix_packed_into`] with a [`WordSpec`]
    /// monomorphization hint. When `spec` matches the codebook's word count the
    /// row scan runs a kernel whose width is a compile-time constant (and, on the
    /// AVX2 tier, whose Hamming body is inlined into the block scan); otherwise it
    /// falls back to the runtime-length kernel. Results are identical either way.
    pub fn similarity_matrix_packed_spec_into(
        &self,
        spec: WordSpec,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) {
        match spec {
            WordSpec::W16 if spec.matches(codebook.words_per_row()) => {
                self.similarity_spec::<16>(codebook, queries, out)
            }
            WordSpec::W32 if spec.matches(codebook.words_per_row()) => {
                self.similarity_spec::<32>(codebook, queries, out)
            }
            WordSpec::W64 if spec.matches(codebook.words_per_row()) => {
                self.similarity_spec::<64>(codebook, queries, out)
            }
            _ => self.similarity_matrix_packed_into(codebook, queries, out),
        }
    }

    /// Monomorphized similarity scan: same blocking and tie behaviour as
    /// [`PackedBackend::similarity_matrix_packed_into`] with the row width a
    /// compile-time `W`.
    fn similarity_spec<const W: usize>(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) {
        debug_assert_eq!(codebook.words_per_row(), W, "spec must match the codebook");
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        out.ensure_shape(queries.rows(), codebook.rows());
        let d = codebook.dim() as i32;
        #[cfg(target_arch = "x86_64")]
        let avx2_scan = dispatch_tier() == DispatchTier::Avx2;
        let ham = hamming_fn_spec_w::<W>();
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            let block_words = &codebook.words[block_start * W..block_end * W];
            for q in 0..queries.rows() {
                let qw = queries.row_words(q);
                let sims = &mut out.row_mut(q)[block_start..block_end];
                #[cfg(target_arch = "x86_64")]
                if avx2_scan {
                    simd::sim_scan_avx2_w_checked::<W>(d, qw, block_words, sims);
                    continue;
                }
                for (slot, row) in sims.iter_mut().zip(block_words.chunks_exact(W)) {
                    *slot = (d - 2 * ham(qw, row) as i32) as f32;
                }
            }
        }
    }

    /// [`PackedBackend::cleanup_batch_packed_into`] with a [`WordSpec`]
    /// monomorphization hint; same fallback and identity guarantees as
    /// [`PackedBackend::similarity_matrix_packed_spec_into`].
    ///
    /// # Panics
    /// Panics on an empty codebook (see [`PackedBackend::cleanup_batch_packed`]).
    pub fn cleanup_batch_packed_spec_into(
        &self,
        spec: WordSpec,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) {
        match spec {
            WordSpec::W16 if spec.matches(codebook.words_per_row()) => {
                self.cleanup_spec::<16>(codebook, queries, scratch, out)
            }
            WordSpec::W32 if spec.matches(codebook.words_per_row()) => {
                self.cleanup_spec::<32>(codebook, queries, scratch, out)
            }
            WordSpec::W64 if spec.matches(codebook.words_per_row()) => {
                self.cleanup_spec::<64>(codebook, queries, scratch, out)
            }
            _ => self.cleanup_batch_packed_into(codebook, queries, scratch, out),
        }
    }

    /// Monomorphized cleanup scan: same blocking, strict-`<` update, and
    /// lowest-index tie-breaking as [`PackedBackend::cleanup_batch_packed_into`]
    /// with the row width a compile-time `W`.
    fn cleanup_spec<const W: usize>(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        scratch: &mut CleanupScratch,
        out: &mut Vec<(usize, f32)>,
    ) {
        assert!(codebook.rows() > 0, "cleanup requires a non-empty codebook");
        debug_assert_eq!(codebook.words_per_row(), W, "spec must match the codebook");
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        let best = &mut scratch.best;
        best.clear();
        best.resize(queries.rows(), (0usize, u32::MAX));
        #[cfg(target_arch = "x86_64")]
        let avx2_scan = dispatch_tier() == DispatchTier::Avx2;
        let ham = hamming_fn_spec_w::<W>();
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            let block_words = &codebook.words[block_start * W..block_end * W];
            for (q, slot) in best.iter_mut().enumerate() {
                let qw = queries.row_words(q);
                #[cfg(target_arch = "x86_64")]
                if avx2_scan {
                    simd::cleanup_scan_avx2_w_checked::<W>(block_start, qw, block_words, slot);
                    continue;
                }
                for (offset, row) in block_words.chunks_exact(W).enumerate() {
                    let h = ham(qw, row);
                    if h < slot.1 {
                        *slot = (block_start + offset, h);
                    }
                }
            }
        }
        let d = queries.dim() as f32;
        out.clear();
        out.extend(best.iter().map(|&(m, h)| (m, (d - 2.0 * h as f32) / d)));
    }

    /// [`PackedBackend::project_signs_packed_into`] with a [`WordSpec`]
    /// monomorphization hint: the word-outer sweep runs with a compile-time column
    /// stride and trip count when `spec` matches the codebook. The lane blocking,
    /// ascending-row accumulation order, perturbation points, and sign packing are
    /// identical to the runtime-length kernel, so the output (and every consumed
    /// noise-stream position) is bitwise the same.
    pub fn project_signs_packed_spec_into<F>(
        &self,
        spec: WordSpec,
        codebook: &BitMatrix,
        weights: &HvMatrix,
        perturb: F,
        acc: &mut Vec<f32>,
        out: &mut BitMatrix,
    ) where
        F: FnMut(usize, &mut [f32]),
    {
        match spec {
            WordSpec::W16 if spec.matches(codebook.words_per_row()) => {
                self.project_spec::<16, F>(codebook, weights, perturb, acc, out)
            }
            WordSpec::W32 if spec.matches(codebook.words_per_row()) => {
                self.project_spec::<32, F>(codebook, weights, perturb, acc, out)
            }
            WordSpec::W64 if spec.matches(codebook.words_per_row()) => {
                self.project_spec::<64, F>(codebook, weights, perturb, acc, out)
            }
            _ => self.project_signs_packed_into(codebook, weights, perturb, acc, out),
        }
    }

    /// Monomorphized projection sweep — the body of
    /// [`PackedBackend::project_signs_packed_into`] with `wpr` a compile-time `W`.
    /// Must stay in lockstep with the runtime-length kernel: the spec-vs-generic
    /// proptests pin the two bitwise.
    fn project_spec<const W: usize, F>(
        &self,
        codebook: &BitMatrix,
        weights: &HvMatrix,
        mut perturb: F,
        acc: &mut Vec<f32>,
        out: &mut BitMatrix,
    ) where
        F: FnMut(usize, &mut [f32]),
    {
        debug_assert_eq!(
            weights.dim(),
            codebook.rows(),
            "one weight per codebook row"
        );
        debug_assert_eq!(codebook.words_per_row(), W, "spec must match the codebook");
        let dim = codebook.dim();
        out.ensure_shape(weights.rows(), dim);
        let tile_word = project_tile_fn();
        for block_start in (0..weights.rows()).step_by(PROJ_LANE_ROWS) {
            let block_len = (weights.rows() - block_start).min(PROJ_LANE_ROWS);
            let mut lanes: [&[f32]; PROJ_LANE_ROWS] = [&[]; PROJ_LANE_ROWS];
            for (lane, row) in lanes.iter_mut().enumerate().take(block_len) {
                *row = weights.row(block_start + lane);
            }
            acc.clear();
            acc.resize(block_len * dim, 0.0);
            for wi in 0..if codebook.rows() > 0 { W } else { 0 } {
                let base = wi * WORD_BITS;
                let width = (dim - base).min(WORD_BITS);
                let mut tile = [[0.0f32; WORD_BITS]; PROJ_LANE_ROWS];
                let column = codebook.words[wi..].iter().step_by(W);
                for (m, &word) in column.take(codebook.rows()).enumerate() {
                    tile_word(&mut tile, &lanes[..block_len], m, word);
                }
                for (lane, row) in tile.iter().enumerate().take(block_len) {
                    let dst = lane * dim + base;
                    acc[dst..dst + width].copy_from_slice(&row[..width]);
                }
            }
            for lane in 0..block_len {
                let q = block_start + lane;
                let acc_row = &mut acc[lane * dim..(lane + 1) * dim];
                perturb(q, acc_row);
                out.pack_signs_row(q, acc_row);
            }
        }
    }

    /// Fused resonator iteration step for one factor: XOR-unbind, Hamming
    /// similarity, and weighted sign projection in a single tiled pass over the
    /// codebook sign planes, per [`PROJ_LANE_ROWS`]-query lane block.
    ///
    /// The split pipeline streams three full-batch passes per factor per
    /// iteration — materialize `unbound = query ⊕ ⊕_{g≠f} est_g` (one copy plus
    /// `F−1` XOR sweeps over `rows × words` planes), then the similarity GEMM
    /// re-reads `unbound`, then the projection re-reads the codebook. Here each
    /// lane block unbinds its 8 rows into an L1-resident scratch, scans the
    /// codebook once for similarities, and feeds the just-computed (and
    /// hook-perturbed) similarity rows straight into the SoA sign-projection
    /// tile of [`PackedBackend::project_signs_packed_into`] while the codebook
    /// column is still cache-hot. The full-batch `unbound` plane is never
    /// materialized.
    ///
    /// `estimates[factor]` is overwritten with the projected signs; the other
    /// estimate planes are only read, and only by the unbind of *this* factor,
    /// so the Gauss–Seidel in-place update order matches the split path.
    /// `hook(phase, row, values)` runs per query row in ascending order within
    /// each lane block — [`ResonatePhase::Similarity`] over the similarity row
    /// (perturb + argmax decode), then [`ResonatePhase::Projection`] over the
    /// sign accumulator row. Per-query noise streams see exactly the split
    /// path's draw order (all of a query's similarity draws precede its
    /// projection draws for the same factor); only the interleaving *across*
    /// queries differs, which is unobservable because streams are private.
    ///
    /// `unbound` (resized to `PROJ_LANE_ROWS` rows), `sims` (resized to
    /// `rows × codebook.rows()`), and `acc` are caller-owned scratch, so
    /// steady-state calls allocate nothing.
    #[allow(clippy::too_many_arguments)]
    pub fn resonate_step_fused_into<F>(
        &self,
        codebook: &BitMatrix,
        query: &BitMatrix,
        estimates: &mut [BitMatrix],
        factor: usize,
        unbound: &mut BitMatrix,
        sims: &mut HvMatrix,
        acc: &mut Vec<f32>,
        mut hook: F,
    ) where
        F: FnMut(ResonatePhase, usize, &mut [f32]),
    {
        let rows = query.rows();
        let dim = codebook.dim();
        let cb_rows = codebook.rows();
        debug_assert!(factor < estimates.len(), "factor index in range");
        debug_assert_eq!(query.dim(), dim, "operand dims must match");
        let wpr = codebook.words_per_row().max(1);
        let d = dim as i32;
        sims.ensure_shape(rows, cb_rows);
        let (head, rest) = estimates.split_at_mut(factor);
        let (out, tail) = rest.split_first_mut().expect("factor index in range");
        out.ensure_shape(rows, dim);
        unbound.ensure_shape(PROJ_LANE_ROWS, dim);
        let ham = hamming_fn();
        let tile_word = project_tile_fn();
        for block_start in (0..rows).step_by(PROJ_LANE_ROWS) {
            let block_len = (rows - block_start).min(PROJ_LANE_ROWS);
            // Unbind the lane rows once into the 8-row scratch: query ⊕ every
            // *other* factor's estimate. The scratch stays L1-resident across
            // both the similarity scan and the projection sweep below.
            for lane in 0..block_len {
                let r = block_start + lane;
                let dst = &mut unbound.words[lane * wpr..(lane + 1) * wpr];
                dst.copy_from_slice(&query.words[r * wpr..(r + 1) * wpr]);
                for est in head.iter().chain(tail.iter()) {
                    let src = &est.words[r * wpr..(r + 1) * wpr];
                    for (dw, &sw) in dst.iter_mut().zip(src) {
                        *dw ^= sw;
                    }
                }
            }
            // Similarity scan for the lane block — same codebook blocking and
            // `d − 2·hamming` mapping as the standalone similarity GEMM.
            for cb_start in (0..cb_rows).step_by(CODEBOOK_BLOCK_ROWS) {
                let cb_end = (cb_start + CODEBOOK_BLOCK_ROWS).min(cb_rows);
                let block_words = &codebook.words[cb_start * wpr..cb_end * wpr];
                for lane in 0..block_len {
                    let qw = &unbound.words[lane * wpr..(lane + 1) * wpr];
                    let sims_row = &mut sims.row_mut(block_start + lane)[cb_start..cb_end];
                    for (slot, row) in sims_row.iter_mut().zip(block_words.chunks_exact(wpr)) {
                        *slot = (d - 2 * ham(qw, row) as i32) as f32;
                    }
                }
            }
            for lane in 0..block_len {
                let slot = block_start + lane;
                hook(ResonatePhase::Similarity, slot, sims.row_mut(slot));
            }
            // Projection sweep, weights = the just-perturbed similarity rows:
            // identical tile walk (and accumulation order) to
            // `project_signs_packed_into` restricted to this lane block.
            let mut lanes: [&[f32]; PROJ_LANE_ROWS] = [&[]; PROJ_LANE_ROWS];
            for (lane, row) in lanes.iter_mut().enumerate().take(block_len) {
                *row = sims.row(block_start + lane);
            }
            acc.clear();
            acc.resize(block_len * dim, 0.0);
            for wi in 0..if cb_rows > 0 { wpr } else { 0 } {
                let base = wi * WORD_BITS;
                let width = (dim - base).min(WORD_BITS);
                let mut tile = [[0.0f32; WORD_BITS]; PROJ_LANE_ROWS];
                let column = codebook.words[wi..].iter().step_by(wpr);
                for (m, &word) in column.take(cb_rows).enumerate() {
                    tile_word(&mut tile, &lanes[..block_len], m, word);
                }
                for (lane, row) in tile.iter().enumerate().take(block_len) {
                    let dst = lane * dim + base;
                    acc[dst..dst + width].copy_from_slice(&row[..width]);
                }
            }
            for lane in 0..block_len {
                let slot = block_start + lane;
                let acc_row = &mut acc[lane * dim..(lane + 1) * dim];
                hook(ResonatePhase::Projection, slot, acc_row);
                out.pack_signs_row(slot, acc_row);
            }
        }
    }

    /// [`PackedBackend::resonate_step_fused_into`] with a [`WordSpec`]
    /// monomorphization hint: when `spec` matches the codebook's word count the
    /// unbind, similarity scan (AVX2 block scan on that tier), and projection
    /// sweep all run with the row width a compile-time constant. Same fallback
    /// and identity guarantees as the other `_spec_into` entry points.
    #[allow(clippy::too_many_arguments)]
    pub fn resonate_step_fused_spec_into<F>(
        &self,
        spec: WordSpec,
        codebook: &BitMatrix,
        query: &BitMatrix,
        estimates: &mut [BitMatrix],
        factor: usize,
        unbound: &mut BitMatrix,
        sims: &mut HvMatrix,
        acc: &mut Vec<f32>,
        hook: F,
    ) where
        F: FnMut(ResonatePhase, usize, &mut [f32]),
    {
        match spec {
            WordSpec::W16 if spec.matches(codebook.words_per_row()) => self.resonate_spec::<16, F>(
                codebook, query, estimates, factor, unbound, sims, acc, hook,
            ),
            WordSpec::W32 if spec.matches(codebook.words_per_row()) => self.resonate_spec::<32, F>(
                codebook, query, estimates, factor, unbound, sims, acc, hook,
            ),
            WordSpec::W64 if spec.matches(codebook.words_per_row()) => self.resonate_spec::<64, F>(
                codebook, query, estimates, factor, unbound, sims, acc, hook,
            ),
            _ => self.resonate_step_fused_into(
                codebook, query, estimates, factor, unbound, sims, acc, hook,
            ),
        }
    }

    /// Monomorphized fused resonator step — the body of
    /// [`PackedBackend::resonate_step_fused_into`] with `wpr` a compile-time
    /// `W`. Must stay in lockstep with the runtime-length kernel: the
    /// fused-vs-split proptests pin the two bitwise.
    #[allow(clippy::too_many_arguments)]
    fn resonate_spec<const W: usize, F>(
        &self,
        codebook: &BitMatrix,
        query: &BitMatrix,
        estimates: &mut [BitMatrix],
        factor: usize,
        unbound: &mut BitMatrix,
        sims: &mut HvMatrix,
        acc: &mut Vec<f32>,
        mut hook: F,
    ) where
        F: FnMut(ResonatePhase, usize, &mut [f32]),
    {
        let rows = query.rows();
        let dim = codebook.dim();
        let cb_rows = codebook.rows();
        debug_assert!(factor < estimates.len(), "factor index in range");
        debug_assert_eq!(codebook.words_per_row(), W, "spec must match the codebook");
        debug_assert_eq!(query.dim(), dim, "operand dims must match");
        let d = dim as i32;
        sims.ensure_shape(rows, cb_rows);
        let (head, rest) = estimates.split_at_mut(factor);
        let (out, tail) = rest.split_first_mut().expect("factor index in range");
        out.ensure_shape(rows, dim);
        unbound.ensure_shape(PROJ_LANE_ROWS, dim);
        #[cfg(target_arch = "x86_64")]
        let avx2_scan = dispatch_tier() == DispatchTier::Avx2;
        let ham = hamming_fn_spec_w::<W>();
        let tile_word = project_tile_fn();
        for block_start in (0..rows).step_by(PROJ_LANE_ROWS) {
            let block_len = (rows - block_start).min(PROJ_LANE_ROWS);
            for lane in 0..block_len {
                let r = block_start + lane;
                let dst = &mut unbound.words[lane * W..(lane + 1) * W];
                dst.copy_from_slice(&query.words[r * W..(r + 1) * W]);
                for est in head.iter().chain(tail.iter()) {
                    let src = &est.words[r * W..(r + 1) * W];
                    for i in 0..W {
                        dst[i] ^= src[i];
                    }
                }
            }
            for cb_start in (0..cb_rows).step_by(CODEBOOK_BLOCK_ROWS) {
                let cb_end = (cb_start + CODEBOOK_BLOCK_ROWS).min(cb_rows);
                let block_words = &codebook.words[cb_start * W..cb_end * W];
                for lane in 0..block_len {
                    let qw = &unbound.words[lane * W..(lane + 1) * W];
                    let sims_row = &mut sims.row_mut(block_start + lane)[cb_start..cb_end];
                    #[cfg(target_arch = "x86_64")]
                    if avx2_scan {
                        simd::sim_scan_avx2_w_checked::<W>(d, qw, block_words, sims_row);
                        continue;
                    }
                    for (slot, row) in sims_row.iter_mut().zip(block_words.chunks_exact(W)) {
                        *slot = (d - 2 * ham(qw, row) as i32) as f32;
                    }
                }
            }
            for lane in 0..block_len {
                let slot = block_start + lane;
                hook(ResonatePhase::Similarity, slot, sims.row_mut(slot));
            }
            let mut lanes: [&[f32]; PROJ_LANE_ROWS] = [&[]; PROJ_LANE_ROWS];
            for (lane, row) in lanes.iter_mut().enumerate().take(block_len) {
                *row = sims.row(block_start + lane);
            }
            acc.clear();
            acc.resize(block_len * dim, 0.0);
            for wi in 0..if cb_rows > 0 { W } else { 0 } {
                let base = wi * WORD_BITS;
                let width = (dim - base).min(WORD_BITS);
                let mut tile = [[0.0f32; WORD_BITS]; PROJ_LANE_ROWS];
                let column = codebook.words[wi..].iter().step_by(W);
                for (m, &word) in column.take(cb_rows).enumerate() {
                    tile_word(&mut tile, &lanes[..block_len], m, word);
                }
                for (lane, row) in tile.iter().enumerate().take(block_len) {
                    let dst = lane * dim + base;
                    acc[dst..dst + width].copy_from_slice(&row[..width]);
                }
            }
            for lane in 0..block_len {
                let slot = block_start + lane;
                let acc_row = &mut acc[lane * dim..(lane + 1) * dim];
                hook(ResonatePhase::Projection, slot, acc_row);
                out.pack_signs_row(slot, acc_row);
            }
        }
    }

    /// Packs `a` and `b` into the shared scratch and XORs them into `out` when both are
    /// exactly bipolar; returns `false` (leaving `out` untouched) otherwise.
    fn try_xor_bind(&self, a: &HvMatrix, b: &HvMatrix, out: &mut HvMatrix) -> bool {
        let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
        let PackedScratch { a: pa, b: pb, .. } = &mut *scratch;
        if !pa.pack_from(a) || !pb.pack_from(b) {
            return false;
        }
        pa.xor_assign(pb).expect("packed operands share a shape");
        pa.unpack_into(out);
        true
    }
}

impl VsaBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn as_packed(&self) -> Option<&PackedBackend> {
        Some(self)
    }

    fn bind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if op == BindingOp::Hadamard && a.rows() == b.rows() && a.dim() == b.dim() {
            // Bipolar Hadamard product = XOR of sign planes, exactly.
            if self.try_xor_bind(a, b, out) {
                return Ok(());
            }
        }
        self.dense.bind_batch_into(a, b, op, out)
    }

    fn unbind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if op == BindingOp::Hadamard && a.rows() == b.rows() && a.dim() == b.dim() {
            // Bipolar MAP binding is self-inverse: unbind is the same XOR.
            if self.try_xor_bind(a, b, out) {
                return Ok(());
            }
        }
        self.dense.unbind_batch_into(a, b, op, out)
    }

    fn similarity_matrix_into(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            let PackedScratch { a: pc, b: pq, .. } = &mut *scratch;
            if pc.pack_from(codebook) && pq.pack_from(queries) {
                self.similarity_matrix_packed_into(pc, pq, out);
                return Ok(());
            }
        }
        self.dense.similarity_matrix_into(codebook, queries, out)
    }

    fn project_batch_into(
        &self,
        codebook: &HvMatrix,
        weights: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        // Weighted superposition carries f32 weights; the dense kernel is already the
        // right tool (the packed win is in bind/similarity/cleanup, not here).
        self.dense.project_batch_into(codebook, weights, out)
    }

    fn bundle(&self, items: &HvMatrix) -> Result<Hypervector, VsaError> {
        {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            if scratch.a.pack_from(items) {
                return self.bundle_packed(&scratch.a);
            }
        }
        self.dense.bundle(items)
    }

    fn cleanup_batch(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            let PackedScratch {
                a: pc,
                b: pq,
                cleanup,
            } = &mut *scratch;
            if pc.pack_from(codebook) && pq.pack_from(queries) {
                let mut out = Vec::new();
                self.cleanup_batch_packed_into(pc, pq, cleanup, &mut out);
                return Ok(out);
            }
        }
        self.dense.cleanup_batch(codebook, queries)
    }

    fn cleanup_batch_bits(
        &self,
        codebook: &HvMatrix,
        queries: &BitMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            let PackedScratch { a, cleanup, .. } = &mut *scratch;
            if a.pack_from(codebook) {
                let mut out = Vec::new();
                self.cleanup_batch_packed_into(a, queries, cleanup, &mut out);
                return Ok(out);
            }
        }
        // Non-bipolar codebook (or dim mismatch): unpack the queries and let the
        // dense path produce its usual result / error.
        let mut dense = HvMatrix::default();
        queries.unpack_into(&mut dense);
        self.dense.cleanup_batch(codebook, &dense)
    }

    fn similarity_matrix_bits_into(
        &self,
        codebook: &HvMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            if scratch.a.pack_from(codebook) {
                self.similarity_matrix_packed_into(&scratch.a, queries, out);
                return Ok(());
            }
        }
        let mut dense = HvMatrix::default();
        queries.unpack_into(&mut dense);
        self.dense.similarity_matrix_into(codebook, &dense, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ReferenceBackend;
    use crate::rng;

    fn random_bipolar_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
        let mut r = rng(seed);
        let hvs: Vec<Hypervector> = (0..rows)
            .map(|_| Hypervector::random_bipolar(dim, &mut r))
            .collect();
        HvMatrix::from_rows(&hvs).unwrap()
    }

    #[test]
    fn pack_unpack_round_trips_across_tail_shapes() {
        for dim in [1usize, 63, 64, 65, 100, 128, 1000] {
            let m = random_bipolar_matrix(3, dim, dim as u64);
            let bits = BitMatrix::from_matrix(&m).expect("bipolar input packs");
            assert_eq!(bits.words_per_row(), dim.div_ceil(64));
            assert_eq!(bits.to_matrix(), m, "dim {dim}");
            // Padding bits stay zero so whole-word kernels need no masking.
            let tail = BitMatrix::tail_mask(dim);
            for i in 0..bits.rows() {
                let last = *bits.row_words(i).last().unwrap();
                assert_eq!(last & !tail, 0, "dim {dim} row {i} has dirty padding");
            }
        }
    }

    #[test]
    fn non_bipolar_input_refuses_to_pack() {
        let m = HvMatrix::from_vec(vec![1.0, -1.0, 0.5, 1.0], 1, 4).unwrap();
        assert!(BitMatrix::from_matrix(&m).is_none());
        let zero = HvMatrix::zeros(2, 8);
        assert!(BitMatrix::from_matrix(&zero).is_none());
        assert!(BitMatrix::from_hypervectors(&[Hypervector::zeros(4)]).is_err());
    }

    #[test]
    fn xor_bind_matches_hadamard_product() {
        for dim in [64usize, 96, 1024] {
            let a = random_bipolar_matrix(4, dim, 1);
            let b = random_bipolar_matrix(4, dim, 2);
            let packed = PackedBackend::new();
            let reference = ReferenceBackend;
            let r = reference.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
            let p = packed.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
            assert_eq!(r, p, "dim {dim}");
            // MAP binding is self-inverse: unbinding recovers the other operand.
            let back = packed.unbind_batch(&p, &b, BindingOp::Hadamard).unwrap();
            assert_eq!(back, a);
        }
    }

    #[test]
    fn popcount_similarity_is_exact() {
        let cb = random_bipolar_matrix(9, 100, 3);
        let q = random_bipolar_matrix(5, 100, 4);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        let rs = reference.similarity_matrix(&cb, &q).unwrap();
        let ps = packed.similarity_matrix(&cb, &q).unwrap();
        // Dots of ±1 vectors are exact in f32, so the popcount mapping is bitwise equal.
        assert_eq!(rs, ps);
    }

    #[test]
    fn cleanup_matches_reference_within_contract() {
        let cb = random_bipolar_matrix(16, 1000, 5);
        let q = random_bipolar_matrix(8, 1000, 6);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        let rc = reference.cleanup_batch(&cb, &q).unwrap();
        let pc = packed.cleanup_batch(&cb, &q).unwrap();
        for ((ri, rsim), (pi, psim)) in rc.iter().zip(&pc) {
            assert_eq!(ri, pi);
            assert!((rsim - psim).abs() < 1e-4, "{rsim} vs {psim}");
        }
    }

    #[test]
    fn bundle_counts_votes_exactly() {
        let items = random_bipolar_matrix(7, 200, 8);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        assert_eq!(
            reference.bundle(&items).unwrap().values(),
            packed.bundle(&items).unwrap().values(),
        );
    }

    #[test]
    fn non_bipolar_and_hrr_fall_back_to_dense() {
        let mut r = rng(9);
        let hvs: Vec<Hypervector> = (0..3)
            .map(|_| Hypervector::random_real(64, &mut r))
            .collect();
        let a = HvMatrix::from_rows(&hvs).unwrap();
        let b = random_bipolar_matrix(3, 64, 10);
        let packed = PackedBackend::new();
        let dense = ParallelBackend::new();
        for op in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
            assert_eq!(
                packed.bind_batch(&a, &b, op).unwrap(),
                dense.bind_batch(&a, &b, op).unwrap(),
                "{op:?}"
            );
        }
        assert_eq!(
            packed.similarity_matrix(&a, &b).unwrap(),
            dense.similarity_matrix(&a, &b).unwrap()
        );
        assert_eq!(
            packed.cleanup_batch(&a, &b).unwrap(),
            dense.cleanup_batch(&a, &b).unwrap()
        );
        assert_eq!(
            packed.bundle(&a).unwrap().values(),
            dense.bundle(&a).unwrap().values()
        );
    }

    #[test]
    fn pack_signs_row_uses_strict_negative_convention() {
        let mut bits = BitMatrix::zeros(1, 4);
        bits.pack_signs_row(0, &[-0.5, 0.0, -0.0, 2.0]);
        // `v < 0.0`: −0.0 packs to +1, matching the estimate binarisation step.
        assert_eq!(bits.row_words(0), &[0b0001]);
    }

    #[test]
    fn ensure_shape_zeroes_on_reshape() {
        // Regression: reshaping a populated matrix must not reinterpret stale words
        // under the new (rows, dim) layout.
        let m = random_bipolar_matrix(3, 64, 42);
        let mut bits = BitMatrix::from_matrix(&m).unwrap();
        assert!(bits.row_words(0).iter().any(|&w| w != 0));
        bits.ensure_shape(2, 96);
        assert_eq!((bits.rows(), bits.dim(), bits.words_per_row()), (2, 96, 2));
        for i in 0..2 {
            assert_eq!(
                bits.row_words(i),
                &[0, 0],
                "stale words leaked into row {i}"
            );
        }
        // Same-shape calls preserve contents (scratch reuse must stay cheap).
        let mut bits = BitMatrix::from_matrix(&m).unwrap();
        let before = bits.clone();
        bits.ensure_shape(3, 64);
        assert_eq!(bits, before);
    }

    #[test]
    #[should_panic(expected = "dim > 0")]
    fn zero_dim_nonempty_construction_panics() {
        let _ = BitMatrix::zeros(2, 0);
    }

    #[test]
    fn zero_dim_nonempty_matrix_refuses_to_pack() {
        let m = HvMatrix::zeros(2, 0);
        assert!(BitMatrix::from_matrix(&m).is_none());
        let mut bits = BitMatrix::default();
        assert!(!bits.pack_from(&m));
        // The empty 0×0 matrix still packs (scratch buffers start there).
        assert!(BitMatrix::from_matrix(&HvMatrix::default()).is_some());
    }

    #[test]
    fn project_signs_matches_dense_projection_and_threshold() {
        let reference = ReferenceBackend;
        let packed = PackedBackend::new();
        for dim in [64usize, 70, 128, 200, 1000] {
            let cb = random_bipolar_matrix(9, dim, 20 + dim as u64);
            let cb_bits = BitMatrix::from_matrix(&cb).unwrap();
            // Arbitrary real-valued weights (as the resonator's similarity rows are).
            let mut r = rng(77 + dim as u64);
            let weights = HvMatrix::from_rows(
                &(0..4)
                    .map(|_| Hypervector::random_real(9, &mut r))
                    .collect::<Vec<_>>(),
            )
            .unwrap();

            let dense = reference.project_batch(&cb, &weights).unwrap();
            let mut out = BitMatrix::default();
            let mut acc = Vec::new();
            let mut seen: Vec<Vec<f32>> = Vec::new();
            packed.project_signs_packed_into(
                &cb_bits,
                &weights,
                |_, row| seen.push(row.to_vec()),
                &mut acc,
                &mut out,
            );
            assert_eq!((out.rows(), out.dim()), (4, dim));
            for (q, acc_row) in seen.iter().enumerate() {
                // Accumulators are bitwise equal to the dense projection...
                assert_eq!(acc_row.as_slice(), dense.row(q), "dim {dim} row {q}");
                // ...and the packed signs equal the dense sign threshold.
                let expected: Vec<f32> = dense
                    .row(q)
                    .iter()
                    .map(|&v| if v < 0.0 { -1.0 } else { 1.0 })
                    .collect();
                assert_eq!(out.to_matrix().row(q), expected.as_slice(), "dim {dim}");
            }

            // A perturbation applied through the fused hook equals perturb-then-sign.
            let mut out2 = BitMatrix::default();
            packed.project_signs_packed_into(
                &cb_bits,
                &weights,
                |q, row| {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v += ((q + j) % 3) as f32 - 1.0;
                    }
                },
                &mut acc,
                &mut out2,
            );
            for q in 0..4 {
                let expected: Vec<f32> = dense
                    .row(q)
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| v + ((q + j) % 3) as f32 - 1.0)
                    .map(|v| if v < 0.0 { -1.0 } else { 1.0 })
                    .collect();
                assert_eq!(out2.to_matrix().row(q), expected.as_slice(), "dim {dim}");
            }
        }
    }

    #[test]
    fn cleanup_and_similarity_accept_packed_queries() {
        let cb = random_bipolar_matrix(12, 300, 50);
        let q = random_bipolar_matrix(5, 300, 51);
        let q_bits = BitMatrix::from_matrix(&q).unwrap();
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        // Packed-query cleanup equals dense-query cleanup on every backend surface.
        assert_eq!(
            packed.cleanup_batch_bits(&cb, &q_bits).unwrap(),
            packed.cleanup_batch(&cb, &q).unwrap()
        );
        assert_eq!(
            reference.cleanup_batch_bits(&cb, &q_bits).unwrap(),
            reference.cleanup_batch(&cb, &q).unwrap()
        );
        let mut from_bits = HvMatrix::default();
        packed
            .similarity_matrix_bits_into(&cb, &q_bits, &mut from_bits)
            .unwrap();
        assert_eq!(from_bits, packed.similarity_matrix(&cb, &q).unwrap());
        // A non-bipolar codebook routes packed queries through the dense fallback.
        let mut r = rng(52);
        let real_cb = HvMatrix::from_rows(
            &(0..4)
                .map(|_| Hypervector::random_real(300, &mut r))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(
            packed.cleanup_batch_bits(&real_cb, &q_bits).unwrap(),
            packed.cleanup_batch(&real_cb, &q).unwrap()
        );
    }

    #[test]
    fn and_assign_is_two_way_sign_threshold_superposition() {
        // sign(a + b) with ties to +1 equals the AND of the sign planes.
        for dim in [64usize, 70, 200] {
            let a = random_bipolar_matrix(3, dim, 100 + dim as u64);
            let b = random_bipolar_matrix(3, dim, 200 + dim as u64);
            let mut dense = a.clone();
            for (slot, v) in dense.as_mut_slice().iter_mut().zip(b.as_slice()) {
                *slot += v;
                *slot = if *slot < 0.0 { -1.0 } else { 1.0 };
            }
            let mut bits = BitMatrix::from_matrix(&a).unwrap();
            bits.and_assign(&BitMatrix::from_matrix(&b).unwrap())
                .unwrap();
            assert_eq!(bits.to_matrix(), dense, "dim {dim}");
        }
        let mut a = BitMatrix::zeros(2, 64);
        assert!(a.and_assign(&BitMatrix::zeros(3, 64)).is_err());
    }

    #[test]
    fn xor_gather_assign_matches_gather_then_xor() {
        let src = random_bipolar_matrix(6, 130, 31);
        let src_bits = BitMatrix::from_matrix(&src).unwrap();
        let base = random_bipolar_matrix(4, 130, 32);
        let indices = [5usize, 0, 3, 3];
        let mut fused = BitMatrix::from_matrix(&base).unwrap();
        fused.xor_gather_assign(&src_bits, &indices).unwrap();
        let mut reference = BitMatrix::from_matrix(&base).unwrap();
        reference
            .xor_assign(&src_bits.gather(&indices).unwrap())
            .unwrap();
        assert_eq!(fused, reference);
        // Arity and range errors.
        let mut bad = BitMatrix::from_matrix(&base).unwrap();
        assert!(bad.xor_gather_assign(&src_bits, &[0, 1]).is_err());
        assert!(bad.xor_gather_assign(&src_bits, &[0, 1, 2, 6]).is_err());
    }

    #[test]
    fn flip_bit_negates_one_element() {
        let m = random_bipolar_matrix(2, 70, 33);
        let mut bits = BitMatrix::from_matrix(&m).unwrap();
        bits.flip_bit(1, 64);
        bits.flip_bit(0, 0);
        let back = bits.to_matrix();
        for i in 0..2 {
            for j in 0..70 {
                let expected = if (i, j) == (1, 64) || (i, j) == (0, 0) {
                    -m.row(i)[j]
                } else {
                    m.row(i)[j]
                };
                assert_eq!(back.row(i)[j], expected, "({i},{j})");
            }
        }
    }

    #[test]
    fn broadcast_row_into_matches_allocating_broadcast() {
        let m = random_bipolar_matrix(3, 100, 34);
        let bits = BitMatrix::from_matrix(&m).unwrap();
        let mut out = BitMatrix::default();
        bits.broadcast_row_into(2, 5, &mut out).unwrap();
        assert_eq!(out, bits.broadcast_row(2, 5).unwrap());
        assert!(bits.broadcast_row_into(3, 5, &mut out).is_err());
    }

    /// Reference (pre-SIMD) packers the branchless versions must reproduce bit-exactly.
    fn pack_row_strict_reference(row: &[f32], words: &mut [u64]) -> bool {
        let mut exact = true;
        for (chunk, word) in row.chunks(64).zip(words.iter_mut()) {
            let mut w = 0u64;
            for (bit, &v) in chunk.iter().enumerate() {
                let b = v.to_bits();
                exact &= (b & 0x7fff_ffff) == 0x3f80_0000;
                w |= u64::from(b >> 31) << bit;
            }
            *word = w;
        }
        exact
    }

    fn pack_row_signs_reference(row: &[f32], words: &mut [u64]) {
        for (chunk, word) in row.chunks(64).zip(words.iter_mut()) {
            let mut w = 0u64;
            for (bit, &v) in chunk.iter().enumerate() {
                w |= u64::from(v < 0.0) << bit;
            }
            *word = w;
        }
    }

    mod packer_props {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn prop_strict_packer_matches_reference(seed in 0u64..1000, dim_sel in 0usize..8) {
                // Non-pow2 tails included: every tail length class mod 8 and mod 64.
                let dim = [1usize, 7, 8, 63, 64, 65, 100, 257][dim_sel];
                let m = random_bipolar_matrix(2, dim, seed);
                let words = BitMatrix::words_for_dim(dim);
                for i in 0..2 {
                    let mut fast = vec![0u64; words];
                    let mut slow = vec![0u64; words];
                    let ok_fast = pack_row_strict(m.row(i), &mut fast);
                    let ok_slow = pack_row_strict_reference(m.row(i), &mut slow);
                    prop_assert_eq!(ok_fast, ok_slow);
                    prop_assert_eq!(&fast, &slow);
                    // Strict and signs agree on exactly-bipolar rows (no -0.0 present).
                    let mut signs = vec![0u64; words];
                    pack_row_signs(m.row(i), &mut signs);
                    prop_assert_eq!(&fast, &signs);
                }
            }

            #[test]
            fn prop_signs_packer_matches_reference(seed in 0u64..1000, dim_sel in 0usize..8) {
                let dim = [1usize, 7, 8, 63, 64, 65, 100, 257][dim_sel];
                // Arbitrary reals with sign-convention edge cases spliced in.
                let mut r = rng(seed);
                let mut row: Vec<f32> = (0..dim)
                    .map(|_| (r.gen::<f32>() - 0.5) * 4.0)
                    .collect();
                for (j, v) in row.iter_mut().enumerate() {
                    match (seed as usize + j) % 7 {
                        0 => *v = 0.0,
                        1 => *v = -0.0,
                        2 => *v = 1.0,
                        3 => *v = -1.0,
                        _ => {}
                    }
                }
                let words = BitMatrix::words_for_dim(dim);
                let mut fast = vec![0u64; words];
                let mut slow = vec![0u64; words];
                pack_row_signs(&row, &mut fast);
                pack_row_signs_reference(&row, &mut slow);
                prop_assert_eq!(&fast, &slow);
                // Any non-bipolar element must fail the strict packer, exactly like
                // the reference (|v| == 1.0 bit test, so -0.0 and 0.0 both fail it).
                let strict_ok = pack_row_strict(&row, &mut fast);
                let all_bipolar = row.iter().all(|v| (v.to_bits() & 0x7fff_ffff) == 0x3f80_0000);
                prop_assert_eq!(strict_ok, all_bipolar);
            }
        }
    }

    mod simd_props {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        /// A named Hamming kernel: one detected SIMD tier.
        type TierKernel = (&'static str, HammingFn);

        /// Every SIMD tier available on the running CPU, by name; the generic kernel
        /// is the reference the rest are pinned against.
        fn available_tier_kernels() -> Vec<TierKernel> {
            let mut kernels: Vec<TierKernel> = Vec::new();
            #[cfg(target_arch = "x86_64")]
            {
                use std::arch::is_x86_feature_detected;
                if is_x86_feature_detected!("popcnt") {
                    kernels.push(("popcnt", simd::hamming_popcnt_checked));
                }
                if is_x86_feature_detected!("avx2") {
                    kernels.push(("avx2", simd::hamming_avx2_checked));
                }
                if is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512vpopcntdq")
                {
                    kernels.push(("avx512", simd::hamming_avx512_checked));
                }
            }
            kernels
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Every detected tier returns exactly `hamming_generic` on packed rows
            /// across pow2 and non-pow2 dims — including dims that exercise the
            /// Harley–Seal 64-word block path (4096), block+remainder (4224), and
            /// multi-block+scalar-tail shapes (8200) — with the zero-padded tail
            /// words the packers guarantee.
            #[test]
            fn prop_hamming_tiers_match_generic(seed in 0u64..1000, dim_sel in 0usize..8) {
                let dim = [1usize, 65, 100, 257, 1000, 4096, 4224, 8200][dim_sel];
                let m = random_bipolar_matrix(2, dim, seed);
                let bits = BitMatrix::from_matrix(&m).unwrap();
                let a = bits.row_words(0);
                let b = bits.row_words(1);
                let expected_ab = hamming_generic(a, b);
                let expected_aa = hamming_generic(a, a);
                for (name, kernel) in available_tier_kernels() {
                    prop_assert_eq!((name, kernel(a, b)), (name, expected_ab));
                    prop_assert_eq!((name, kernel(a, a)), (name, expected_aa));
                }
            }

            /// The SoA lane-blocked projection is bitwise-equal to the pre-blocking
            /// AoS walk — accumulators handed to `perturb` and the packed output —
            /// with and without a mutating perturbation, on query batches that
            /// cross the 8-row lane-block boundary.
            #[test]
            fn prop_project_signs_soa_matches_aos_reference(
                seed in 0u64..1000,
                dim_sel in 0usize..4,
                cb_rows in 1usize..12,
                queries in 1usize..20,
                noisy_sel in 0usize..2,
            ) {
                let noisy = noisy_sel == 1;
                let dim = [64usize, 70, 128, 200][dim_sel];
                let codebook = BitMatrix::from_matrix(&random_bipolar_matrix(cb_rows, dim, seed)).unwrap();
                let mut r = rng(seed ^ 0x50A);
                let mut weights = HvMatrix::zeros(queries, cb_rows);
                for q in 0..queries {
                    for w in weights.row_mut(q) {
                        *w = (r.gen::<f32>() - 0.5) * 3.0;
                    }
                }
                // The perturbation must be identical across both runs and, when
                // noisy, actually change the accumulators (so the test covers the
                // perturb → pack interaction, not just pure projection).
                let perturb_values: Vec<f32> = (0..queries * dim)
                    .map(|_| (r.gen::<f32>() - 0.5) * 0.5)
                    .collect();
                let backend = PackedBackend::new();
                let mut acc = Vec::new();
                let mut soa_out = BitMatrix::default();
                let mut soa_seen: Vec<Vec<u32>> = Vec::new();
                backend.project_signs_packed_into(
                    &codebook,
                    &weights,
                    |q, row| {
                        if noisy {
                            for (slot, z) in row.iter_mut().zip(&perturb_values[q * dim..]) {
                                *slot += z;
                            }
                        }
                        soa_seen.push(row.iter().map(|v| v.to_bits()).collect());
                    },
                    &mut acc,
                    &mut soa_out,
                );

                // AoS reference: the pre-SoA kernel shape — one query at a time,
                // codebook row outer, word chunk inner.
                let mut ref_out = BitMatrix::default();
                ref_out.ensure_shape(queries, dim);
                let mut ref_seen: Vec<Vec<u32>> = Vec::new();
                let mut ref_acc = vec![0.0f32; dim];
                for q in 0..queries {
                    ref_acc.fill(0.0);
                    for (m, &w) in weights.row(q).iter().enumerate() {
                        let w_bits = w.to_bits();
                        for (chunk, &word) in ref_acc.chunks_mut(WORD_BITS).zip(codebook.row_words(m)) {
                            for (bit, slot) in chunk.iter_mut().enumerate() {
                                let sign = ((word >> bit) as u32 & 1) << 31;
                                *slot += f32::from_bits(w_bits ^ sign);
                            }
                        }
                    }
                    if noisy {
                        for (slot, z) in ref_acc.iter_mut().zip(&perturb_values[q * dim..]) {
                            *slot += z;
                        }
                    }
                    ref_seen.push(ref_acc.iter().map(|v| v.to_bits()).collect());
                    ref_out.pack_signs_row(q, &ref_acc);
                }

                prop_assert_eq!(soa_seen, ref_seen);
                for q in 0..queries {
                    prop_assert_eq!(soa_out.row_words(q), ref_out.row_words(q));
                }
            }
        }
    }

    #[test]
    fn gather_broadcast_and_dot_helpers() {
        let m = random_bipolar_matrix(4, 70, 11);
        let bits = BitMatrix::from_matrix(&m).unwrap();
        let g = bits.gather(&[2, 0]).unwrap();
        assert_eq!(g.row_words(0), bits.row_words(2));
        assert_eq!(g.row_words(1), bits.row_words(0));
        assert!(bits.gather(&[4]).is_err());
        let b = bits.broadcast_row(1, 3).unwrap();
        for i in 0..3 {
            assert_eq!(b.row_words(i), bits.row_words(1));
        }
        assert_eq!(bits.dot_rows(0, &bits, 0), 70);
        assert!((bits.cosine_rows(0, &bits, 0) - 1.0).abs() < 1e-6);
        assert_eq!(bits.footprint_bytes(), 4 * 2 * 8);
    }

    #[test]
    fn random_bipolar_keeps_tail_bits_zero() {
        let mut r = rng(3);
        for dim in [1usize, 63, 64, 65, 100, 257] {
            let m = BitMatrix::random_bipolar(5, dim, &mut r);
            let tail = BitMatrix::tail_mask(dim);
            for i in 0..m.rows() {
                let row = m.row_words(i);
                assert_eq!(row.last().unwrap() & !tail, 0, "dim {dim} row {i}");
            }
            // Round-trips through the dense representation exactly.
            assert_eq!(BitMatrix::from_matrix(&m.to_matrix()).unwrap(), m);
        }
    }

    mod cleanup_index_props {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        /// Pins the indexed cleanup to the linear scan on the same operands:
        /// identical winner index, bitwise-identical similarity, and the same from
        /// the `_into` forms through a reused scratch.
        fn assert_decision_identity(codebook: &BitMatrix, queries: &BitMatrix) {
            let backend = PackedBackend::new();
            let linear = backend.cleanup_batch_packed(codebook, queries);
            let index = CleanupIndex::build(codebook);
            let indexed = backend.cleanup_batch_indexed(&index, queries);
            assert_eq!(linear.len(), indexed.len());
            for (q, (lin, ind)) in linear.iter().zip(&indexed).enumerate() {
                assert_eq!(lin.0, ind.0, "query {q}: winner index diverged");
                assert_eq!(
                    lin.1.to_bits(),
                    ind.1.to_bits(),
                    "query {q}: similarity diverged"
                );
            }
            let mut scratch = CleanupScratch::default();
            let mut out = Vec::new();
            backend.cleanup_batch_indexed_into(&index, queries, &mut scratch, &mut out);
            assert_eq!(out, indexed);
            backend.cleanup_batch_packed_into(codebook, queries, &mut scratch, &mut out);
            assert_eq!(out, linear);
        }

        #[test]
        fn indexed_cleanup_all_equidistant_rows_pick_lowest_index() {
            // Every codebook row is at Hamming distance 1 from the all-+1 query:
            // a maximal tie, which must resolve to row 0 on both paths.
            let (rows, dim) = (600, 1024);
            let mut codebook = BitMatrix::zeros(rows, dim);
            for r in 0..rows {
                codebook.flip_bit(r, r);
            }
            let queries = BitMatrix::zeros(3, dim);
            assert_decision_identity(&codebook, &queries);
            let index = CleanupIndex::build(&codebook);
            for (idx, sim) in PackedBackend::new().cleanup_batch_indexed(&index, &queries) {
                assert_eq!(idx, 0);
                assert!((sim - (1.0 - 2.0 / dim as f32)).abs() < 1e-6);
            }
        }

        #[test]
        fn cleanup_index_metadata() {
            let mut r = rng(17);
            let codebook = BitMatrix::random_bipolar(700, 1024, &mut r);
            let index = CleanupIndex::build(&codebook);
            assert_eq!(index.rows(), 700);
            assert_eq!(index.dim(), 1024);
            // d=1024 → 16 words per row → 2 SoA sketch planes, 14 rest words.
            assert_eq!(index.sketch_words(), 2);
            assert!(index.footprint_bytes() >= 700 * 16 * 8);
            // Empty codebooks build an empty (never-queried) index.
            assert_eq!(CleanupIndex::build(&BitMatrix::default()).rows(), 0);
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Decision identity across pow2 and non-pow2 dims (1-word sketch at
            /// d ≤ 512, fused 2-plane pass at 1024+), uniform-random queries (mode
            /// 0, near-no pruning), perturbed codebook rows (mode 1, the production
            /// regime), and queries exactly equal to a codebook row (mode 2).
            #[test]
            fn prop_indexed_cleanup_matches_linear(
                seed in 0u64..1000,
                dim_sel in 0usize..6,
                rows in 1usize..700,
                queries in 1usize..8,
                mode in 0usize..3,
            ) {
                let dim = [64usize, 127, 256, 513, 1024, 1100][dim_sel];
                let mut r = rng(seed);
                let codebook = BitMatrix::random_bipolar(rows, dim, &mut r);
                let q = match mode {
                    0 => BitMatrix::random_bipolar(queries, dim, &mut r),
                    _ => {
                        let picks: Vec<usize> =
                            (0..queries).map(|_| r.gen_range(0..rows)).collect();
                        let mut q = codebook.gather(&picks).unwrap();
                        if mode == 1 {
                            for i in 0..queries {
                                for _ in 0..(dim / 50).max(1) {
                                    q.flip_bit(i, r.gen_range(0..dim));
                                }
                            }
                        }
                        q
                    }
                };
                assert_decision_identity(&codebook, &q);
            }

            /// Duplicate-heavy codebooks: a handful of distinct planes each
            /// repeated many times, queried with the planes themselves — exact
            /// duplicates and ties everywhere, must still pick the lowest index.
            #[test]
            fn prop_indexed_cleanup_duplicate_rows(seed in 0u64..1000, rows in 2usize..80) {
                let mut r = rng(seed);
                let distinct = BitMatrix::random_bipolar(4, 256, &mut r);
                let picks: Vec<usize> = (0..rows).map(|_| r.gen_range(0..4)).collect();
                let codebook = distinct.gather(&picks).unwrap();
                assert_decision_identity(&codebook, &distinct);
            }
        }
    }

    mod word_spec_props {
        use super::*;
        use proptest::prelude::*;

        #[test]
        fn word_spec_resolution() {
            assert_eq!(WordSpec::for_dim(1024), WordSpec::W16);
            assert_eq!(WordSpec::for_dim(1000), WordSpec::W16); // padded tail, same words
            assert_eq!(WordSpec::for_dim(2048), WordSpec::W32);
            assert_eq!(WordSpec::for_dim(4096), WordSpec::W64);
            assert_eq!(WordSpec::for_dim(256), WordSpec::Generic);
            assert!(WordSpec::W16.matches(16));
            assert!(!WordSpec::Generic.matches(16));
            assert_eq!(WordSpec::W32.as_str(), "W=32");
        }

        /// Pins every spec entry point bitwise against its runtime-length twin on
        /// the same operands: similarity matrices, cleanup winners/similarities,
        /// and the projected sign planes (same perturbation call sequence).
        fn assert_spec_identity(spec: WordSpec, codebook: &BitMatrix, queries: &BitMatrix) {
            let backend = PackedBackend::new();

            let mut generic = HvMatrix::default();
            let mut specd = HvMatrix::default();
            backend.similarity_matrix_packed_into(codebook, queries, &mut generic);
            backend.similarity_matrix_packed_spec_into(spec, codebook, queries, &mut specd);
            assert_eq!(generic, specd, "similarity diverged under {spec}");

            let mut scratch = CleanupScratch::default();
            let (mut lin, mut spc) = (Vec::new(), Vec::new());
            backend.cleanup_batch_packed_into(codebook, queries, &mut scratch, &mut lin);
            backend.cleanup_batch_packed_spec_into(spec, codebook, queries, &mut scratch, &mut spc);
            assert_eq!(lin.len(), spc.len());
            for (q, (l, s)) in lin.iter().zip(&spc).enumerate() {
                assert_eq!(l.0, s.0, "query {q}: cleanup winner diverged under {spec}");
                assert_eq!(
                    l.1.to_bits(),
                    s.1.to_bits(),
                    "query {q}: cleanup sim diverged"
                );
            }

            // Projection: the similarity rows double as weights; the perturbation
            // log checks the call sequence (and hence noise-stream consumption)
            // matches, not just the packed output.
            let mut acc = Vec::new();
            let (mut out_g, mut out_s) = (BitMatrix::default(), BitMatrix::default());
            let (mut calls_g, mut calls_s) = (Vec::new(), Vec::new());
            backend.project_signs_packed_into(
                codebook,
                &generic,
                |q, row| calls_g.push((q, row[0].to_bits())),
                &mut acc,
                &mut out_g,
            );
            backend.project_signs_packed_spec_into(
                spec,
                codebook,
                &generic,
                |q, row| calls_s.push((q, row[0].to_bits())),
                &mut acc,
                &mut out_s,
            );
            assert_eq!(out_g, out_s, "projected planes diverged under {spec}");
            assert_eq!(
                calls_g, calls_s,
                "perturbation sequence diverged under {spec}"
            );
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Spec-vs-generic identity at every specialized word count, both at
            /// the exact word boundary (d = 64·W) and with a padded tail word —
            /// and with a deliberately *mismatched* spec, which must fall back to
            /// the generic kernel rather than misread row strides.
            #[test]
            fn prop_spec_kernels_match_generic(
                seed in 0u64..1000,
                w_sel in 0usize..3,
                pad in 0usize..2,
                rows in 1usize..40,
                queries in 1usize..10,
            ) {
                let words = [16usize, 32, 64][w_sel];
                let dim = words * 64 - pad * 17;
                let spec = WordSpec::for_dim(dim);
                prop_assert_eq!(spec.words(), Some(words));
                let mut r = rng(seed);
                let codebook = BitMatrix::random_bipolar(rows, dim, &mut r);
                let q = BitMatrix::random_bipolar(queries, dim, &mut r);
                assert_spec_identity(spec, &codebook, &q);
                // A wrong spec must route to the generic kernel (checked by the
                // `matches` guard), never reinterpret the stride.
                let wrong = if words == 16 { WordSpec::W64 } else { WordSpec::W16 };
                assert_spec_identity(wrong, &codebook, &q);
            }

            /// Generic spec on arbitrary (including sub-16-word) dims is the
            /// identity fallback.
            #[test]
            fn prop_generic_spec_is_fallback(seed in 0u64..1000, dim in 1usize..300) {
                let mut r = rng(seed);
                let codebook = BitMatrix::random_bipolar(6, dim, &mut r);
                let q = BitMatrix::random_bipolar(3, dim, &mut r);
                assert_spec_identity(WordSpec::Generic, &codebook, &q);
            }
        }

        /// The tier cap (`COGSYS_SIMD`) is process-wide, so we can't sweep tiers
        /// in-process — but the spec hamming resolution itself must agree with the
        /// generic kernel exactly on every width it claims.
        #[test]
        fn spec_hamming_matches_generic_kernel() {
            let mut r = rng(23);
            for &(words, dim) in &[(16usize, 1024usize), (16, 1000), (32, 2048), (64, 4096)] {
                let a = BitMatrix::random_bipolar(1, dim, &mut r);
                let b = BitMatrix::random_bipolar(1, dim, &mut r);
                let expect = hamming_generic(a.row_words(0), b.row_words(0));
                let got = match words {
                    16 => hamming_fn_spec_w::<16>()(a.row_words(0), b.row_words(0)),
                    32 => hamming_fn_spec_w::<32>()(a.row_words(0), b.row_words(0)),
                    _ => hamming_fn_spec_w::<64>()(a.row_words(0), b.row_words(0)),
                };
                assert_eq!(expect, got, "spec hamming diverged at {words} words");
            }
        }
    }
}
