//! Bit-packed bipolar execution layer: XOR binding and popcount similarity.
//!
//! Every hot path in the repository runs bipolar `{-1, +1}` vectors, yet the dense
//! backends push them through `f32` arithmetic — 32× more memory traffic than the
//! algebra needs. For the MAP/Hadamard algebra the classic binary-spatter-code
//! reductions apply exactly:
//!
//! * **bind/unbind** of sign vectors is the XOR of their sign bits,
//! * **dot product** is `d − 2·hamming(a, b)` (so cosine is `1 − 2·hamming/d`),
//! * **bundling** is per-dimension vote counting followed by a sign threshold.
//!
//! [`BitMatrix`] stores one sign plane per hypervector row — 64 dimensions per `u64`
//! word, 32× smaller than the `f32` [`HvMatrix`] it mirrors — and [`PackedBackend`]
//! implements the [`VsaBackend`] surface on top of it. Inputs that are not exactly
//! bipolar, and the circular-convolution (HRR) binding, transparently fall back to the
//! dense [`ParallelBackend`], so `BackendKind::Packed` is always safe to select.
//!
//! Sign convention: a set bit means **negative** (`-1.0`), mirroring the IEEE-754 sign
//! bit; `+1.0` packs to 0. The unused tail bits of the last word in each row are kept
//! at zero (see [`BitMatrix::tail_mask`]), which lets every kernel run whole-word
//! XOR/popcount without per-row masking.

use crate::batch::{HvMatrix, ParallelBackend, VsaBackend};
use crate::codebook::BindingOp;
use crate::error::VsaError;
use crate::hypervector::{Hypervector, VsaKind};
use serde::{Deserialize, Serialize};

/// Bits per storage word.
const WORD_BITS: usize = 64;

/// Codebook rows per cache block in the popcount cleanup/similarity kernels.
///
/// A block of 128 rows at d = 4096 is 64 KiB of packed words — resident in L1/L2 while
/// it is streamed against every query, so large codebooks are read from DRAM once per
/// block instead of once per query.
const CODEBOOK_BLOCK_ROWS: usize = 128;

/// A dense, row-major batch of **sign planes**: the bit-packed mirror of [`HvMatrix`]
/// for bipolar data.
///
/// Each row holds `dim` sign bits packed into `dim.div_ceil(64)` little-endian `u64`
/// words (bit `j % 64` of word `j / 64` is dimension `j`); a set bit encodes `-1.0`.
/// Rows are padded to a whole number of words and the padding bits are always zero.
///
/// # Example
/// ```
/// use cogsys_vsa::batch::HvMatrix;
/// use cogsys_vsa::packed::BitMatrix;
///
/// let m = HvMatrix::from_vec(vec![1.0, -1.0, -1.0, 1.0], 1, 4).unwrap();
/// let bits = BitMatrix::from_matrix(&m).unwrap();
/// assert_eq!((bits.rows(), bits.dim(), bits.words_per_row()), (1, 4, 1));
/// assert_eq!(bits.row_words(0), &[0b0110]);
/// assert_eq!(bits.to_matrix(), m); // exact round trip
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BitMatrix {
    words: Vec<u64>,
    rows: usize,
    dim: usize,
    words_per_row: usize,
}

/// Packs one `f32` row into sign-plane words, returning `false` if any element is not
/// exactly `±1.0` (the packed representation would silently drop magnitudes).
fn pack_row_strict(row: &[f32], words: &mut [u64]) -> bool {
    let mut exact = true;
    for (chunk, word) in row.chunks(WORD_BITS).zip(words.iter_mut()) {
        let mut w = 0u64;
        for (bit, &v) in chunk.iter().enumerate() {
            let b = v.to_bits();
            // abs(v) == 1.0 exactly; the sign bit becomes the packed bit.
            exact &= (b & 0x7fff_ffff) == 0x3f80_0000;
            w |= u64::from(b >> 31) << bit;
        }
        *word = w;
    }
    exact
}

/// Packs the *signs* of an arbitrary `f32` row, using the `v < 0.0` convention of the
/// estimate binarisation step (`-0.0` packs to `+1`, unlike the IEEE sign bit).
fn pack_row_signs(row: &[f32], words: &mut [u64]) {
    for (chunk, word) in row.chunks(WORD_BITS).zip(words.iter_mut()) {
        let mut w = 0u64;
        for (bit, &v) in chunk.iter().enumerate() {
            w |= u64::from(v < 0.0) << bit;
        }
        *word = w;
    }
}

fn unpack_row(words: &[u64], row: &mut [f32]) {
    for (chunk, word) in row.chunks_mut(WORD_BITS).zip(words) {
        for (bit, v) in chunk.iter_mut().enumerate() {
            *v = if (word >> bit) & 1 == 1 { -1.0 } else { 1.0 };
        }
    }
}

/// Hamming distance between two equal-length word rows (tail bits are zero on both
/// sides, so whole-word popcount needs no masking).
#[inline]
fn hamming(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

impl BitMatrix {
    /// Number of `u64` words needed per row of dimension `dim`.
    pub fn words_for_dim(dim: usize) -> usize {
        dim.div_ceil(WORD_BITS)
    }

    /// Mask of the valid bits in the last word of a row (`u64::MAX` when `dim` is a
    /// multiple of 64). Padding bits above the mask are kept zero by construction.
    pub fn tail_mask(dim: usize) -> u64 {
        match dim % WORD_BITS {
            0 => u64::MAX,
            r => (1u64 << r) - 1,
        }
    }

    /// An all-`+1` (all bits clear) matrix.
    pub fn zeros(rows: usize, dim: usize) -> Self {
        let words_per_row = Self::words_for_dim(dim);
        Self {
            words: vec![0; rows * words_per_row],
            rows,
            dim,
            words_per_row,
        }
    }

    /// Packs an f32 matrix of exactly-bipolar rows, or `None` if any element is not
    /// `±1.0` — callers use `None` as the signal to stay on the dense path.
    pub fn from_matrix(m: &HvMatrix) -> Option<Self> {
        let mut packed = Self::zeros(m.rows(), m.dim());
        if packed.pack_from(m) {
            Some(packed)
        } else {
            None
        }
    }

    /// Packs a slice of bipolar hypervectors (one row each).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] on ragged rows, and
    /// [`VsaError::InvalidParameter`] when an element is not `±1.0`.
    pub fn from_hypervectors(rows: &[Hypervector]) -> Result<Self, VsaError> {
        let m = HvMatrix::from_rows(rows)?;
        Self::from_matrix(&m).ok_or(VsaError::InvalidParameter {
            name: "rows",
            message: "bit-packing requires exactly bipolar (±1.0) elements".to_string(),
        })
    }

    /// Re-packs `m` into this matrix's storage (reshaping as needed), returning whether
    /// every element was exactly `±1.0`. On `false` the contents are unspecified —
    /// packing bails at the first non-bipolar row so the dense fallback stays cheap.
    pub fn pack_from(&mut self, m: &HvMatrix) -> bool {
        self.ensure_shape(m.rows(), m.dim());
        for i in 0..m.rows() {
            let start = i * self.words_per_row;
            if !pack_row_strict(m.row(i), &mut self.words[start..start + self.words_per_row]) {
                return false;
            }
        }
        true
    }

    /// Packs the signs of one `f32` row into row `i` using the `v < 0.0 → −1`
    /// convention of the estimate binarisation step (magnitudes are discarded).
    ///
    /// # Panics
    /// Panics when `i >= rows()` or `row.len() != dim()`.
    pub fn pack_signs_row(&mut self, i: usize, row: &[f32]) {
        assert_eq!(row.len(), self.dim, "row length must match dim");
        let start = i * self.words_per_row;
        pack_row_signs(row, &mut self.words[start..start + self.words_per_row]);
    }

    /// Reshapes to `rows × dim` without preserving contents (reuse as output buffer).
    pub fn ensure_shape(&mut self, rows: usize, dim: usize) {
        self.words_per_row = Self::words_for_dim(dim);
        self.words.clear();
        self.words.resize(rows * self.words_per_row, 0);
        self.rows = rows;
        self.dim = dim;
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality (in bits) of each row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Words per packed row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Storage footprint of the packed planes in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Row `i` as packed words.
    ///
    /// # Panics
    /// Panics when `i >= rows()`.
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    /// Unpacks into an owned `f32` matrix of `±1.0` values.
    pub fn to_matrix(&self) -> HvMatrix {
        let mut out = HvMatrix::zeros(self.rows, self.dim);
        self.unpack_into(&mut out);
        out
    }

    /// Unpacks into `out` (reshaped as needed).
    pub fn unpack_into(&self, out: &mut HvMatrix) {
        out.ensure_shape(self.rows, self.dim);
        for i in 0..self.rows {
            unpack_row(self.row_words(i), out.row_mut(i));
        }
    }

    /// Unpacks row `i` into an owned [`Hypervector`] tagged [`VsaKind::Bipolar`].
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn row_hypervector(&self, i: usize) -> Result<Hypervector, VsaError> {
        if i >= self.rows {
            return Err(VsaError::IndexOutOfRange {
                index: i,
                len: self.rows,
            });
        }
        let mut row = vec![0.0f32; self.dim];
        unpack_row(self.row_words(i), &mut row);
        Ok(Hypervector::with_kind(row, VsaKind::Bipolar))
    }

    /// Selects `indices` rows into `out` (the packed analogue of [`HvMatrix::gather`]).
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn gather_into(&self, indices: &[usize], out: &mut Self) -> Result<(), VsaError> {
        out.ensure_shape(indices.len(), self.dim);
        for (slot, &i) in indices.iter().enumerate() {
            if i >= self.rows {
                return Err(VsaError::IndexOutOfRange {
                    index: i,
                    len: self.rows,
                });
            }
            let dst = slot * out.words_per_row;
            out.words[dst..dst + out.words_per_row].copy_from_slice(self.row_words(i));
        }
        Ok(())
    }

    /// Allocating variant of [`BitMatrix::gather_into`].
    ///
    /// # Errors
    /// See [`BitMatrix::gather_into`].
    pub fn gather(&self, indices: &[usize]) -> Result<Self, VsaError> {
        let mut out = Self::default();
        self.gather_into(indices, &mut out)?;
        Ok(out)
    }

    /// A matrix whose every row is a copy of row `src` of `self`.
    ///
    /// # Errors
    /// Returns [`VsaError::IndexOutOfRange`] on a bad row index.
    pub fn broadcast_row(&self, src: usize, rows: usize) -> Result<Self, VsaError> {
        self.gather(&vec![src; rows])
    }

    /// XORs row `i` of `other` into row `i` of `self` for every row — the in-place MAP
    /// bind/unbind (its own inverse).
    ///
    /// # Errors
    /// Returns [`VsaError::DimensionMismatch`] when the shapes disagree.
    pub fn xor_assign(&mut self, other: &Self) -> Result<(), VsaError> {
        if self.rows != other.rows || self.dim != other.dim {
            return Err(VsaError::DimensionMismatch {
                left: self.rows.max(self.dim),
                right: other.rows.max(other.dim),
            });
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        Ok(())
    }

    /// Copies `src` into `self`, reshaping as needed (allocation-free once warm).
    pub fn copy_from(&mut self, src: &Self) {
        self.ensure_shape(src.rows, src.dim);
        self.words.copy_from_slice(&src.words);
    }

    /// Dot product of rows `self[i]` and `other[j]` under the bipolar interpretation:
    /// `d − 2·hamming`.
    ///
    /// # Panics
    /// Panics on out-of-range rows (shapes are caller-checked in the kernels).
    pub fn dot_rows(&self, i: usize, other: &Self, j: usize) -> i32 {
        self.dim as i32 - 2 * hamming(self.row_words(i), other.row_words(j)) as i32
    }

    /// Bipolar cosine of rows `self[i]` and `other[j]`: `1 − 2·hamming/d`.
    pub fn cosine_rows(&self, i: usize, other: &Self, j: usize) -> f32 {
        if self.dim == 0 {
            return 0.0;
        }
        self.dot_rows(i, other, j) as f32 / self.dim as f32
    }
}

// ---------------------------------------------------------------------------
// Packed backend
// ---------------------------------------------------------------------------

/// Per-call scratch for the packed kernels, reused across invocations so the steady
/// state performs no allocation.
#[derive(Debug, Default)]
struct PackedScratch {
    a: BitMatrix,
    b: BitMatrix,
}

/// [`VsaBackend`] over bit-packed sign planes for the MAP/Hadamard algebra.
///
/// * Hadamard bind/unbind on exactly-bipolar operands packs both sides and XORs words.
/// * `similarity_matrix` / `cleanup_batch` on bipolar operands run whole-word
///   XOR+popcount and map Hamming distance back to dot products / cosine, blocked over
///   codebook rows for cache residency.
/// * `bundle` counts votes per dimension in `i32` and emits the exact superposition.
/// * Everything else — circular convolution (HRR), non-bipolar inputs, weighted
///   projection — delegates to the wrapped dense [`ParallelBackend`], so this backend
///   is a drop-in [`crate::BackendKind::Packed`] choice for any pipeline.
///
/// Numerics: XOR bind/unbind and the popcount dot products are **exact** (bitwise equal
/// to the reference on bipolar inputs — `f32` sums of `±1` are themselves exact).
/// Cleanup cosines divide by `d` instead of the product of `f32` norms, which agrees
/// with the reference within the documented 1e-4 cosine contract.
#[derive(Debug, Default)]
pub struct PackedBackend {
    dense: ParallelBackend,
    scratch: std::sync::Mutex<PackedScratch>,
}

impl PackedBackend {
    /// Creates a packed backend with a dense [`ParallelBackend`] fallback.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dense backend non-bipolar / HRR operations fall back to.
    pub fn dense(&self) -> &ParallelBackend {
        &self.dense
    }

    /// Packed GEMM: `out[q][m] = queries[q] · codebook[m] = d − 2·hamming`, exact.
    pub fn similarity_matrix_packed_into(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
        out: &mut HvMatrix,
    ) {
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        out.ensure_shape(queries.rows(), codebook.rows());
        let d = codebook.dim() as i32;
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            for q in 0..queries.rows() {
                let qw = queries.row_words(q);
                let sims = out.row_mut(q);
                for (slot, m) in sims[block_start..block_end]
                    .iter_mut()
                    .zip(block_start..block_end)
                {
                    *slot = (d - 2 * hamming(qw, codebook.row_words(m)) as i32) as f32;
                }
            }
        }
    }

    /// Packed cleanup: per query, the index and bipolar cosine (`1 − 2·hamming/d`) of
    /// the best-matching codebook row. Ties resolve to the lowest index, matching the
    /// dense backends. Blocked over codebook rows so each block stays cache-resident
    /// across the whole query batch.
    ///
    /// # Panics
    /// Panics on an empty codebook (the checked entry points — the [`VsaBackend`]
    /// surface and [`crate::Codebook`] — guarantee at least one row).
    pub fn cleanup_batch_packed(
        &self,
        codebook: &BitMatrix,
        queries: &BitMatrix,
    ) -> Vec<(usize, f32)> {
        assert!(codebook.rows() > 0, "cleanup requires a non-empty codebook");
        debug_assert_eq!(codebook.dim(), queries.dim(), "operand dims must match");
        let mut best: Vec<(usize, u32)> = vec![(0, u32::MAX); queries.rows()];
        for block_start in (0..codebook.rows()).step_by(CODEBOOK_BLOCK_ROWS) {
            let block_end = (block_start + CODEBOOK_BLOCK_ROWS).min(codebook.rows());
            for (q, slot) in best.iter_mut().enumerate() {
                let qw = queries.row_words(q);
                for m in block_start..block_end {
                    let h = hamming(qw, codebook.row_words(m));
                    // Strictly smaller Hamming distance wins; equal keeps the earlier
                    // index — identical tie-breaking to the dense `sim > best` scan.
                    if h < slot.1 {
                        *slot = (m, h);
                    }
                }
            }
        }
        let d = queries.dim().max(1) as f32;
        best.into_iter()
            .map(|(m, h)| (m, (d - 2.0 * h as f32) / d))
            .collect()
    }

    /// Packed bundling: per-dimension `i32` vote counters over all rows. The result is
    /// the exact element-wise sum of the `±1` rows (identical to the reference bundle).
    pub fn bundle_packed(&self, items: &BitMatrix) -> Result<Hypervector, VsaError> {
        if items.rows() == 0 {
            return Err(VsaError::Empty {
                what: "bundle input",
            });
        }
        let mut neg = vec![0i32; items.dim()];
        for i in 0..items.rows() {
            for (chunk, word) in neg.chunks_mut(WORD_BITS).zip(items.row_words(i)) {
                if *word == 0 {
                    continue;
                }
                for (bit, slot) in chunk.iter_mut().enumerate() {
                    *slot += ((word >> bit) & 1) as i32;
                }
            }
        }
        let rows = items.rows() as i32;
        let values = neg.into_iter().map(|n| (rows - 2 * n) as f32).collect();
        Ok(Hypervector::with_kind(values, VsaKind::Dense))
    }

    /// Packs `a` and `b` into the shared scratch and XORs them into `out` when both are
    /// exactly bipolar; returns `false` (leaving `out` untouched) otherwise.
    fn try_xor_bind(&self, a: &HvMatrix, b: &HvMatrix, out: &mut HvMatrix) -> bool {
        let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
        let PackedScratch { a: pa, b: pb } = &mut *scratch;
        if !pa.pack_from(a) || !pb.pack_from(b) {
            return false;
        }
        pa.xor_assign(pb).expect("packed operands share a shape");
        pa.unpack_into(out);
        true
    }
}

impl VsaBackend for PackedBackend {
    fn name(&self) -> &'static str {
        "packed"
    }

    fn as_packed(&self) -> Option<&PackedBackend> {
        Some(self)
    }

    fn bind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if op == BindingOp::Hadamard && a.rows() == b.rows() && a.dim() == b.dim() {
            // Bipolar Hadamard product = XOR of sign planes, exactly.
            if self.try_xor_bind(a, b, out) {
                return Ok(());
            }
        }
        self.dense.bind_batch_into(a, b, op, out)
    }

    fn unbind_batch_into(
        &self,
        a: &HvMatrix,
        b: &HvMatrix,
        op: BindingOp,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if op == BindingOp::Hadamard && a.rows() == b.rows() && a.dim() == b.dim() {
            // Bipolar MAP binding is self-inverse: unbind is the same XOR.
            if self.try_xor_bind(a, b, out) {
                return Ok(());
            }
        }
        self.dense.unbind_batch_into(a, b, op, out)
    }

    fn similarity_matrix_into(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            let PackedScratch { a: pc, b: pq } = &mut *scratch;
            if pc.pack_from(codebook) && pq.pack_from(queries) {
                self.similarity_matrix_packed_into(pc, pq, out);
                return Ok(());
            }
        }
        self.dense.similarity_matrix_into(codebook, queries, out)
    }

    fn project_batch_into(
        &self,
        codebook: &HvMatrix,
        weights: &HvMatrix,
        out: &mut HvMatrix,
    ) -> Result<(), VsaError> {
        // Weighted superposition carries f32 weights; the dense kernel is already the
        // right tool (the packed win is in bind/similarity/cleanup, not here).
        self.dense.project_batch_into(codebook, weights, out)
    }

    fn bundle(&self, items: &HvMatrix) -> Result<Hypervector, VsaError> {
        {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            if scratch.a.pack_from(items) {
                return self.bundle_packed(&scratch.a);
            }
        }
        self.dense.bundle(items)
    }

    fn cleanup_batch(
        &self,
        codebook: &HvMatrix,
        queries: &HvMatrix,
    ) -> Result<Vec<(usize, f32)>, VsaError> {
        if codebook.rows() == 0 {
            return Err(VsaError::Empty { what: "codebook" });
        }
        if codebook.dim() == queries.dim() {
            let mut scratch = self.scratch.lock().expect("packed scratch poisoned");
            let PackedScratch { a: pc, b: pq } = &mut *scratch;
            if pc.pack_from(codebook) && pq.pack_from(queries) {
                return Ok(self.cleanup_batch_packed(pc, pq));
            }
        }
        self.dense.cleanup_batch(codebook, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::ReferenceBackend;
    use crate::rng;

    fn random_bipolar_matrix(rows: usize, dim: usize, seed: u64) -> HvMatrix {
        let mut r = rng(seed);
        let hvs: Vec<Hypervector> = (0..rows)
            .map(|_| Hypervector::random_bipolar(dim, &mut r))
            .collect();
        HvMatrix::from_rows(&hvs).unwrap()
    }

    #[test]
    fn pack_unpack_round_trips_across_tail_shapes() {
        for dim in [1usize, 63, 64, 65, 100, 128, 1000] {
            let m = random_bipolar_matrix(3, dim, dim as u64);
            let bits = BitMatrix::from_matrix(&m).expect("bipolar input packs");
            assert_eq!(bits.words_per_row(), dim.div_ceil(64));
            assert_eq!(bits.to_matrix(), m, "dim {dim}");
            // Padding bits stay zero so whole-word kernels need no masking.
            let tail = BitMatrix::tail_mask(dim);
            for i in 0..bits.rows() {
                let last = *bits.row_words(i).last().unwrap();
                assert_eq!(last & !tail, 0, "dim {dim} row {i} has dirty padding");
            }
        }
    }

    #[test]
    fn non_bipolar_input_refuses_to_pack() {
        let m = HvMatrix::from_vec(vec![1.0, -1.0, 0.5, 1.0], 1, 4).unwrap();
        assert!(BitMatrix::from_matrix(&m).is_none());
        let zero = HvMatrix::zeros(2, 8);
        assert!(BitMatrix::from_matrix(&zero).is_none());
        assert!(BitMatrix::from_hypervectors(&[Hypervector::zeros(4)]).is_err());
    }

    #[test]
    fn xor_bind_matches_hadamard_product() {
        for dim in [64usize, 96, 1024] {
            let a = random_bipolar_matrix(4, dim, 1);
            let b = random_bipolar_matrix(4, dim, 2);
            let packed = PackedBackend::new();
            let reference = ReferenceBackend;
            let r = reference.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
            let p = packed.bind_batch(&a, &b, BindingOp::Hadamard).unwrap();
            assert_eq!(r, p, "dim {dim}");
            // MAP binding is self-inverse: unbinding recovers the other operand.
            let back = packed.unbind_batch(&p, &b, BindingOp::Hadamard).unwrap();
            assert_eq!(back, a);
        }
    }

    #[test]
    fn popcount_similarity_is_exact() {
        let cb = random_bipolar_matrix(9, 100, 3);
        let q = random_bipolar_matrix(5, 100, 4);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        let rs = reference.similarity_matrix(&cb, &q).unwrap();
        let ps = packed.similarity_matrix(&cb, &q).unwrap();
        // Dots of ±1 vectors are exact in f32, so the popcount mapping is bitwise equal.
        assert_eq!(rs, ps);
    }

    #[test]
    fn cleanup_matches_reference_within_contract() {
        let cb = random_bipolar_matrix(16, 1000, 5);
        let q = random_bipolar_matrix(8, 1000, 6);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        let rc = reference.cleanup_batch(&cb, &q).unwrap();
        let pc = packed.cleanup_batch(&cb, &q).unwrap();
        for ((ri, rsim), (pi, psim)) in rc.iter().zip(&pc) {
            assert_eq!(ri, pi);
            assert!((rsim - psim).abs() < 1e-4, "{rsim} vs {psim}");
        }
    }

    #[test]
    fn bundle_counts_votes_exactly() {
        let items = random_bipolar_matrix(7, 200, 8);
        let packed = PackedBackend::new();
        let reference = ReferenceBackend;
        assert_eq!(
            reference.bundle(&items).unwrap().values(),
            packed.bundle(&items).unwrap().values(),
        );
    }

    #[test]
    fn non_bipolar_and_hrr_fall_back_to_dense() {
        let mut r = rng(9);
        let hvs: Vec<Hypervector> = (0..3)
            .map(|_| Hypervector::random_real(64, &mut r))
            .collect();
        let a = HvMatrix::from_rows(&hvs).unwrap();
        let b = random_bipolar_matrix(3, 64, 10);
        let packed = PackedBackend::new();
        let dense = ParallelBackend::new();
        for op in [BindingOp::Hadamard, BindingOp::CircularConvolution] {
            assert_eq!(
                packed.bind_batch(&a, &b, op).unwrap(),
                dense.bind_batch(&a, &b, op).unwrap(),
                "{op:?}"
            );
        }
        assert_eq!(
            packed.similarity_matrix(&a, &b).unwrap(),
            dense.similarity_matrix(&a, &b).unwrap()
        );
        assert_eq!(
            packed.cleanup_batch(&a, &b).unwrap(),
            dense.cleanup_batch(&a, &b).unwrap()
        );
        assert_eq!(
            packed.bundle(&a).unwrap().values(),
            dense.bundle(&a).unwrap().values()
        );
    }

    #[test]
    fn pack_signs_row_uses_strict_negative_convention() {
        let mut bits = BitMatrix::zeros(1, 4);
        bits.pack_signs_row(0, &[-0.5, 0.0, -0.0, 2.0]);
        // `v < 0.0`: −0.0 packs to +1, matching the estimate binarisation step.
        assert_eq!(bits.row_words(0), &[0b0001]);
    }

    #[test]
    fn gather_broadcast_and_dot_helpers() {
        let m = random_bipolar_matrix(4, 70, 11);
        let bits = BitMatrix::from_matrix(&m).unwrap();
        let g = bits.gather(&[2, 0]).unwrap();
        assert_eq!(g.row_words(0), bits.row_words(2));
        assert_eq!(g.row_words(1), bits.row_words(0));
        assert!(bits.gather(&[4]).is_err());
        let b = bits.broadcast_row(1, 3).unwrap();
        for i in 0..3 {
            assert_eq!(b.row_words(i), bits.row_words(1));
        }
        assert_eq!(bits.dot_rows(0, &bits, 0), 70);
        assert!((bits.cosine_rows(0, &bits, 0) - 1.0).abs() < 1e-6);
        assert_eq!(bits.footprint_bytes(), 4 * 2 * 8);
    }
}
