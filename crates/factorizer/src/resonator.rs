//! The iterative resonator factorization loop.

use crate::config::FactorizerConfig;
use cogsys_vsa::codebook::CodebookSet;
use cogsys_vsa::quant::fake_quantize;
use cogsys_vsa::{ops, Hypervector, VsaError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of one factorization run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationResult {
    /// The decoded codevector index for each factor.
    pub indices: Vec<usize>,
    /// Cosine similarity of the re-bound estimate to the input query.
    pub similarity: f32,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Whether the convergence threshold was reached within the iteration budget.
    pub converged: bool,
    /// Whether a limit cycle was detected (estimates repeating without improvement);
    /// only possible when stochasticity is disabled.
    pub limit_cycle: bool,
}

impl FactorizationResult {
    /// Returns `true` if the decoded indices equal `expected`.
    pub fn matches(&self, expected: &[usize]) -> bool {
        self.indices == expected
    }
}

/// The CogSys iterative factorizer.
///
/// Construct once with a [`FactorizerConfig`] and reuse across queries; the struct holds
/// no per-query state.
#[derive(Debug, Clone)]
pub struct Factorizer {
    config: FactorizerConfig,
}

impl Default for Factorizer {
    fn default() -> Self {
        Self::new(FactorizerConfig::default())
    }
}

impl Factorizer {
    /// Creates a factorizer with the given configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`FactorizerConfig::validate`]; configurations
    /// are programmer-supplied constants, so an invalid one is a bug at the call site.
    pub fn new(config: FactorizerConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid factorizer configuration: {msg}");
        }
        Self { config }
    }

    /// Returns the configuration this factorizer runs with.
    pub fn config(&self) -> &FactorizerConfig {
        &self.config
    }

    /// Factorizes `query` against the codebooks in `set`.
    ///
    /// The initial estimate for each factor is the (unnormalised) superposition of all
    /// its codevectors, following the resonator-network convention: the search starts
    /// from "every candidate in superposition" and sharpens each factor in parallel.
    ///
    /// # Errors
    /// Propagates [`VsaError`] for dimension mismatches between the query and the
    /// codebooks.
    pub fn factorize<R: Rng + ?Sized>(
        &self,
        set: &CodebookSet,
        query: &Hypervector,
        rng: &mut R,
    ) -> Result<FactorizationResult, VsaError> {
        let num_factors = set.num_factors();
        let dim = set.dim();
        if query.dim() != dim {
            return Err(VsaError::DimensionMismatch {
                left: dim,
                right: query.dim(),
            });
        }

        let query = fake_quantize(query, self.config.precision);

        // Initial estimates: bundle of every codevector in each factor, snapped to
        // bipolar so the Hadamard unbinding stays well-conditioned.
        let mut estimates: Vec<Hypervector> = (0..num_factors)
            .map(|f| {
                let cb = set.factor(f).expect("factor index in range");
                ops::majority_bundle(cb.iter()).expect("codebooks are non-empty")
            })
            .collect();

        let noise_scale = (dim as f32).sqrt();
        let mut sim_sigma = self.config.stochasticity.similarity_sigma * noise_scale;
        let mut proj_sigma = self.config.stochasticity.projection_sigma * noise_scale;

        let mut history: Vec<Vec<usize>> = Vec::new();
        let mut best_indices = vec![0usize; num_factors];
        let mut best_similarity = f32::NEG_INFINITY;
        let mut limit_cycle = false;

        for iteration in 1..=self.config.max_iterations {
            let mut decoded = Vec::with_capacity(num_factors);

            for f in 0..num_factors {
                let cb = set.factor(f)?;

                // Step 1: unbind the contribution of every other factor's estimate.
                // Estimates are updated in place (Gauss–Seidel style), so later factors
                // in the same sweep already see the refreshed earlier factors — this is
                // the "interactive" factorization the paper describes and converges in
                // fewer iterations than a fully synchronous update.
                let unbound = set.unbind_all_but(&query, &estimates, f)?;
                let unbound = fake_quantize(&unbound, self.config.precision);

                // Step 2: similarity search against the factor codebook (a GEMV).
                let mut similarities = cb.similarities(&unbound)?;
                if sim_sigma > 0.0 {
                    let noise = Hypervector::from_values(similarities.clone());
                    similarities =
                        ops::add_gaussian_noise(&noise, sim_sigma, rng).into_values();
                }
                decoded.push(ops::argmax(&similarities).unwrap_or(0));

                // Step 3: project back into the codevector space and binarise.
                let mut projected = ops::weighted_superposition(cb.as_slice(), &similarities)?;
                if proj_sigma > 0.0 {
                    projected = ops::add_gaussian_noise(&projected, proj_sigma, rng);
                }
                let projected = fake_quantize(&projected, self.config.precision);
                estimates[f] = projected.sign();
            }

            // Convergence check: re-bind the decoded codevectors and compare to the query.
            let rebound = set.bind_indices(&decoded)?;
            let similarity = ops::try_cosine_similarity(&rebound, &query)?;
            if similarity > best_similarity {
                best_similarity = similarity;
                best_indices = decoded.clone();
            }

            if similarity >= self.config.convergence_threshold {
                return Ok(FactorizationResult {
                    indices: decoded,
                    similarity,
                    iterations: iteration,
                    converged: true,
                    limit_cycle: false,
                });
            }

            // Limit-cycle detection: the same decoded tuple recurring within the window
            // without reaching the threshold (deterministic dynamics only).
            if !self.config.stochasticity.is_enabled() {
                if history
                    .iter()
                    .rev()
                    .take(self.config.limit_cycle_window)
                    .any(|h| h == &decoded)
                {
                    limit_cycle = true;
                    break;
                }
                history.push(decoded);
                if history.len() > self.config.limit_cycle_window * 4 {
                    history.remove(0);
                }
            }

            sim_sigma *= self.config.stochasticity.decay;
            proj_sigma *= self.config.stochasticity.decay;
        }

        Ok(FactorizationResult {
            indices: best_indices,
            similarity: best_similarity,
            iterations: self.config.max_iterations,
            converged: false,
            limit_cycle,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StochasticityConfig;
    use cogsys_vsa::codebook::BindingOp;
    use cogsys_vsa::{rng, CodebookSet, Precision};
    use proptest::prelude::*;

    fn standard_set(seed: u64, sizes: &[usize], dim: usize) -> (CodebookSet, rand::rngs::StdRng) {
        let mut r = rng(seed);
        let set = CodebookSet::random(sizes, dim, BindingOp::Hadamard, &mut r);
        (set, r)
    }

    #[test]
    fn clean_query_is_factorized_exactly() {
        let (set, mut r) = standard_set(100, &[10, 10, 10], 1024);
        let query = set.bind_indices(&[2, 7, 4]).unwrap();
        let f = Factorizer::default();
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![2, 7, 4]);
        assert!(result.converged);
        assert!(result.similarity > 0.9);
    }

    #[test]
    fn noisy_query_is_factorized_correctly() {
        let (set, mut r) = standard_set(101, &[8, 8, 8], 1024);
        let clean = set.bind_indices(&[1, 6, 3]).unwrap();
        let noisy = ops::flip_noise(&clean, 0.1, &mut r);
        let f = Factorizer::default();
        let result = f.factorize(&set, &noisy, &mut r).unwrap();
        assert_eq!(result.indices, vec![1, 6, 3]);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let (set, mut r) = standard_set(102, &[4, 4], 256);
        let query = Hypervector::zeros(128);
        let f = Factorizer::default();
        assert!(f.factorize(&set, &query, &mut r).is_err());
    }

    #[test]
    fn without_stochasticity_still_converges_on_easy_problems() {
        let (set, mut r) = standard_set(103, &[6, 6], 512);
        let query = set.bind_indices(&[5, 0]).unwrap();
        let f = Factorizer::new(FactorizerConfig::without_stochasticity());
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![5, 0]);
        assert!(result.converged);
    }

    #[test]
    fn stochasticity_reduces_iterations_on_hard_problems() {
        // Paper claim (Tab. VIII context, Sec. IV-B): noise injection speeds up
        // convergence. Compare average iteration counts over several hard queries
        // (small dimension relative to the product-space size).
        let mut iters_with = 0usize;
        let mut iters_without = 0usize;
        let trials = 12;
        for t in 0..trials {
            let (set, mut r) = standard_set(200 + t, &[12, 12, 12], 256);
            let query = set.bind_indices(&[3, 9, 11]).unwrap();

            let with = Factorizer::new(FactorizerConfig::default())
                .factorize(&set, &query, &mut r)
                .unwrap();
            let without = Factorizer::new(FactorizerConfig::without_stochasticity())
                .factorize(&set, &query, &mut r)
                .unwrap();
            iters_with += with.iterations;
            iters_without += without.iterations;
        }
        // Noise should not be dramatically worse; typically it is equal or better on
        // hard instances because the deterministic iteration gets stuck in cycles.
        assert!(
            iters_with as f64 <= iters_without as f64 * 1.5,
            "with noise: {iters_with}, without: {iters_without}"
        );
    }

    #[test]
    fn limit_cycle_detection_flags_stuck_runs() {
        // An adversarially tiny dimension with many combinations usually cannot be
        // factorized; the deterministic iteration should terminate early via limit-cycle
        // detection rather than burning the whole budget.
        let (set, mut r) = standard_set(300, &[16, 16, 16], 32);
        let query = set.bind_indices(&[0, 1, 2]).unwrap();
        let config = FactorizerConfig {
            max_iterations: 500,
            stochasticity: StochasticityConfig::disabled(),
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config).factorize(&set, &query, &mut r).unwrap();
        if !result.converged {
            assert!(
                result.limit_cycle || result.iterations == 500,
                "non-converged run should be explained"
            );
        }
    }

    #[test]
    fn int8_precision_still_factorizes() {
        let (set, mut r) = standard_set(104, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[7, 2, 5]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Int8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![7, 2, 5]);
    }

    #[test]
    fn fp8_precision_still_factorizes() {
        let (set, mut r) = standard_set(105, &[8, 8, 8], 1024);
        let query = set.bind_indices(&[0, 3, 6]).unwrap();
        let f = Factorizer::new(FactorizerConfig::default().with_precision(Precision::Fp8));
        let result = f.factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![0, 3, 6]);
    }

    #[test]
    fn circular_convolution_binding_is_supported() {
        let mut r = rng(106);
        let set = CodebookSet::random(&[6, 6], 2048, BindingOp::CircularConvolution, &mut r);
        let query = set.bind_indices(&[4, 2]).unwrap();
        let config = FactorizerConfig {
            convergence_threshold: 0.3,
            ..FactorizerConfig::default()
        };
        let result = Factorizer::new(config).factorize(&set, &query, &mut r).unwrap();
        assert_eq!(result.indices, vec![4, 2]);
    }

    #[test]
    fn result_matches_helper() {
        let r = FactorizationResult {
            indices: vec![1, 2],
            similarity: 1.0,
            iterations: 1,
            converged: true,
            limit_cycle: false,
        };
        assert!(r.matches(&[1, 2]));
        assert!(!r.matches(&[2, 1]));
    }

    #[test]
    #[should_panic(expected = "invalid factorizer configuration")]
    fn invalid_config_panics_at_construction() {
        let mut c = FactorizerConfig::default();
        c.max_iterations = 0;
        let _ = Factorizer::new(c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        #[test]
        fn prop_random_queries_factorize(seed in 0u64..30, i0 in 0usize..6, i1 in 0usize..6) {
            let (set, mut r) = standard_set(seed, &[6, 6], 1024);
            let query = set.bind_indices(&[i0, i1]).unwrap();
            let result = Factorizer::default().factorize(&set, &query, &mut r).unwrap();
            prop_assert_eq!(result.indices, vec![i0, i1]);
        }
    }
}
